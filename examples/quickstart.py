#!/usr/bin/env python
"""Quickstart: simulate one workload under two translation mechanisms.

Builds the paper's 4-core NDP system (Table I), runs the GUPS
random-access workload under the conventional 4-level radix page table
and under NDPage, and prints the end-to-end comparison — a miniature
Fig. 13 data point.

Run:  python examples/quickstart.py
"""

from repro import ndp_config, run_mechanisms
from repro.analysis.tables import format_table


def main():
    config = ndp_config(
        workload="rnd",       # GUPS / RandomAccess (Table II)
        num_cores=4,
        refs_per_core=8_000,  # memory references simulated per core
    )
    print(f"Simulating {config.workload!r} on a {config.num_cores}-core "
          f"NDP system (16 GB HBM2, 32 KB L1 per core)...")

    results = run_mechanisms(config, ["radix", "ndpage", "ideal"])
    baseline = results["radix"]

    rows = []
    for name, result in results.items():
        rows.append([
            name,
            result.cycles,
            result.speedup_over(baseline),
            result.ptw_latency_mean,
            result.tlb_miss_rate,
            result.translation_fraction,
        ])
    print()
    print(format_table(
        ["mechanism", "cycles", "speedup", "PTW (cy)", "TLB miss",
         "translation share"],
        rows, title="GUPS on 4-core NDP"))

    ndpage = results["ndpage"]
    print()
    print(f"NDPage walk is {baseline.ptw_latency_mean / ndpage.ptw_latency_mean:.2f}x "
          f"faster than the radix walk: 3 levels instead of 4, and PTE "
          f"accesses bypass the L1 ({ndpage.l1_metadata_miss_rate:.0%} "
          f"L1 metadata traffic vs "
          f"{baseline.l1_metadata_miss_rate:.0%} miss rate for radix).")


if __name__ == "__main__":
    main()
