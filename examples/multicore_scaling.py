#!/usr/bin/env python
"""Core-count scaling: why NDP translation gets worse with more cores.

Sweeps 1/2/4/8 NDP cores for one workload and shows (a) page-walk
latency climbing as walk traffic queues on shared HBM banks and (b)
the mechanism gap widening — the dynamics behind Figs. 6, 13 and 14.

Run:  python examples/multicore_scaling.py [workload]
"""

import sys

from repro import ndp_config, run_mechanisms
from repro.analysis.tables import format_table


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "bfs"
    print(f"Scaling {workload!r} from 1 to 8 NDP cores "
          f"(shared dataset, shared HBM2)\n")

    rows = []
    for cores in (1, 2, 4, 8):
        config = ndp_config(workload=workload, num_cores=cores,
                            refs_per_core=3_000)
        results = run_mechanisms(config, ["radix", "ech", "ndpage"])
        radix = results["radix"]
        rows.append([
            cores,
            radix.ptw_latency_mean,
            radix.dram_queue_delay_mean,
            radix.translation_fraction,
            results["ech"].speedup_over(radix),
            results["ndpage"].speedup_over(radix),
        ])
    print(format_table(
        ["cores", "radix PTW (cy)", "DRAM queue (cy)",
         "transl. share", "ECH speedup", "NDPage speedup"],
        rows, title=f"{workload}: translation under core scaling"))

    print()
    print("PTW latency rises with core count because page-walk DRAM"
          " accesses queue behind other cores' traffic (Fig. 6a)."
          " NDPage's single bypassed access per walk absorbs one"
          " queueing delay instead of two to four, so its advantage"
          " grows with cores; ECH pays its parallel-probe bandwidth"
          " tax exactly when bandwidth becomes scarce (Fig. 14).")


if __name__ == "__main__":
    main()
