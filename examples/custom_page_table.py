#!/usr/bin/env python
"""Extending the library: plug in your own page-table design.

Implements a *two-level* flattened table — PL4, then one giant node
merging PL3/PL2/PL1 (27 index bits, a 1 GB node) — registers it as a
mechanism, and races it against Radix and NDPage.  This is the paper's
"future work" direction taken one step further: flattening more levels
trades page-table memory for even shorter walks.

Run:  python examples/custom_page_table.py
"""

from typing import Dict, List, Optional

from repro import ndp_config
from repro.analysis.tables import format_table
from repro.core.bypass import MetadataBypass
from repro.core.mechanisms import MECHANISMS, MechanismSpec
from repro.sim.runner import run_mechanisms
from repro.vm.address import LEVEL_BITS, PAGE_SHIFT, PTE_SIZE, level_index
from repro.vm.base import MappingError, PageTable, Translation, WalkStage
from repro.vm.frames import FRAMES_PER_BLOCK
from repro.vm.os_model import PagingPolicy
from repro.vm.radix import PT_ALLOC_SITE

MEGA_BITS = 3 * LEVEL_BITS          # PL3+PL2+PL1 merged: 27 bits
MEGA_ENTRIES = 1 << MEGA_BITS       # 2^27 entries -> 1 GB per node


class MegaFlattenedTable(PageTable):
    """PL4 -> merged PL3/PL2/PL1. Two accesses per walk, 1 GB nodes."""

    level_names = ("PL4", "PL3/2/1")

    def __init__(self, allocator):
        self._allocator = allocator
        root_frame = allocator.alloc_frame(site=PT_ALLOC_SITE)
        self._root_paddr = allocator.frame_paddr(root_frame)
        self._nodes: Dict[int, tuple] = {}  # PL4 index -> (base, entries)
        self._mapped = 0

    def _node_for(self, page: int, create: bool):
        idx4 = level_index(page, 4)
        node = self._nodes.get(idx4)
        if node is None and create:
            # A 1 GB node = 512 contiguous 2 MB blocks.  Real systems
            # would reserve this at boot; the example allocates eagerly.
            first = None
            for i in range(512):
                block = self._allocator.alloc_huge()
                if block is None:
                    raise MemoryError("no contiguity for a 1 GB node")
                if first is None:
                    first = block
            node = (self._allocator.frame_paddr(first), {})
            self._nodes[idx4] = node
        return node

    def lookup(self, page: int) -> Optional[Translation]:
        node = self._nodes.get(level_index(page, 4))
        if node is None:
            return None
        return node[1].get(page & (MEGA_ENTRIES - 1))

    def map_page(self, page: int, pfn: int,
                 page_shift: int = PAGE_SHIFT) -> None:
        if page_shift != PAGE_SHIFT:
            raise MappingError("4 KB pages only")
        base, entries = self._node_for(page, create=True)
        index = page & (MEGA_ENTRIES - 1)
        if index in entries:
            raise MappingError(f"page {page:#x} already mapped")
        entries[index] = Translation(pfn, PAGE_SHIFT)
        self._mapped += 1

    def unmap_page(self, page: int) -> None:
        node = self._nodes.get(level_index(page, 4))
        index = page & (MEGA_ENTRIES - 1)
        if node is None or index not in node[1]:
            raise MappingError(f"page {page:#x} not mapped")
        del node[1][index]
        self._mapped -= 1

    def walk_stages(self, page: int) -> List[List[WalkStage]]:
        idx4 = level_index(page, 4)
        node = self._nodes.get(idx4)
        index = page & (MEGA_ENTRIES - 1)
        if node is None or index not in node[1]:
            raise MappingError(f"walk of unmapped page {page:#x}")
        return [
            [WalkStage("PL4", self._root_paddr + idx4 * PTE_SIZE,
                       ("PL4", idx4))],
            [WalkStage("PL3/2/1", node[0] + index * PTE_SIZE,
                       ("PL3/2/1", page))],
        ]

    def occupancy(self) -> Dict[str, float]:
        if not self._nodes:
            return {"PL4": 0.0}
        used = sum(len(entries) for _, entries in self._nodes.values())
        return {
            "PL4": len(self._nodes) / 512,
            "PL3/2/1": used / (len(self._nodes) * MEGA_ENTRIES),
        }

    def table_bytes(self) -> int:
        per_node = 512 * FRAMES_PER_BLOCK * 4096
        return 4096 + len(self._nodes) * per_node

    @property
    def mapped_pages(self) -> int:
        return self._mapped


def main():
    MECHANISMS["mega"] = MechanismSpec(
        key="mega", label="Mega-flattened (2-level, this example)",
        make_table=MegaFlattenedTable, make_bypass=MetadataBypass,
        pwc_levels=("PL4",), paging_policy=PagingPolicy.SMALL)

    config = ndp_config(workload="rnd", num_cores=4, refs_per_core=6_000)
    results = run_mechanisms(config, ["radix", "ndpage", "mega"])
    baseline = results["radix"]

    rows = [
        [name, r.speedup_over(baseline), r.ptw_latency_mean,
         r.pte_memory_accesses / max(1, r.walks),
         r.table_bytes / 1024 ** 2]
        for name, r in results.items()
    ]
    print(format_table(
        ["mechanism", "speedup", "PTW (cy)", "PTE accesses/walk",
         "table MB"],
        rows, title="Custom 2-level table vs Radix and NDPage "
                    "(GUPS, 4-core NDP)"))
    print()
    print("The mega-flattened table walks in ~1 memory access but burns"
          " a 1 GB physical node per PL4 slot — the flexibility/space"
          " trade-off the paper's 2 MB flattened node deliberately"
          " stops short of.")


if __name__ == "__main__":
    main()
