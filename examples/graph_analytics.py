#!/usr/bin/env python
"""Graph analytics on NDP: the paper's motivating scenario.

Runs the seven GraphBIG kernels (Table II) on a 4-core NDP system and
shows where the time goes under a conventional radix page table — TLB
misses, page walks, cache pollution — and how much NDPage recovers.
This is the per-workload view behind Figs. 5, 7 and 13.

Run:  python examples/graph_analytics.py
"""

from repro import ndp_config, run_mechanisms
from repro.analysis.tables import format_table
from repro.workloads.graphbig import KERNELS


def main():
    print("GraphBIG kernels on a 4-core NDP system "
          "(8 GB power-law graph, Table I hardware)\n")
    rows = []
    for kernel in sorted(KERNELS):
        config = ndp_config(workload=kernel, num_cores=4,
                            refs_per_core=4_000)
        results = run_mechanisms(config, ["radix", "ndpage"])
        radix, ndpage = results["radix"], results["ndpage"]
        rows.append([
            kernel,
            radix.tlb_miss_rate,
            radix.ptw_latency_mean,
            radix.translation_fraction,
            radix.l1_metadata_miss_rate,
            ndpage.speedup_over(radix),
        ])
    print(format_table(
        ["kernel", "TLB miss", "radix PTW", "transl. share",
         "PTE L1 miss", "NDPage speedup"],
        rows, title="Radix translation behaviour and NDPage gains"))

    print()
    print("Reading the table: frontier-driven kernels (bc, bfs, sp)"
          " miss the TLB hardest and walk longest, so NDPage helps"
          " them most; the sweep kernels (cc, gc, pr) have more"
          " sequential structure and gain less — matching the"
          " per-workload spread in the paper's Fig. 13.")


if __name__ == "__main__":
    main()
