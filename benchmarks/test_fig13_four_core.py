"""Fig. 13: speedup over Radix in 4-core NDP execution.

Paper: NDPage +42.6% over Radix on average and +9.8% over the
second-best mechanism (ECH).
"""

from conftest import bench_refs
from speedup_common import assert_common_shape, run_speedup_figure


def test_fig13_four_core_speedups(benchmark, emit):
    table, averages = run_speedup_figure(
        benchmark, emit, num_cores=4,
        refs_per_core=bench_refs(3500), figure="Fig. 13")
    assert_common_shape(table, averages)
    # Paper: NDPage 1.426x over Radix.
    assert 1.2 < averages["ndpage"] < 1.7
    # Multi-core gains exceed the single-core level of ~1.34.
    assert averages["ndpage"] > 1.3