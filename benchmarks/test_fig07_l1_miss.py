"""Fig. 7 + Section IV-A scalars: L1 miss rates of normal data (ideal
vs actual) and of metadata, on the 4-core NDP system.

Paper: metadata misses 98.28% of the time in the L1; the normal-data
miss rate is 35.89% with translation traffic vs 26.16% in the ideal
(no-translation) system — a 1.37x pollution penalty.  Section IV-A
also reports that 65.8% of memory accesses are PTE accesses.
"""

from conftest import bench_refs, run_exactly_once

from repro.analysis.experiments import l1_miss_breakdown
from repro.analysis.metrics import mean
from repro.analysis.tables import format_table


def test_fig07_l1_miss_breakdown(benchmark, emit):
    table = run_exactly_once(benchmark, lambda: l1_miss_breakdown(
        num_cores=4, refs_per_core=bench_refs(3500)))

    rows = [
        [wl, row.data_ideal, row.data_actual, row.metadata,
         row.tlb_miss_rate, row.metadata_mem_fraction]
        for wl, row in table.items()
    ]
    means = [
        mean(r.data_ideal for r in table.values()),
        mean(r.data_actual for r in table.values()),
        mean(r.metadata for r in table.values()),
        mean(r.tlb_miss_rate for r in table.values()),
        mean(r.metadata_mem_fraction for r in table.values()),
    ]
    rows.append(["MEAN"] + means)
    emit("\n" + format_table(
        ["workload", "data(ideal)", "data(actual)", "metadata",
         "tlb miss", "PTE share"], rows,
        title="Fig. 7 — L1 miss rates, 4-core NDP, Radix"))
    emit(f"paper: metadata 98.28%, data 35.89% actual vs 26.16% ideal "
         f"(1.37x), PTE share 65.8% | measured: metadata {means[2]:.1%},"
         f" data {means[1]:.1%} vs {means[0]:.1%} "
         f"({means[1] / max(1e-9, means[0]):.2f}x), "
         f"PTE share {means[4]:.1%}")

    # Metadata is by far the worst-missing traffic class.
    assert means[2] > 0.6
    assert means[2] > means[1]
    # Pollution: the direction never inverts, and metadata fills
    # demonstrably evict live data lines (the rate gap is smaller than
    # the paper's 1.37x — see EXPERIMENTS.md).
    assert means[1] >= means[0] - 0.01
    assert all(r.pollution_evictions > 0 for r in table.values())
    # PTEs are a large share of all memory accesses.
    assert means[4] > 0.3
