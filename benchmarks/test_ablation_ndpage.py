"""Ablations of NDPage's design choices (DESIGN.md ablation list).

Decomposes the two mechanisms (Section V-A bypass, Section V-B
flattening) and the PWC choice (Section V-C), and checks NDPage under
a CPU-style deep cache hierarchy — the paper argues the technique is
tailored to the *single-level* NDP cache.
"""

from conftest import bench_refs, run_exactly_once

from repro.analysis.experiments import ablation_experiment
from repro.analysis.metrics import average_speedups
from repro.analysis.tables import format_mapping_table
from repro.sim.config import cpu_config, ndp_config
from repro.sim.runner import run_mechanisms

MECHS = ("radix", "ndpage-bypass-only", "ndpage-flatten-only",
         "ndpage-nopwc", "ndpage-flatten-upper", "ndpage")


def test_ablation_mechanism_decomposition(benchmark, emit):
    table = run_exactly_once(benchmark, lambda: ablation_experiment(
        num_cores=4, workloads=("bfs", "xs", "rnd", "gen"),
        refs_per_core=bench_refs(3000)))

    averages = average_speedups(table)
    table["AVG"] = averages
    emit("\n" + format_mapping_table(
        table, list(MECHS), row_label="workload",
        title="Ablation — NDPage mechanism decomposition, 4-core NDP"))

    # Flattening is the dominant single mechanism.
    assert averages["ndpage-flatten-only"] > 1.15
    # The composite is at least as good as bypass alone and within a
    # small band of flatten alone (bypassed flat PTEs have no L1 reuse
    # to lose, and pollution disappears).
    assert averages["ndpage"] >= averages["ndpage-bypass-only"]
    # Bypassing costs the few L1 hits clustered PTE lines still get,
    # so the composite sits a handful of percent under flatten-only
    # while keeping the L1 completely clean of metadata.
    assert averages["ndpage"] >= averages["ndpage-flatten-only"] - 0.10
    # PWCs matter: removing them costs measurable speedup.
    assert averages["ndpage"] > averages["ndpage-nopwc"]
    # Flattening the *upper* pair instead (counterfactual) is worse:
    # the PL4/PL3 PWCs already absorbed those accesses, so the merge
    # saves a fetch the walker rarely performed while keeping both
    # poorly-caching bottom accesses.
    assert averages["ndpage"] > averages["ndpage-flatten-upper"]


def test_ablation_ndpage_is_an_ndp_technique(benchmark, emit):
    """NDPage's edge shrinks on a CPU with a deep cache hierarchy,
    where PTEs already cache well — the paper's motivation for a
    *tailored* NDP design."""
    def _run():
        out = {}
        for system, factory in (("ndp", ndp_config), ("cpu", cpu_config)):
            results = run_mechanisms(
                factory(workload="bfs", num_cores=4,
                        refs_per_core=bench_refs(3000)),
                ["radix", "ndpage"])
            out[system] = (results["radix"].cycles
                           / results["ndpage"].cycles)
        return out

    gains = run_exactly_once(benchmark, _run)
    emit(f"\nNDPage speedup over Radix — NDP: {gains['ndp']:.3f}, "
         f"CPU: {gains['cpu']:.3f} (the technique targets NDP)")
    assert gains["ndp"] > gains["cpu"]


def test_ablation_hugepage_contiguity_pressure(benchmark, emit):
    """Section VII-B's mechanism, isolated: with physical memory tight
    enough that 2 MB contiguity runs out, Huge Page falls behind while
    NDPage (4 KB pages) is unaffected."""
    def _run():
        cfg = ndp_config(workload="rnd", num_cores=4,
                         refs_per_core=bench_refs(2500),
                         phys_bytes=2 * 1024 ** 3,  # 2 GB: tight
                         boot_fragmentation=0.85,
                         thp_promotion_fraction=1.0,
                         warmup_refs=0)  # faults land in the ROI
        return run_mechanisms(cfg, ["radix", "hugepage", "ndpage"])

    results = run_exactly_once(benchmark, _run)
    huge_sp = results["radix"].cycles / results["hugepage"].cycles
    ndpage_sp = results["radix"].cycles / results["ndpage"].cycles
    os_stats = results["hugepage"].os_stats
    emit(f"\nUnder contiguity pressure (2 GB, 85% fragmented): "
         f"HugePage {huge_sp:.3f}x, NDPage {ndpage_sp:.3f}x over Radix;"
         f" hugepage fallbacks={os_stats['huge_fallbacks']:.0f} "
         f"compactions={os_stats['compactions']:.0f}")
    assert ndpage_sp > huge_sp
    assert results["hugepage"].os_stats["huge_fallbacks"] > 0
