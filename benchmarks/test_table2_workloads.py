"""Table II: the evaluated workloads (suite, kernels, dataset sizes)."""

from conftest import run_exactly_once

from repro.analysis.tables import format_table
from repro.workloads.registry import ALL_WORKLOADS, workload_table

PAPER_SIZES_GB = {
    "bc": 8, "bfs": 8, "cc": 8, "gc": 8, "pr": 8, "tc": 8, "sp": 8,
    "xs": 9, "rnd": 10, "dlrm": 10, "gen": 33,
}


def test_table2_workload_inventory(benchmark, emit):
    table = run_exactly_once(benchmark, lambda: workload_table(scale=1.0))

    rows = [
        [row["suite"], row["name"], row["dataset_gb"],
         ", ".join(row["regions"])]
        for row in table
    ]
    emit("\n" + format_table(
        ["suite", "workload", "dataset (GB)", "regions"], rows,
        title="Table II — evaluated workloads"))

    assert len(table) == len(ALL_WORKLOADS) == 11
    by_name = {row["name"]: row for row in table}
    for name, paper_gb in PAPER_SIZES_GB.items():
        measured = by_name[name]["dataset_gb"]
        assert abs(measured - paper_gb) < 0.2, (name, measured)
    suites = {row["suite"] for row in table}
    assert suites == {"GraphBIG", "XSBench", "GUPS", "DLRM",
                      "GenomicsBench"}
