"""Fig. 5: share of execution time spent on address translation,
4-core NDP vs CPU systems under Radix.

Paper: 67.1% on NDP vs 34.51% on CPU, averaged over the 11 workloads.
Our functional simulator overstates both sides' absolute fractions
(its cores overlap less computation than Sniper's OoO model), but the
ordering and the NDP-CPU gap direction reproduce.
"""

from conftest import bench_refs, run_exactly_once

from repro.analysis.experiments import translation_overhead_comparison
from repro.analysis.metrics import mean
from repro.analysis.tables import format_table


def test_fig05_translation_overhead_4core(benchmark, emit):
    table = run_exactly_once(
        benchmark, lambda: translation_overhead_comparison(
            num_cores=4, refs_per_core=bench_refs(4000)))

    rows = [[wl, row["ndp"], row["cpu"]] for wl, row in table.items()]
    ndp_mean = mean(row["ndp"] for row in table.values())
    cpu_mean = mean(row["cpu"] for row in table.values())
    rows.append(["MEAN", ndp_mean, cpu_mean])
    emit("\n" + format_table(
        ["workload", "NDP overhead", "CPU overhead"], rows,
        title="Fig. 5 — translation share of runtime, 4-core, Radix"))
    emit(f"paper: NDP 67.1% vs CPU 34.51% | measured: "
         f"NDP {ndp_mean:.1%} vs CPU {cpu_mean:.1%}")

    assert ndp_mean > cpu_mean
    assert ndp_mean > 0.5  # translation dominates NDP runtime
    higher = sum(1 for row in table.values()
                 if row["ndp"] > row["cpu"])
    assert higher >= 9
