"""Shared driver for the Figs. 12-14 speedup benchmarks."""

from repro.analysis.experiments import speedup_experiment
from repro.analysis.tables import format_mapping_table
from repro.core.mechanisms import PAPER_MECHANISMS

#: Paper average speedups over Radix per figure.
PAPER_AVERAGES = {
    1: {"ech": 1.18, "hugepage": 1.08, "ndpage": 1.344},
    4: {"ech": 1.30, "hugepage": None, "ndpage": 1.426},
    8: {"ech": 1.078, "hugepage": 0.901, "ndpage": 1.407},
}


def run_speedup_figure(benchmark, emit, num_cores: int,
                       refs_per_core: int, figure: str):
    """Run one of Figs. 12/13/14 and print paper-vs-measured rows."""
    def _run():
        return speedup_experiment(num_cores,
                                  refs_per_core=refs_per_core)

    table, averages, _raw = benchmark.pedantic(_run, rounds=1,
                                               iterations=1)
    table["AVG"] = averages
    emit("\n" + format_mapping_table(
        table, list(PAPER_MECHANISMS), row_label="workload",
        title=f"{figure} — speedup over Radix, {num_cores}-core NDP"))
    paper = PAPER_AVERAGES[num_cores]
    paper_text = ", ".join(
        f"{k} {v}" for k, v in paper.items() if v is not None)
    measured_text = ", ".join(
        f"{k} {averages[k]:.3f}" for k in ("ech", "hugepage", "ndpage"))
    emit(f"paper averages: {paper_text}")
    emit(f"measured averages: {measured_text}")
    return table, averages


def assert_common_shape(table, averages):
    """Shape checks shared by all three figures."""
    # NDPage is the best real mechanism on average and bounded by Ideal.
    assert averages["ndpage"] > averages["ech"]
    assert averages["ndpage"] > averages["hugepage"]
    assert averages["ndpage"] > averages["radix"] == 1.0
    assert averages["ideal"] > averages["ndpage"]
    # NDPage never loses to Radix on any workload.
    losses = [wl for wl, row in table.items()
              if wl != "AVG" and row["ndpage"] < 0.98]
    assert not losses, f"NDPage loses on {losses}"
