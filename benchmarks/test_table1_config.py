"""Table I: the simulated system configuration.

Regenerates the configuration table and asserts every Table I value is
what the simulator actually instantiates (not merely what the config
dataclass claims).
"""

from conftest import run_exactly_once

from repro.analysis.tables import format_table
from repro.mem.dram import DDR4_2400, HBM2
from repro.sim.config import cpu_config, ndp_config
from repro.sim.system import System

FAST = dict(workload="rnd", refs_per_core=200, scale=1 / 64)


def test_table1_system_configuration(benchmark, emit):
    ndp, cpu = run_exactly_once(benchmark, lambda: (
        System(ndp_config(num_cores=4, **FAST)),
        System(cpu_config(num_cores=4, **FAST)),
    ))

    rows = [
        ["cores", "4x x86-64 2.6 GHz", "4x x86-64 2.6 GHz"],
        ["L1D", "32 KB 8-way 4 cy", "32 KB 8-way 4 cy"],
        ["L2", "none", "512 KB 16-way 16 cy"],
        ["L3", "none", "2 MB/core 16-way 35 cy"],
        ["L1 DTLB", "64e 4-way 1 cy", "64e 4-way 1 cy"],
        ["L2 TLB", "1536e 12 cy", "1536e 12 cy"],
        ["memory", "HBM2 16 GB", "DDR4-2400 16 GB"],
        ["mesh", "4 cy hop, 512-bit", "4 cy hop, 512-bit"],
    ]
    emit("\n" + format_table(["component", "NDP", "CPU"], rows,
                             title="Table I — system configuration"))

    # NDP side.
    l1 = ndp.hierarchy.l1ds[0]
    assert (l1.size_bytes, l1.associativity, l1.hit_latency) \
        == (32 * 1024, 8, 4)
    assert ndp.hierarchy.l2s is None and ndp.hierarchy.l3 is None
    assert ndp.hierarchy.dram.timing is HBM2
    tlbs = ndp.mmus[0].tlbs
    assert (tlbs.l1_small.entries, tlbs.l1_small.associativity,
            tlbs.l1_small.latency) == (64, 4, 1)
    assert (tlbs.l2.entries, tlbs.l2.latency) == (1536, 12)
    assert ndp.hierarchy.noc.config.hop_latency == 4
    assert ndp.hierarchy.noc.config.link_bytes == 64  # 512-bit links

    # CPU side.
    l2 = cpu.hierarchy.l2s[0]
    assert (l2.size_bytes, l2.associativity, l2.hit_latency) \
        == (512 * 1024, 16, 16)
    l3 = cpu.hierarchy.l3
    assert (l3.size_bytes, l3.associativity, l3.hit_latency) \
        == (4 * 2 * 1024 * 1024, 16, 35)
    assert cpu.hierarchy.dram.timing is DDR4_2400

    # 16 GB of physical memory at full scale.
    assert ndp_config(workload="rnd").physical_bytes == 16 * 1024 ** 3
