"""Fig. 14: speedup over Radix in 8-core NDP execution.

Paper: NDPage +40.7% over Radix, +30.5% over ECH; Huge Page drops to
90.1% of Radix (a regression).  Measured deviation recorded in
EXPERIMENTS.md: our Huge Page stays slightly above Radix at 8 cores
because in-ROI THP management costs are amortized into the warmup
phase; the widening NDPage-over-ECH gap — the figure's main message —
reproduces.
"""

from conftest import bench_refs
from speedup_common import assert_common_shape, run_speedup_figure


def test_fig14_eight_core_speedups(benchmark, emit):
    table, averages = run_speedup_figure(
        benchmark, emit, num_cores=8,
        refs_per_core=bench_refs(2500), figure="Fig. 14")
    assert_common_shape(table, averages)
    # Paper: NDPage 1.407x over Radix.
    assert 1.25 < averages["ndpage"] < 1.8
    # The NDPage-over-ECH gap widens sharply vs 4 cores (paper: 30.5%):
    # ECH's parallel-probe bandwidth tax bites under 8-core contention.
    assert averages["ndpage"] / averages["ech"] > 1.20
    # Huge Page is the weakest non-baseline mechanism at 8 cores.
    assert averages["hugepage"] < averages["ndpage"]
