"""Fig. 4: average PTW latency in 4-core systems, NDP vs CPU (Radix).

Paper: NDP average 474.56 cycles (max 1066.25), 229% above the CPU
system.  We reproduce the *direction and rough magnitude*: NDP walks
are several hundred cycles and a large factor above CPU walks, because
the CPU's L2/L3 absorb PTE traffic while the NDP system pays queueing
HBM latency for nearly every PTE access.
"""

from conftest import bench_refs, run_exactly_once

from repro.analysis.experiments import ptw_latency_comparison
from repro.analysis.metrics import mean
from repro.analysis.tables import format_table


def test_fig04_ptw_latency_4core(benchmark, emit):
    table = run_exactly_once(benchmark, lambda: ptw_latency_comparison(
        num_cores=4, refs_per_core=bench_refs(4000)))

    rows = [
        [wl, row["ndp"], row["cpu"], row["ndp"] / max(1e-9, row["cpu"])]
        for wl, row in table.items()
    ]
    ndp_mean = mean(row["ndp"] for row in table.values())
    cpu_mean = mean(row["cpu"] for row in table.values())
    ndp_max = max(row["ndp_max"] for row in table.values())
    rows.append(["MEAN", ndp_mean, cpu_mean, ndp_mean / cpu_mean])
    emit("\n" + format_table(
        ["workload", "NDP PTW (cy)", "CPU PTW (cy)", "NDP/CPU"],
        rows, title="Fig. 4 — average PTW latency, 4-core, Radix"))
    emit(f"paper: NDP mean 474.56 cy (max 1066.25), 3.29x the CPU | "
         f"measured: NDP mean {ndp_mean:.1f} cy (max {ndp_max:.1f}), "
         f"{ndp_mean / cpu_mean:.2f}x the CPU")

    # Shape assertions: NDP walks are slower on average and for most
    # workloads individually.
    assert ndp_mean > 1.2 * cpu_mean
    slower = sum(1 for row in table.values() if row["ndp"] > row["cpu"])
    assert slower >= 8, f"only {slower}/11 workloads slower on NDP"
    assert ndp_mean > 200
