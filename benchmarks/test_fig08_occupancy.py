"""Fig. 8: page-table occupancy at PL1, PL2, PL3 and combined PL2/1.

Paper (4-core NDP averages): PL1 97.97%, PL2 98.24%, PL3 3.12%,
PL4 0.43% — the bottom two levels are nearly full while the top two
are nearly empty, which is key observation 2 motivating the flattened
table.

Occupancy is structural, so this benchmark evaluates the paper-scale
(8-33 GB) dataset layouts analytically; the equivalence of the
analytic computation with live tables is property-tested in
tests/vm/test_occupancy.py.
"""

from conftest import run_exactly_once

from repro.analysis.experiments import occupancy_study
from repro.analysis.metrics import mean
from repro.analysis.tables import format_table

PAPER = {"PL1": 0.9797, "PL2": 0.9824, "PL3": 0.0312, "PL4": 0.0043}


def test_fig08_page_table_occupancy(benchmark, emit):
    table = run_exactly_once(benchmark, occupancy_study)

    rows = [
        [wl, row["PL1"], row["PL2"], row["PL3"], row["PL4"],
         row["PL2/1"]]
        for wl, row in table.items()
    ]
    means = {
        level: mean(row[level] for row in table.values())
        for level in ("PL1", "PL2", "PL3", "PL4", "PL2/1")
    }
    rows.append(["MEAN", means["PL1"], means["PL2"], means["PL3"],
                 means["PL4"], means["PL2/1"]])
    emit("\n" + format_table(
        ["workload", "PL1", "PL2", "PL3", "PL4", "PL2/1"], rows,
        title="Fig. 8 — page-table occupancy, full-scale datasets"))
    emit(f"paper: PL1 97.97% PL2 98.24% PL3 3.12% PL4 0.43% | measured:"
         f" PL1 {means['PL1']:.1%} PL2 {means['PL2']:.1%} "
         f"PL3 {means['PL3']:.1%} PL4 {means['PL4']:.1%} "
         f"PL2/1 {means['PL2/1']:.1%}")

    assert means["PL1"] > 0.9
    assert means["PL2"] > 0.85
    assert means["PL3"] < 0.15
    assert means["PL4"] < 0.02
    assert means["PL2/1"] > 0.8  # flattened nodes would be well used
