"""Section V-C / Fig. 10: page-walk-cache hit rates by level.

Paper: PWC hit rates are ~100% at PL4, 98.6% at PL3, and average only
15.4% over PL2/PL1 — the reason NDPage keeps the top-level PWCs and
concentrates the poorly caching bottom into one flattened level.
"""

from conftest import bench_refs, run_exactly_once

from repro.analysis.experiments import pwc_hit_rates
from repro.analysis.tables import format_table


def test_fig10_pwc_hit_rates(benchmark, emit):
    radix_rates = run_exactly_once(benchmark, lambda: pwc_hit_rates(
        num_cores=4, mechanism="radix",
        refs_per_core=bench_refs(3000)))
    ndpage_rates = pwc_hit_rates(
        num_cores=4, mechanism="ndpage",
        refs_per_core=bench_refs(3000))

    rows = [[level, radix_rates.get(level, float("nan"))]
            for level in ("PL4", "PL3", "PL2", "PL1")]
    emit("\n" + format_table(["level", "hit rate"], rows,
                             title="Fig. 10 — radix PWC hit rates"))
    rows = [[level, ndpage_rates.get(level, float("nan"))]
            for level in ("PL4", "PL3", "PL2/1")]
    emit(format_table(["level", "hit rate"], rows,
                      title="NDPage PWC hit rates"))
    low = (radix_rates["PL2"] + radix_rates["PL1"]) / 2
    emit(f"paper: PL4 ~100%, PL3 98.6%, PL2/PL1 avg 15.4% | measured: "
         f"PL4 {radix_rates['PL4']:.1%}, PL3 {radix_rates['PL3']:.1%}, "
         f"PL2/PL1 avg {low:.1%}")

    assert radix_rates["PL4"] > 0.95
    assert radix_rates["PL3"] > 0.9
    assert low < 0.45
    # NDPage keeps the effective top-level PWCs and confines the misses
    # to the single flattened level.
    assert ndpage_rates["PL4"] > 0.95
    assert ndpage_rates["PL3"] > 0.9
    assert ndpage_rates["PL2/1"] < 0.45
