"""Fig. 12: speedup over Radix in single-core NDP execution.

Paper: NDPage +34.4% over Radix on average, +14.3% over the
second-best mechanism (ECH), +24.4% over Huge Page.
"""

from conftest import bench_refs
from speedup_common import assert_common_shape, run_speedup_figure


def test_fig12_single_core_speedups(benchmark, emit):
    table, averages = run_speedup_figure(
        benchmark, emit, num_cores=1,
        refs_per_core=bench_refs(6000), figure="Fig. 12")
    assert_common_shape(table, averages)
    # Paper: NDPage 1.344x over Radix (we accept a generous band).
    assert 1.15 < averages["ndpage"] < 1.65
    # Paper: NDPage beats Huge Page by 24.4%.
    assert averages["ndpage"] / averages["hugepage"] > 1.10
