"""Shared helpers for the figure/table reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper: it runs
the corresponding experiment driver once (``benchmark.pedantic`` with a
single round — these are simulations, not microbenchmarks), prints the
same rows/series the paper plots next to the paper's reference values,
and asserts the qualitative shape (who wins, roughly by how much).

Sizing: reference counts are chosen so the whole suite completes in
tens of minutes; set ``REPRO_BENCH_SCALE`` (a float multiplier) to run
longer, more statistically settled sweeps.
"""

import os

import pytest


def bench_refs(base: int) -> int:
    """Scale a benchmark's per-core reference count via the env."""
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(500, int(base * factor))


@pytest.fixture
def emit(capsys):
    """Print straight to the terminal, past pytest's capture."""
    def _emit(text: str) -> None:
        with capsys.disabled():
            print(text)
    return _emit


def run_exactly_once(benchmark, func):
    """Run ``func`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
