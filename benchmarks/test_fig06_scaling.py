"""Fig. 6: PTW latency (a) and translation-overhead share (b) as the
core count scales from 1 to 8, NDP vs CPU, Radix page table.

Paper: NDP PTW grows 242.85 -> 551.83 cycles from 1 to 8 cores and the
overhead share keeps climbing, while the CPU system stays roughly flat
on both axes.
"""

from conftest import bench_refs, run_exactly_once

from repro.analysis.experiments import core_scaling
from repro.analysis.tables import format_table


def test_fig06_core_scaling(benchmark, emit):
    out = run_exactly_once(benchmark, lambda: core_scaling(
        core_counts=(1, 4, 8), refs_per_core=bench_refs(2500)))

    rows = []
    for cores in (1, 4, 8):
        rows.append([
            cores,
            out["ndp"][cores]["ptw_latency"],
            out["cpu"][cores]["ptw_latency"],
            out["ndp"][cores]["overhead"],
            out["cpu"][cores]["overhead"],
        ])
    emit("\n" + format_table(
        ["cores", "NDP PTW", "CPU PTW", "NDP ovh", "CPU ovh"], rows,
        title="Fig. 6 — scaling with core count (mean over workloads)"))
    emit("paper: NDP PTW 242.85 -> 551.83 cy (1->8 cores), CPU flat; "
         "NDP overhead keeps rising, CPU flat")

    ndp_ptw = [out["ndp"][c]["ptw_latency"] for c in (1, 4, 8)]
    cpu_ptw = [out["cpu"][c]["ptw_latency"] for c in (1, 4, 8)]
    # (a) NDP PTW latency rises monotonically and substantially.
    assert ndp_ptw[0] < ndp_ptw[1] < ndp_ptw[2]
    assert ndp_ptw[2] > 1.8 * ndp_ptw[0]
    # CPU PTW latency grows far less.
    cpu_growth = cpu_ptw[2] / cpu_ptw[0]
    ndp_growth = ndp_ptw[2] / ndp_ptw[0]
    assert ndp_growth > cpu_growth
    # (b) The NDP overhead share stays dominant and does not shrink
    # with cores.  (Paper: it rises; in our model data stalls inflate
    # alongside walk latency under contention, so the share is ~flat —
    # recorded in EXPERIMENTS.md.)
    ndp_ovh = [out["ndp"][c]["overhead"] for c in (1, 4, 8)]
    cpu_ovh = [out["cpu"][c]["overhead"] for c in (1, 4, 8)]
    assert ndp_ovh[2] > ndp_ovh[0] - 0.03
    assert min(ndp_ovh) > 0.5
    assert (ndp_ovh[2] - ndp_ovh[0]) > (cpu_ovh[2] - cpu_ovh[0]) - 0.05
