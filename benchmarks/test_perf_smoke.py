"""Performance smoke test: the simulator must stay fast.

Runs a scaled-down version of the ``scripts/bench.py`` suite and
asserts a conservative refs/sec floor, so a future change that
re-introduces per-reference allocation churn (or otherwise destroys the
hot path) fails CI instead of silently rotting the ROADMAP's "as fast
as the hardware allows" goal.

The floor is deliberately ~10x below the throughput measured on the
machine that produced ``BENCH_PR1.json`` (aggregate ~97k refs/s): even
a CI runner several times slower than that box clears it comfortably,
while a regression to the seed implementation (3.4x slower — ~28k
refs/s on the same box, proportionally less on a slow runner) still
trips it there.
"""

import importlib.util
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Conservative aggregate floor (refs simulated per wall-clock second).
MIN_REFS_PER_SEC = 10_000

#: Small enough to finish in seconds even on a slow runner.
SMOKE_REFS = 30_000


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "repro_bench", REPO_ROOT / "scripts" / "bench.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("repro_bench", module)
    spec.loader.exec_module(module)
    return module


def test_perf_smoke(emit):
    bench = load_bench_module()
    start = time.perf_counter()
    report = bench.run_suite(SMOKE_REFS, scale=0.05, verbose=False)
    wall = time.perf_counter() - start
    aggregate = report["aggregate"]["refs_per_sec"]
    emit(f"\nperf smoke: {aggregate:,.0f} refs/s aggregate "
         f"({wall:.1f} s total)")
    for row in report["results"]:
        emit(f"  {row['name']:<12} {row['refs_per_sec']:>12,.0f} refs/s")
    assert aggregate >= MIN_REFS_PER_SEC, (
        f"simulator throughput regressed: {aggregate:,.0f} refs/s "
        f"aggregate is below the {MIN_REFS_PER_SEC:,} floor — the hot "
        f"path has likely re-grown per-reference overhead")


def test_bench_report_shape(tmp_path):
    """The harness writes the documented BENCH_*.json structure."""
    bench = load_bench_module()
    out = tmp_path / "bench.json"
    rc = bench.main(["--refs", "2000", "--scale", str(1 / 64),
                     "--out", str(out), "--label", "smoke",
                     "--sweep-jobs", "1"])
    assert rc == 0
    import json
    report = json.loads(out.read_text())
    assert report["label"] == "smoke"
    assert {"results", "aggregate", "python", "refs_per_core"} \
        <= set(report)
    assert len(report["results"]) == len(bench.SUITE)
    for row in report["results"]:
        assert {"name", "workload", "mechanism", "references",
                "wall_seconds", "refs_per_sec", "cycles"} <= set(row)
    assert report["aggregate"]["refs_per_sec"] > 0
    sweep = report["sweep"]
    assert {"jobs", "cells", "references", "wall_seconds",
            "refs_per_sec"} <= set(sweep)
    assert sweep["cells"] == (len(bench.SWEEP_WORKLOADS)
                              * len(bench.SWEEP_MECHANISMS))
    assert sweep["refs_per_sec"] > 0


def test_bench_profile_report(tmp_path):
    """--profile embeds per-config cProfile hot spots in the report."""
    bench = load_bench_module()
    out = tmp_path / "bench.json"
    rc = bench.main(["--refs", "1200", "--scale", str(1 / 64),
                     "--out", str(out), "--sweep-jobs", "0",
                     "--profile"])
    assert rc == 0
    import json
    report = json.loads(out.read_text())
    profile = report["profile"]
    assert set(profile) == {entry["name"] for entry in bench.SUITE}
    for rows in profile.values():
        assert 0 < len(rows) <= bench.PROFILE_TOP
        for row in rows:
            assert {"function", "ncalls", "tottime",
                    "cumtime"} <= set(row)
        # Ranked by cumulative time, the documented order.
        cumtimes = [row["cumtime"] for row in rows]
        assert cumtimes == sorted(cumtimes, reverse=True)


def test_bench_regression_gate(tmp_path):
    """--fail-below trips on a too-fast baseline and passes otherwise."""
    bench = load_bench_module()
    baseline = tmp_path / "baseline.json"
    args = ["--refs", "1000", "--scale", str(1 / 64),
            "--sweep-jobs", "0"]
    assert bench.main(args + ["--out", str(baseline)]) == 0

    ok = bench.main(args + ["--out", str(tmp_path / "ok.json"),
                            "--baseline", str(baseline),
                            "--fail-below", "0.000001"])
    assert ok == 0

    slow = bench.main(args + ["--out", str(tmp_path / "slow.json"),
                              "--baseline", str(baseline),
                              "--fail-below", "1000000"])
    assert slow == 1
