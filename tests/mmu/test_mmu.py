"""Tests for the MMU translation flow (Fig. 3 / Fig. 11)."""

import pytest

from repro.core.bypass import NoBypass
from repro.mem.dram import HBM2
from repro.mem.hierarchy import build_ndp_hierarchy
from repro.mmu.mmu import Mmu
from repro.mmu.tlb import build_table1_tlbs
from repro.mmu.walker import PageTableWalker
from repro.vm.frames import FrameAllocator
from repro.vm.ideal import IdealPageTable
from repro.vm.os_model import OSMemoryManager
from repro.vm.radix import RadixPageTable

MIB = 1024 ** 2


def make_mmu(ideal=False):
    allocator = FrameAllocator(128 * MIB)
    if ideal:
        table = IdealPageTable()
    else:
        table = RadixPageTable(allocator)
    os_model = OSMemoryManager(allocator, table)
    hierarchy = build_ndp_hierarchy(1, HBM2)
    walker = PageTableWalker(table, hierarchy, core_id=0,
                             bypass=NoBypass())
    return Mmu(0, build_table1_tlbs(), walker, os_model, ideal=ideal)


class TestTranslationFlow:
    def test_first_access_faults_and_walks(self):
        mmu = make_mmu()
        outcome = mmu.translate(0.0, 0x1234_5678)
        assert not outcome.tlb_hit
        assert outcome.walked
        assert outcome.fault_cycles > 0
        assert outcome.latency > 13  # TLB miss + walk

    def test_second_access_tlb_hit(self):
        mmu = make_mmu()
        mmu.translate(0.0, 0x1234_5678)
        outcome = mmu.translate(1000.0, 0x1234_5678)
        assert outcome.tlb_hit
        assert outcome.latency == 1
        assert outcome.fault_cycles == 0

    def test_paddr_preserves_offset(self):
        mmu = make_mmu()
        outcome = mmu.translate(0.0, 0x1234_5678)
        assert outcome.paddr % 4096 == 0x678

    def test_same_page_same_frame(self):
        mmu = make_mmu()
        a = mmu.translate(0.0, 0x1234_5000)
        b = mmu.translate(100.0, 0x1234_5FFF)
        assert a.paddr // 4096 == b.paddr // 4096

    def test_different_pages_different_frames(self):
        mmu = make_mmu()
        a = mmu.translate(0.0, 0x1000)
        b = mmu.translate(100.0, 0x2000)
        assert a.paddr // 4096 != b.paddr // 4096

    def test_stats_accumulate(self):
        mmu = make_mmu()
        mmu.translate(0.0, 0x1000)
        mmu.translate(100.0, 0x1000)
        mmu.translate(200.0, 0x2000)
        assert mmu.stats.translations == 3
        assert mmu.stats.tlb_hits == 1
        assert mmu.stats.walks == 2
        assert mmu.stats.tlb_miss_rate == pytest.approx(2 / 3)

    def test_walk_latency_distribution(self):
        mmu = make_mmu()
        mmu.translate(0.0, 0x1000)
        assert mmu.stats.walk_latency.count == 1
        assert mmu.stats.walk_latency.mean > 0


class TestIdealMmu:
    def test_zero_translation_latency(self):
        mmu = make_mmu(ideal=True)
        outcome = mmu.translate(0.0, 0x9999_0000)
        assert outcome.latency == 0.0
        assert outcome.tlb_hit
        assert not outcome.walked

    def test_faults_still_charged(self):
        """Demand paging exists in every mechanism, including Ideal, so
        end-to-end comparisons stay apples-to-apples."""
        mmu = make_mmu(ideal=True)
        outcome = mmu.translate(0.0, 0x9999_0000)
        assert outcome.fault_cycles > 0
        assert mmu.translate(1.0, 0x9999_0000).fault_cycles == 0

    def test_paddr_still_valid(self):
        mmu = make_mmu(ideal=True)
        outcome = mmu.translate(0.0, 0x9999_0123)
        assert outcome.paddr % 4096 == 0x123
