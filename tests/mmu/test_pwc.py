"""Tests for page-walk caches."""

import pytest

from repro.mmu.pwc import PageWalkCache, PwcSet


class TestPageWalkCache:
    def test_cold_miss(self):
        pwc = PageWalkCache("PL4")
        assert not pwc.lookup(("PL4", 0))
        assert pwc.stats.misses == 1

    def test_insert_then_hit(self):
        pwc = PageWalkCache("PL4")
        pwc.insert(("PL4", 0))
        assert pwc.lookup(("PL4", 0))

    def test_capacity_bounded(self):
        pwc = PageWalkCache("PL2", entries=8, associativity=2)
        for i in range(100):
            pwc.insert(("PL2", i))
        resident = sum(len(s) for s in pwc._sets)
        assert resident <= 8

    def test_lru_refresh(self):
        pwc = PageWalkCache("PL2", entries=2, associativity=2)
        pwc.insert(("PL2", 0))
        pwc.insert(("PL2", 1))
        pwc.lookup(("PL2", 0))
        pwc.insert(("PL2", 2))
        # Key 1 was LRU and evicted; key 0 survived.
        assert pwc.lookup(("PL2", 0))

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            PageWalkCache("x", entries=5, associativity=2)

    def test_flush(self):
        pwc = PageWalkCache("PL4")
        pwc.insert(("PL4", 0))
        pwc.flush()
        assert not pwc.lookup(("PL4", 0))


class TestPwcSet:
    def test_levels_present(self):
        pwcs = PwcSet(("PL4", "PL3", "PL2/1"))
        assert "PL4" in pwcs
        assert "PL1" not in pwcs
        assert pwcs.cache_for("PL1") is None

    def test_hit_rates_per_level(self):
        pwcs = PwcSet(("PL4", "PL3"))
        pwcs.cache_for("PL4").insert(("PL4", 0))
        pwcs.cache_for("PL4").lookup(("PL4", 0))
        pwcs.cache_for("PL3").lookup(("PL3", 0))
        rates = pwcs.hit_rates()
        assert rates["PL4"] == 1.0
        assert rates["PL3"] == 0.0

    def test_merged_hit_rate(self):
        pwcs = PwcSet(("PL2", "PL1"))
        pwcs.cache_for("PL2").insert(("PL2", 0))
        pwcs.cache_for("PL2").lookup(("PL2", 0))   # hit
        pwcs.cache_for("PL1").lookup(("PL1", 0))   # miss
        assert pwcs.merged_hit_rate(("PL2", "PL1")) == 0.5

    def test_caches_accessor_is_copy(self):
        pwcs = PwcSet(("PL4",))
        caches = pwcs.caches()
        caches.clear()
        assert "PL4" in pwcs

    def test_flush_all(self):
        pwcs = PwcSet(("PL4", "PL3"))
        pwcs.cache_for("PL4").insert(("PL4", 1))
        pwcs.flush()
        assert not pwcs.cache_for("PL4").lookup(("PL4", 1))
