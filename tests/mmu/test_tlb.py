"""Tests for TLBs and the Table I TLB hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mmu.tlb import Tlb, TlbHierarchy, build_table1_tlbs
from repro.vm.address import HUGE_PAGE_SHIFT, PAGE_SHIFT, asid_tag
from repro.vm.base import Translation

SMALL = Translation(100, PAGE_SHIFT)
HUGE = Translation(3, HUGE_PAGE_SHIFT)


@pytest.fixture
def tlb():
    return Tlb("t", entries=16, associativity=4, latency=1)


class TestSingleTlb:
    def test_cold_miss(self, tlb):
        assert tlb.lookup(5) is None
        assert tlb.stats.misses == 1

    def test_insert_then_hit(self, tlb):
        tlb.insert(5, SMALL)
        assert tlb.lookup(5) == SMALL
        assert tlb.stats.hits == 1

    def test_lru_within_set(self, tlb):
        for i in range(5):  # keys i*4 share set 0 (4 sets)
            tlb.insert(i * 4, SMALL)
        assert tlb.lookup(0) is None
        assert tlb.lookup(16) is not None

    def test_hit_refreshes_lru(self, tlb):
        for i in range(4):
            tlb.insert(i * 4, SMALL)
        tlb.lookup(0)
        tlb.insert(16, SMALL)  # evicts key 4, not key 0
        assert tlb.lookup(0) is not None
        assert tlb.lookup(4) is None

    def test_reinsert_updates(self, tlb):
        tlb.insert(5, SMALL)
        newer = Translation(200, PAGE_SHIFT)
        tlb.insert(5, newer)
        assert tlb.lookup(5) == newer

    def test_invalidate(self, tlb):
        tlb.insert(5, SMALL)
        assert tlb.invalidate(5)
        assert tlb.lookup(5) is None

    def test_flush(self, tlb):
        for i in range(8):
            tlb.insert(i, SMALL)
        tlb.flush()
        assert tlb.occupancy == 0

    def test_entries_divisible_by_assoc(self):
        with pytest.raises(ValueError):
            Tlb("bad", entries=10, associativity=4, latency=1)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded(self, keys):
        tlb = Tlb("prop", entries=64, associativity=4, latency=1)
        for key in keys:
            tlb.insert(key, SMALL)
        assert tlb.occupancy <= 64


class TestHierarchy:
    @pytest.fixture
    def tlbs(self):
        return build_table1_tlbs()

    def test_table1_sizes(self, tlbs):
        assert tlbs.l1_small.entries == 64
        assert tlbs.l2.entries == 1536
        assert tlbs.l2.latency == 12

    def test_wrong_granularity_rejected(self):
        small = Tlb("s", 64, 4, 1, page_shift=PAGE_SHIFT)
        huge = Tlb("h", 32, 4, 1, page_shift=HUGE_PAGE_SHIFT)
        l2 = Tlb("l2", 1536, 12, 12, page_shift=PAGE_SHIFT)
        with pytest.raises(ValueError):
            TlbHierarchy(l1_small=huge, l1_huge=huge, l2=l2)
        with pytest.raises(ValueError):
            TlbHierarchy(l1_small=small, l1_huge=small, l2=l2)

    def test_full_miss_costs_both_levels(self, tlbs):
        translation, latency = tlbs.lookup(42)
        assert translation is None
        assert latency == 1 + 12
        assert tlbs.full_misses == 1

    def test_l1_hit_costs_one_cycle(self, tlbs):
        tlbs.insert(42, SMALL)
        translation, latency = tlbs.lookup(42)
        assert translation == SMALL
        assert latency == 1

    def test_l2_hit_refills_l1(self, tlbs):
        tlbs.insert(42, SMALL)
        # Evict from L1 by filling its set (16 sets, 4 ways).
        for i in range(1, 6):
            tlbs.insert(42 + i * 16, SMALL)
        translation, latency = tlbs.lookup(42)
        assert translation == SMALL
        assert latency == 13  # found in L2
        translation, latency = tlbs.lookup(42)
        assert latency == 1   # refilled into L1

    def test_huge_translation_uses_huge_tlb(self, tlbs):
        page = 512 * 9 + 17
        tlbs.insert(page, HUGE)
        found, latency = tlbs.lookup(512 * 9 + 400)  # same 2 MB region
        assert found == HUGE
        assert latency == 1

    def test_huge_not_in_l2(self, tlbs):
        """Documented microarchitectural choice: the L2 TLB holds 4 KB
        translations only, so a 2 MB entry evicted from the small huge
        TLB must be re-walked."""
        tlbs.insert(0, HUGE)
        for region in range(1, 40):  # blow the 32-entry huge TLB
            tlbs.insert(region * 512, HUGE)
        found, _ = tlbs.lookup(0)
        assert found is None

    def test_miss_rate(self, tlbs):
        tlbs.insert(1, SMALL)
        tlbs.lookup(1)
        tlbs.lookup(2)
        assert tlbs.miss_rate == 0.5

    def test_flush(self, tlbs):
        tlbs.insert(1, SMALL)
        tlbs.flush()
        found, _ = tlbs.lookup(1)
        assert found is None


class TestReinsertRecency:
    """Tlb.insert on a resident key must refresh LRU recency, exactly
    like a lookup hit does."""

    def test_reinsert_moves_key_to_youngest(self):
        tlb = Tlb("t", entries=2, associativity=2, latency=1)
        tlb.insert(0, Translation(1, 12))
        tlb.insert(16, Translation(2, 12))   # same set (num_sets=1)
        tlb.insert(0, Translation(3, 12))    # reinsert: now youngest
        tlb.insert(32, Translation(4, 12))   # evicts LRU -> key 16
        assert tlb.lookup(0) is not None
        assert tlb.lookup(16) is None

    def test_reinsert_updates_value(self):
        tlb = Tlb("t", entries=4, associativity=4, latency=1)
        tlb.insert(5, Translation(1, 12))
        tlb.insert(5, Translation(9, 12))
        assert tlb.lookup(5).pfn == 9


class TestAsidTagging:
    """Multi-process keys: tagged coexistence, targeted shootdowns."""

    def test_same_vpn_different_asids_coexist(self):
        tlbs = build_table1_tlbs()
        page = 0x4_2000
        for asid, pfn in ((0, 10), (1, 11), (2, 12)):
            tlbs.insert(page | asid_tag(asid), Translation(pfn, 12))
        for asid, pfn in ((0, 10), (1, 11), (2, 12)):
            hit, _ = tlbs.lookup(page | asid_tag(asid))
            assert hit is not None and hit.pfn == pfn

    def test_asid_zero_tag_is_identity(self):
        assert asid_tag(0) == 0

    def test_tag_never_moves_the_set(self):
        """Set index comes from VPN bits only (power-of-two sets)."""
        tlb = Tlb("t", entries=64, associativity=4, latency=1)
        page = 0x1234
        assert (page | asid_tag(3)) % tlb.num_sets \
            == page % tlb.num_sets

    def test_invalidate_page_hits_only_the_tagged_asid(self):
        tlbs = build_table1_tlbs()
        page = 0x77
        tlbs.insert(page | asid_tag(1), Translation(1, 12))
        tlbs.insert(page | asid_tag(2), Translation(2, 12))
        assert tlbs.invalidate_page(page | asid_tag(1))
        assert tlbs.lookup(page | asid_tag(1))[0] is None
        assert tlbs.lookup(page | asid_tag(2))[0] is not None

    def test_invalidate_page_clears_l1_and_l2(self):
        tlbs = build_table1_tlbs()
        key = 0x55 | asid_tag(1)
        tlbs.l1_small.insert(key, Translation(5, 12))
        tlbs.l2.insert(key, Translation(5, 12))
        assert tlbs.invalidate_page(key)
        assert tlbs.l1_small.occupancy == 0
        assert tlbs.l2.occupancy == 0

    def test_invalidate_huge_mapping(self):
        tlbs = build_table1_tlbs()
        base_page = 512  # 2 MB-aligned VPN
        key = base_page | asid_tag(1)
        tlbs.insert(key, Translation(3, HUGE_PAGE_SHIFT))
        assert tlbs.invalidate_page(key, huge=True)
        assert tlbs.l1_huge.occupancy == 0

    def test_invalidate_missing_returns_false(self):
        tlbs = build_table1_tlbs()
        assert not tlbs.invalidate_page(0x99 | asid_tag(4))

    def test_flush_counts(self):
        tlbs = build_table1_tlbs()
        tlbs.flush()
        assert tlbs.l1_small.flushes == 1
        assert tlbs.l2.flushes == 1

    def test_negative_asid_rejected(self):
        with pytest.raises(ValueError):
            asid_tag(-1)
