"""Tests for the page-table walker: PWC skipping, bypass, parallelism."""

import pytest

from repro.core.bypass import MetadataBypass, NoBypass
from repro.mem.dram import HBM2
from repro.mem.hierarchy import build_ndp_hierarchy
from repro.mem.request import RequestKind
from repro.mmu.pwc import PwcSet
from repro.mmu.walker import PageTableWalker
from repro.vm.cuckoo import ElasticCuckooPageTable
from repro.vm.frames import FrameAllocator
from repro.vm.ideal import IdealPageTable
from repro.vm.radix import RadixPageTable

MIB = 1024 ** 2


@pytest.fixture
def hierarchy():
    return build_ndp_hierarchy(1, HBM2)


@pytest.fixture
def radix_setup(hierarchy):
    allocator = FrameAllocator(64 * MIB)
    table = RadixPageTable(allocator)
    table.map_page(0x12345, pfn=5)
    return table, hierarchy


class TestSequentialWalk:
    def test_four_memory_accesses_without_pwc(self, radix_setup):
        table, hierarchy = radix_setup
        walker = PageTableWalker(table, hierarchy, core_id=0)
        outcome = walker.walk(0.0, 0x12345)
        assert outcome.memory_accesses == 4
        assert outcome.pwc_hit_level is None

    def test_walk_latency_accumulates_sequentially(self, radix_setup):
        table, hierarchy = radix_setup
        walker = PageTableWalker(table, hierarchy, core_id=0)
        outcome = walker.walk(0.0, 0x12345)
        # Four sequential accesses, each at least an L1 lookup.
        assert outcome.latency >= 4 * hierarchy.l1ds[0].hit_latency

    def test_stats_recorded(self, radix_setup):
        table, hierarchy = radix_setup
        walker = PageTableWalker(table, hierarchy, core_id=0)
        walker.walk(0.0, 0x12345)
        walker.walk(1000.0, 0x12345)
        assert walker.stats.walks == 2
        assert walker.stats.latency.count == 2

    def test_metadata_kind_used(self, radix_setup):
        table, hierarchy = radix_setup
        walker = PageTableWalker(table, hierarchy, core_id=0)
        walker.walk(0.0, 0x12345)
        assert hierarchy.l1ds[0].stats.metadata.accesses == 4
        assert hierarchy.l1ds[0].stats.data.accesses == 0


class TestPwcSkipping:
    def test_second_walk_skips_cached_levels(self, radix_setup):
        table, hierarchy = radix_setup
        pwcs = PwcSet(("PL4", "PL3", "PL2", "PL1"))
        walker = PageTableWalker(table, hierarchy, core_id=0, pwcs=pwcs)
        first = walker.walk(0.0, 0x12345)
        second = walker.walk(10_000.0, 0x12345)
        assert first.memory_accesses == 4
        assert second.memory_accesses == 0  # PL1 PWC hit: full skip
        assert second.pwc_hit_level == "PL1"

    def test_partial_skip_resumes_below_hit(self, radix_setup):
        table, hierarchy = radix_setup
        table.map_page(0x12345 + 1, pfn=6)  # same PL2 prefix
        pwcs = PwcSet(("PL4", "PL3", "PL2", "PL1"))
        walker = PageTableWalker(table, hierarchy, core_id=0, pwcs=pwcs)
        walker.walk(0.0, 0x12345)
        outcome = walker.walk(10_000.0, 0x12345 + 1)
        assert outcome.pwc_hit_level == "PL2"
        assert outcome.memory_accesses == 1  # only PL1 fetched

    def test_pwc_levels_restricted(self, radix_setup):
        table, hierarchy = radix_setup
        pwcs = PwcSet(("PL4", "PL3"))  # no PL2/PL1 caches
        walker = PageTableWalker(table, hierarchy, core_id=0, pwcs=pwcs)
        walker.walk(0.0, 0x12345)
        outcome = walker.walk(10_000.0, 0x12345)
        assert outcome.memory_accesses == 2  # PL2 and PL1 every time

    def test_pwc_hit_rates_observable(self, radix_setup):
        table, hierarchy = radix_setup
        pwcs = PwcSet(("PL4", "PL3", "PL2", "PL1"))
        walker = PageTableWalker(table, hierarchy, core_id=0, pwcs=pwcs)
        walker.walk(0.0, 0x12345)
        walker.walk(10_000.0, 0x12345)
        assert pwcs.hit_rates()["PL1"] == 0.5


class TestBypass:
    def test_bypass_keeps_ptes_out_of_l1(self, radix_setup):
        table, hierarchy = radix_setup
        walker = PageTableWalker(table, hierarchy, core_id=0,
                                 bypass=MetadataBypass())
        walker.walk(0.0, 0x12345)
        assert hierarchy.l1ds[0].stats.metadata.accesses == 0
        assert hierarchy.stats.l1_bypasses == 4

    def test_no_bypass_fills_l1(self, radix_setup):
        table, hierarchy = radix_setup
        walker = PageTableWalker(table, hierarchy, core_id=0,
                                 bypass=NoBypass())
        walker.walk(0.0, 0x12345)
        counts = hierarchy.l1ds[0].resident_kind_counts()
        assert counts[RequestKind.METADATA] == 4

    def test_selective_bypass(self, radix_setup):
        table, hierarchy = radix_setup
        walker = PageTableWalker(
            table, hierarchy, core_id=0,
            bypass=MetadataBypass(levels=("PL1",)))
        walker.walk(0.0, 0x12345)
        assert hierarchy.stats.l1_bypasses == 1


class TestParallelStages:
    def test_ech_walk_is_single_parallel_stage(self, hierarchy):
        allocator = FrameAllocator(256 * MIB)
        table = ElasticCuckooPageTable(allocator, initial_entries=1 << 10)
        table.map_page(7, pfn=1)
        walker = PageTableWalker(table, hierarchy, core_id=0)
        outcome = walker.walk(0.0, 7)
        assert outcome.memory_accesses == 2

    def test_parallel_latency_is_max_not_sum(self, hierarchy):
        allocator = FrameAllocator(256 * MIB)
        table = ElasticCuckooPageTable(allocator, initial_entries=1 << 10)
        table.map_page(7, pfn=1)
        walker = PageTableWalker(table, hierarchy, core_id=0)
        parallel = walker.walk(0.0, 7).latency

        radix = RadixPageTable(FrameAllocator(64 * MIB))
        radix.map_page(7, pfn=1)
        seq_hierarchy = build_ndp_hierarchy(1, HBM2)
        seq = PageTableWalker(radix, seq_hierarchy, core_id=0) \
            .walk(0.0, 7).latency
        # 2 parallel probes must be well under 4 sequential accesses.
        assert parallel < seq

    def test_ideal_walk_free(self, hierarchy):
        table = IdealPageTable()
        table.map_page(3, pfn=1)
        walker = PageTableWalker(table, hierarchy, core_id=0)
        outcome = walker.walk(0.0, 3)
        assert outcome.latency == 0.0
        assert outcome.memory_accesses == 0
