"""Tests for the elastic cuckoo hash page table (ECH baseline)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm.address import PAGE_SHIFT
from repro.vm.base import MappingError, Translation
from repro.vm.cuckoo import ECH_ENTRY_BYTES, ElasticCuckooPageTable
from repro.vm.frames import FrameAllocator

MIB = 1024 ** 2
VPNS = st.integers(min_value=0, max_value=(1 << 36) - 1)


@pytest.fixture
def table(big_allocator):
    return ElasticCuckooPageTable(big_allocator, initial_entries=1 << 10)


class TestFunctional:
    def test_unmapped_lookup_none(self, table):
        assert table.lookup(1) is None

    def test_map_then_lookup(self, table):
        table.map_page(0x777, pfn=3)
        assert table.lookup(0x777) == Translation(3, PAGE_SHIFT)

    def test_double_map_rejected(self, table):
        table.map_page(1, pfn=1)
        with pytest.raises(MappingError):
            table.map_page(1, pfn=2)

    def test_unmap(self, table):
        table.map_page(1, pfn=1)
        table.unmap_page(1)
        assert table.lookup(1) is None

    def test_unmap_missing_rejected(self, table):
        with pytest.raises(MappingError):
            table.unmap_page(1)

    def test_huge_pages_rejected(self, table):
        with pytest.raises(MappingError):
            table.map_page(0, pfn=512, page_shift=21)

    def test_needs_two_ways(self, big_allocator):
        with pytest.raises(ValueError):
            ElasticCuckooPageTable(big_allocator, ways=1)

    @given(st.lists(VPNS, min_size=1, max_size=200, unique=True))
    @settings(max_examples=20, deadline=None)
    def test_mass_insert_lookup(self, pages):
        table = ElasticCuckooPageTable(
            FrameAllocator(1024 * MIB), initial_entries=1 << 8)
        for i, page in enumerate(pages):
            table.map_page(page, pfn=i)
        for i, page in enumerate(pages):
            assert table.lookup(page) == Translation(i, PAGE_SHIFT)
        assert table.mapped_pages == len(pages)


class TestElasticity:
    def test_resize_triggered_by_load(self, big_allocator):
        table = ElasticCuckooPageTable(
            big_allocator, initial_entries=64, resize_threshold=0.5)
        for i in range(200):
            table.map_page(i * 97, pfn=i)
        assert table.stats.resizes >= 1
        for i in range(200):
            assert table.lookup(i * 97) == Translation(i, PAGE_SHIFT)

    def test_load_factor_bounded_after_resizes(self, big_allocator):
        table = ElasticCuckooPageTable(
            big_allocator, initial_entries=64, resize_threshold=0.6)
        for i in range(500):
            table.map_page(i, pfn=i)
        assert table.load_factor <= 0.6 + 0.01

    def test_rehash_counts_entries(self, big_allocator):
        table = ElasticCuckooPageTable(
            big_allocator, initial_entries=32, resize_threshold=0.5)
        for i in range(100):
            table.map_page(i, pfn=i)
        assert table.stats.rehashed_entries > 0

    def test_kicks_occur_under_pressure(self, big_allocator):
        table = ElasticCuckooPageTable(
            big_allocator, initial_entries=64, resize_threshold=0.95)
        for i in range(110):
            table.map_page(i * 31, pfn=i)
        # With 2 ways nearly full, displacement chains must have run.
        assert table.stats.kicks > 0

    def test_table_bytes_grow_on_resize(self, big_allocator):
        table = ElasticCuckooPageTable(
            big_allocator, initial_entries=64, resize_threshold=0.5)
        before = table.table_bytes()
        for i in range(200):
            table.map_page(i, pfn=i)
        assert table.table_bytes() > before


class TestWalkStructure:
    def test_single_parallel_stage(self, table):
        table.map_page(50, pfn=1)
        stages = table.walk_stages(50)
        assert len(stages) == 1          # one stage...
        assert len(stages[0]) == 2       # ...of d parallel probes

    def test_probes_have_no_pwc_keys(self, table):
        table.map_page(50, pfn=1)
        assert all(step.pwc_key is None for step in table.walk_stages(50)[0])

    def test_probe_addresses_follow_hashes(self, table):
        table.map_page(50, pfn=1)
        probes = table.walk_stages(50)[0]
        assert len({p.pte_paddr for p in probes}) == 2
        for probe in probes:
            assert probe.pte_paddr % ECH_ENTRY_BYTES == 0

    def test_walk_unmapped_rejected(self, table):
        with pytest.raises(MappingError):
            table.walk_stages(1)

    def test_occupancy_per_way(self, table):
        for i in range(100):
            table.map_page(i, pfn=i)
        occ = table.occupancy()
        assert set(occ) == {"ECH-way0", "ECH-way1"}
        total = sum(occ.values())
        assert total == pytest.approx(100 / (1 << 10), rel=0.01)


class TestDeterminism:
    def test_same_seed_same_structure(self):
        t1 = ElasticCuckooPageTable(FrameAllocator(256 * MIB), seed=7)
        t2 = ElasticCuckooPageTable(FrameAllocator(256 * MIB), seed=7)
        for i in range(300):
            t1.map_page(i, pfn=i)
            t2.map_page(i, pfn=i)
        for i in range(300):
            assert [s.pte_paddr for s in t1.walk_stages(i)[0]] \
                == [s.pte_paddr for s in t2.walk_stages(i)[0]]
