"""Unit and property tests for x86-64 address manipulation."""

import pytest
from hypothesis import given, strategies as st

from repro.vm import address as addr

VPNS = st.integers(min_value=0, max_value=(1 << 36) - 1)
VADDRS = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestConstants:
    def test_page_size(self):
        assert addr.PAGE_SIZE == 4096

    def test_huge_page_size(self):
        assert addr.HUGE_PAGE_SIZE == 2 * 1024 * 1024

    def test_entries_per_node(self):
        assert addr.ENTRIES_PER_NODE == 512

    def test_flat_entries_match_paper(self):
        # Section V-B: 2^9 x 2^9 = 262,144 entries per flattened node.
        assert addr.FLAT_ENTRIES == 262_144

    def test_flat_node_is_2mb(self):
        assert addr.FLAT_NODE_BYTES == 2 * 1024 * 1024

    def test_pte_size(self):
        assert addr.PTE_SIZE == 8

    def test_line_size(self):
        assert addr.LINE_SIZE == 64

    def test_pte_region_divisible_by_line(self):
        # Section V-A: 4 KB PTE regions are 64 B-aligned, so marking
        # them never splits a cache line with normal data.
        assert addr.PAGE_SIZE % addr.LINE_SIZE == 0


class TestVpn:
    def test_zero(self):
        assert addr.vpn(0) == 0

    def test_within_first_page(self):
        assert addr.vpn(4095) == 0

    def test_second_page(self):
        assert addr.vpn(4096) == 1

    def test_page_offset(self):
        assert addr.page_offset(0x1234) == 0x234

    def test_huge_vpn(self):
        assert addr.huge_vpn(2 * 1024 * 1024) == 1
        assert addr.huge_vpn(2 * 1024 * 1024 - 1) == 0

    def test_vpn_to_vaddr_roundtrip(self):
        assert addr.vpn(addr.vpn_to_vaddr(12345)) == 12345

    @given(VADDRS)
    def test_vpn_offset_recompose(self, vaddr):
        page = addr.vpn(vaddr)
        assert addr.vpn_to_vaddr(page) + addr.page_offset(vaddr) == vaddr


class TestLevelIndex:
    def test_level1_is_low_bits(self):
        assert addr.level_index(0b111_000000001, 1) == 1

    def test_level_extraction_known_value(self):
        page = addr.make_vpn(3, 7, 500, 511)
        assert addr.level_index(page, 4) == 3
        assert addr.level_index(page, 3) == 7
        assert addr.level_index(page, 2) == 500
        assert addr.level_index(page, 1) == 511

    @pytest.mark.parametrize("level", [0, 5, -1])
    def test_invalid_level_rejected(self, level):
        with pytest.raises(ValueError):
            addr.level_index(0, level)

    @given(VPNS)
    def test_make_vpn_roundtrip(self, page):
        indices = [addr.level_index(page, lv) for lv in (4, 3, 2, 1)]
        assert addr.make_vpn(*indices) == page

    def test_make_vpn_range_check(self):
        with pytest.raises(ValueError):
            addr.make_vpn(512, 0, 0, 0)


class TestFlatIndex:
    def test_flat_index_is_18_bits(self):
        assert addr.flat_index((1 << 18) - 1) == (1 << 18) - 1
        assert addr.flat_index(1 << 18) == 0

    @given(VPNS)
    def test_flat_index_merges_pl2_pl1(self, page):
        # Fig. 9: the flattened index is exactly PL2 || PL1.
        expected = (addr.level_index(page, 2) << 9) \
            | addr.level_index(page, 1)
        assert addr.flat_index(page) == expected

    @given(VPNS)
    def test_flat_tag_plus_index_recompose(self, page):
        recomposed = (addr.flat_tag(page) << addr.FLAT_LEVEL_BITS) \
            | addr.flat_index(page)
        assert recomposed == page


class TestAlignment:
    def test_align_down(self):
        assert addr.align_down(4097, 4096) == 4096

    def test_align_up(self):
        assert addr.align_up(4097, 4096) == 8192

    def test_align_up_exact(self):
        assert addr.align_up(8192, 4096) == 8192

    @given(st.integers(min_value=0, max_value=1 << 50),
           st.sampled_from([64, 4096, 2 * 1024 * 1024]))
    def test_align_invariants(self, value, alignment):
        down = addr.align_down(value, alignment)
        up = addr.align_up(value, alignment)
        assert down <= value <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)


class TestRanges:
    def test_pages_in_range_single(self):
        assert list(addr.pages_in_range(0, 1)) == [0]

    def test_pages_in_range_spanning(self):
        assert list(addr.pages_in_range(4000, 200)) == [0, 1]

    def test_pages_in_range_empty(self):
        assert list(addr.pages_in_range(0, 0)) == []

    def test_line_of(self):
        assert addr.line_of(63) == 0
        assert addr.line_of(64) == 1

    def test_is_canonical(self):
        assert addr.is_canonical(0)
        assert addr.is_canonical((1 << 48) - 1)
        assert not addr.is_canonical(1 << 48)
        assert not addr.is_canonical(-1)
