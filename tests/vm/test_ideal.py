"""Tests for the Ideal translation oracle."""

import pytest

from repro.vm.address import PAGE_SHIFT
from repro.vm.base import MappingError, Translation
from repro.vm.ideal import IdealPageTable


@pytest.fixture
def table():
    return IdealPageTable()


class TestIdeal:
    def test_accepts_and_ignores_allocator(self, allocator):
        before = allocator.free_frames
        IdealPageTable(allocator)
        assert allocator.free_frames == before

    def test_map_lookup(self, table):
        table.map_page(9, pfn=4)
        assert table.lookup(9) == Translation(4, PAGE_SHIFT)

    def test_unmapped_none(self, table):
        assert table.lookup(9) is None

    def test_double_map_rejected(self, table):
        table.map_page(9, pfn=4)
        with pytest.raises(MappingError):
            table.map_page(9, pfn=5)

    def test_unmap(self, table):
        table.map_page(9, pfn=4)
        table.unmap_page(9)
        assert table.lookup(9) is None

    def test_unmap_missing_rejected(self, table):
        with pytest.raises(MappingError):
            table.unmap_page(9)

    def test_huge_rejected(self, table):
        with pytest.raises(MappingError):
            table.map_page(0, pfn=0, page_shift=21)

    def test_walk_is_empty(self, table):
        table.map_page(9, pfn=4)
        assert table.walk_stages(9) == []

    def test_walk_unmapped_rejected(self, table):
        with pytest.raises(MappingError):
            table.walk_stages(9)

    def test_no_physical_footprint(self, table):
        table.map_page(9, pfn=4)
        assert table.table_bytes() == 0
        assert table.occupancy() == {}

    def test_mapped_pages(self, table):
        table.map_page(1, pfn=1)
        table.map_page(2, pfn=2)
        assert table.mapped_pages == 2
