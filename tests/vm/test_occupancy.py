"""Tests for occupancy analysis — including the analytic/live equivalence
that justifies computing Fig. 8 at full dataset scale without building
multi-million-entry tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm.address import FLAT_ENTRIES
from repro.vm.frames import FrameAllocator
from repro.vm.occupancy import (
    flattened_occupancy_from_ranges,
    level_occupancy_from_ranges,
    normalize_ranges,
    occupancy_report,
)
from repro.vm.radix import RadixPageTable

MIB = 1024 ** 2

SMALL_RANGES = st.lists(
    st.tuples(st.integers(0, 1 << 22), st.integers(0, 2000)).map(
        lambda t: (t[0], t[0] + t[1])),
    min_size=1, max_size=6,
)


class TestNormalize:
    def test_merges_overlap(self):
        assert normalize_ranges([(0, 10), (5, 20)]) == [(0, 20)]

    def test_merges_adjacent(self):
        assert normalize_ranges([(0, 10), (11, 20)]) == [(0, 20)]

    def test_keeps_disjoint(self):
        assert normalize_ranges([(0, 1), (10, 11)]) == [(0, 1), (10, 11)]

    def test_sorts(self):
        assert normalize_ranges([(10, 11), (0, 1)]) == [(0, 1), (10, 11)]

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            normalize_ranges([(5, 1)])

    def test_empty(self):
        assert normalize_ranges([]) == []


class TestAnalyticOccupancy:
    def test_single_full_pl1_node(self):
        assert level_occupancy_from_ranges([(0, 511)], 1) == 1.0

    def test_half_full_pl1_node(self):
        assert level_occupancy_from_ranges([(0, 255)], 1) == 0.5

    def test_dense_range_fills_pl1_nearly(self):
        # 1 GB of dense 4 KB pages: PL1 fully used in every inner node.
        occ = level_occupancy_from_ranges([(0, 512 * 512 - 1)], 1)
        assert occ == 1.0

    def test_sparse_pages_leave_pl1_empty(self):
        # One page per 2 MB region: PL1 nodes 1/512 used.
        ranges = [(i * 512, i * 512) for i in range(64)]
        assert level_occupancy_from_ranges(ranges, 1) \
            == pytest.approx(1 / 512)

    def test_pl4_nearly_empty_for_single_dataset(self):
        # The paper's observation: PL4/PL3 occupancy is tiny.
        ranges = [(0, (8 << 30) // 4096 - 1)]  # dense 8 GB
        assert level_occupancy_from_ranges(ranges, 4) < 0.01
        assert level_occupancy_from_ranges(ranges, 3) < 0.05
        assert level_occupancy_from_ranges(ranges, 2) > 0.95
        assert level_occupancy_from_ranges(ranges, 1) == 1.0

    def test_flattened_occupancy_dense_gig(self):
        assert flattened_occupancy_from_ranges([(0, FLAT_ENTRIES - 1)]) \
            == 1.0

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            level_occupancy_from_ranges([(0, 1)], 5)

    def test_empty_ranges(self):
        assert level_occupancy_from_ranges([], 1) == 0.0
        assert flattened_occupancy_from_ranges([]) == 0.0

    def test_report_contains_all_levels(self):
        report = occupancy_report([(0, 100_000)])
        assert set(report) == {"PL1", "PL2", "PL3", "PL4", "PL2/1"}


class TestAnalyticMatchesLiveTable:
    """The Fig. 8 benchmark relies on this equivalence."""

    @given(SMALL_RANGES)
    @settings(max_examples=20, deadline=None)
    def test_equivalence_on_radix(self, ranges):
        merged = normalize_ranges(ranges)
        total_pages = sum(hi - lo + 1 for lo, hi in merged)
        if total_pages > 20_000:
            return  # keep the live table small
        table = RadixPageTable(FrameAllocator(512 * MIB))
        pfn = 0
        for lo, hi in merged:
            for page in range(lo, hi + 1):
                table.map_page(page, pfn=pfn)
                pfn += 1
        live = table.occupancy()
        for level_num, level_name in ((1, "PL1"), (2, "PL2"),
                                      (3, "PL3"), (4, "PL4")):
            analytic = level_occupancy_from_ranges(merged, level_num)
            assert live[level_name] == pytest.approx(analytic), level_name

    def test_equivalence_on_flattened(self):
        from repro.core.flattened import FlattenedPageTable
        ranges = [(0, 999), (300_000, 300_499)]
        table = FlattenedPageTable(FrameAllocator(512 * MIB))
        pfn = 0
        for lo, hi in ranges:
            for page in range(lo, hi + 1):
                table.map_page(page, pfn=pfn)
                pfn += 1
        analytic = flattened_occupancy_from_ranges(ranges)
        assert table.occupancy()["PL2/1"] == pytest.approx(analytic)


class TestPaperShape:
    """Fig. 8's qualitative claim on every Table II workload layout."""

    @pytest.mark.parametrize("workload", ["bfs", "pr", "xs", "rnd",
                                          "dlrm", "gen"])
    def test_bottom_levels_full_top_levels_empty(self, workload):
        from repro.workloads.registry import make_workload
        ranges = make_workload(workload, scale=1.0).page_ranges()
        report = occupancy_report(ranges)
        assert report["PL1"] > 0.9, "paper: PL1 ~97.97%"
        assert report["PL2"] > 0.8, "paper: PL2 ~98.24%"
        assert report["PL4"] < 0.05, "paper: PL4 ~0.43%"
        assert report["PL3"] < 0.2, "paper: PL3 ~3.12%"
