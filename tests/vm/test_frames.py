"""Tests for the physical frame allocator and its contiguity model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm.frames import (
    FRAMES_PER_BLOCK,
    FrameAllocator,
    OutOfMemoryError,
)

MIB = 1024 ** 2


class TestBasicAllocation:
    def test_frames_are_distinct(self, allocator):
        frames = [allocator.alloc_frame() for _ in range(1000)]
        assert len(set(frames)) == 1000

    def test_frames_in_range(self, allocator):
        for _ in range(100):
            frame = allocator.alloc_frame()
            assert 0 <= frame < allocator.num_frames

    def test_small_allocs_counted(self, allocator):
        for _ in range(7):
            allocator.alloc_frame()
        assert allocator.stats.small_allocs == 7

    def test_frame_paddr(self, allocator):
        frame = allocator.alloc_frame()
        assert allocator.frame_paddr(frame) == frame * 4096

    def test_sites_use_separate_blocks(self, allocator):
        a = allocator.alloc_frame(site=0)
        b = allocator.alloc_frame(site=1)
        assert a // FRAMES_PER_BLOCK != b // FRAMES_PER_BLOCK

    def test_same_site_is_contiguous_within_block(self, allocator):
        first = allocator.alloc_frame(site=3)
        second = allocator.alloc_frame(site=3)
        assert second == first + 1

    def test_reserved_memory_not_allocated(self):
        alloc = FrameAllocator(16 * MIB, reserved_bytes=4 * MIB)
        frame = alloc.alloc_frame()
        assert frame >= (4 * MIB) // 4096

    def test_too_small_memory_rejected(self):
        with pytest.raises(ValueError):
            FrameAllocator(1024)

    def test_reservation_cannot_swallow_everything(self):
        with pytest.raises(ValueError):
            FrameAllocator(4 * MIB, reserved_bytes=4 * MIB)


class TestHugeAllocation:
    def test_huge_is_block_aligned(self, allocator):
        frame = allocator.alloc_huge()
        assert frame is not None
        assert frame % FRAMES_PER_BLOCK == 0

    def test_huge_blocks_distinct(self, allocator):
        a = allocator.alloc_huge()
        b = allocator.alloc_huge()
        assert a != b

    def test_huge_exhaustion_returns_none(self):
        alloc = FrameAllocator(8 * MIB, reserved_bytes=0)
        blocks = []
        while True:
            frame = alloc.alloc_huge()
            if frame is None:
                break
            blocks.append(frame)
        assert alloc.stats.huge_failures == 1
        assert len(blocks) == alloc.num_blocks

    def test_huge_and_small_never_overlap(self, allocator):
        small = {allocator.alloc_frame() for _ in range(600)}
        huge_first = allocator.alloc_huge()
        huge = set(range(huge_first, huge_first + FRAMES_PER_BLOCK))
        assert not small & huge

    def test_free_block_returns_contiguity(self, allocator):
        while allocator.alloc_huge() is not None:
            pass
        assert allocator.free_block_count == 0
        allocator.free_block(FRAMES_PER_BLOCK)  # give one back
        assert allocator.free_block_count == 1
        assert allocator.alloc_huge() is not None

    def test_free_block_alignment_enforced(self, allocator):
        with pytest.raises(ValueError):
            allocator.free_block(1)


class TestFreeAndReuse:
    def test_freed_frame_is_reused(self, allocator):
        frame = allocator.alloc_frame()
        allocator.free_frame(frame)
        assert allocator.alloc_frame() == frame

    def test_free_out_of_range_rejected(self, allocator):
        with pytest.raises(ValueError):
            allocator.free_frame(allocator.num_frames)

    def test_out_of_memory_raises(self):
        alloc = FrameAllocator(4 * MIB, reserved_bytes=0)
        for _ in range(alloc.num_frames):
            alloc.alloc_frame()
        with pytest.raises(OutOfMemoryError):
            alloc.alloc_frame()

    def test_exhaustion_steals_other_sites_partials(self):
        alloc = FrameAllocator(4 * MIB, reserved_bytes=0)
        alloc.alloc_frame(site=0)  # opens block 0, 511 frames left there
        # Site 1 consumes the remaining block.
        taken = 1
        while alloc.free_block_count:
            alloc.alloc_frame(site=1)
            taken += 1
        # Site 1 keeps allocating by stealing site 0's partial block.
        remaining = alloc.num_frames - taken
        for _ in range(remaining):
            alloc.alloc_frame(site=1)
        with pytest.raises(OutOfMemoryError):
            alloc.alloc_frame(site=1)


class TestAccounting:
    def test_free_frames_decrease_monotonically(self, allocator):
        before = allocator.free_frames
        allocator.alloc_frame()
        assert allocator.free_frames == before - 1

    def test_huge_alloc_consumes_whole_block(self, allocator):
        before = allocator.free_frames
        allocator.alloc_huge()
        assert allocator.free_frames == before - FRAMES_PER_BLOCK

    @given(st.lists(st.sampled_from(["small", "huge"]), max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_frame_conservation(self, ops):
        alloc = FrameAllocator(64 * MIB, reserved_bytes=0)
        total = alloc.free_frames
        used = 0
        for op in ops:
            if op == "small":
                alloc.alloc_frame()
                used += 1
            else:
                if alloc.alloc_huge() is not None:
                    used += FRAMES_PER_BLOCK
        assert alloc.free_frames == total - used


class TestBootFragmentation:
    def test_fragmentation_shrinks_contiguity_pool(self):
        whole = FrameAllocator(64 * MIB, fragmentation=0.0)
        half = FrameAllocator(64 * MIB, fragmentation=0.5)
        assert half.free_block_count < whole.free_block_count

    def test_fragmentation_rate_respected(self):
        alloc = FrameAllocator(64 * MIB, fragmentation=0.5)
        usable = alloc.num_blocks - 1  # minus default reservation
        assert abs(alloc.free_block_count - usable / 2) <= 2

    def test_fragmented_blocks_still_serve_small_allocs(self):
        alloc = FrameAllocator(8 * MIB, reserved_bytes=0,
                               fragmentation=0.9)
        # Far more frames available than whole blocks would suggest.
        frames = [alloc.alloc_frame() for _ in range(600)]
        assert len(set(frames)) == 600

    def test_small_allocs_prefer_fragmented_blocks(self):
        alloc = FrameAllocator(64 * MIB, reserved_bytes=0,
                               fragmentation=0.25)
        blocks_before = alloc.free_block_count
        alloc.alloc_frame()
        # The small allocation was carved out of a fragmented block,
        # preserving the whole-block pool (grouping by mobility).
        assert alloc.free_block_count == blocks_before

    def test_invalid_fragmentation_rejected(self):
        with pytest.raises(ValueError):
            FrameAllocator(64 * MIB, fragmentation=1.0)

    def test_fragmented_free_room_not_compactable(self):
        alloc = FrameAllocator(64 * MIB, reserved_bytes=0,
                               fragmentation=0.5)
        recovered = alloc.compact()
        assert recovered == 0  # boot noise is unmovable


class TestCompaction:
    def test_compaction_recovers_blocks_from_freed_frames(self):
        alloc = FrameAllocator(16 * MIB, reserved_bytes=0)
        frames = [alloc.alloc_frame() for _ in range(3 * FRAMES_PER_BLOCK)]
        while alloc.alloc_huge() is not None:
            pass
        for frame in frames:
            alloc.free_frame(frame)
        assert alloc.free_block_count == 0
        recovered = alloc.compact()
        assert recovered >= 1
        assert alloc.free_block_count == recovered
        assert alloc.alloc_huge() is not None

    def test_compaction_efficiency_limits_recovery(self):
        alloc = FrameAllocator(16 * MIB, reserved_bytes=0,
                               compaction_efficiency=0.0)
        frames = [alloc.alloc_frame() for _ in range(2 * FRAMES_PER_BLOCK)]
        for frame in frames:
            alloc.free_frame(frame)
        assert alloc.compact() == 0

    def test_compaction_counted(self, allocator):
        allocator.compact()
        assert allocator.stats.compactions == 1
