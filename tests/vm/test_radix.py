"""Tests for the 4-level radix page table (Radix / Huge Page baselines)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm.address import (
    ENTRIES_PER_NODE,
    HUGE_PAGE_SHIFT,
    PAGE_SHIFT,
    make_vpn,
)
from repro.vm.base import MappingError, Translation
from repro.vm.frames import FrameAllocator
from repro.vm.radix import RadixPageTable

MIB = 1024 ** 2
VPNS = st.integers(min_value=0, max_value=(1 << 36) - 1)


@pytest.fixture
def table(allocator):
    return RadixPageTable(allocator)


class TestMapping:
    def test_unmapped_lookup_is_none(self, table):
        assert table.lookup(123) is None

    def test_map_then_lookup(self, table):
        table.map_page(0x12345, pfn=77)
        assert table.lookup(0x12345) == Translation(77, PAGE_SHIFT)

    def test_double_map_rejected(self, table):
        table.map_page(5, pfn=1)
        with pytest.raises(MappingError):
            table.map_page(5, pfn=2)

    def test_unmap(self, table):
        table.map_page(5, pfn=1)
        table.unmap_page(5)
        assert table.lookup(5) is None

    def test_unmap_missing_rejected(self, table):
        with pytest.raises(MappingError):
            table.unmap_page(5)

    def test_mapped_pages_counter(self, table):
        table.map_page(1, pfn=1)
        table.map_page(2, pfn=2)
        assert table.mapped_pages == 2
        table.unmap_page(1)
        assert table.mapped_pages == 1

    def test_unsupported_page_shift(self, table):
        with pytest.raises(MappingError):
            table.map_page(0, pfn=0, page_shift=30)

    @given(st.lists(VPNS, min_size=1, max_size=60, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_many_mappings_roundtrip(self, pages):
        table = RadixPageTable(FrameAllocator(256 * MIB))
        for i, page in enumerate(pages):
            table.map_page(page, pfn=i)
        for i, page in enumerate(pages):
            assert table.lookup(page) == Translation(i, PAGE_SHIFT)


class TestHugeMapping:
    def test_huge_map_covers_whole_region(self, table):
        base = 512 * 7  # 512-page aligned
        table.map_page(base, pfn=1024, page_shift=HUGE_PAGE_SHIFT)
        for offset in (0, 1, 255, 511):
            translation = table.lookup(base + offset)
            assert translation is not None
            assert translation.page_shift == HUGE_PAGE_SHIFT

    def test_huge_map_requires_alignment(self, table):
        with pytest.raises(MappingError):
            table.map_page(513, pfn=1024, page_shift=HUGE_PAGE_SHIFT)

    def test_huge_map_requires_aligned_frame(self, table):
        with pytest.raises(MappingError):
            table.map_page(512, pfn=3, page_shift=HUGE_PAGE_SHIFT)

    def test_huge_paddr_includes_21bit_offset(self, table):
        table.map_page(0, pfn=512, page_shift=HUGE_PAGE_SHIFT)
        translation = table.lookup(100)
        vaddr = 100 * 4096 + 12
        assert translation.paddr(vaddr) == 512 * 4096 + 100 * 4096 + 12

    def test_small_map_inside_huge_rejected(self, table):
        table.map_page(0, pfn=512, page_shift=HUGE_PAGE_SHIFT)
        with pytest.raises(MappingError):
            table.map_page(3, pfn=9)

    def test_huge_unmap(self, table):
        table.map_page(0, pfn=512, page_shift=HUGE_PAGE_SHIFT)
        table.unmap_page(0)
        assert table.lookup(0) is None
        assert table.huge_mappings == 0

    def test_huge_counts_512_pages(self, table):
        table.map_page(0, pfn=512, page_shift=HUGE_PAGE_SHIFT)
        assert table.mapped_pages == ENTRIES_PER_NODE


class TestWalkStages:
    def test_small_walk_has_four_stages(self, table):
        table.map_page(0x12345, pfn=1)
        stages = table.walk_stages(0x12345)
        assert [s[0].level for s in stages] == ["PL4", "PL3", "PL2", "PL1"]

    def test_each_stage_single_access(self, table):
        table.map_page(0x12345, pfn=1)
        assert all(len(s) == 1 for s in table.walk_stages(0x12345))

    def test_huge_walk_has_three_stages(self, table):
        table.map_page(0, pfn=512, page_shift=HUGE_PAGE_SHIFT)
        stages = table.walk_stages(100)
        assert [s[0].level for s in stages] == ["PL4", "PL3", "PL2"]

    def test_walk_of_unmapped_page_rejected(self, table):
        with pytest.raises(MappingError):
            table.walk_stages(42)

    def test_pte_addresses_distinct_across_levels(self, table):
        table.map_page(0x12345, pfn=1)
        paddrs = [s[0].pte_paddr for s in table.walk_stages(0x12345)]
        assert len(set(paddrs)) == 4

    def test_pte_paddr_encodes_index(self, table):
        page = make_vpn(0, 0, 0, 7)
        table.map_page(page, pfn=1)
        stages = table.walk_stages(page)
        pl1 = stages[3][0]
        assert pl1.pte_paddr % 4096 == 7 * 8

    def test_sibling_pages_share_upper_ptes(self, table):
        table.map_page(make_vpn(1, 2, 3, 4), pfn=1)
        table.map_page(make_vpn(1, 2, 3, 5), pfn=2)
        walk_a = table.walk_stages(make_vpn(1, 2, 3, 4))
        walk_b = table.walk_stages(make_vpn(1, 2, 3, 5))
        for level in range(3):  # PL4, PL3, PL2 shared
            assert walk_a[level][0].pte_paddr == walk_b[level][0].pte_paddr
        assert walk_a[3][0].pte_paddr != walk_b[3][0].pte_paddr

    def test_pwc_keys_identify_prefixes(self, table):
        page = make_vpn(1, 2, 3, 4)
        table.map_page(page, pfn=1)
        stages = table.walk_stages(page)
        assert stages[0][0].pwc_key == ("PL4", page >> 27)
        assert stages[1][0].pwc_key == ("PL3", page >> 18)
        assert stages[2][0].pwc_key == ("PL2", page >> 9)
        assert stages[3][0].pwc_key == ("PL1", page)


class TestStructure:
    def test_nodes_allocated_lazily(self, table, allocator):
        before = allocator.stats.small_allocs
        table.map_page(make_vpn(1, 1, 1, 1), pfn=1)
        # New PL3 + PL2 + PL1 nodes (root exists already).
        assert allocator.stats.small_allocs == before + 3

    def test_dense_pages_share_nodes(self, table):
        for i in range(512):
            table.map_page(i, pfn=i)
        assert table.node_count(1) == 1  # one PL1 node, fully used

    def test_table_bytes_grows_with_nodes(self, table):
        empty = table.table_bytes()
        table.map_page(make_vpn(2, 2, 2, 2), pfn=1)
        assert table.table_bytes() == empty + 3 * 4096

    def test_occupancy_dense_pl1(self, table):
        for i in range(512):
            table.map_page(i, pfn=i)
        occ = table.occupancy()
        assert occ["PL1"] == 1.0
        assert occ["PL4"] == 1 / 512

    def test_occupancy_sparse_pl1(self, table):
        table.map_page(0, pfn=0)
        assert table.occupancy()["PL1"] == 1 / 512

    def test_pte_addresses_are_in_physical_memory(self, table, allocator):
        table.map_page(0x999, pfn=1)
        for stage in table.walk_stages(0x999):
            assert 0 <= stage[0].pte_paddr < allocator.phys_bytes
