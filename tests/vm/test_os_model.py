"""Tests for the OS memory manager: demand paging, THP, reclaim."""

import pytest

from repro.vm.address import HUGE_PAGE_SHIFT, PAGE_SIZE
from repro.vm.cuckoo import ElasticCuckooPageTable
from repro.vm.frames import FrameAllocator, OutOfMemoryError
from repro.vm.os_model import (
    OSMemoryManager,
    PagingPolicy,
    huge_region_of,
    pages_per_huge_region,
    region_base_page,
)
from repro.vm.radix import RadixPageTable

MIB = 1024 ** 2


def make_os(phys=64 * MIB, policy=PagingPolicy.SMALL, frag=0.0,
            promo=1.0, **alloc_kwargs):
    allocator = FrameAllocator(phys, fragmentation=frag, **alloc_kwargs)
    table = RadixPageTable(allocator)
    return OSMemoryManager(allocator, table, policy=policy,
                           thp_promotion_fraction=promo)


class TestDemandPaging:
    def test_first_touch_faults(self):
        os = make_os()
        cycles = os.ensure_mapped(0x1000_0000)
        assert cycles == os.costs.minor_fault_cycles
        assert os.stats.minor_faults == 1

    def test_second_touch_free(self):
        os = make_os()
        os.ensure_mapped(0x1000_0000)
        assert os.ensure_mapped(0x1000_0008) == 0.0

    def test_distinct_pages_fault_separately(self):
        os = make_os()
        os.ensure_mapped(0)
        os.ensure_mapped(PAGE_SIZE)
        assert os.stats.minor_faults == 2

    def test_mapping_installed(self):
        os = make_os()
        os.ensure_mapped(0x5000)
        assert os.page_table.lookup(5) is not None

    def test_fault_cycles_accumulate(self):
        os = make_os()
        os.ensure_mapped(0)
        os.ensure_mapped(PAGE_SIZE)
        assert os.stats.fault_cycles \
            == 2 * os.costs.minor_fault_cycles

    def test_prefault_range(self):
        os = make_os()
        pages, cycles = os.prefault_range(0, 10 * PAGE_SIZE)
        assert pages == 10
        assert cycles == 10 * os.costs.minor_fault_cycles

    def test_metadata_bytes_tracks_page_table(self):
        os = make_os()
        before = os.metadata_bytes()
        os.ensure_mapped(1 << 40)  # new subtree
        assert os.metadata_bytes() > before


class TestHugePolicy:
    def test_huge_fault_maps_whole_region(self):
        os = make_os(policy=PagingPolicy.HUGE)
        cycles = os.ensure_mapped(0)
        assert cycles == os.costs.huge_fault_cycles
        assert os.stats.huge_faults == 1
        translation = os.page_table.lookup(100)
        assert translation is not None
        assert translation.page_shift == HUGE_PAGE_SHIFT

    def test_neighbouring_touch_in_region_free(self):
        os = make_os(policy=PagingPolicy.HUGE)
        os.ensure_mapped(0)
        assert os.ensure_mapped(100 * PAGE_SIZE) == 0.0

    def test_promotion_fraction_zero_degenerates_to_small(self):
        os = make_os(policy=PagingPolicy.HUGE, promo=0.0)
        os.ensure_mapped(0)
        assert os.stats.huge_faults == 0
        assert os.stats.minor_faults == 1
        assert os.stats.huge_fallbacks == 1

    def test_promotion_fraction_partial(self):
        os = make_os(phys=512 * MIB, policy=PagingPolicy.HUGE, promo=0.5)
        for region in range(100):
            os.ensure_mapped(region * (1 << HUGE_PAGE_SHIFT))
        assert 20 <= os.stats.huge_faults <= 80
        assert os.stats.huge_faults + os.stats.huge_fallbacks == 100

    def test_promotion_decision_stable(self):
        os1 = make_os(policy=PagingPolicy.HUGE, promo=0.5)
        os2 = make_os(policy=PagingPolicy.HUGE, promo=0.5)
        assert [os1._promotable(r) for r in range(64)] \
            == [os2._promotable(r) for r in range(64)]

    def test_contiguity_exhaustion_falls_back(self):
        os = make_os(phys=8 * MIB, policy=PagingPolicy.HUGE)
        os.allocator.reserved = None
        touched = 0
        while os.allocator.free_block_count:
            os.ensure_mapped(touched * (1 << HUGE_PAGE_SHIFT))
            touched += 1
        cycles = os.ensure_mapped(touched * (1 << HUGE_PAGE_SHIFT))
        assert os.stats.huge_fallbacks >= 1
        assert os.stats.compactions >= 1
        assert cycles >= os.costs.compaction_cycles

    def test_fallback_region_stays_4kb(self):
        os = make_os(policy=PagingPolicy.HUGE, promo=0.0)
        os.ensure_mapped(0)
        os.ensure_mapped(PAGE_SIZE)
        assert os.stats.minor_faults == 2
        assert os.stats.huge_fallbacks == 2

    def test_ideal_tables_never_go_huge(self):
        from repro.vm.ideal import IdealPageTable
        allocator = FrameAllocator(64 * MIB)
        os = OSMemoryManager(allocator, IdealPageTable(),
                             policy=PagingPolicy.HUGE)
        os.ensure_mapped(0)
        assert os.stats.huge_faults == 0
        assert os.stats.minor_faults == 1


class TestReclaim:
    def test_small_pages_reclaimed_under_pressure(self):
        os = make_os(phys=4 * MIB)
        pages = os.allocator.num_frames + 50
        for i in range(pages):
            os.ensure_mapped(i * PAGE_SIZE)
        assert os.stats.reclaims >= 50
        # Early pages were evicted (FIFO) to make room.
        assert os.page_table.lookup(0) is None

    def test_reclaimed_page_refaults(self):
        os = make_os(phys=4 * MIB)
        pages = os.allocator.num_frames + 10
        for i in range(pages):
            os.ensure_mapped(i * PAGE_SIZE)
        faults_before = os.stats.minor_faults
        os.ensure_mapped(0)  # page 0 was reclaimed
        assert os.stats.minor_faults == faults_before + 1

    def test_huge_mappings_broken_up_as_last_resort(self):
        os = make_os(phys=8 * MIB, policy=PagingPolicy.HUGE)
        # Fill memory entirely with huge mappings.
        region = 0
        while os.allocator.free_block_count:
            os.ensure_mapped(region * (1 << HUGE_PAGE_SHIFT))
            region += 1
        # Burn remaining small frames, then demand more.
        for i in range(os.allocator.free_frames + 5):
            os.ensure_mapped((1 << 40) + i * PAGE_SIZE)
        assert os.stats.reclaims > 0


class TestReclaimUnderSustainedPressure:
    """_reclaim_one corner cases: pool exhaustion, promotion-then-
    reclaim interleavings, stale records, and the reclaim hooks."""

    def test_sustained_pressure_is_stable(self):
        """Faulting far past capacity keeps working set-sized memory
        resident and never leaks frames."""
        os = make_os(phys=4 * MIB)
        capacity = os.allocator.num_frames
        for i in range(3 * capacity):
            os.ensure_mapped(i * PAGE_SIZE)
        assert os.stats.reclaims >= 2 * capacity - 100
        # Conservation: every frame is either mapped or free.
        assert os.allocator.free_frames >= 0
        assert os.page_table.mapped_pages <= capacity
        # FIFO: the newest pages survive, the oldest are gone.
        assert os.page_table.lookup(3 * capacity - 1) is not None
        assert os.page_table.lookup(0) is None

    def test_refault_reclaim_cycle_converges(self):
        """Ping-ponging over a 2x-capacity working set churns but
        every touch still lands a mapping."""
        os = make_os(phys=4 * MIB)
        working_set = 2 * os.allocator.num_frames
        for _ in range(3):
            for i in range(working_set):
                os.ensure_mapped(i * PAGE_SIZE)
                assert os.page_table.lookup(i) is not None

    def test_stale_records_skipped(self):
        """A record whose page was unmapped behind the OS's back (a
        peer's cross-tenant reclaim does this) must be skipped, not
        double-freed."""
        os = make_os()
        os.ensure_mapped(0)
        os.ensure_mapped(PAGE_SIZE)
        os.page_table.unmap_page(0)  # page 0's record is now stale
        frees_before = os.allocator.stats.frees
        os._reclaim_one()
        # Exactly one frame came back, and it was page 1's — the
        # stale page-0 record freed nothing.
        assert os.allocator.stats.frees == frees_before + 1
        assert os.page_table.lookup(PAGE_SIZE >> 12) is None
        assert os.stats.reclaims == 1

    def test_promotion_then_reclaim_interleaving(self):
        """Huge faults racing small faults under exhaustion: small
        pages are evicted first, huge blocks only as a last resort,
        and broken-up blocks replenish the contiguity pool."""
        os = make_os(phys=8 * MIB, policy=PagingPolicy.HUGE)
        region = 0
        # Alternate huge-region touches with 4 KB touches in fallback
        # regions until the whole pool has turned over once.
        os._fallback_regions.add(10_000)  # force a 4 KB arena
        small_base = region_base_page(10_000) * PAGE_SIZE
        touched_small = 0
        capacity = os.allocator.num_frames
        while os.stats.reclaims < 20:
            os.ensure_mapped(region * (1 << HUGE_PAGE_SHIFT))
            region += 1
            for _ in range(64):
                os.ensure_mapped(small_base
                                 + touched_small * PAGE_SIZE)
                touched_small += 1
            assert touched_small < 2 * capacity, \
                "pressure never produced reclaim"
        # Both kinds were created, and memory stayed consistent.
        assert os.stats.huge_faults > 0
        assert os.stats.minor_faults > 0
        assert os.allocator.free_frames >= 0

    def test_huge_breakup_returns_whole_block(self):
        os = make_os(phys=8 * MIB, policy=PagingPolicy.HUGE)
        region = 0
        while os.allocator.free_block_count:
            os.ensure_mapped(region * (1 << HUGE_PAGE_SHIFT))
            region += 1
        # Drop the small-page records so only huge mappings remain,
        # then force a reclaim: a whole 2 MB block must come back.
        os._lru_frames = type(os._lru_frames)(
            r for r in os._lru_frames if r.huge)
        fault_cycles_before = os.stats.fault_cycles
        os._reclaim_one()
        assert os.allocator.free_block_count >= 1
        assert os.stats.fault_cycles - fault_cycles_before \
            == 4 * os.costs.reclaim_cycles

    def test_exhaustion_raises_when_nothing_reclaimable(self):
        os = make_os(phys=4 * MIB)
        for i in range(100):
            os.ensure_mapped(i * PAGE_SIZE)
        os._lru_frames.clear()   # nothing left to evict
        with pytest.raises(OutOfMemoryError):
            while True:
                os._reclaim_one()

    def test_on_unmap_hook_sees_each_eviction(self):
        events = []
        allocator = FrameAllocator(4 * MIB)
        table = RadixPageTable(allocator)
        os = OSMemoryManager(allocator, table,
                             on_unmap=lambda page, huge:
                             events.append((page, huge)))
        for i in range(allocator.num_frames + 20):
            os.ensure_mapped(i * PAGE_SIZE)
        assert len(events) == os.stats.reclaims > 0
        assert all(not huge for _, huge in events)
        # FIFO order: evictions follow touch order.
        pages = [page for page, _ in events]
        assert pages == sorted(pages)

    def test_peer_reclaim_consulted_before_oom(self):
        calls = []
        allocator = FrameAllocator(4 * MIB)
        table = RadixPageTable(allocator)
        other = OSMemoryManager(allocator, RadixPageTable(allocator))
        # Give the peer something to give up.
        other.ensure_mapped(0)

        def steal():
            calls.append(True)
            try:
                other._reclaim_one()
            except OutOfMemoryError:
                return False
            return True

        os = OSMemoryManager(allocator, table, peer_reclaim=steal)
        page = 0
        while allocator.free_frames > 0:
            os.ensure_mapped(page * PAGE_SIZE)
            page += 1
        os._lru_frames.clear()
        os.ensure_mapped(page * PAGE_SIZE)  # must not raise
        assert calls
        assert other.page_table.lookup(0) is None


class TestEchRehashCharging:
    def test_rehash_cost_charged_on_fault(self):
        allocator = FrameAllocator(256 * MIB)
        table = ElasticCuckooPageTable(allocator, initial_entries=64,
                                       resize_threshold=0.5)
        os = OSMemoryManager(allocator, table)
        total = 0.0
        for i in range(200):
            total += os.ensure_mapped(i * PAGE_SIZE)
        base = 200 * os.costs.minor_fault_cycles
        expected_extra = (table.stats.rehashed_entries
                          * os.costs.ech_rehash_cycles_per_entry)
        assert total == pytest.approx(base + expected_extra)
        assert expected_extra > 0


class TestHelpers:
    def test_region_roundtrip(self):
        assert region_base_page(huge_region_of(1000)) <= 1000
        assert huge_region_of(region_base_page(77)) == 77

    def test_pages_per_region(self):
        assert pages_per_huge_region() == 512

    def test_invalid_promotion_fraction(self):
        allocator = FrameAllocator(64 * MIB)
        with pytest.raises(ValueError):
            OSMemoryManager(allocator, RadixPageTable(allocator),
                            thp_promotion_fraction=1.5)
