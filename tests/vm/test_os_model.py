"""Tests for the OS memory manager: demand paging, THP, reclaim."""

import pytest

from repro.vm.address import HUGE_PAGE_SHIFT, PAGE_SIZE
from repro.vm.cuckoo import ElasticCuckooPageTable
from repro.vm.frames import FrameAllocator
from repro.vm.os_model import (
    OSMemoryManager,
    PagingPolicy,
    huge_region_of,
    pages_per_huge_region,
    region_base_page,
)
from repro.vm.radix import RadixPageTable

MIB = 1024 ** 2


def make_os(phys=64 * MIB, policy=PagingPolicy.SMALL, frag=0.0,
            promo=1.0, **alloc_kwargs):
    allocator = FrameAllocator(phys, fragmentation=frag, **alloc_kwargs)
    table = RadixPageTable(allocator)
    return OSMemoryManager(allocator, table, policy=policy,
                           thp_promotion_fraction=promo)


class TestDemandPaging:
    def test_first_touch_faults(self):
        os = make_os()
        cycles = os.ensure_mapped(0x1000_0000)
        assert cycles == os.costs.minor_fault_cycles
        assert os.stats.minor_faults == 1

    def test_second_touch_free(self):
        os = make_os()
        os.ensure_mapped(0x1000_0000)
        assert os.ensure_mapped(0x1000_0008) == 0.0

    def test_distinct_pages_fault_separately(self):
        os = make_os()
        os.ensure_mapped(0)
        os.ensure_mapped(PAGE_SIZE)
        assert os.stats.minor_faults == 2

    def test_mapping_installed(self):
        os = make_os()
        os.ensure_mapped(0x5000)
        assert os.page_table.lookup(5) is not None

    def test_fault_cycles_accumulate(self):
        os = make_os()
        os.ensure_mapped(0)
        os.ensure_mapped(PAGE_SIZE)
        assert os.stats.fault_cycles \
            == 2 * os.costs.minor_fault_cycles

    def test_prefault_range(self):
        os = make_os()
        pages, cycles = os.prefault_range(0, 10 * PAGE_SIZE)
        assert pages == 10
        assert cycles == 10 * os.costs.minor_fault_cycles

    def test_metadata_bytes_tracks_page_table(self):
        os = make_os()
        before = os.metadata_bytes()
        os.ensure_mapped(1 << 40)  # new subtree
        assert os.metadata_bytes() > before


class TestHugePolicy:
    def test_huge_fault_maps_whole_region(self):
        os = make_os(policy=PagingPolicy.HUGE)
        cycles = os.ensure_mapped(0)
        assert cycles == os.costs.huge_fault_cycles
        assert os.stats.huge_faults == 1
        translation = os.page_table.lookup(100)
        assert translation is not None
        assert translation.page_shift == HUGE_PAGE_SHIFT

    def test_neighbouring_touch_in_region_free(self):
        os = make_os(policy=PagingPolicy.HUGE)
        os.ensure_mapped(0)
        assert os.ensure_mapped(100 * PAGE_SIZE) == 0.0

    def test_promotion_fraction_zero_degenerates_to_small(self):
        os = make_os(policy=PagingPolicy.HUGE, promo=0.0)
        os.ensure_mapped(0)
        assert os.stats.huge_faults == 0
        assert os.stats.minor_faults == 1
        assert os.stats.huge_fallbacks == 1

    def test_promotion_fraction_partial(self):
        os = make_os(phys=512 * MIB, policy=PagingPolicy.HUGE, promo=0.5)
        for region in range(100):
            os.ensure_mapped(region * (1 << HUGE_PAGE_SHIFT))
        assert 20 <= os.stats.huge_faults <= 80
        assert os.stats.huge_faults + os.stats.huge_fallbacks == 100

    def test_promotion_decision_stable(self):
        os1 = make_os(policy=PagingPolicy.HUGE, promo=0.5)
        os2 = make_os(policy=PagingPolicy.HUGE, promo=0.5)
        assert [os1._promotable(r) for r in range(64)] \
            == [os2._promotable(r) for r in range(64)]

    def test_contiguity_exhaustion_falls_back(self):
        os = make_os(phys=8 * MIB, policy=PagingPolicy.HUGE)
        os.allocator.reserved = None
        touched = 0
        while os.allocator.free_block_count:
            os.ensure_mapped(touched * (1 << HUGE_PAGE_SHIFT))
            touched += 1
        cycles = os.ensure_mapped(touched * (1 << HUGE_PAGE_SHIFT))
        assert os.stats.huge_fallbacks >= 1
        assert os.stats.compactions >= 1
        assert cycles >= os.costs.compaction_cycles

    def test_fallback_region_stays_4kb(self):
        os = make_os(policy=PagingPolicy.HUGE, promo=0.0)
        os.ensure_mapped(0)
        os.ensure_mapped(PAGE_SIZE)
        assert os.stats.minor_faults == 2
        assert os.stats.huge_fallbacks == 2

    def test_ideal_tables_never_go_huge(self):
        from repro.vm.ideal import IdealPageTable
        allocator = FrameAllocator(64 * MIB)
        os = OSMemoryManager(allocator, IdealPageTable(),
                             policy=PagingPolicy.HUGE)
        os.ensure_mapped(0)
        assert os.stats.huge_faults == 0
        assert os.stats.minor_faults == 1


class TestReclaim:
    def test_small_pages_reclaimed_under_pressure(self):
        os = make_os(phys=4 * MIB)
        pages = os.allocator.num_frames + 50
        for i in range(pages):
            os.ensure_mapped(i * PAGE_SIZE)
        assert os.stats.reclaims >= 50
        # Early pages were evicted (FIFO) to make room.
        assert os.page_table.lookup(0) is None

    def test_reclaimed_page_refaults(self):
        os = make_os(phys=4 * MIB)
        pages = os.allocator.num_frames + 10
        for i in range(pages):
            os.ensure_mapped(i * PAGE_SIZE)
        faults_before = os.stats.minor_faults
        os.ensure_mapped(0)  # page 0 was reclaimed
        assert os.stats.minor_faults == faults_before + 1

    def test_huge_mappings_broken_up_as_last_resort(self):
        os = make_os(phys=8 * MIB, policy=PagingPolicy.HUGE)
        # Fill memory entirely with huge mappings.
        region = 0
        while os.allocator.free_block_count:
            os.ensure_mapped(region * (1 << HUGE_PAGE_SHIFT))
            region += 1
        # Burn remaining small frames, then demand more.
        for i in range(os.allocator.free_frames + 5):
            os.ensure_mapped((1 << 40) + i * PAGE_SIZE)
        assert os.stats.reclaims > 0


class TestEchRehashCharging:
    def test_rehash_cost_charged_on_fault(self):
        allocator = FrameAllocator(256 * MIB)
        table = ElasticCuckooPageTable(allocator, initial_entries=64,
                                       resize_threshold=0.5)
        os = OSMemoryManager(allocator, table)
        total = 0.0
        for i in range(200):
            total += os.ensure_mapped(i * PAGE_SIZE)
        base = 200 * os.costs.minor_fault_cycles
        expected_extra = (table.stats.rehashed_entries
                          * os.costs.ech_rehash_cycles_per_entry)
        assert total == pytest.approx(base + expected_extra)
        assert expected_extra > 0


class TestHelpers:
    def test_region_roundtrip(self):
        assert region_base_page(huge_region_of(1000)) <= 1000
        assert huge_region_of(region_base_page(77)) == 77

    def test_pages_per_region(self):
        assert pages_per_huge_region() == 512

    def test_invalid_promotion_fraction(self):
        allocator = FrameAllocator(64 * MIB)
        with pytest.raises(ValueError):
            OSMemoryManager(allocator, RadixPageTable(allocator),
                            thp_promotion_fraction=1.5)
