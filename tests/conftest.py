"""Shared fixtures for the NDPage reproduction test suite."""

import pytest

from repro.vm.frames import FrameAllocator

MIB = 1024 ** 2
GIB = 1024 ** 3


@pytest.fixture
def allocator():
    """A modest 64 MB physical memory for page-table unit tests."""
    return FrameAllocator(64 * MIB)


@pytest.fixture
def big_allocator():
    """A 1 GB physical memory for tests that map many pages."""
    return FrameAllocator(GIB)


@pytest.fixture
def fragmented_allocator():
    """Physical memory with 50% of blocks broken at boot."""
    return FrameAllocator(64 * MIB, fragmentation=0.5)
