"""Tests for the workload base class and layout helpers."""

import pytest

from repro.vm.address import HUGE_PAGE_SIZE
from repro.workloads.base import layout_regions
from repro.workloads.registry import make_workload


class TestLayout:
    def test_regions_are_2mb_aligned(self):
        regions = layout_regions([("a", 5000), ("b", 3000)])
        for region in regions:
            assert region.base % HUGE_PAGE_SIZE == 0

    def test_regions_do_not_overlap(self):
        regions = layout_regions([("a", 5000), ("b", 3000), ("c", 1)])
        for earlier, later in zip(regions, regions[1:]):
            assert later.base >= earlier.end

    def test_regions_packed_densely(self):
        regions = layout_regions([("a", HUGE_PAGE_SIZE)])
        follow = layout_regions([("a", HUGE_PAGE_SIZE), ("b", 1)])
        assert follow[1].base == regions[0].end

    def test_named(self):
        regions = layout_regions([("offsets", 100)])
        assert regions[0].name == "offsets"

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            layout_regions([("a", 0)])


class TestWorkloadProtocol:
    @pytest.fixture
    def workload(self):
        return make_workload("rnd", scale=1 / 64)

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            make_workload("rnd", scale=0)

    def test_footprint_scales(self):
        small = make_workload("rnd", scale=1 / 64).footprint_bytes()
        full = make_workload("rnd", scale=1.0).footprint_bytes()
        assert full > 32 * small  # roughly 64x, modulo minimums

    def test_page_ranges_cover_regions(self, workload):
        ranges = workload.page_ranges()
        assert len(ranges) == len(workload.regions())
        for (lo, hi), region in zip(ranges, workload.regions()):
            assert lo <= hi
            assert lo * 4096 <= region.base
            assert (hi + 1) * 4096 >= region.end

    def test_stream_is_deterministic(self, workload):
        a = list(workload.stream(0, 500))
        b = list(workload.stream(0, 500))
        assert a == b

    def test_cores_get_different_streams(self, workload):
        a = list(workload.stream(0, 500))
        b = list(workload.stream(1, 500))
        assert a != b

    def test_stream_length_exact(self, workload):
        assert len(list(workload.stream(0, 777))) == 777

    def test_stream_yields_ints_and_bools(self, workload):
        for vaddr, is_write in workload.stream(0, 50):
            assert isinstance(vaddr, int)
            assert isinstance(is_write, bool)

    def test_private_regions_disjoint_per_core(self, workload):
        a = workload.private_region(0)
        b = workload.private_region(1)
        assert a.end <= b.base or b.end <= a.base

    def test_private_region_validates_core(self, workload):
        with pytest.raises(ValueError):
            workload.private_region(-1)

    def test_stream_touches_shared_and_private(self, workload):
        private = workload.private_region(0)
        shared, private_refs = 0, 0
        for vaddr, _ in workload.stream(0, 2000):
            if private.base <= vaddr < private.end:
                private_refs += 1
            else:
                shared += 1
        assert shared > private_refs > 0

    def test_describe(self, workload):
        info = workload.describe()
        assert info["name"] == "rnd"
        assert info["suite"] == "GUPS"
        assert info["dataset_gb"] == pytest.approx(10.0)
