"""Tests for the workload registry (Table II)."""

import pytest

from repro.workloads.registry import (
    ALL_WORKLOADS,
    QUICK_WORKLOADS,
    make_workload,
    workload_table,
)


class TestRegistry:
    def test_eleven_workloads(self):
        assert len(ALL_WORKLOADS) == 11

    def test_quick_subset(self):
        assert set(QUICK_WORKLOADS) <= set(ALL_WORKLOADS)

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_all_constructible(self, name):
        wl = make_workload(name, scale=1 / 64)
        assert wl.name == name
        assert wl.footprint_bytes() > 0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_workload("spec2006")

    def test_case_insensitive(self):
        assert make_workload("BFS", scale=1 / 64).name == "bfs"

    def test_table2_suites(self):
        table = workload_table(scale=1 / 64)
        suites = {row["suite"] for row in table}
        assert suites == {"GraphBIG", "XSBench", "GUPS", "DLRM",
                          "GenomicsBench"}

    def test_table2_dataset_sizes(self):
        by_name = {row["name"]: row for row in workload_table(1 / 64)}
        assert by_name["xs"]["dataset_gb"] == pytest.approx(9)
        assert by_name["rnd"]["dataset_gb"] == pytest.approx(10)
        assert by_name["dlrm"]["dataset_gb"] == pytest.approx(10)
        assert by_name["gen"]["dataset_gb"] == pytest.approx(33)
        assert by_name["bfs"]["dataset_gb"] == pytest.approx(8)
