"""Tests for the five Table II workload suites."""

import numpy as np
import pytest

from repro.workloads.dlrm import DlrmWorkload
from repro.workloads.genomics import GenomicsWorkload
from repro.workloads.graphbig import KERNELS, GraphBigWorkload
from repro.workloads.gups import GupsWorkload
from repro.workloads.xsbench import XSBenchWorkload

GIB = 1024 ** 3
SCALE = 1 / 64


def region_of(workload, vaddr):
    for region in workload.regions():
        if region.base <= vaddr < region.end:
            return region.name
    return "private"


def histogram(workload, refs=4000, core=0):
    counts = {}
    writes = 0
    for vaddr, is_write in workload.stream(core, refs):
        name = region_of(workload, vaddr)
        counts[name] = counts.get(name, 0) + 1
        writes += is_write
    return counts, writes / refs


class TestGraphBig:
    def test_all_seven_kernels_exist(self):
        assert set(KERNELS) == {"bc", "bfs", "cc", "gc", "pr", "tc", "sp"}

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            GraphBigWorkload("dijkstra")

    def test_dataset_size_matches_table2(self):
        assert GraphBigWorkload("bfs").dataset_bytes == 8 * GIB

    def test_footprint_close_to_dataset(self):
        wl = GraphBigWorkload("bfs", scale=SCALE)
        assert wl.footprint_bytes() == pytest.approx(
            8 * GIB * SCALE, rel=0.1)

    def test_csr_regions_present(self):
        names = {r.name for r in GraphBigWorkload("pr", scale=SCALE).regions()}
        assert {"offsets", "edges", "prop_src", "prop_dst", "aux"} <= names

    def test_stream_touches_all_structures(self):
        wl = GraphBigWorkload("bfs", scale=SCALE)
        counts, _ = histogram(wl)
        for name in ("offsets", "edges", "prop_src"):
            assert counts.get(name, 0) > 0, name

    def test_sweep_kernels_walk_vertices_in_order(self):
        wl = GraphBigWorkload("pr", scale=SCALE)
        offsets = [vaddr for vaddr, _ in wl.stream(0, 4000)
                   if region_of(wl, vaddr) == "offsets"]
        deltas = np.diff(offsets)
        assert (deltas >= 0).mean() > 0.9  # monotone sweep (mod wrap)

    def test_frontier_kernels_jump_randomly(self):
        wl = GraphBigWorkload("bfs", scale=SCALE)
        offsets = [vaddr for vaddr, _ in wl.stream(0, 4000)
                   if region_of(wl, vaddr) == "offsets"]
        deltas = np.diff(offsets)
        assert (deltas >= 0).mean() < 0.7

    def test_tc_reads_more_edges(self):
        tc, _ = histogram(GraphBigWorkload("tc", scale=SCALE))
        pr, _ = histogram(GraphBigWorkload("pr", scale=SCALE))
        assert tc["edges"] / sum(tc.values()) \
            > pr["edges"] / sum(pr.values())

    def test_writes_present_except_tc_structure(self):
        _, write_frac = histogram(GraphBigWorkload("bfs", scale=SCALE))
        assert write_frac > 0.05


class TestXSBench:
    def test_dataset_size(self):
        assert XSBenchWorkload().dataset_bytes == 9 * GIB

    def test_grid_size_not_round(self):
        wl = XSBenchWorkload(scale=SCALE)
        assert wl.grid_points % 4096 != 0

    def test_lookup_is_read_only(self):
        wl = XSBenchWorkload(scale=SCALE)
        _, write_frac = histogram(wl)
        assert write_frac < 0.10  # only private-region writes

    def test_binary_search_converges_in_egrid(self):
        wl = XSBenchWorkload(scale=SCALE)
        egrid_hits = 0
        for vaddr, _ in wl.stream(0, 2000):
            if region_of(wl, vaddr) == "egrid":
                egrid_hits += 1
        assert egrid_hits > 500

    def test_xs_rows_read_sequentially(self):
        wl = XSBenchWorkload(scale=SCALE)
        xs_addrs = [vaddr for vaddr, _ in wl.stream(0, 2000)
                    if region_of(wl, vaddr) == "xs_data"]
        deltas = np.diff(xs_addrs)
        assert (deltas == 8).sum() > len(deltas) * 0.7


class TestGups:
    def test_dataset_size(self):
        assert GupsWorkload().dataset_bytes == 10 * GIB

    def test_read_modify_write_pairs(self):
        wl = GupsWorkload(scale=SCALE)
        stream = list(wl.stream(0, 1000))
        pairs = 0
        for (addr_a, write_a), (addr_b, write_b) in zip(stream, stream[1:]):
            if addr_a == addr_b and not write_a and write_b:
                pairs += 1
        assert pairs > 350  # ~45% of adjacent pairs are RMW

    def test_uniform_spread(self):
        wl = GupsWorkload(scale=SCALE)
        table = wl.regions()[0]
        addrs = [v for v, _ in wl.stream(0, 4000)
                 if table.base <= v < table.end]
        quartile = (np.array(addrs) - table.base) // (table.size // 4)
        counts = np.bincount(quartile.astype(int), minlength=4)
        assert counts.min() > counts.max() * 0.6


class TestDlrm:
    def test_dataset_size(self):
        assert DlrmWorkload().dataset_bytes == 10 * GIB

    def test_embedding_gathers_dominate(self):
        counts, _ = histogram(DlrmWorkload(scale=SCALE))
        assert counts["embeddings"] > sum(counts.values()) * 0.5

    def test_dense_region_is_hot(self):
        wl = DlrmWorkload(scale=SCALE)
        dense = next(r for r in wl.regions() if r.name == "dense")
        assert dense.size <= 2 * 1024 ** 2

    def test_output_writes(self):
        wl = DlrmWorkload(scale=SCALE)
        out = next(r for r in wl.regions() if r.name == "output")
        writes = sum(1 for v, w in wl.stream(0, 4000)
                     if w and out.base <= v < out.end)
        assert writes > 0


class TestGenomics:
    def test_dataset_size_largest_in_suite(self):
        assert GenomicsWorkload().dataset_bytes == 33 * GIB

    def test_hash_table_dominates_footprint(self):
        wl = GenomicsWorkload(scale=SCALE)
        table = next(r for r in wl.regions() if r.name == "hash_table")
        assert table.size > wl.footprint_bytes() * 0.7

    def test_input_scanned_sequentially(self):
        wl = GenomicsWorkload(scale=SCALE)
        inp = next(r for r in wl.regions() if r.name == "input_seq")
        addrs = [v for v, _ in wl.stream(0, 2000)
                 if inp.base <= v < inp.end]
        # Private-region redirection removes ~10% of items, so some
        # deltas are 16; the scan is still overwhelmingly sequential.
        deltas = np.diff(addrs)
        assert ((deltas == 8) | (deltas == 16)).mean() > 0.9

    def test_bucket_updates_write(self):
        wl = GenomicsWorkload(scale=SCALE)
        counts, write_frac = histogram(wl)
        assert counts["hash_table"] > sum(counts.values()) * 0.5
        assert write_frac > 0.2
