"""Tests for the access-pattern building blocks."""

import numpy as np
import pytest

from repro.workloads.synthetic import (
    binary_search_probes,
    concat,
    interleave,
    mixed_indices,
    scattered_zipf_indices,
    sequential_window,
    take,
    uniform_indices,
    zipf_indices,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestSelectors:
    def test_uniform_in_range(self, rng):
        idx = uniform_indices(rng, 1000, 5000)
        assert idx.min() >= 0
        assert idx.max() < 1000

    def test_uniform_covers_population(self, rng):
        idx = uniform_indices(rng, 10, 1000)
        assert set(idx.tolist()) == set(range(10))

    def test_zipf_in_range(self, rng):
        idx = zipf_indices(rng, 1000, 5000)
        assert idx.min() >= 0
        assert idx.max() < 1000

    def test_zipf_is_skewed(self, rng):
        idx = zipf_indices(rng, 10_000, 20_000, exponent=1.5)
        top = np.bincount(idx, minlength=10_000).max()
        assert top > 20_000 / 10_000 * 50  # head far above uniform share

    def test_scattered_zipf_spreads_hot_items(self, rng):
        plain = zipf_indices(rng, 1 << 20, 10_000, exponent=1.5)
        scattered = scattered_zipf_indices(rng, 1 << 20, 10_000,
                                           exponent=1.5)
        # Same skew, but hot ids are no longer the small integers.
        assert plain.min() < 100
        assert scattered.max() > 1 << 19

    def test_mixed_mostly_uniform(self, rng):
        idx = mixed_indices(rng, 1 << 20, 50_000, hot_fraction=0.2)
        # At least ~60% of samples unique-ish => dominated by uniform.
        assert len(np.unique(idx)) > 30_000

    def test_mixed_validates_fraction(self, rng):
        with pytest.raises(ValueError):
            mixed_indices(rng, 10, 10, hot_fraction=1.5)

    def test_population_validated(self, rng):
        with pytest.raises(ValueError):
            uniform_indices(rng, 0, 10)
        with pytest.raises(ValueError):
            zipf_indices(rng, 0, 10)


class TestSequences:
    def test_sequential_window(self):
        assert sequential_window(5, 3).tolist() == [5, 6, 7]

    def test_sequential_stride(self):
        assert sequential_window(0, 3, stride=4).tolist() == [0, 4, 8]

    def test_binary_search_finds_target(self):
        probes = binary_search_probes(37, 100)
        assert probes[-1] == 37

    def test_binary_search_log_length(self):
        probes = binary_search_probes(123_456, 1 << 20)
        assert len(probes) <= 21

    def test_binary_search_first_probe_is_middle(self):
        assert binary_search_probes(0, 101)[0] == 50

    def test_binary_search_validates(self):
        with pytest.raises(ValueError):
            binary_search_probes(100, 100)


class TestCombinators:
    def test_interleave_order(self):
        a = np.array([1, 2]), False
        b = np.array([10, 20]), True
        addrs, writes = interleave([a, b])
        assert addrs.tolist() == [1, 10, 2, 20]
        assert writes.tolist() == [False, True, False, True]

    def test_interleave_length_mismatch(self):
        with pytest.raises(ValueError):
            interleave([(np.array([1]), False), (np.array([1, 2]), True)])

    def test_interleave_empty_rejected(self):
        with pytest.raises(ValueError):
            interleave([])

    def test_concat(self):
        a = np.array([1]), np.array([True])
        b = np.array([2]), np.array([False])
        addrs, writes = concat([a, b])
        assert addrs.tolist() == [1, 2]
        assert writes.tolist() == [True, False]

    def test_take(self):
        addrs, writes = take(np.arange(10), np.zeros(10, bool), 4)
        assert len(addrs) == len(writes) == 4
