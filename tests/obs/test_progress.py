"""Tests for the progress state machine and its ETA math, driven by
synthetic event streams — no sweep, no terminal."""

import io

import pytest

from repro.obs.events import Event
from repro.obs.progress import (
    ProgressState,
    ProgressView,
    format_duration,
)


def ev(type_, t_mono=0.0, **data):
    return Event(type=type_, t_wall=1000.0 + t_mono, t_mono=t_mono,
                 seq=1, pid=1, data=data)


def started(unique=10, cached=4, t_mono=0.0):
    return ev("sweep.started", t_mono=t_mono, cells=unique,
              unique=unique, cached=cached, missing=unique - cached,
              backend="pool", jobs=2)


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(42.3) == "42s"

    def test_minutes(self):
        assert format_duration(90.5) == "1m30s"

    def test_hours(self):
        assert format_duration(7320) == "2h02m"

    def test_negative_clamped(self):
        assert format_duration(-5) == "0s"


class TestStateFolding:
    def test_sweep_started_seeds_totals(self):
        state = ProgressState()
        state.observe(started(unique=10, cached=4))
        assert state.total == 10
        assert state.done == 4
        assert state.remaining == 6
        assert state.cache_hit_rate == pytest.approx(0.4)

    def test_completions_and_quarantines_advance_done(self):
        state = ProgressState()
        state.observe(started(unique=10, cached=4))
        state.observe(ev("cell.completed", t_mono=1.0, key="a",
                         label="a", attempt=1, wall=1.0))
        state.observe(ev("cell.quarantined", t_mono=2.0, key="b",
                         label="b", attempts=2, kind="error"))
        assert state.done == 6
        assert state.completed == 1
        assert state.failed == 1

    def test_workers_tracked_by_last_event(self):
        state = ProgressState()
        state.observe(ev("worker.spawned", worker="w1",
                         backend="pool"))
        state.observe(ev("worker.spawned", worker="w2",
                         backend="pool"))
        state.observe(ev("worker.died", worker="w2", reason="kill"))
        assert state.workers["w1"] == "idle"
        assert state.workers["w2"] == "dead"


class TestEta:
    def test_none_before_first_completion(self):
        state = ProgressState()
        state.observe(started())
        assert state.eta_seconds(now_mono=5.0) is None

    def test_extrapolates_from_completion_rate(self):
        state = ProgressState()
        state.observe(started(unique=10, cached=4, t_mono=0.0))
        for i, key in enumerate(("a", "b")):
            state.observe(ev("cell.completed", t_mono=10.0 * (i + 1),
                             key=key, label=key, attempt=1, wall=1.0))
        # 2 cells in 20 s -> 0.1 cells/s; 4 remaining -> 40 s.
        assert state.eta_seconds(now_mono=20.0) \
            == pytest.approx(40.0)

    def test_cached_cells_do_not_inflate_the_rate(self):
        # 9 of 10 served by cache, 1 simulated in 10 s: the last
        # 0 remaining gives ETA 0 -- but with another one pending the
        # rate must come from the single simulated cell only.
        state = ProgressState()
        state.observe(started(unique=10, cached=8, t_mono=0.0))
        state.observe(ev("cell.completed", t_mono=10.0, key="a",
                         label="a", attempt=1, wall=10.0))
        assert state.eta_seconds(now_mono=10.0) \
            == pytest.approx(10.0)


class TestRender:
    def test_render_mentions_counts_and_eta(self):
        state = ProgressState()
        state.observe(started(unique=10, cached=4, t_mono=0.0))
        state.observe(ev("cell.completed", t_mono=10.0, key="a",
                         label="a", attempt=1, wall=1.0))
        state.observe(ev("cell.retried", t_mono=11.0, key="b",
                         label="b", attempt=1, delay=0.25))
        line = state.render(now_mono=10.0)
        assert "5/10 cells" in line
        assert "4 cached (40%)" in line
        assert "1 retries" in line
        assert "ETA" in line

    def test_render_done_when_finished(self):
        state = ProgressState()
        state.observe(started(unique=2, cached=2))
        state.observe(ev("sweep.finished", t_mono=1.0, cells=2,
                         completed=0, failed=0, retries=0, wall=1.0))
        assert "done" in state.render(now_mono=1.0)


class TestView:
    def test_non_tty_prints_line_per_progress_step(self):
        stream = io.StringIO()
        view = ProgressView(stream=stream, interval=0.0)
        view.emit(started(unique=2, cached=0))
        view.emit(ev("cell.completed", t_mono=1.0, key="a",
                     label="a", attempt=1, wall=1.0))
        view.emit(ev("cell.completed", t_mono=2.0, key="b",
                     label="b", attempt=1, wall=1.0))
        view.close()
        lines = [line for line in stream.getvalue().splitlines()
                 if line]
        assert any("2/2 cells" in line for line in lines)
        assert "\r" not in stream.getvalue()
