"""Tests for the Chrome-trace export of per-cell spans."""

import json

from repro.obs.events import Event
from repro.obs.trace import TRACE_PID, build_trace, export_trace


def ev(type_, t_wall, **data):
    return Event(type=type_, t_wall=t_wall, t_mono=t_wall - 100.0,
                 seq=int(t_wall * 10) % 1000, pid=1, data=data)


def lifecycle_events():
    return [
        ev("sweep.started", 100.0, cells=2, unique=2, cached=0,
           missing=2, backend="pool", jobs=2),
        ev("cell.dispatched", 100.1, key="k1", label="bfs/radix",
           attempt=1),
        ev("cell.dispatched", 100.1, key="k2", label="bfs/ndpage",
           attempt=1),
        ev("worker.claim", 100.15, worker="w1", key="k1", attempt=1),
        ev("cell.completed", 100.3, key="k1", label="bfs/radix",
           attempt=1, wall=0.2),
        ev("cache.store", 100.31, key="k1", wall=0.001),
        ev("cell.failed", 100.2, key="k2", label="bfs/ndpage",
           attempt=1, kind="error"),
        ev("cell.retried", 100.2, key="k2", label="bfs/ndpage",
           attempt=1, delay=0.25),
        ev("cell.dispatched", 100.5, key="k2", label="bfs/ndpage",
           attempt=2),
        ev("cell.completed", 100.7, key="k2", label="bfs/ndpage",
           attempt=2, wall=0.2),
        ev("sweep.finished", 100.8, cells=2, completed=2, failed=0,
           retries=1, wall=0.8),
    ]


class TestBuildTrace:
    def test_empty_input(self):
        assert build_trace([]) \
            == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_shape_of_a_full_lifecycle(self):
        trace = build_trace(lifecycle_events())
        entries = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        for entry in entries:
            assert entry["pid"] == TRACE_PID
            assert entry["ph"] in ("X", "i", "M")
            if entry["ph"] == "X":
                assert entry["ts"] >= 0
                assert entry["dur"] >= 0

    def test_attempt_spans_and_queue_spans(self):
        entries = build_trace(lifecycle_events())["traceEvents"]
        spans = [e for e in entries if e["ph"] == "X"]
        names = [e["name"] for e in spans]
        assert names.count("queued") == 3    # k1, k2, k2-retry
        assert names.count("attempt") == 2   # the two completions
        assert "attempt (error)" in names    # k2's failed attempt
        # k1's fileq claim nests an executing span on the same lane.
        executing = [e for e in spans if e["name"] == "executing"]
        assert len(executing) == 1
        assert executing[0]["args"]["worker"] == "w1"

    def test_retry_queue_span_starts_at_the_failure(self):
        entries = build_trace(lifecycle_events())["traceEvents"]
        k2_lane = next(e["tid"] for e in entries
                       if e["ph"] == "M"
                       and e["args"]["name"] == "bfs/ndpage")
        queued = [e for e in entries if e["ph"] == "X"
                  and e["name"] == "queued" and e["tid"] == k2_lane]
        # Second queue span: failure at 100.2 -> redispatch at 100.5.
        assert queued[1]["ts"] == 200000.0
        assert queued[1]["dur"] == 300000.0

    def test_lanes_named_after_cell_labels(self):
        entries = build_trace(lifecycle_events())["traceEvents"]
        names = {e["args"]["name"] for e in entries
                 if e["ph"] == "M"}
        assert names == {"bfs/radix", "bfs/ndpage"}

    def test_incomplete_lifecycle_tolerated(self):
        events = lifecycle_events()[:3]   # dispatches, no outcomes
        entries = build_trace(events)["traceEvents"]
        assert all(e["name"] != "attempt" for e in entries
                   if e["ph"] == "X")


class TestExportTrace:
    def write_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("".join(e.to_json() + "\n"
                                for e in lifecycle_events()))
        return path

    def test_exports_valid_json(self, tmp_path):
        log = self.write_log(tmp_path)
        out = tmp_path / "trace.json"
        trace = export_trace(log, out)
        assert json.loads(out.read_text()) == trace
        assert trace["traceEvents"]

    def test_cell_filter_keeps_matching_lanes_only(self, tmp_path):
        log = self.write_log(tmp_path)
        out = tmp_path / "trace.json"
        trace = export_trace(log, out, cell="ndpage")
        names = {e["args"]["name"]
                 for e in trace["traceEvents"] if e["ph"] == "M"}
        assert names == {"bfs/ndpage"}
