"""Shared fixtures for the observability tests."""

import pytest

from repro.obs import events


@pytest.fixture(autouse=True)
def _no_global_sink():
    """Telemetry is process-global state: make every test start and
    end with emission disabled, whatever it installs in between."""
    previous = events.set_sink(None)
    yield
    events.set_sink(previous)
