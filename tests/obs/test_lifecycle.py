"""Cross-backend event-lifecycle tests: for every backend, an enabled
event log must contain a complete per-cell lifecycle — every
dispatched cell reaches completed or quarantined — including when a
worker is SIGKILLed mid-sweep.  And with telemetry off (the default),
sweeps must behave identically to an instrumented run."""

import dataclasses

import pytest

from repro.obs.events import get_sink, read_events
from repro.service import SweepPolicy, SweepService
from repro.sim.faults import FAULT_PLAN_ENV, reset_fired
from repro.sim.sweep import expand_grid

TINY = dict(refs_per_core=200, scale=1 / 64, seed=7)


@pytest.fixture(autouse=True)
def _fresh_faults(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    reset_fired()
    yield
    reset_fired()


def tiny_grid():
    return expand_grid(workloads=("rnd", "bfs"),
                       mechanisms=("radix", "ndpage"), **TINY)


def lifecycle(events):
    started = [e for e in events if e.type == "sweep.started"]
    dispatched = {e.data["key"] for e in events
                  if e.type == "cell.dispatched"}
    completed = {e.data["key"] for e in events
                 if e.type == "cell.completed"}
    quarantined = {e.data["key"] for e in events
                   if e.type == "cell.quarantined"}
    return started, dispatched, completed, quarantined


class TestLifecycleCompleteness:
    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1), ("pool", 2), ("fileq", 2)])
    def test_every_dispatched_cell_reaches_an_end_state(
            self, tmp_path, backend, jobs):
        log = tmp_path / "events.jsonl"
        service = SweepService(
            backend=backend, jobs=jobs,
            queue_dir=str(tmp_path / "queue"), events_out=log)
        out = service.run_grid(tiny_grid())
        assert all(r is not None for r in out.results)

        events = list(read_events(log))
        started, dispatched, completed, quarantined = \
            lifecycle(events)
        assert len(started) == 1
        assert started[0].data["missing"] == 4
        assert started[0].data["backend"] == backend
        assert len(dispatched) == 4
        assert completed == dispatched
        assert not quarantined
        finished = [e for e in events if e.type == "sweep.finished"]
        assert len(finished) == 1
        assert finished[0].data["completed"] == 4
        assert finished[0].data["failed"] == 0

    def test_killed_worker_still_yields_complete_lifecycle(
            self, tmp_path):
        log = tmp_path / "events.jsonl"
        policy = SweepPolicy(retries=1,
                             fault_plan="kill:bfs/radix/:1")
        service = SweepService(backend="pool", jobs=2, policy=policy,
                               events_out=log)
        out = service.run_grid(tiny_grid())
        assert all(r is not None for r in out.results)

        events = list(read_events(log))
        kinds = {e.type for e in events}
        assert "worker.died" in kinds
        assert "cell.retried" in kinds
        failed = [e for e in events if e.type == "cell.failed"]
        assert any(e.data["kind"] == "worker-died" for e in failed)
        _, dispatched, completed, quarantined = lifecycle(events)
        assert dispatched == completed
        assert not quarantined

    def test_quarantine_appears_in_the_event_log(self, tmp_path):
        log = tmp_path / "events.jsonl"
        policy = SweepPolicy(retries=1, strict=False,
                             fault_plan="fail:bfs/ndpage/:*")
        service = SweepService(backend="serial", policy=policy,
                               events_out=log)
        out = service.run_grid(tiny_grid())
        assert sum(1 for r in out.results if r is None) == 1

        events = list(read_events(log))
        _, dispatched, completed, quarantined = lifecycle(events)
        assert len(quarantined) == 1
        assert dispatched == completed | quarantined
        bad = [e for e in events if e.type == "cell.quarantined"]
        assert bad[0].data["attempts"] == 2
        assert "bfs/ndpage" in bad[0].data["label"]


class TestDefaultOff:
    def test_results_identical_with_and_without_telemetry(
            self, tmp_path):
        configs = tiny_grid()
        plain = SweepService(backend="serial").run_grid(configs)
        instrumented = SweepService(
            backend="serial",
            events_out=tmp_path / "events.jsonl").run_grid(configs)
        assert [dataclasses.asdict(r) for r in plain.results] \
            == [dataclasses.asdict(r) for r in instrumented.results]

    def test_sink_restored_after_instrumented_sweep(self, tmp_path):
        service = SweepService(backend="serial",
                               events_out=tmp_path / "events.jsonl")
        service.run_grid(tiny_grid())
        assert get_sink() is None

    def test_metrics_snapshot_rides_in_stats_either_way(self):
        service = SweepService(backend="serial")
        service.run_grid(tiny_grid())
        metrics = service.last_stats.metrics
        assert metrics["cells.dispatched"] == 4
        assert metrics["cell.attempt_s"]["count"] == 4
        assert metrics["cell.queue_wait_s"]["count"] == 4
