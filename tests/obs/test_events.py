"""Tests for the typed event records and their sinks."""

import json

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    Event,
    JsonlSink,
    MemorySink,
    MultiSink,
    dropped_events,
    emit,
    get_sink,
    read_events,
    session,
    set_sink,
)


class TestSchema:
    def test_round_trip_through_json(self):
        event = Event(type="cell.completed", t_wall=1700000000.5,
                      t_mono=12.25, seq=3, pid=4242,
                      data={"key": "k1", "label": "bfs/radix",
                            "attempt": 1, "wall": 0.5})
        again = Event.from_json(event.to_json())
        assert again == event

    def test_record_carries_schema_version(self):
        event = Event(type="cache.hit", t_wall=1.0, t_mono=2.0,
                      seq=1, pid=1, data={"key": "k"})
        record = json.loads(event.to_json())
        assert record["v"] == SCHEMA_VERSION
        assert record["type"] == "cache.hit"
        assert record["key"] == "k"

    def test_every_type_declares_required_fields(self):
        for fields in EVENT_TYPES.values():
            assert isinstance(fields, tuple)

    def test_unknown_type_rejected_when_enabled(self):
        set_sink(MemorySink())
        with pytest.raises(ValueError, match="unknown event type"):
            emit("cell.exploded", key="k")

    def test_missing_field_rejected_when_enabled(self):
        set_sink(MemorySink())
        with pytest.raises(ValueError, match="missing required"):
            emit("cell.completed", key="k")


class TestNullDefault:
    def test_emit_is_noop_without_sink(self):
        assert get_sink() is None
        assert emit("cache.hit", key="k") is None

    def test_disabled_path_skips_validation(self):
        # The no-sink early return happens before any schema check:
        # nonsense types cost nothing and raise nothing.
        assert emit("definitely.not.a.type") is None


class TestOrdering:
    def test_seq_strictly_increases_and_mono_nondecreasing(self):
        sink = MemorySink()
        set_sink(sink)
        for _ in range(50):
            emit("cache.hit", key="k")
        seqs = [e.seq for e in sink.events]
        monos = [e.t_mono for e in sink.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        assert monos == sorted(monos)


class TestJsonlSink:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with session(JsonlSink(path)):
            first = emit("cache.hit", key="a")
            second = emit("cache.store", key="b", wall=0.01)
        events = list(read_events(path))
        assert events == [first, second]

    def test_appends_across_sessions(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with session(JsonlSink(path)):
            emit("cache.hit", key="a")
        with session(JsonlSink(path)):
            emit("cache.hit", key="b")
        keys = [e.data["key"] for e in read_events(path)]
        assert keys == ["a", "b"]

    def test_read_events_strict_raises_on_garbage(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"not": "an event"}\n')
        with pytest.raises(ValueError, match="malformed"):
            list(read_events(path))
        assert list(read_events(path, strict=False)) == []


class TestSession:
    def test_session_installs_and_restores(self, tmp_path):
        sink = MemorySink()
        with session(sink):
            assert get_sink() is sink
            emit("cache.hit", key="k")
        assert get_sink() is None
        assert [e.type for e in sink.events] == ["cache.hit"]

    def test_nested_sessions_compose(self):
        outer, inner = MemorySink(), MemorySink()
        with session(outer):
            emit("cache.hit", key="outer-only")
            with session(inner):
                emit("cache.hit", key="both")
            emit("cache.hit", key="outer-again")
        assert [e.data["key"] for e in outer.events] \
            == ["outer-only", "both", "outer-again"]
        assert [e.data["key"] for e in inner.events] == ["both"]

    def test_session_closes_sink_on_exit(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        with session(sink):
            emit("cache.hit", key="k")
        assert sink._fd is None

    def test_multisink_fans_out(self):
        first, second = MemorySink(), MemorySink()
        set_sink(MultiSink([first, second]))
        event = emit("cache.hit", key="k")
        assert first.events == [event]
        assert second.events == [event]


class TestDroppedEvents:
    """Telemetry must never take the sweep down: failing sink writes
    are dropped, counted, and surfaced — not raised."""

    def _failing_sink(self, tmp_path):
        from repro.sim.faults import FaultPlan
        return JsonlSink(tmp_path / "events.jsonl",
                         fault_plan=FaultPlan.parse("ioerr:events/:*"))

    def test_failing_writes_are_counted_not_raised(self, tmp_path,
                                                   capsys):
        from repro.sim.faults import reset_fired
        reset_fired()
        sink = self._failing_sink(tmp_path)
        with session(sink):
            emit("cache.hit", key="k1")
            emit("cache.hit", key="k2")
            assert dropped_events() == 2
        assert sink.dropped == 2
        assert (tmp_path / "events.jsonl").read_text() == ""
        # Exactly one warning, on the first drop.
        stderr = capsys.readouterr().err
        assert stderr.count("dropping events") == 1
        reset_fired()

    def test_selective_fault_drops_only_matching_events(
            self, tmp_path):
        from repro.sim.faults import FaultPlan, reset_fired
        reset_fired()
        sink = JsonlSink(
            tmp_path / "events.jsonl",
            fault_plan=FaultPlan.parse("ioerr:events/cache.hit:*"))
        with session(sink):
            emit("cache.hit", key="k")
            emit("cache.store", key="k", wall=0.1)
        assert sink.dropped == 1
        assert [e.type for e in read_events(tmp_path / "events.jsonl")] \
            == ["cache.store"]
        reset_fired()

    def test_dropped_events_recurses_multisink(self, tmp_path):
        from repro.sim.faults import reset_fired
        reset_fired()
        failing = self._failing_sink(tmp_path)
        healthy = MemorySink()
        set_sink(MultiSink([healthy, failing]))
        emit("cache.hit", key="k")
        assert dropped_events() == 1
        assert len(healthy.events) == 1   # other sinks still receive
        reset_fired()

    def test_no_sink_reports_zero(self):
        assert dropped_events() == 0
        assert dropped_events(MemorySink()) == 0

    def test_healthy_sink_counts_nothing(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        with session(sink):
            emit("cache.hit", key="k")
        assert sink.dropped == 0
        assert dropped_events(sink) == 0
