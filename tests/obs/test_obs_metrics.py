"""Tests for the counter/gauge/histogram registry."""

import json

import pytest

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
)


class TestHistogram:
    def test_tracks_count_sum_min_max_mean(self):
        histogram = Histogram()
        for value in (0.1, 0.3, 0.2):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(0.6)
        assert snap["min"] == pytest.approx(0.1)
        assert snap["max"] == pytest.approx(0.3)
        assert snap["mean"] == pytest.approx(0.2)

    def test_empty_histogram_snapshot(self):
        snap = Histogram().snapshot()
        assert snap == {"count": 0, "sum": 0.0, "min": None,
                        "max": None, "mean": 0.0}

    def test_buckets_cover_overflow(self):
        histogram = Histogram()
        histogram.observe(10 * BUCKET_BOUNDS[-1])
        assert histogram.buckets[-1] == 1


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_type_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("a")

    def test_snapshot_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("cells.dispatched").inc(3)
        registry.gauge("workers.live").set(2)
        registry.histogram("cell.attempt_s").observe(0.25)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["cells.dispatched"] == 3
        assert snap["workers.live"] == 2
        assert snap["cell.attempt_s"]["count"] == 1
        json.dumps(snap)   # must be plain data
