"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "rnd"
        assert args.mechanism == "radix"
        assert args.cores == 4

    def test_bad_mechanism_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mechanism", "magic"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig12"])
        assert args.figure == "fig12"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "--workload", "rnd", "--cores", "1",
                     "--refs", "500"]) == 0
        out = capsys.readouterr().out
        assert "ptw_mean" in out
        assert "cycles" in out

    def test_compare_prints_speedups(self, capsys):
        assert main(["compare", "--workload", "rnd", "--cores", "1",
                     "--refs", "500",
                     "--mechanisms", "radix", "ndpage"]) == 0
        out = capsys.readouterr().out
        assert "ndpage" in out
        assert "speedup" in out

    def test_workloads_lists_table2(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "GenomicsBench" in out
        assert "33" in out

    def test_figure_fig8(self, capsys):
        assert main(["figure", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "PL2/1" in out
