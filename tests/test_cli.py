"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "rnd"
        assert args.mechanism == "radix"
        assert args.cores == 4

    def test_bad_mechanism_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mechanism", "magic"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig12"])
        assert args.figure == "fig12"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_figure_sweep_options(self):
        args = build_parser().parse_args(
            ["figure", "fig12", "--jobs", "4", "--cache-dir", "c"])
        assert args.jobs == 4
        assert args.cache_dir == "c"

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workloads == ["bfs", "xs", "rnd"]
        assert args.cores == [4]
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_sweep_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--workloads", "nope"])

    def test_backend_defaults_to_auto(self):
        for argv in (["sweep"], ["figure", "fig12"]):
            args = build_parser().parse_args(argv)
            assert args.backend == "auto"
            assert args.queue_dir is None

    def test_backend_choices(self):
        args = build_parser().parse_args(
            ["sweep", "--backend", "fileq", "--queue-dir", "q",
             "--jobs", "0"])
        assert args.backend == "fileq"
        assert args.queue_dir == "q"
        assert args.jobs == 0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--backend", "smoke"])

    def test_worker_subcommand_parses(self):
        args = build_parser().parse_args(["worker", "--queue", "q"])
        assert args.queue == "q"
        assert args.max_idle is None
        assert args.poll_interval == 0.05
        assert args.heartbeat_interval == 1.0
        assert args.stale_after == 5.0

    def test_worker_requires_queue(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])


class TestCommands:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "--workload", "rnd", "--cores", "1",
                     "--refs", "500"]) == 0
        out = capsys.readouterr().out
        assert "ptw_mean" in out
        assert "cycles" in out

    def test_compare_prints_speedups(self, capsys):
        assert main(["compare", "--workload", "rnd", "--cores", "1",
                     "--refs", "500",
                     "--mechanisms", "radix", "ndpage"]) == 0
        out = capsys.readouterr().out
        assert "ndpage" in out
        assert "speedup" in out

    def test_workloads_lists_table2(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "GenomicsBench" in out
        assert "33" in out

    def test_figure_fig8(self, capsys):
        assert main(["figure", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "PL2/1" in out

    def test_sweep_prints_grid_and_stats(self, capsys, tmp_path):
        argv = ["sweep", "--workloads", "rnd", "--mechanisms",
                "radix", "ndpage", "--cores", "1", "--refs", "300",
                "--scale", str(1 / 64),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sweep (2 cells)" in out
        assert "2 simulated" in out

        # Second invocation is served entirely from the cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 cached, 0 simulated" in out

    def test_sweep_backend_serial_explicit(self, capsys):
        assert main(["sweep", "--workloads", "rnd", "--mechanisms",
                     "radix", "--cores", "1", "--refs", "300",
                     "--scale", str(1 / 64),
                     "--backend", "serial"]) == 0
        assert "1 simulated" in capsys.readouterr().out

    def test_sweep_backend_fileq_end_to_end(self, capsys, tmp_path):
        """A fileq sweep with local workers through the CLI matches
        the cached serial re-run cell for cell."""
        argv = ["sweep", "--workloads", "rnd", "--mechanisms",
                "radix", "ndpage", "--cores", "1", "--refs", "300",
                "--scale", str(1 / 64),
                "--backend", "fileq", "--jobs", "2",
                "--queue-dir", str(tmp_path / "queue"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert "2 simulated" in capsys.readouterr().out
        # Serial re-run over the same cache: everything is a hit, so
        # the fileq results were persisted under the same keys.
        serial = ["sweep", "--workloads", "rnd", "--mechanisms",
                  "radix", "ndpage", "--cores", "1", "--refs", "300",
                  "--scale", str(1 / 64), "--backend", "serial",
                  "--cache-dir", str(tmp_path / "cache")]
        assert main(serial) == 0
        assert "2 cached, 0 simulated" in capsys.readouterr().out

    def test_sweep_fileq_requires_queue_dir(self, capsys):
        with pytest.raises(ValueError, match="queue_dir"):
            main(["sweep", "--workloads", "rnd", "--mechanisms",
                  "radix", "--cores", "1", "--refs", "300",
                  "--backend", "fileq", "--jobs", "2"])

    def test_worker_max_idle_drains_empty_queue(self, capsys,
                                                tmp_path):
        assert main(["worker", "--queue", str(tmp_path / "queue"),
                     "--max-idle", "0.1",
                     "--poll-interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "0 cell(s) executed" in out

    def test_figure_with_cache_dir(self, capsys, tmp_path):
        argv = ["figure", "fig10", "--refs", "300",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert "sweep:" in capsys.readouterr().out
        assert main(argv) == 0
        assert "0 simulated" in capsys.readouterr().out


class TestTenantSurface:
    def test_run_accepts_tenants_and_quantum(self, capsys):
        assert main(["run", "--workload", "rnd", "--cores", "1",
                     "--refs", "400", "--tenants", "2",
                     "--quantum", "128"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_sweep_accepts_tenants(self, capsys):
        assert main(["sweep", "--workloads", "rnd",
                     "--mechanisms", "radix", "--cores", "1",
                     "--refs", "300", "--tenants", "2"]) == 0
        assert "1 cells" in capsys.readouterr().out

    def test_interference_figure(self, capsys):
        assert main(["figure", "interference", "--refs", "300"]) == 0
        out = capsys.readouterr().out
        assert "mechanism" in out
        assert "2t x" in out

    def test_tenants_default_is_single_process(self):
        args = build_parser().parse_args(["run"])
        assert args.tenants == 1


class TestFaultToleranceSurface:
    SWEEP = ["sweep", "--workloads", "rnd", "--mechanisms",
             "radix", "ndpage", "--cores", "1", "--refs", "300",
             "--scale", str(1 / 64)]
    BAD_CELL = "rnd/ndpage/ndp/1c/s42"

    def test_new_flags_default_off(self):
        args = build_parser().parse_args(["sweep"])
        assert args.retries == 1
        assert args.cell_timeout is None
        assert args.keep_going is False
        assert args.strict is False
        assert args.manifest_out is None
        fig = build_parser().parse_args(["figure", "fig12"])
        assert fig.retries == 1
        assert fig.cell_timeout is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["figure", "fig12", "--retries", "3", "--cell-timeout",
             "30", "--keep-going", "--strict",
             "--manifest-out", "m.json"])
        assert args.retries == 3
        assert args.cell_timeout == 30.0
        assert args.keep_going and args.strict
        assert args.manifest_out == "m.json"

    def test_default_strict_fails_but_caches_healthy(
            self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           f"fail:{self.BAD_CELL}:*")
        cache_dir = tmp_path / "cache"
        argv = self.SWEEP + ["--retries", "0",
                             "--cache-dir", str(cache_dir)]
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "failure manifest: 1 cell(s) quarantined" in out
        assert self.BAD_CELL in out

        # Faults cleared: the re-run only simulates the casualty.
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert main(argv) == 0
        assert "1 cached, 1 simulated" in capsys.readouterr().out

    def test_keep_going_renders_holes_and_exits_zero(
            self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           f"fail:{self.BAD_CELL}:*")
        argv = self.SWEEP + ["--retries", "0", "--keep-going"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sweep (2 cells)" in out        # table still printed
        assert "-" in out                      # quarantined hole row
        assert "1 quarantined" in out
        assert self.BAD_CELL in out

    def test_keep_going_strict_exits_nonzero(self, capsys,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           f"fail:{self.BAD_CELL}:*")
        argv = self.SWEEP + ["--retries", "0", "--keep-going",
                             "--strict"]
        assert main(argv) == 1
        assert "quarantined" in capsys.readouterr().out

    def test_manifest_out_written(self, capsys, tmp_path,
                                  monkeypatch):
        import json

        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           f"fail:{self.BAD_CELL}:*")
        manifest_path = tmp_path / "manifest.json"
        argv = self.SWEEP + ["--retries", "1", "--keep-going",
                             "--manifest-out", str(manifest_path)]
        assert main(argv) == 0
        capsys.readouterr()
        data = json.loads(manifest_path.read_text())
        assert data["failed"] == 1
        assert data["failures"][0]["label"] == self.BAD_CELL
        assert data["failures"][0]["kind"] == "error"
        assert data["failures"][0]["attempts"] == 2
        assert data["retries"] == 1
        assert data["timeouts"] == 0

    def test_manifest_out_empty_on_clean_sweep(self, capsys,
                                               tmp_path):
        manifest_path = tmp_path / "manifest.json"
        import json

        argv = self.SWEEP + ["--manifest-out", str(manifest_path)]
        assert main(argv) == 0
        capsys.readouterr()
        data = json.loads(manifest_path.read_text())
        assert data["failed"] == 0
        assert data["failures"] == []

    def test_figure_keep_going_with_holes(self, capsys, monkeypatch):
        # fig10's grid runs bfs at seed 42; hole one cell of it.
        monkeypatch.setenv("REPRO_FAULT_PLAN", "fail:bfs/:*")
        argv = ["figure", "fig10", "--refs", "300", "--retries", "0",
                "--keep-going"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out


class TestObservabilityCommands:
    """The telemetry surface: --events-out/--progress on sweeps, the
    trace/status/cache/diag subcommands, and worker logging."""

    SWEEP = ["sweep", "--workloads", "rnd", "--mechanisms", "radix",
             "ndpage", "--cores", "1", "--refs", "300",
             "--scale", str(1 / 64)]

    def test_events_and_progress_default_off(self):
        for argv in (["sweep"], ["figure", "fig12"]):
            args = build_parser().parse_args(argv)
            assert args.events_out is None
            assert args.progress is False

    def test_sweep_writes_event_log(self, capsys, tmp_path):
        from repro.obs.events import read_events

        log = tmp_path / "events.jsonl"
        assert main(self.SWEEP + ["--events-out", str(log)]) == 0
        capsys.readouterr()
        types = [e.type for e in read_events(log)]
        assert types[0] == "sweep.started"
        assert types[-1] == "sweep.finished"
        assert types.count("cell.dispatched") == 2
        assert types.count("cell.completed") == 2

    def test_progress_writes_status_line_to_stderr(self, capsys):
        assert main(self.SWEEP + ["--progress"]) == 0
        err = capsys.readouterr().err
        assert "2/2 cells" in err

    def test_trace_export(self, capsys, tmp_path):
        import json

        log = tmp_path / "events.jsonl"
        assert main(self.SWEEP + ["--events-out", str(log)]) == 0
        capsys.readouterr()
        out_path = tmp_path / "trace.json"
        assert main(["trace", str(log),
                     "--out", str(out_path)]) == 0
        assert "2 cell(s)" in capsys.readouterr().out
        trace = json.loads(out_path.read_text())
        assert trace["traceEvents"]
        assert {e["ph"] for e in trace["traceEvents"]} >= {"X", "M"}

    def test_trace_default_output_path(self, capsys, tmp_path):
        log = tmp_path / "events.jsonl"
        assert main(self.SWEEP + ["--events-out", str(log)]) == 0
        capsys.readouterr()
        assert main(["trace", str(log)]) == 0
        assert (tmp_path / "events.trace.json").exists()

    def test_status_reports_missing_queue(self, capsys, tmp_path):
        assert main(["status",
                     "--queue", str(tmp_path / "nope")]) == 1
        assert "no queue directory" in capsys.readouterr().out

    def test_status_flags_stale_workers_read_only(self, capsys,
                                                  tmp_path):
        import os
        import time

        from repro.sim.backends.fileq import QueueLayout

        layout = QueueLayout(tmp_path / "queue")
        layout.ensure()
        (layout.todo / "aa.a1.json").write_text("{}")
        layout.heartbeat("live-1").touch()
        (layout.claims / "live-1").mkdir()
        dead_hb = layout.heartbeat("dead-1")
        dead_hb.touch()
        os.utime(dead_hb, (time.time() - 600, time.time() - 600))
        (layout.claims / "dead-1").mkdir()
        stale_claim = layout.claims / "dead-1" / "bb.a1.json"
        stale_claim.write_text("{}")

        assert main(["status", "--queue", str(layout.root),
                     "--stale-after", "5"]) == 0
        out = capsys.readouterr().out
        assert "1 todo item(s)" in out
        assert "live-1" in out and "live" in out
        assert "dead-1" in out and "STALE" in out
        assert "1 claim(s) held by stale workers" in out
        # Introspection never moves anything.
        assert stale_claim.exists()
        assert (layout.todo / "aa.a1.json").exists()

    def test_cache_verify_and_gc(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(self.SWEEP
                    + ["--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()

        assert main(["cache", "verify",
                     "--cache-dir", str(cache_dir)]) == 0
        assert "2 entries: 2 ok" in capsys.readouterr().out

        victim = sorted(cache_dir.glob("*.json"))[0]
        victim.write_text("not json at all")
        assert main(["cache", "verify",
                     "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 corrupt (quarantined)" in out
        assert "1 in quarantine" in out

        assert main(["cache", "gc",
                     "--cache-dir", str(cache_dir)]) == 0
        assert "1 quarantined" in capsys.readouterr().out
        assert not list((cache_dir / "quarantine").glob("*"))

    def test_diag_prints_mechanism_rows(self, capsys):
        assert main(["diag", "--cores", "1", "--refs", "300",
                     "--workloads", "rnd",
                     "--mechanisms", "radix", "ndpage"]) == 0
        out = capsys.readouterr().out
        assert "radix" in out and "ndpage" in out
        assert "sp=" in out and "ptw=" in out and "tf=" in out

    def test_diag_rejects_unknown_mechanism(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["diag", "--mechanisms", "magic"])

    def test_worker_logs_and_event_file(self, capsys, tmp_path):
        from repro.obs.events import read_events

        log = tmp_path / "worker-events.jsonl"
        assert main(["worker", "--queue", str(tmp_path / "queue"),
                     "--max-idle", "0.05", "--poll-interval", "0.01",
                     "--events-out", str(log)]) == 0
        captured = capsys.readouterr()
        assert "online" in captured.err
        assert "idle timeout" in captured.err
        types = [e.type for e in read_events(log)]
        assert "worker.spawned" in types
        assert "worker.died" in types

    def test_worker_quiet_suppresses_log_lines(self, capsys,
                                               tmp_path):
        assert main(["worker", "--queue", str(tmp_path / "queue"),
                     "--max-idle", "0.05", "--poll-interval", "0.01",
                     "--quiet"]) == 0
        assert capsys.readouterr().err == ""


class TestResilienceSurface:
    def test_resume_requires_cache_dir(self):
        with pytest.raises(SystemExit,
                           match="--resume requires --cache-dir"):
            main(["sweep", "--workloads", "rnd", "--mechanisms",
                  "radix", "--cores", "1", "--refs", "300",
                  "--resume"])

    def test_resume_flag_defaults_off(self):
        args = build_parser().parse_args(["sweep"])
        assert args.resume is False

    def test_queue_repair_clean_queue_reports_zero(self, capsys,
                                                   tmp_path):
        queue = tmp_path / "queue"
        assert main(["queue", "repair", "--queue", str(queue)]) == 0
        out = capsys.readouterr().out
        assert f"queue {queue}: 0 issue(s) repaired" in out

    def test_queue_repair_dry_run_then_apply(self, capsys, tmp_path):
        queue = tmp_path / "queue"
        orphan = queue / "todo" / "deadbeef.a1.json.tmp999"
        orphan.parent.mkdir(parents=True)
        orphan.write_text("{}")

        assert main(["queue", "repair", "--queue", str(queue),
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "tmp orphans: 1" in out
        assert "1 issue(s) found" in out
        assert orphan.exists()          # dry run touches nothing

        assert main(["queue", "repair", "--queue", str(queue)]) == 0
        assert "1 issue(s) repaired" in capsys.readouterr().out
        assert not orphan.exists()
