"""Tests for derived metrics."""

import pytest

from repro.analysis.metrics import (
    average_speedups,
    improvement_over,
    mean,
    speedup_table,
)


class FakeResult:
    def __init__(self, cycles):
        self.cycles = cycles

    def speedup_over(self, baseline):
        return baseline.cycles / self.cycles


def raw(table):
    return {
        wl: {m: FakeResult(c) for m, c in row.items()}
        for wl, row in table.items()
    }


class TestMean:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_empty(self):
        assert mean([]) == 0.0


class TestSpeedupTable:
    def test_baseline_is_one(self):
        table = speedup_table(raw({"w": {"radix": 100, "ndpage": 50}}))
        assert table["w"]["radix"] == 1.0
        assert table["w"]["ndpage"] == 2.0

    def test_multiple_workloads(self):
        table = speedup_table(raw({
            "a": {"radix": 100, "ndpage": 50},
            "b": {"radix": 100, "ndpage": 100},
        }))
        assert table["a"]["ndpage"] == 2.0
        assert table["b"]["ndpage"] == 1.0


class TestAverages:
    TABLE = {
        "a": {"radix": 1.0, "ndpage": 2.0},
        "b": {"radix": 1.0, "ndpage": 1.0},
    }

    def test_arithmetic(self):
        averages = average_speedups(self.TABLE)
        assert averages["ndpage"] == 1.5

    def test_geometric(self):
        averages = average_speedups(self.TABLE, geo=True)
        assert averages["ndpage"] == pytest.approx(2 ** 0.5)

    def test_improvement_over(self):
        assert improvement_over(self.TABLE, "ndpage", "radix") \
            == pytest.approx(0.5)

    def test_improvement_of_self_is_zero(self):
        assert improvement_over(self.TABLE, "radix", "radix") == 0.0
