"""Smoke tests for the per-figure experiment drivers (tiny parameters)."""

from repro.analysis import experiments

TINY = dict(workloads=("rnd",), refs_per_core=400, scale=1 / 64)


class TestMotivationDrivers:
    def test_ptw_latency_comparison(self):
        table = experiments.ptw_latency_comparison(num_cores=2, **TINY)
        row = table["rnd"]
        assert row["ndp"] > 0
        assert row["cpu"] > 0
        assert "increase" in row

    def test_translation_overhead_comparison(self):
        table = experiments.translation_overhead_comparison(
            num_cores=2, **TINY)
        assert 0 < table["rnd"]["ndp"] <= 1

    def test_core_scaling(self):
        out = experiments.core_scaling(core_counts=(1, 2), **TINY)
        assert set(out) == {"ndp", "cpu"}
        assert set(out["ndp"]) == {1, 2}
        assert out["ndp"][1]["ptw_latency"] > 0


class TestObservationDrivers:
    def test_l1_miss_breakdown(self):
        table = experiments.l1_miss_breakdown(num_cores=1, **TINY)
        row = table["rnd"]
        assert 0 <= row.data_ideal <= 1
        assert 0 <= row.metadata <= 1

    def test_occupancy_study(self):
        table = experiments.occupancy_study(workloads=("rnd",))
        assert table["rnd"]["PL1"] > 0.9

    def test_pte_dram_amplification(self):
        ratio = experiments.pte_dram_amplification(
            workload="bfs", num_cores=2, refs_per_core=4000, scale=1.0)
        assert ratio > 1.0

    def test_pwc_hit_rates(self):
        rates = experiments.pwc_hit_rates(num_cores=1, **TINY)
        assert "PL4" in rates


class TestSpeedupDrivers:
    def test_speedup_experiment(self):
        table, averages, raw = experiments.speedup_experiment(
            num_cores=1, mechanisms=("radix", "ndpage"), **TINY)
        assert table["rnd"]["radix"] == 1.0
        assert averages["ndpage"] == table["rnd"]["ndpage"]
        assert raw["rnd"]["ndpage"].cycles > 0

    def test_ablation_experiment(self):
        table = experiments.ablation_experiment(
            num_cores=1, workloads=("rnd",), refs_per_core=400,
            scale=1 / 64)
        assert {"radix", "ndpage", "ndpage-bypass-only"} \
            <= set(table["rnd"])


class TestTenantInterference:
    def test_interference_table_shape(self):
        table = experiments.tenant_interference(
            workload="rnd", mechanisms=("radix", "ndpage"),
            tenant_counts=(1, 2), refs_per_core=400, scale=1 / 64)
        assert set(table) == {"radix", "ndpage"}
        row = table["radix"]
        assert row["1t x"] == 1.0
        assert row["1t cpr"] > 0
        assert row["2t cpr"] > 0
        # Co-runners can only add cost (switches at minimum).
        assert row["2t x"] >= 1.0

    def test_interference_through_runner(self, tmp_path):
        from repro.sim.sweep import SweepRunner
        runner = SweepRunner(jobs=1, cache_dir=str(tmp_path))
        first = experiments.tenant_interference(
            workload="rnd", mechanisms=("radix",), tenant_counts=(1, 2),
            refs_per_core=400, scale=1 / 64, runner=runner)
        assert runner.last_stats.simulated == 2
        second = experiments.tenant_interference(
            workload="rnd", mechanisms=("radix",), tenant_counts=(1, 2),
            refs_per_core=400, scale=1 / 64, runner=runner)
        assert runner.last_stats.simulated == 0  # fully cache-served
        assert first == second

    def test_baseline_is_lowest_tenant_count_regardless_of_order(self):
        table = experiments.tenant_interference(
            workload="rnd", mechanisms=("radix",),
            tenant_counts=(2, 1), refs_per_core=400, scale=1 / 64)
        row = table["radix"]
        assert row["1t x"] == 1.0
        assert row["2t x"] >= 1.0
