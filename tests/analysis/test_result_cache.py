"""Tests for the on-disk result cache (hit/miss/invalidation/exactness)."""

import dataclasses
import json

from repro.analysis.cache import (
    CODE_VERSION,
    ResultCache,
    config_key,
    result_from_dict,
    result_to_dict,
)
from repro.sim.config import ndp_config
from repro.sim.runner import run_once


def tiny_config(**overrides):
    overrides.setdefault("workload", "rnd")
    overrides.setdefault("refs_per_core", 300)
    overrides.setdefault("scale", 1 / 64)
    return ndp_config(**overrides)


class TestConfigKey:
    def test_equal_configs_hash_equal(self):
        assert config_key(tiny_config()) == config_key(tiny_config())

    def test_any_field_changes_key(self):
        base = config_key(tiny_config())
        assert config_key(tiny_config(seed=43)) != base
        assert config_key(tiny_config(mechanism="ndpage")) != base
        assert config_key(tiny_config(refs_per_core=301)) != base

    def test_code_version_changes_key(self):
        cfg = tiny_config()
        assert config_key(cfg, "sim-v1") != config_key(cfg, "sim-v2")

    def test_key_is_hex_filename_safe(self):
        key = config_key(tiny_config())
        assert len(key) == 40
        assert set(key) <= set("0123456789abcdef")


class TestResultRoundTrip:
    def test_bit_exact_through_json(self):
        result = run_once(tiny_config())
        wire = json.loads(json.dumps(result_to_dict(result)))
        restored = result_from_dict(wire)
        assert dataclasses.asdict(restored) == \
            dataclasses.asdict(result)
        assert restored.config == result.config


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        assert cache.load(cfg) is None
        assert cfg not in cache

        result = run_once(cfg)
        cache.store(cfg, result)
        assert cfg in cache
        cached = cache.load(cfg)
        assert dataclasses.asdict(cached) == dataclasses.asdict(result)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_different_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        cache.store(cfg, run_once(cfg))
        assert cache.load(tiny_config(seed=99)) is None

    def test_code_version_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, code_version="sim-v1")
        cfg = tiny_config()
        old.store(cfg, run_once(cfg))

        new = ResultCache(tmp_path, code_version="sim-v2")
        assert new.load(cfg) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        cache.store(cfg, run_once(cfg))
        cache.path(cfg).write_text("{ truncated")
        assert cache.load(cfg) is None

    def test_stale_entry_shape_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        cache.path(cfg).write_text(json.dumps({"format": 999}))
        assert cache.load(cfg) is None

    def test_outdated_result_fields_are_a_miss(self, tmp_path):
        """An entry written before a RunResult field rename/addition
        must degrade to a miss, not crash the sweep."""
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        cache.store(cfg, run_once(cfg))
        entry = json.loads(cache.path(cfg).read_text())
        entry["result"]["bogus_old_field"] = 1          # unexpected kw
        del entry["result"]["cycles"]                   # missing kw
        cache.path(cfg).write_text(json.dumps(entry))
        assert cache.load(cfg) is None

        entry = json.loads(cache.path(cfg).read_text())
        del entry["result"]
        cache.path(cfg).write_text(json.dumps(entry))
        assert cache.load(cfg) is None

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in (1, 2, 3):
            cfg = tiny_config(seed=seed)
            cache.store(cfg, run_once(cfg))
        assert len(cache) == 3
        # clear() also sweeps up tmp orphans from a mid-write kill.
        orphan = tmp_path / "deadbeef.tmp.12345"
        orphan.write_text("partial")
        assert cache.clear() == 3
        assert len(cache) == 0
        assert not orphan.exists()

    def test_default_code_version_used(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.code_version == CODE_VERSION

    def test_hit_rate(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        cache.load(cfg)
        cache.store(cfg, run_once(cfg))
        cache.load(cfg)
        assert cache.stats.hit_rate == 0.5
