"""Tests for the on-disk result cache (hit/miss/invalidation/exactness,
entry checksums, corruption quarantine, verify/gc)."""

import dataclasses
import json

from repro.analysis.cache import (
    CODE_VERSION,
    QUARANTINE_DIR,
    ResultCache,
    config_key,
    payload_checksum,
    result_from_dict,
    result_to_dict,
)
from repro.sim.config import ndp_config
from repro.sim.runner import run_once


def tiny_config(**overrides):
    overrides.setdefault("workload", "rnd")
    overrides.setdefault("refs_per_core", 300)
    overrides.setdefault("scale", 1 / 64)
    return ndp_config(**overrides)


class TestConfigKey:
    def test_equal_configs_hash_equal(self):
        assert config_key(tiny_config()) == config_key(tiny_config())

    def test_any_field_changes_key(self):
        base = config_key(tiny_config())
        assert config_key(tiny_config(seed=43)) != base
        assert config_key(tiny_config(mechanism="ndpage")) != base
        assert config_key(tiny_config(refs_per_core=301)) != base

    def test_code_version_changes_key(self):
        cfg = tiny_config()
        assert config_key(cfg, "sim-v1") != config_key(cfg, "sim-v2")

    def test_key_is_hex_filename_safe(self):
        key = config_key(tiny_config())
        assert len(key) == 40
        assert set(key) <= set("0123456789abcdef")


class TestResultRoundTrip:
    def test_bit_exact_through_json(self):
        result = run_once(tiny_config())
        wire = json.loads(json.dumps(result_to_dict(result)))
        restored = result_from_dict(wire)
        assert dataclasses.asdict(restored) == \
            dataclasses.asdict(result)
        assert restored.config == result.config


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        assert cache.load(cfg) is None
        assert cfg not in cache

        result = run_once(cfg)
        cache.store(cfg, result)
        assert cfg in cache
        cached = cache.load(cfg)
        assert dataclasses.asdict(cached) == dataclasses.asdict(result)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_different_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        cache.store(cfg, run_once(cfg))
        assert cache.load(tiny_config(seed=99)) is None

    def test_code_version_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, code_version="sim-v1")
        cfg = tiny_config()
        old.store(cfg, run_once(cfg))

        new = ResultCache(tmp_path, code_version="sim-v2")
        assert new.load(cfg) is None

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        """Truncated JSON: miss, and the file moves to quarantine/ so
        it is not re-parsed (and re-failed) on every future run."""
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        cache.store(cfg, run_once(cfg))
        cache.path(cfg).write_text("{ truncated")
        assert cache.load(cfg) is None
        assert cache.stats.corrupt == 1
        assert not cache.path(cfg).exists()
        quarantined = tmp_path / QUARANTINE_DIR / cache.path(cfg).name
        assert quarantined.exists()
        # The slot is free: a re-store then hits again.
        cache.store(cfg, run_once(cfg))
        assert cache.load(cfg) is not None

    def test_stale_entry_shape_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        cache.path(cfg).write_text(json.dumps({"format": 999}))
        assert cache.load(cfg) is None

    def test_outdated_result_fields_are_a_miss(self, tmp_path):
        """An entry written before a RunResult field rename/addition
        must degrade to a miss, not crash the sweep."""
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        cache.store(cfg, run_once(cfg))
        entry = json.loads(cache.path(cfg).read_text())
        entry["result"]["bogus_old_field"] = 1          # unexpected kw
        del entry["result"]["cycles"]                   # missing kw
        entry["sha256"] = payload_checksum(entry["result"])
        cache.path(cfg).write_text(json.dumps(entry))
        assert cache.load(cfg) is None                  # wrong shape

        cache.store(cfg, run_once(cfg))
        entry = json.loads(cache.path(cfg).read_text())
        del entry["result"]
        cache.path(cfg).write_text(json.dumps(entry))
        assert cache.load(cfg) is None

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in (1, 2, 3):
            cfg = tiny_config(seed=seed)
            cache.store(cfg, run_once(cfg))
        assert len(cache) == 3
        # clear() also sweeps up tmp orphans from a mid-write kill.
        orphan = tmp_path / "deadbeef.tmp.12345"
        orphan.write_text("partial")
        assert cache.clear() == 3
        assert len(cache) == 0
        assert not orphan.exists()

    def test_default_code_version_used(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.code_version == CODE_VERSION

    def test_hit_rate(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        cache.load(cfg)
        cache.store(cfg, run_once(cfg))
        cache.load(cfg)
        assert cache.stats.hit_rate == 0.5


class TestEntryIntegrity:
    def test_store_writes_v2_with_checksum(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        cache.store(cfg, run_once(cfg))
        entry = json.loads(cache.path(cfg).read_text())
        assert entry["format"] == 2
        assert entry["code_version"] == CODE_VERSION
        assert entry["sha256"] == payload_checksum(entry["result"])

    def test_checksum_mismatch_is_corrupt(self, tmp_path):
        """A bit flip that keeps the JSON valid must not be served."""
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        cache.store(cfg, run_once(cfg))
        entry = json.loads(cache.path(cfg).read_text())
        entry["result"]["cycles"] += 1.0        # plausible but wrong
        cache.path(cfg).write_text(json.dumps(entry))
        assert cache.load(cfg) is None
        assert cache.stats.corrupt == 1
        assert (tmp_path / QUARANTINE_DIR / cache.path(cfg).name).exists()

    def test_stale_code_version_not_quarantined(self, tmp_path):
        """Another code version is a miss, not corruption: the bytes
        are fine and gc (not load) decides their fate."""
        old = ResultCache(tmp_path, code_version="sim-v1")
        cfg = tiny_config()
        old.store(cfg, run_once(cfg))
        new = ResultCache(tmp_path, code_version="sim-v2")
        assert new.load(cfg) is None
        assert new.stats.corrupt == 0
        assert old.path(cfg).exists()

    def test_v1_entry_readable_and_migrated(self, tmp_path):
        """Pre-checksum entries still hit, and the first load rewrites
        them as v2 so integrity covers them from then on."""
        cache = ResultCache(tmp_path)
        cfg = tiny_config()
        result = run_once(cfg)
        v1 = {
            "format": 1,
            "code_version": CODE_VERSION,
            "result": result_to_dict(result),
        }
        cache.root.mkdir(parents=True, exist_ok=True)
        cache.path(cfg).write_text(json.dumps(v1) + "\n")

        loaded = cache.load(cfg)
        assert loaded is not None
        assert dataclasses.asdict(loaded) == dataclasses.asdict(result)
        assert cache.stats.hits == 1

        migrated = json.loads(cache.path(cfg).read_text())
        assert migrated["format"] == 2
        assert migrated["sha256"] == payload_checksum(migrated["result"])
        # And the migrated entry is bit-identical on a re-load.
        again = cache.load(cfg)
        assert dataclasses.asdict(again) == dataclasses.asdict(result)


class TestVerifyAndGc:
    def _populate(self, tmp_path):
        """3 good entries, 1 checksum-corrupt, 1 stale, 1 tmp orphan."""
        cache = ResultCache(tmp_path)
        for seed in (1, 2, 3, 4):
            cfg = tiny_config(seed=seed)
            cache.store(cfg, run_once(cfg))
        bad = cache.path(tiny_config(seed=4))
        entry = json.loads(bad.read_text())
        entry["result"]["cycles"] += 1.0
        bad.write_text(json.dumps(entry))

        stale = ResultCache(tmp_path, code_version="sim-v0")
        cfg = tiny_config(seed=9)
        stale.store(cfg, run_once(cfg))
        (tmp_path / "deadbeef.tmp.999").write_text("partial")
        return cache

    def test_verify_reports_and_quarantines(self, tmp_path):
        cache = self._populate(tmp_path)
        report = cache.verify()
        assert report.checked == 5
        assert report.ok == 3
        assert report.corrupt == 1
        assert report.stale == 1
        assert report.tmp_orphans == 1
        assert report.quarantined_total == 1
        assert "3 ok" in report.summary()
        # Idempotent: a second pass finds nothing new to quarantine.
        second = cache.verify()
        assert second.corrupt == 0
        assert second.ok == 3
        assert second.quarantined_total == 1

    def test_gc_removes_waste_keeps_live_entries(self, tmp_path):
        cache = self._populate(tmp_path)
        cache.verify()   # corrupt entry -> quarantine/
        removed = cache.gc()
        assert removed == {"tmp_orphans": 1, "stale": 1, "corrupt": 0,
                           "quarantined": 1}
        assert len(cache) == 3
        for seed in (1, 2, 3):
            assert cache.load(tiny_config(seed=seed)) is not None

    def test_gc_without_verify_removes_corrupt_directly(self, tmp_path):
        cache = self._populate(tmp_path)
        removed = cache.gc()
        assert removed["corrupt"] == 1
        assert removed["stale"] == 1
        assert len(cache) == 3

    def test_verify_empty_cache(self, tmp_path):
        report = ResultCache(tmp_path / "never-written").verify()
        assert report.checked == 0
        assert report.quarantined_total == 0


class TestConcurrentClear:
    def test_clear_tolerates_concurrent_deletion(self, tmp_path):
        """A second process clearing the same directory must not make
        ours crash with FileNotFoundError mid-iteration."""
        cache = ResultCache(tmp_path)
        paths = []
        for seed in (1, 2, 3):
            cfg = tiny_config(seed=seed)
            cache.store(cfg, run_once(cfg))
            paths.append(cache.path(cfg))

        class RacingPath:
            """Delegates to the real root but deletes one listed entry
            before glob() returns — a stale directory listing."""

            def __init__(self, real, victim):
                self._real, self._victim = real, victim

            def glob(self, pattern):
                listing = list(self._real.glob(pattern))
                if self._victim in listing:
                    self._victim.unlink()
                return listing

            def __truediv__(self, other):
                return self._real / other

            def __getattr__(self, name):
                return getattr(self._real, name)

        cache.root = RacingPath(tmp_path, paths[1])
        assert cache.clear() == 2       # the race winner isn't counted
        assert not any(p.exists() for p in paths)
