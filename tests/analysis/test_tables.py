"""Tests for ASCII table rendering."""

import pytest

from repro.analysis.tables import format_mapping_table, format_table


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["name", "value"], [["x", 1.5]])
        assert "name" in text
        assert "x" in text
        assert "1.500" in text

    def test_title_underlined(self):
        text = format_table(["a"], [[1]], title="Fig. 12")
        lines = text.splitlines()
        assert lines[0] == "Fig. 12"
        assert lines[1] == "=" * len("Fig. 12")

    def test_alignment(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[-1]) == len("a-much-longer-cell")

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_floats_formatted(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.123" in text


class TestMappingTable:
    def test_nested_mapping(self):
        table = {"bfs": {"radix": 1.0, "ndpage": 1.4}}
        text = format_mapping_table(table, ["radix", "ndpage"],
                                    row_label="workload")
        assert "bfs" in text
        assert "1.400" in text

    def test_missing_cell_is_nan(self):
        table = {"bfs": {"radix": 1.0}}
        text = format_mapping_table(table, ["radix", "ndpage"],
                                    row_label="workload")
        assert "nan" in text
