"""NUMA topology tests: per-node pools, placement, distance charging,
golden pins and sweep-pool determinism.

The flat single-node machine must stay bit-identical to earlier
releases (pinned by the existing golden tests and cache-key tests);
multi-node machines get their own golden values here.
"""

import dataclasses

import pytest

from repro.mem.dram import HBM2
from repro.mem.hierarchy import build_ndp_hierarchy
from repro.mem.request import KIND_DATA
from repro.sim.config import NumaParams, ndp_config
from repro.sim.runner import run_once
from repro.sim.sweep import SweepRunner
from repro.sim.topology import NumaFrameAllocator, NumaTopology
from repro.vm.address import (
    NODE_FRAME_MASK,
    NODE_FRAME_SHIFT,
    NODE_PADDR_SHIFT,
    node_of_frame,
    node_of_paddr,
)
from repro.vm.frames import FRAMES_PER_BLOCK, OutOfMemoryError
from repro.vm.os_model import OSMemoryManager
from repro.vm.radix import PT_ALLOC_SITE, RadixPageTable

MIB = 1024 ** 2


def topo2(node_bytes=64 * MIB, num_cores=2, tenants=2, remote=150.0):
    distance = [[0.0, remote], [remote, 0.0]]
    return NumaTopology(2, distance,
                        core_nodes=[c * 2 // num_cores
                                    for c in range(num_cores)],
                        tenant_nodes=[a % 2 for a in range(tenants)],
                        node_bytes=node_bytes)


def facade(placement="local", node_bytes=64 * MIB, **params):
    topo = topo2(node_bytes=node_bytes)
    return NumaFrameAllocator(
        topo, NumaParams(nodes=2, placement=placement, **params))


class TestNumaTopology:
    def test_from_params_shapes(self):
        topo = NumaTopology.from_params(
            NumaParams(nodes=4, remote_cycles=100), num_cores=8,
            tenants=4, phys_bytes=1024 * MIB)
        assert topo.nodes == 4
        assert topo.node_bytes == 256 * MIB
        # Cores spread in contiguous blocks, tenants round-robin.
        assert topo.core_nodes == (0, 0, 1, 1, 2, 2, 3, 3)
        assert topo.tenant_nodes == (0, 1, 2, 3)
        assert topo.distance[0][0] == 0.0
        assert topo.distance[0][3] == 100.0

    def test_penalty_rows_follow_core_homes(self):
        topo = topo2()
        rows = topo.penalty_rows()
        assert rows[0] == (0.0, 150.0)   # core 0 lives on node 0
        assert rows[1] == (150.0, 0.0)   # core 1 lives on node 1

    def test_fallback_order_nearest_first(self):
        topo = NumaTopology(
            3, [[0, 50, 10], [50, 0, 20], [10, 20, 0]],
            core_nodes=[0], tenant_nodes=[0], node_bytes=64 * MIB)
        assert topo.fallback_order(0) == (0, 2, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            NumaTopology(2, [[0.0]], [0], [0], 64 * MIB)  # not square
        with pytest.raises(ValueError):
            NumaTopology(2, [[1.0, 5], [5, 0.0]], [0], [0],
                         64 * MIB)  # non-zero diagonal
        with pytest.raises(ValueError):
            NumaTopology(2, [[0, -1], [5, 0]], [0], [0], 64 * MIB)
        with pytest.raises(ValueError):
            NumaTopology(2, [[0, 5], [5, 0]], [2], [0],
                         64 * MIB)  # core home out of range

    def test_params_validation(self):
        with pytest.raises(ValueError):
            NumaParams(nodes=0)
        with pytest.raises(ValueError):
            NumaParams(nodes=2, placement="nope")
        with pytest.raises(ValueError):
            NumaParams(nodes=2, remote_cycles=-1)
        with pytest.raises(ValueError):
            NumaParams(nodes=2, preferred_node=2)

    def test_single_node_params_normalize_to_default(self):
        """Placement/distance are moot on a flat machine: a 1-node
        NumaParams must equal the default regardless of the knobs, so
        bit-identical runs cannot get distinct cache keys."""
        from repro.sim.config import ndp_config as cfg
        assert NumaParams(nodes=1, placement="interleave",
                          remote_cycles=999) == NumaParams()
        assert cfg(numa=NumaParams(nodes=1, placement="pte-local")
                   ).canonical_json() == cfg().canonical_json()

    def test_from_params_uses_distance_matrix(self):
        """NumaParams.distance_matrix overrides the uniform
        remote_cycles derivation (asymmetric interconnects)."""
        topo = NumaTopology.from_params(
            NumaParams(nodes=2, remote_cycles=150,
                       distance_matrix=((0, 300), (40, 0))),
            num_cores=2, tenants=1, phys_bytes=128 * MIB)
        assert topo.distance == ((0.0, 300.0), (40.0, 0.0))
        # Direction-dependent penalties reach the hierarchy rows.
        rows = topo.penalty_rows()
        assert rows[0] == (0.0, 300.0)  # core 0 (node 0) -> node 1
        assert rows[1] == (40.0, 0.0)   # core 1 (node 1) -> node 0

    def test_asymmetric_distances_charge_directionally(self):
        """A run where node-0 cores pay more for remote DRAM than
        node-1 cores: the total penalty must differ from the
        transposed matrix (same topology, reversed asymmetry)."""
        def run(matrix):
            cfg = ndp_config(
                workload="rnd", refs_per_core=800, scale=1 / 64,
                seed=7, num_cores=2,
                numa=NumaParams(nodes=2, placement="interleave",
                                distance_matrix=matrix))
            return run_once(cfg)

        steep = run(((0, 400), (40, 0)))
        shallow = run(((0, 40), (400, 0)))
        assert steep.extras["remote_penalty_cycles"] > 0
        assert steep.extras["remote_penalty_cycles"] \
            != shallow.extras["remote_penalty_cycles"]


class TestNumaFrameAllocator:
    def test_local_placement_tags_by_site_node(self):
        alloc = facade("local")
        f0 = alloc.alloc_frame(site=0)
        f1 = alloc.alloc_frame(site=1)
        assert node_of_frame(f0) == 0
        assert node_of_frame(f1) == 1
        # The tag lands at the documented physical-address bit.
        assert node_of_paddr(alloc.frame_paddr(f1)) == 1
        assert f1 >> NODE_FRAME_SHIFT == 1

    def test_interleave_round_robins(self):
        alloc = facade("interleave")
        nodes = [node_of_frame(alloc.alloc_frame(site=0))
                 for _ in range(6)]
        assert nodes == [0, 1, 0, 1, 0, 1]

    def test_preferred_node_pins(self):
        alloc = facade("preferred-node", preferred_node=1)
        nodes = {node_of_frame(alloc.alloc_frame(site=s))
                 for s in (0, 1, 0, 1)}
        assert nodes == {1}

    def test_pte_local_splits_metadata_from_data(self):
        alloc = facade("pte-local")
        alloc.note_fault_site(1)   # fault handled on core 1 (node 1)
        pte = alloc.alloc_frame(site=PT_ALLOC_SITE)
        assert node_of_frame(pte) == 1
        assert alloc.numa_stats.pte_allocs == [0, 1]
        # Data interleaves regardless of the faulting core.
        data = [node_of_frame(alloc.alloc_frame(site=1))
                for _ in range(4)]
        assert data == [0, 1, 0, 1]

    def test_free_returns_to_owning_pool(self):
        alloc = facade("local")
        frame = alloc.alloc_frame(site=1)
        before = alloc.pools[1].stats.frees
        alloc.free_frame(frame)
        assert alloc.pools[1].stats.frees == before + 1
        assert alloc.pools[0].stats.frees == 0

    def test_huge_alloc_tags_and_frees_round_trip(self):
        alloc = facade("local")
        block = alloc.alloc_huge(site=1)
        assert block is not None
        assert node_of_frame(block) == 1
        assert (block & NODE_FRAME_MASK) % FRAMES_PER_BLOCK == 0
        alloc.free_block(block)

    def test_spill_falls_back_off_node(self):
        # Node 0's pool is tiny: local allocations from core 0 must
        # spill to node 1 once node 0 runs dry instead of OOMing.
        alloc = facade("local", node_bytes=4 * MIB)
        # Each 4 MiB node holds 2 blocks, one reserved: 512 usable
        # frames — 600 local requests must cross into node 1.
        frames = [alloc.alloc_frame(site=0) for _ in range(600)]
        nodes = {node_of_frame(f) for f in frames}
        assert nodes == {0, 1}
        assert alloc.numa_stats.spills > 0
        assert alloc.spill_fraction > 0.0

    def test_huge_spills_reported(self):
        # 4 MiB per node = one usable block each: the second huge
        # allocation under preferred-node must spill to node 1 and be
        # visible in total_spills / spill_fraction.
        alloc = facade("preferred-node", node_bytes=4 * MIB)
        first = alloc.alloc_huge(site=0)
        second = alloc.alloc_huge(site=0)
        assert node_of_frame(first) == 0
        assert node_of_frame(second) == 1
        assert alloc.numa_stats.huge_spills == 1
        assert alloc.numa_stats.spills == 0
        assert alloc.total_spills == 1
        assert alloc.spill_fraction == 0.5
        # No failure booked for the probe of empty node 0 on the way
        # to the spill — failures count per failed *call*, flat-style.
        assert alloc.stats.huge_failures == 0
        # Every node dry: huge allocation reports None (contiguity
        # exhaustion) and books exactly one failure, as on the flat
        # machine — not one per probed node.
        assert alloc.alloc_huge(site=0) is None
        assert alloc.stats.huge_failures == 1
        assert alloc.stats.huge_allocs == 2

    def test_machine_wide_oom_only_when_all_pools_dry(self):
        alloc = facade("local", node_bytes=4 * MIB)
        with pytest.raises(OutOfMemoryError):
            for _ in range(10_000):
                alloc.alloc_frame(site=0)
        assert alloc.free_frames == 0

    def test_aggregate_surfaces(self):
        alloc = facade("interleave")
        assert alloc.num_frames == sum(p.num_frames
                                       for p in alloc.pools)
        for _ in range(8):
            alloc.alloc_frame(site=0)
        assert alloc.stats.small_allocs == 8
        assert 0.0 < alloc.pressure < 1.0
        assert alloc.node_pressure(0) > 0.0


class TestDistanceCharging:
    def probe(self, hierarchy, core, paddr):
        return hierarchy.access_fast(0.0, paddr, KIND_DATA, 0, core, 0)

    def build(self):
        penalty = ((0.0, 150.0), (150.0, 0.0))
        return build_ndp_hierarchy(2, HBM2, numa_nodes=2,
                                   numa_penalty=penalty)

    def test_remote_access_pays_distance(self):
        local = self.build()
        remote = self.build()
        paddr = 123 * 64
        tagged = paddr | (1 << NODE_PADDR_SHIFT)
        base = self.probe(local, 1, tagged)    # core 1 is node 1: local
        far = self.probe(remote, 0, tagged)    # core 0 crossing nodes
        assert far == base + 150.0
        assert remote.stats.remote_reads == 1
        assert remote.stats.remote_penalty_cycles == 150.0
        assert local.stats.remote_reads == 0

    def test_remote_request_served_by_remote_device(self):
        hierarchy = self.build()
        tagged = (7 * 64) | (1 << NODE_PADDR_SHIFT)
        self.probe(hierarchy, 0, tagged)
        assert hierarchy.drams[1].stats.accesses == 1
        assert hierarchy.drams[0].stats.accesses == 0
        merged = hierarchy.dram_stats()
        assert merged.accesses == 1

    def test_single_node_builder_unchanged(self):
        flat = build_ndp_hierarchy(2, HBM2)
        assert flat.drams is None
        assert flat.dram_stats() is flat.dram.stats

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            build_ndp_hierarchy(2, HBM2, numa_nodes=2)  # no penalty
        with pytest.raises(ValueError):
            build_ndp_hierarchy(2, HBM2, numa_nodes=2,
                                numa_penalty=((0.0,),))  # wrong shape


class TestOsNumaIntegration:
    def test_pte_local_pins_table_pages_to_faulting_node(self):
        alloc = facade("pte-local")
        table = RadixPageTable(alloc)
        os_model = OSMemoryManager(alloc, table)
        # Faults handled on core 1 must put every page-table node that
        # the mapping creates on node 1 (the root predates any fault
        # hint and lands on node 0's default).
        root_allocs = list(alloc.numa_stats.pte_allocs)
        for i in range(16):
            os_model.ensure_mapped(i << 30, site=1)  # distinct subtrees
        grown = [now - before for now, before in
                 zip(alloc.numa_stats.pte_allocs, root_allocs)]
        assert grown[0] == 0
        assert grown[1] > 0

    def test_local_policy_follows_fault_site_for_data(self):
        alloc = facade("local")
        table = RadixPageTable(alloc)
        os_model = OSMemoryManager(alloc, table)
        os_model.ensure_mapped(0x1000, site=1)
        translation = table.lookup(1)
        assert node_of_frame(translation.pfn) == 1


def numa_golden_config(mechanism, placement):
    return ndp_config(mechanism=mechanism, workload="bfs",
                      refs_per_core=3000, scale=1 / 64, seed=7,
                      num_cores=2,
                      numa=NumaParams(nodes=2, placement=placement))


#: Golden 2-node values (2 cores, bfs @ 1/64 scale, 150-cycle
#: distance).  Deterministic like every other golden: a change that
#: moves these perturbs the NUMA simulation and must be deliberate
#: (and must bump CODE_VERSION in analysis/cache.py).
NUMA_GOLDEN = {
    ("radix", "interleave"): {
        "cycles": 510318.0,
        "references": 6000,
        "walks": 4105,
        "tlb_miss_rate": 0.6841666666666667,
    },
    ("radix", "pte-local"): {
        "cycles": 570382.0,
        "references": 6000,
        "walks": 4105,
        "tlb_miss_rate": 0.6841666666666667,
    },
    ("ndpage", "interleave"): {
        "cycles": 603004.0,
        "references": 6000,
        "walks": 4105,
        "tlb_miss_rate": 0.6841666666666667,
    },
}

NUMA_GOLDEN_EXTRAS = {
    ("radix", "interleave"): {
        "remote_dram_reads": 4004.0,
        "remote_fraction": 0.48728246318607765,
        "remote_penalty_cycles": 600600.0,
    },
    ("radix", "pte-local"): {
        "remote_dram_reads": 3793.0,
        "remote_fraction": 0.46160399172447364,
        "remote_penalty_cycles": 568950.0,
    },
    ("ndpage", "interleave"): {
        "remote_dram_reads": 4194.0,
        "remote_fraction": 0.494750501356612,
        "remote_penalty_cycles": 629100.0,
    },
}


class TestNumaGolden:
    @pytest.mark.parametrize("cell", sorted(NUMA_GOLDEN))
    def test_run_result_matches_golden(self, cell):
        result = run_once(numa_golden_config(*cell))
        golden = NUMA_GOLDEN[cell]
        mismatches = {
            name: (getattr(result, name), expected)
            for name, expected in golden.items()
            if getattr(result, name) != expected
        }
        assert not mismatches, (
            f"{cell}: NUMA statistics drifted: {mismatches}")
        for name, expected in NUMA_GOLDEN_EXTRAS[cell].items():
            assert result.extras[name] == expected, name
        assert result.extras["numa_nodes"] == 2.0

    def test_deterministic_across_calls(self):
        cfg = numa_golden_config("radix", "interleave")
        first = dataclasses.asdict(run_once(cfg))
        second = dataclasses.asdict(run_once(cfg))
        assert first == second

    def test_deterministic_across_worker_counts(self):
        """2-node cells through the pool = serial, field for field."""
        configs = [numa_golden_config(m, p)
                   for m, p in sorted(NUMA_GOLDEN)]
        serial = SweepRunner(jobs=1).run(configs)
        pooled = SweepRunner(jobs=2).run(configs)
        for a, b in zip(serial, pooled):
            fields_a = dataclasses.asdict(a)
            fields_b = dataclasses.asdict(b)
            assert fields_a == fields_b

    def test_remote_penalty_zero_makes_interleave_distance_free(self):
        cfg = ndp_config(workload="bfs", refs_per_core=1000,
                         scale=1 / 64, seed=7, num_cores=2,
                         numa=NumaParams(nodes=2,
                                         placement="interleave",
                                         remote_cycles=0))
        result = run_once(cfg)
        assert result.extras["remote_penalty_cycles"] == 0.0
        assert result.extras["remote_dram_reads"] == 0.0


class TestMultiTenantNuma:
    def test_slot_queues_start_with_node_local_tenant(self):
        from repro.sim.system import System
        cfg = ndp_config(workload="bfs", refs_per_core=500,
                         scale=1 / 64, seed=7, tenants=2, num_cores=2,
                         numa=NumaParams(nodes=2))
        system = System(cfg)
        # Slot 0 lives on node 0: tenant 0 (home node 0) first.
        assert [c.mmu.asid for c in system.engine.slots[0].cores] \
            == [0, 1]
        # Slot 1 lives on node 1: tenant 1 first.
        assert [c.mmu.asid for c in system.engine.slots[1].cores] \
            == [1, 0]

    def test_single_node_slot_order_is_asid_order(self):
        from repro.sim.system import System
        cfg = ndp_config(workload="bfs", refs_per_core=500,
                         scale=1 / 64, seed=7, tenants=2, num_cores=2)
        system = System(cfg)
        for slot in system.engine.slots:
            assert [c.mmu.asid for c in slot.cores] == [0, 1]

    def test_references_conserved_under_numa(self):
        cfg = ndp_config(workload="bfs", refs_per_core=800,
                         scale=1 / 64, seed=7, tenants=2, num_cores=2,
                         numa=NumaParams(nodes=2,
                                         placement="interleave"))
        result = run_once(cfg)
        assert result.references == 2 * 2 * 800
        assert result.extras["numa_nodes"] == 2.0
