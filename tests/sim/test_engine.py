"""Tests for the multi-core event engine."""

import pytest

from repro.sim.config import ndp_config
from repro.sim.engine import SimulationEngine
from repro.sim.system import System


class TestEngine:
    def test_needs_cores(self):
        with pytest.raises(ValueError):
            SimulationEngine([])

    def test_all_cores_run_to_completion(self):
        system = System(ndp_config(workload="rnd", num_cores=2,
                                   refs_per_core=300, scale=1 / 64))
        system.run()
        for core in system.cores:
            assert core.stats.references == 300
            assert core.finished

    def test_global_cycles_is_slowest_core(self):
        system = System(ndp_config(workload="rnd", num_cores=2,
                                   refs_per_core=300, scale=1 / 64))
        cycles = system.run()
        assert cycles == max(c.stats.cycles for c in system.cores)

    def test_deterministic_across_runs(self):
        results = []
        for _ in range(2):
            system = System(ndp_config(workload="bfs", num_cores=2,
                                       refs_per_core=400, scale=1 / 64,
                                       seed=7))
            results.append(system.run())
        assert results[0] == results[1]

    def test_cores_interleave_on_shared_dram(self):
        """Two cores must finish later per-core than one core alone
        (bank contention), but sooner than strictly serialized."""
        solo = System(ndp_config(workload="rnd", num_cores=1,
                                 refs_per_core=500, scale=1 / 64))
        solo_cycles = solo.run()
        duo = System(ndp_config(workload="rnd", num_cores=2,
                                refs_per_core=500, scale=1 / 64))
        duo_cycles = duo.run()
        assert duo_cycles > solo_cycles * 0.9
        assert duo_cycles < solo_cycles * 2
