"""Tests for the multi-core run-ahead event engine.

The run-ahead loops (linear scan at small core counts, heap above)
must be bit-identical to the per-reference heap engine kept behind
``REPRO_REFERENCE_ENGINE=1`` — pinned here over core counts, engines
and mechanisms, plus mid-chunk ``step_until`` resume units.
"""

import dataclasses
from math import inf

import pytest

from repro.sim.config import ndp_config
from repro.sim.engine import (
    LINEAR_SCAN_MAX,
    REFERENCE_ENGINE_ENV,
    SimulationEngine,
    runahead_bound,
)
from repro.sim.runner import collect, run_once
from repro.sim.system import System


def result_fields(result) -> dict:
    fields = dataclasses.asdict(result)
    fields.pop("config")
    return fields


class TestEngine:
    def test_needs_cores(self):
        with pytest.raises(ValueError):
            SimulationEngine([])

    def test_all_cores_run_to_completion(self):
        system = System(ndp_config(workload="rnd", num_cores=2,
                                   refs_per_core=300, scale=1 / 64))
        system.run()
        for core in system.cores:
            assert core.stats.references == 300
            assert core.finished

    def test_global_cycles_is_slowest_core(self):
        system = System(ndp_config(workload="rnd", num_cores=2,
                                   refs_per_core=300, scale=1 / 64))
        cycles = system.run()
        assert cycles == max(c.stats.cycles for c in system.cores)

    def test_deterministic_across_runs(self):
        results = []
        for _ in range(2):
            system = System(ndp_config(workload="bfs", num_cores=2,
                                       refs_per_core=400, scale=1 / 64,
                                       seed=7))
            results.append(system.run())
        assert results[0] == results[1]

    def test_cores_interleave_on_shared_dram(self):
        """Two cores must finish later per-core than one core alone
        (bank contention), but sooner than strictly serialized."""
        solo = System(ndp_config(workload="rnd", num_cores=1,
                                 refs_per_core=500, scale=1 / 64))
        solo_cycles = solo.run()
        duo = System(ndp_config(workload="rnd", num_cores=2,
                                refs_per_core=500, scale=1 / 64))
        duo_cycles = duo.run()
        assert duo_cycles > solo_cycles * 0.9
        assert duo_cycles < solo_cycles * 2


class TestRunAheadEquivalence:
    """Run-ahead loops == reference heap engine, bit for bit."""

    @pytest.mark.parametrize("mechanism", ["radix", "ndpage"])
    @pytest.mark.parametrize("cores", [2, 4, 8])
    def test_matches_reference_engine(self, cores, mechanism,
                                      monkeypatch):
        config = ndp_config(workload="bfs", mechanism=mechanism,
                            num_cores=cores, refs_per_core=700,
                            scale=1 / 64, seed=7)
        fast = result_fields(run_once(config))
        monkeypatch.setenv(REFERENCE_ENGINE_ENV, "1")
        reference = result_fields(run_once(config))
        diff = {
            key: (fast[key], reference[key])
            for key in fast if fast[key] != reference[key]
        }
        assert not diff, (
            f"run-ahead diverged from the reference engine: {diff}")

    def test_single_core_honors_reference_env(self, monkeypatch):
        """The env var bypasses the chunked fast path even at 1 core,
        so the reference engine is always reachable for debugging."""
        config = ndp_config(workload="bfs", mechanism="radix",
                            num_cores=1, refs_per_core=700,
                            scale=1 / 64, seed=7)
        fast = result_fields(run_once(config))
        monkeypatch.setenv(REFERENCE_ENGINE_ENV, "1")
        reference = result_fields(run_once(config))
        assert fast == reference

    def test_heap_runahead_matches_reference(self, monkeypatch):
        """Core counts past LINEAR_SCAN_MAX take the heap run-ahead."""
        config = ndp_config(workload="rnd", mechanism="radix",
                            num_cores=LINEAR_SCAN_MAX + 1,
                            refs_per_core=250, scale=1 / 64, seed=7)
        fast = result_fields(run_once(config))
        monkeypatch.setenv(REFERENCE_ENGINE_ENV, "1")
        reference = result_fields(run_once(config))
        assert fast == reference

    def test_reference_env_zero_means_off(self, monkeypatch):
        """'0' (and empty) leave the run-ahead engine active."""
        from repro.sim.engine import reference_engine_enabled
        monkeypatch.setenv(REFERENCE_ENGINE_ENV, "0")
        assert not reference_engine_enabled()
        monkeypatch.setenv(REFERENCE_ENGINE_ENV, "")
        assert not reference_engine_enabled()
        monkeypatch.setenv(REFERENCE_ENGINE_ENV, "1")
        assert reference_engine_enabled()


class TestRunaheadBound:
    def test_winning_tiebreak_is_inclusive(self):
        bound = runahead_bound(100.0, 0, 1)
        assert bound > 100.0          # may run *at* the deadline
        assert not bound > 100.0 + 1e-9   # but not beyond it

    def test_losing_tiebreak_is_exclusive(self):
        assert runahead_bound(100.0, 2, 1) == 100.0


class TestStepUntil:
    """Mid-chunk resume and budget semantics of Core.step_until."""

    def small_config(self, **overrides):
        overrides.setdefault("workload", "bfs")
        overrides.setdefault("mechanism", "radix")
        overrides.setdefault("refs_per_core", 3000)
        overrides.setdefault("scale", 1 / 64)
        overrides.setdefault("seed", 7)
        return ndp_config(**overrides)

    def test_bounded_resume_matches_one_shot(self):
        """Driving a core in many small deadline windows — pausing and
        resuming mid-chunk — must reproduce the one-shot run."""
        one_shot = run_once(self.small_config())

        system = System(self.small_config())
        core = system.cores[0]
        now = 0.0
        while True:
            nxt = core.step_until(now, now + 64.0)
            if nxt is None:
                break
            now = nxt
        paused = collect(
            system, max(c.stats.cycles for c in system.cores))
        assert result_fields(one_shot) == result_fields(paused)

    def test_budget_resume_matches_one_shot(self):
        """Same, slicing by reference budget instead of deadline."""
        one_shot = run_once(self.small_config())

        system = System(self.small_config())
        core = system.cores[0]
        now = 0.0
        while True:
            nxt = core.step_until(now, inf, 37)
            if nxt is None:
                break
            now = nxt
        paused = collect(
            system, max(c.stats.cycles for c in system.cores))
        assert result_fields(one_shot) == result_fields(paused)

    def test_budget_consumes_exactly_max_refs(self):
        system = System(self.small_config())
        core = system.cores[0]
        nxt = core.step_until(0.0, inf, 123)
        assert nxt is not None
        assert core.stats.references == 123

    def test_mixes_with_step(self):
        """step() and step_until() share the persistent cursor."""
        one_shot = run_once(self.small_config())

        system = System(self.small_config())
        core = system.cores[0]
        now = 0.0
        while True:
            nxt = core.step_until(now, inf, 10)
            if nxt is None:
                break
            nxt = core.step(nxt)  # one reference the per-item way
            if nxt is None:
                break
            now = nxt
        paused = collect(
            system, max(c.stats.cycles for c in system.cores))
        assert result_fields(one_shot) == result_fields(paused)

    def test_exhausted_core_keeps_reporting_none(self):
        system = System(self.small_config(refs_per_core=50))
        core = system.cores[0]
        assert core.step_until(0.0, inf) is None
        assert core.finished
        assert core.step_until(core.stats.cycles, inf) is None
