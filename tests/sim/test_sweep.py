"""Tests for the parallel sweep orchestrator.

The contract the figure drivers build on: parallel == serial bit for
bit, results come back in input order, duplicate cells are simulated
once, and an interrupted sweep resumes from the on-disk cache running
only the missing cells.
"""

import dataclasses

import pytest

from repro.analysis.cache import ResultCache
from repro.sim.runner import run_once
from repro.sim.sweep import (
    SweepRunner,
    derive_seed,
    expand_grid,
    run_sweep,
)

TINY = dict(refs_per_core=300, scale=1 / 64, seed=7)


def tiny_grid(n_workloads=2, mechanisms=("radix", "ndpage")):
    workloads = ("rnd", "bfs", "xs")[:n_workloads]
    return expand_grid(workloads=workloads, mechanisms=mechanisms,
                       **TINY)


def fields(result) -> dict:
    return dataclasses.asdict(result)


def counting_run(config):
    """Picklable instrumented cell function (fork shares the list)."""
    _CALLS.append(config.canonical_json())
    return run_once(config)


_CALLS = []


class TestExpandGrid:
    def test_cross_product_order(self):
        configs = expand_grid(workloads=("rnd", "bfs"),
                              mechanisms=("radix", "ndpage"),
                              core_counts=(1, 2), **TINY)
        assert len(configs) == 8
        # workload-major, cores innermost
        assert [c.workload for c in configs[:4]] == ["rnd"] * 4
        assert [c.num_cores for c in configs[:2]] == [1, 2]
        assert configs[0].mechanism == "radix"
        assert configs[2].mechanism == "ndpage"

    def test_shared_seed_by_default(self):
        configs = tiny_grid()
        assert {c.seed for c in configs} == {7}

    def test_vary_seed_is_deterministic_and_distinct(self):
        grid1 = expand_grid(workloads=("rnd", "bfs"),
                            mechanisms=("radix", "ndpage"),
                            vary_seed=True, **TINY)
        grid2 = expand_grid(workloads=("rnd", "bfs"),
                            mechanisms=("radix", "ndpage"),
                            vary_seed=True, **TINY)
        assert [c.seed for c in grid1] == [c.seed for c in grid2]
        assert len({c.seed for c in grid1}) == len(grid1)

    def test_derive_seed_position_independent(self):
        assert derive_seed(42, "bfs", "radix") == \
            derive_seed(42, "bfs", "radix")
        assert derive_seed(42, "bfs", "radix") != \
            derive_seed(42, "bfs", "ndpage")
        assert derive_seed(42, "bfs", "radix") != \
            derive_seed(43, "bfs", "radix")


class TestSerialSweep:
    def test_matches_run_once_in_order(self):
        configs = tiny_grid()
        expected = [run_once(c) for c in configs]
        got = SweepRunner(jobs=1).run(configs)
        assert [fields(r) for r in got] == \
            [fields(r) for r in expected]

    def test_dedup_within_sweep(self):
        _CALLS.clear()
        configs = tiny_grid(n_workloads=1,
                            mechanisms=("radix", "radix", "radix"))
        results = SweepRunner(jobs=1).run(configs,
                                          run_fn=counting_run)
        assert len(results) == 3
        assert len(_CALLS) == 1
        assert fields(results[0]) == fields(results[1]) \
            == fields(results[2])

    def test_stats_reflect_work(self):
        runner = SweepRunner(jobs=1)
        configs = tiny_grid()
        runner.run(configs)
        stats = runner.last_stats
        assert stats.cells == len(configs)
        assert stats.unique == len(configs)
        assert stats.simulated == len(configs)
        assert stats.cache_hits == 0
        assert stats.references == sum(
            c.refs_per_core * c.num_cores for c in configs)
        assert "simulated" in stats.summary()


class TestParallelSweep:
    def test_bit_identical_to_serial(self):
        configs = tiny_grid()
        serial = SweepRunner(jobs=1).run(configs)
        parallel = SweepRunner(jobs=2).run(configs)
        assert [fields(r) for r in parallel] == \
            [fields(r) for r in serial]

    def test_chunked_dispatch_preserves_order(self):
        configs = expand_grid(
            workloads=("rnd", "bfs", "xs"),
            mechanisms=("radix", "ndpage", "ideal"), **TINY)
        serial = SweepRunner(jobs=1).run(configs)
        chunked = SweepRunner(jobs=3, chunk_size=2).run(configs)
        assert [fields(r) for r in chunked] == \
            [fields(r) for r in serial]

    def test_pool_results_carry_matching_config(self):
        configs = tiny_grid()
        results = SweepRunner(jobs=2).run(configs)
        for config, result in zip(configs, results):
            assert result.config == config


class TestCachedSweep:
    def test_second_run_fully_cached(self, tmp_path):
        configs = tiny_grid()
        runner = SweepRunner(jobs=2, cache=ResultCache(tmp_path))
        first = runner.run(configs)
        assert runner.last_stats.simulated == len(configs)

        second = runner.run(configs)
        stats = runner.last_stats
        assert stats.simulated == 0
        assert stats.cache_hits == stats.unique == len(configs)
        assert stats.cache_hit_rate == 1.0
        assert [fields(r) for r in second] == \
            [fields(r) for r in first]

    def test_cached_equals_fresh_bit_for_bit(self, tmp_path):
        configs = tiny_grid(n_workloads=1)
        fresh = [run_once(c) for c in configs]
        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        runner.run(configs)
        cached = runner.run(configs)
        assert [fields(r) for r in cached] == \
            [fields(r) for r in fresh]

    def test_new_cell_only_simulates_missing(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache)
        runner.run(tiny_grid(mechanisms=("radix",)))

        _CALLS.clear()
        grown = tiny_grid(mechanisms=("radix", "ndpage"))
        runner.run(grown, run_fn=counting_run)
        stats = runner.last_stats
        assert stats.cache_hits == 2      # the radix cells
        assert stats.simulated == 2       # only the new ndpage cells
        assert len(_CALLS) == 2

    def test_cache_dir_convenience(self, tmp_path):
        runner = SweepRunner(jobs=1, cache_dir=tmp_path / "c")
        runner.run(tiny_grid(n_workloads=1))
        assert runner.cache is not None
        assert len(runner.cache) == 2

    def test_run_sweep_helper(self, tmp_path):
        configs = tiny_grid(n_workloads=1)
        results = run_sweep(configs, jobs=1,
                            cache_dir=tmp_path / "c")
        assert [fields(r) for r in results] == \
            [fields(run_once(c)) for c in configs]


class TestGoldenThroughPool:
    """A 4-worker sweep reproduces the pinned golden statistics —
    worker processes simulate bit-identically to the parent."""

    def test_jobs4_matches_golden(self):
        import test_golden_stats as golden

        mechanisms = sorted(golden.GOLDEN)
        configs = [golden.small_config(m) for m in mechanisms]
        results = SweepRunner(jobs=4).run(configs)
        for mechanism, result in zip(mechanisms, results):
            for name, expected in golden.GOLDEN[mechanism].items():
                assert getattr(result, name) == expected, (
                    f"{mechanism}.{name} drifted through the pool")

    def test_speedup_driver_jobs4_bit_identical(self):
        from repro.analysis.experiments import speedup_experiment

        kwargs = dict(workloads=("rnd", "bfs"),
                      mechanisms=("radix", "ndpage"),
                      refs_per_core=300, scale=1 / 64)
        serial_table, serial_avg, serial_raw = speedup_experiment(
            1, **kwargs)
        par_table, par_avg, par_raw = speedup_experiment(
            1, runner=SweepRunner(jobs=4), **kwargs)
        assert par_table == serial_table
        assert par_avg == serial_avg
        for workload in serial_raw:
            for mechanism in serial_raw[workload]:
                assert fields(par_raw[workload][mechanism]) == \
                    fields(serial_raw[workload][mechanism])


def interrupting_run(config):
    """Simulate 3 cells, then die as if the user hit Ctrl-C."""
    if len(_CALLS) >= 3:
        raise KeyboardInterrupt
    _CALLS.append(config.canonical_json())
    return run_once(config)


class TestInterruptAndResume:
    def test_resume_runs_only_missing_cells(self, tmp_path):
        configs = expand_grid(workloads=("rnd", "bfs", "xs"),
                              mechanisms=("radix", "ndpage"), **TINY)
        assert len(configs) == 6
        cache = ResultCache(tmp_path)

        _CALLS.clear()
        with pytest.raises(KeyboardInterrupt):
            SweepRunner(jobs=1, cache=cache).run(
                configs, run_fn=interrupting_run)
        assert len(cache) == 3            # finished cells persisted

        _CALLS.clear()
        runner = SweepRunner(jobs=1, cache=cache)
        results = runner.run(configs, run_fn=counting_run)
        assert len(_CALLS) == 3           # only the missing cells ran
        assert runner.last_stats.cache_hits == 3
        assert runner.last_stats.simulated == 3
        assert [fields(r) for r in results] == \
            [fields(run_once(c)) for c in configs]

    def test_parallel_resume_from_partial_cache(self, tmp_path):
        configs = tiny_grid()
        cache = ResultCache(tmp_path)
        # Pre-populate half the grid, as an interrupted parallel sweep
        # would have (chunks are persisted as they complete).
        for config in configs[:2]:
            cache.store(config, run_once(config))

        runner = SweepRunner(jobs=2, cache=cache)
        results = runner.run(configs)
        assert runner.last_stats.cache_hits == 2
        assert runner.last_stats.simulated == len(configs) - 2
        assert [fields(r) for r in results] == \
            [fields(run_once(c)) for c in configs]
