"""Tests for the pluggable sweep-execution backends.

The contract under test is the one :mod:`repro.sim.backends.base`
states: backends only execute attempts and report outcomes, while the
backend-agnostic supervisor owns retries/backoff/timeouts/quarantine —
so every backend, at any worker count, produces results bit-identical
to the serial loop and byte-identical cache entries.  The fileq
backend additionally gets its multi-host machinery driven directly:
claim-by-rename, heartbeat staleness, dead-worker reclaim and
work-stealing.
"""

import dataclasses
import json
import os
import threading
import time

import pytest

from repro.service import SweepPolicy, SweepService
from repro.sim.backends.base import (
    BACKEND_NAMES,
    Attempt,
    BackendSpec,
)
from repro.sim.backends.fileq import (
    FileQueueBackend,
    QueueLayout,
    _atomic_write,
    _steal_stale_claims,
    item_name,
    repair_queue,
    worker_loop,
)
from repro.sim.faults import FAULT_PLAN_ENV, cell_label, reset_fired
from repro.sim.runner import run_once
from repro.sim.sweep import expand_grid

TINY = dict(refs_per_core=300, scale=1 / 64, seed=7)
#: Tight liveness intervals so recovery paths run in test time.
FAST_Q = dict(heartbeat_interval=0.05, stale_after=0.3)


@pytest.fixture(autouse=True)
def _fresh_fault_state(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    reset_fired()
    yield
    reset_fired()


def tiny_grid(workloads=("rnd", "bfs"), mechanisms=("radix", "ndpage")):
    return expand_grid(workloads=workloads, mechanisms=mechanisms,
                       **TINY)


def fields(result) -> dict:
    return dataclasses.asdict(result)


class TestBackendSpec:
    def test_names(self):
        assert BACKEND_NAMES == ("auto", "serial", "pool", "fileq")

    def test_auto_resolves_serial_for_one_job(self):
        assert BackendSpec(jobs=1).resolve(4, None).name == "serial"

    def test_auto_resolves_serial_for_one_cell(self):
        assert BackendSpec(jobs=4).resolve(1, None).name == "serial"

    def test_auto_resolves_pool_for_parallel_sweeps(self):
        backend = BackendSpec(jobs=4).resolve(4, None)
        backend.close()
        assert backend.name == "pool"

    def test_auto_needs_pool_to_enforce_timeouts(self):
        # A single-cell sweep with a timeout still needs a preemptable
        # executor: auto must not fall back to serial.
        backend = BackendSpec(jobs=2).resolve(1, 30.0)
        backend.close()
        assert backend.name == "pool"

    def test_explicit_names_resolve(self, tmp_path):
        assert BackendSpec(name="serial").resolve(4, None).name \
            == "serial"
        spec = BackendSpec(name="fileq", queue_dir=tmp_path)
        assert spec.resolve(4, None).name == "fileq"

    def test_fileq_requires_queue_dir(self):
        with pytest.raises(ValueError, match="queue_dir"):
            BackendSpec(name="fileq").resolve(4, None)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            BackendSpec(name="carrier-pigeon").resolve(4, None)
        with pytest.raises(ValueError, match="unknown backend"):
            SweepService(backend="carrier-pigeon")


class TestBackendEquivalence:
    """The tentpole guarantee: identical results *and* identical cache
    bytes from every backend at any worker count."""

    def _run(self, backend, configs, tmp_path, **kwargs):
        service = SweepService(
            backend=backend, cache_dir=tmp_path / f"cache-{backend}",
            queue_dir=(tmp_path / f"queue-{backend}"
                       if backend == "fileq" else None),
            **kwargs)
        return service.run(configs), service

    def test_results_and_cache_bit_identical(self, tmp_path):
        configs = tiny_grid()
        runs = {
            "serial": self._run("serial", configs, tmp_path),
            "pool": self._run("pool", configs, tmp_path, jobs=2),
            "fileq": self._run("fileq", configs, tmp_path, jobs=2),
        }
        reference, _ = runs["serial"]
        assert all(r is not None for r in reference)
        for name, (results, service) in runs.items():
            assert [fields(r) for r in results] \
                == [fields(r) for r in reference], name
            assert service.last_stats.simulated == len(configs), name
            assert not service.last_stats.manifest, name

        # Cache directories hold the same files with the same bytes.
        def entries(backend):
            root = tmp_path / f"cache-{backend}"
            return {p.name: p.read_bytes()
                    for p in root.glob("*.json")}

        serial_entries = entries("serial")
        assert len(serial_entries) == len(configs)
        assert entries("pool") == serial_entries
        assert entries("fileq") == serial_entries

    def test_dedup_is_backend_independent(self, tmp_path):
        configs = tiny_grid() + tiny_grid()   # every cell twice
        for backend in ("serial", "pool", "fileq"):
            results, service = self._run(
                backend, configs, tmp_path,
                jobs=2 if backend != "serial" else 1)
            assert service.last_stats.unique == len(configs) // 2
            assert fields(results[0]) == fields(results[len(configs)
                                                        // 2])


class TestFileqWorkerLoop:
    def _prefill(self, queue, config, attempt=1):
        layout = QueueLayout(queue)
        layout.ensure()
        key = config.canonical_json()
        _atomic_write(
            layout.todo / item_name(key, attempt),
            {"key": key, "attempt": attempt,
             "label": cell_label(config), "config": config.to_dict()})
        return layout, key

    def test_worker_drains_todo_and_writes_outcome(self, tmp_path):
        config = tiny_grid()[0]
        layout, key = self._prefill(tmp_path / "q", config)
        summary = worker_loop(tmp_path / "q", worker_id="w1",
                              poll_interval=0.01, max_idle=0.1)
        assert summary == {"worker": "w1", "cells": 1}
        assert not list(layout.todo.glob("*.json"))
        outcome = json.loads(
            (layout.results / item_name(key, 1)).read_text())
        assert outcome["ok"] and outcome["key"] == key
        assert outcome["worker"] == "w1"
        # The payload round-trips to the bit-identical RunResult.
        from repro.analysis.cache import result_from_dict
        assert fields(result_from_dict(outcome["result"])) \
            == fields(run_once(config))

    def test_worker_honors_fault_plan_env(self, tmp_path, monkeypatch):
        config = tiny_grid()[0]
        layout, key = self._prefill(tmp_path / "q", config)
        monkeypatch.setenv(FAULT_PLAN_ENV,
                           f"fail:{cell_label(config)}:*")
        worker_loop(tmp_path / "q", worker_id="w1",
                    poll_interval=0.01, max_idle=0.1)
        outcome = json.loads(
            (layout.results / item_name(key, 1)).read_text())
        assert not outcome["ok"]
        assert "InjectedFault" in outcome["error"]

    def test_idle_worker_exits_after_max_idle(self, tmp_path):
        start = time.monotonic()
        summary = worker_loop(tmp_path / "q", worker_id="w1",
                              poll_interval=0.01, max_idle=0.05)
        assert summary["cells"] == 0
        assert time.monotonic() - start < 5.0
        # Its liveness files are cleaned up on exit.
        layout = QueueLayout(tmp_path / "q")
        assert not layout.heartbeat("w1").exists()
        assert not (layout.claims / "w1").exists()

    def test_worker_steals_stale_claims(self, tmp_path):
        """An item stuck in a dead worker's claims dir (no heartbeat)
        is returned to todo/ and executed."""
        config = tiny_grid()[0]
        layout, key = self._prefill(tmp_path / "q", config)
        ghost = layout.claims / "ghost"
        ghost.mkdir(parents=True)
        (layout.todo / item_name(key, 1)).rename(
            ghost / item_name(key, 1))
        assert _steal_stale_claims(layout, "w1", stale_after=0.2) == 1
        assert (layout.todo / item_name(key, 1)).exists()
        summary = worker_loop(tmp_path / "q", worker_id="w1",
                              poll_interval=0.01, max_idle=0.1,
                              stale_after=0.2)
        assert summary["cells"] == 1

    def test_steal_spares_live_owners(self, tmp_path):
        config = tiny_grid()[0]
        layout, key = self._prefill(tmp_path / "q", config)
        owner = layout.claims / "busy"
        owner.mkdir(parents=True)
        (layout.todo / item_name(key, 1)).rename(
            owner / item_name(key, 1))
        layout.heartbeat("busy").touch()   # fresh heartbeat: alive
        assert _steal_stale_claims(layout, "w1",
                                   stale_after=60.0) == 0
        assert (owner / item_name(key, 1)).exists()


class TestFileqBackend:
    def test_run_fn_requires_local_workers(self, tmp_path):
        backend = FileQueueBackend(tmp_path / "q", workers=0)
        with pytest.raises(ValueError, match="cannot ship run_fn"):
            backend.open(run_once, None, 1)

    def test_open_purges_stray_items(self, tmp_path):
        layout = QueueLayout(tmp_path / "q")
        layout.ensure()
        (layout.todo / "stale.json").write_text("{}")
        (layout.results / "stale.json").write_text("{}")
        (layout.results / "torn.json.tmp99").write_text("{")
        backend = FileQueueBackend(tmp_path / "q", workers=0)
        backend.open(None, None, 1)
        try:
            assert not list(layout.todo.iterdir())
            assert not list(layout.results.iterdir())
        finally:
            backend.close()

    def test_supervisor_reclaims_dead_owner_claims(self, tmp_path):
        """A claim owned by a worker with no (or stale) heartbeat
        surfaces as a ``lost`` outcome carrying the item's real key
        and attempt."""
        backend = FileQueueBackend(tmp_path / "q", workers=0,
                                   stale_after=0.1,
                                   poll_interval=0.01)
        backend.open(None, None, 1)
        try:
            attempt = Attempt(pos=0, key="k" * 200, data={},
                              label="cell", attempt=2)
            assert backend.dispatch(attempt)
            ghost = backend.layout.claims / "ghost"
            ghost.mkdir(parents=True)
            name = item_name(attempt.key, attempt.attempt)
            (backend.layout.todo / name).rename(ghost / name)
            outcomes = backend.poll(timeout=2.0)
        finally:
            backend.close()
        assert len(outcomes) == 1
        assert outcomes[0].status == "lost"
        assert outcomes[0].key == attempt.key
        assert outcomes[0].attempt == 2
        assert "ghost" in outcomes[0].error

    def test_cancel_unlinks_unclaimed_item(self, tmp_path):
        backend = FileQueueBackend(tmp_path / "q", workers=0)
        backend.open(None, None, 1)
        try:
            attempt = Attempt(pos=0, key="key", data={},
                              label="cell", attempt=1)
            backend.dispatch(attempt)
            backend.cancel("key", 1)
            assert not list(backend.layout.todo.glob("*.json"))
        finally:
            backend.close()

    def test_item_names_are_filesystem_safe(self):
        # Cache-less sweeps key cells by full canonical JSON — far
        # beyond NAME_MAX — so filenames must digest the key.
        name = item_name("x" * 10_000, 3)
        assert len(name) < 64
        assert name.endswith(".a3.json")
        assert item_name("x" * 10_000, 3) == name
        assert item_name("y" * 10_000, 3) != name


class TestFileqRecovery:
    """Recovery paths through the full supervisor, with local workers
    under deterministic fault plans."""

    def _service(self, tmp_path, **policy_kwargs):
        return SweepService(
            backend="fileq", jobs=2, queue_dir=tmp_path / "queue",
            policy=SweepPolicy(**policy_kwargs), **FAST_Q)

    def test_killed_worker_recovers_bit_identically(self, tmp_path):
        """SIGKILL mid-cell: the heartbeat goes stale, the claim is
        reclaimed as lost, the worker respawned, the cell retried —
        and the result matches a clean run bit for bit."""
        configs = tiny_grid()
        victim = cell_label(configs[1])
        service = self._service(tmp_path, retries=1, backoff=0.01,
                                fault_plan=f"kill:{victim}:1")
        results = service.run(configs)
        assert all(r is not None for r in results)
        stats = service.last_stats
        assert stats.worker_deaths >= 1
        assert stats.retries >= 1
        assert not stats.manifest
        assert fields(results[1]) == fields(run_once(configs[1]))

    def test_kill_exhausts_retries_into_manifest(self, tmp_path):
        configs = tiny_grid()
        victim = cell_label(configs[0])
        service = self._service(tmp_path, retries=1, backoff=0.01,
                                strict=False,
                                fault_plan=f"kill:{victim}:*")
        results = service.run(configs)
        assert results[0] is None
        assert all(r is not None for r in results[1:])
        failure = service.last_stats.manifest.failures[0]
        assert failure.kind == "worker-died"
        assert failure.attempts == 2

    def test_hung_cell_trips_timeout(self, tmp_path):
        configs = tiny_grid()
        wedged = cell_label(configs[1])
        service = self._service(tmp_path, retries=0,
                                cell_timeout=1.0, backoff=0.01,
                                strict=False,
                                fault_plan=f"hang:{wedged}:*:30")
        results = service.run(configs)
        assert results[1] is None
        assert all(r is not None
                   for i, r in enumerate(results) if i != 1)
        stats = service.last_stats
        assert stats.timeouts >= 1
        failure = stats.manifest.failures[0]
        assert failure.kind == "timeout"
        assert "cell_timeout" in failure.error


class TestFileqResilience:
    """Fencing, drain, and I/O hardening of the queue machinery."""

    def _prefill(self, queue, config, attempt=1):
        layout = QueueLayout(queue)
        layout.ensure()
        key = config.canonical_json()
        _atomic_write(
            layout.todo / item_name(key, attempt),
            {"key": key, "attempt": attempt,
             "label": cell_label(config), "config": config.to_dict()})
        return layout, key

    def test_stolen_claim_is_never_published(self, tmp_path):
        """Fencing: a worker whose claim vanished mid-cell (stolen
        after its heartbeat went stale) abandons the result instead of
        racing the new owner."""
        config = tiny_grid()[0]
        layout, key = self._prefill(tmp_path / "q", config)
        claim = layout.claims / "w1" / item_name(key, 1)
        stop = threading.Event()

        def thief_wins(cfg):
            os.replace(claim, tmp_path / "stolen.json")   # the steal
            stop.set()
            return run_once(cfg)

        summary = worker_loop(tmp_path / "q", worker_id="w1",
                              run_fn=thief_wins, poll_interval=0.01,
                              stop_event=stop)
        assert summary["cells"] == 0
        assert not list(layout.results.glob("*.json"))
        # Clean exit: no heartbeat, no claim dir left behind.
        assert not layout.heartbeat("w1").exists()
        assert not (layout.claims / "w1").exists()

    def test_persistent_publish_failure_returns_claim(self, tmp_path):
        """A worker that cannot write its result hands the item back
        to todo/ instead of dying with the result in hand."""
        config = tiny_grid()[0]
        layout, key = self._prefill(tmp_path / "q", config)
        stop = threading.Event()

        def once(cfg):
            stop.set()
            return run_once(cfg)

        summary = worker_loop(
            tmp_path / "q", worker_id="w1", run_fn=once,
            plan_text=f"ioerr:{item_name(key, 1)}:*",
            poll_interval=0.01, stop_event=stop)
        assert summary["cells"] == 0
        assert not list(layout.results.glob("*.json"))
        assert (layout.todo / item_name(key, 1)).exists()

    def test_atomic_write_cleans_tmp_on_failure(self, tmp_path):
        dest = tmp_path / "taken.json"
        dest.mkdir()    # os.replace onto a directory raises
        with pytest.raises(OSError):
            _atomic_write(dest, {"x": 1})
        assert not list(tmp_path.glob("*.tmp*"))

    def test_persistent_dispatch_failure_becomes_error_outcome(
            self, tmp_path):
        """A supervisor that cannot write to the queue degrades to a
        synthetic failed attempt — the normal retry/quarantine budget
        applies instead of a crash."""
        backend = FileQueueBackend(tmp_path / "q", workers=0)
        backend.open(None, "enospc:queue/:*", 1)
        try:
            assert backend.dispatch(Attempt(
                pos=0, key="k1", data={}, label="cell", attempt=1))
            outcomes = backend.poll(timeout=0.2)
        finally:
            backend.close()
        assert len(outcomes) == 1
        assert outcomes[0].status == "error"
        assert "queue dispatch failed" in outcomes[0].error
        assert not list((tmp_path / "q" / "todo").glob("*"))

    def test_transient_queue_fault_absorbed(self, tmp_path):
        """One flaky write per process (``:1``) is retried inside
        guarded_io; the sweep completes bit-identically."""
        configs = tiny_grid()
        reference = SweepService(backend="serial").run(configs)
        service = SweepService(
            backend="fileq", jobs=2, queue_dir=tmp_path / "q",
            policy=SweepPolicy(strict=False,
                               fault_plan="ioerr:queue/:1"),
            **FAST_Q)
        results = service.run(configs)
        assert not service.last_stats.manifest
        assert [fields(r) for r in results] \
            == [fields(r) for r in reference]

    def test_clean_sweep_leaves_pristine_queue(self, tmp_path):
        """Local workers drain through the stop event on close(), so a
        fault-free fileq sweep leaves nothing for repair to find."""
        configs = tiny_grid()
        service = SweepService(backend="fileq", jobs=2,
                               queue_dir=tmp_path / "q", **FAST_Q)
        assert all(r is not None for r in service.run(configs))
        layout = QueueLayout(tmp_path / "q")
        assert not list(layout.workers.glob("*.hb"))
        assert not list(layout.claims.iterdir())
        report = repair_queue(tmp_path / "q")
        assert sum(report.values()) == 0, report


class TestRepairQueue:
    def test_missing_queue_reports_zero(self, tmp_path):
        assert sum(repair_queue(tmp_path / "absent").values()) == 0

    def test_clean_queue_reports_zero(self, tmp_path):
        layout = QueueLayout(tmp_path / "q")
        layout.ensure()
        assert sum(repair_queue(tmp_path / "q").values()) == 0

    def test_finds_and_fixes_all_debris_kinds(self, tmp_path):
        layout = QueueLayout(tmp_path / "q")
        layout.ensure()
        # A writer died mid-_atomic_write.
        (layout.todo / "torn.json.tmp123").write_text("{")
        # A dead worker left a claim and a stale heartbeat.
        ghost = layout.claims / "ghost"
        ghost.mkdir()
        _atomic_write(ghost / item_name("k1", 2),
                      {"key": "k1", "attempt": 2})
        hb = layout.heartbeat("ghost")
        hb.touch()
        os.utime(hb, (1.0, 1.0))
        # A killed supervisor left two attempts of the same cell.
        _atomic_write(layout.todo / item_name("k2", 1), {"key": "k2"})
        _atomic_write(layout.todo / item_name("k2", 3), {"key": "k2"})
        # A live worker holds a claim: must not be touched.
        live = layout.claims / "alive"
        live.mkdir()
        _atomic_write(live / item_name("k3", 1), {"key": "k3"})
        layout.heartbeat("alive").touch()

        dry = repair_queue(tmp_path / "q", apply=False)
        assert dry == {"tmp_orphans": 1, "stale_heartbeats": 1,
                       "ghost_claim_dirs": 1, "requeued_claims": 1,
                       "duplicate_items": 1}
        # Dry run changed nothing.
        assert (ghost / item_name("k1", 2)).exists()
        assert (layout.todo / "torn.json.tmp123").exists()

        assert repair_queue(tmp_path / "q", apply=True) == dry
        assert not list(layout.root.rglob("*.tmp*"))
        assert (layout.todo / item_name("k1", 2)).exists()
        assert not ghost.exists()
        assert not hb.exists()
        # Duplicates: only the highest attempt survives.
        assert (layout.todo / item_name("k2", 3)).exists()
        assert not (layout.todo / item_name("k2", 1)).exists()
        # The live worker was spared entirely.
        assert (live / item_name("k3", 1)).exists()
        assert layout.heartbeat("alive").exists()
        # Second pass: nothing left to find.
        assert sum(repair_queue(tmp_path / "q").values()) == 0
