"""Tests for system assembly (Table I wiring, prefault warmup)."""

from repro.mem.dram import DDR4_2400, HBM2
from repro.sim.config import cpu_config, ndp_config
from repro.sim.system import System

FAST = dict(workload="rnd", refs_per_core=300, scale=1 / 64)


class TestShapes:
    def test_ndp_single_level_hbm(self):
        system = System(ndp_config(**FAST))
        assert system.hierarchy.l2s is None
        assert system.hierarchy.l3 is None
        assert system.hierarchy.dram.timing is HBM2

    def test_cpu_three_levels_ddr4(self):
        system = System(cpu_config(**FAST))
        assert system.hierarchy.l2s is not None
        assert system.hierarchy.l3 is not None
        assert system.hierarchy.dram.timing is DDR4_2400

    def test_one_mmu_per_core(self):
        system = System(ndp_config(num_cores=3, **FAST))
        assert len(system.mmus) == 3
        assert len(system.cores) == 3
        assert len(system.hierarchy.l1ds) == 3

    def test_shared_page_table(self):
        system = System(ndp_config(num_cores=2, **FAST))
        assert system.mmus[0].walker.table is system.mmus[1].walker.table

    def test_ech_has_no_pwcs(self):
        system = System(ndp_config(mechanism="ech", **FAST))
        assert system.pwc_sets == [None]

    def test_ndpage_pwc_levels(self):
        system = System(ndp_config(mechanism="ndpage", **FAST))
        assert "PL2/1" in system.pwc_sets[0]


class TestPrefault:
    def test_warmup_maps_stream_footprint(self):
        system = System(ndp_config(**FAST))
        assert system.page_table.mapped_pages > 0

    def test_warmup_fault_stats_reset(self):
        system = System(ndp_config(**FAST))
        assert system.os.stats.minor_faults == 0
        assert system.os.stats.fault_cycles == 0.0

    def test_roi_sees_no_faults_after_full_warmup(self):
        system = System(ndp_config(**FAST))
        system.run()
        assert system.os.stats.minor_faults == 0

    def test_cold_start_when_disabled(self):
        system = System(ndp_config(warmup_refs=0, **FAST))
        assert system.page_table.mapped_pages == 0
        system.run()
        assert system.os.stats.minor_faults > 0

    def test_partial_warmup(self):
        cfg = ndp_config(workload="rnd", refs_per_core=400,
                         warmup_refs=100, scale=1 / 64)
        system = System(cfg)
        mapped_after_warmup = system.page_table.mapped_pages
        system.run()
        assert system.os.stats.minor_faults > 0  # second half faults
        assert system.page_table.mapped_pages > mapped_after_warmup

    def test_hugepage_contiguity_consumed_in_warmup(self):
        system = System(ndp_config(mechanism="hugepage",
                                   thp_promotion_fraction=1.0, **FAST))
        assert system.page_table.huge_mappings > 0
