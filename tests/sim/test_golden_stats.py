"""Statistics-preservation regression tests.

The hot-path implementation (allocation-free cache/DRAM/walker paths,
chunked core fast path, plan memoization) must never change *simulated*
numbers — only wall-clock time.  Two lines of defense:

1. golden values: one small config per mechanism family (radix / NDPage
   / ideal) with every headline ``RunResult`` metric pinned exactly, so
   a hot-path refactor that silently perturbs the simulation fails
   loudly;
2. path equivalence: the single-core chunked fast path
   (``Core.step_until`` via the heap-free engine) must produce results
   bit-identical to stepping one reference at a time through
   ``Core.step`` — the code path the debug reference engine uses.

These rely on the simulator being fully deterministic across processes
(PWC set indexing is integer-based, RNGs are seeded), which
``test_deterministic_across_calls`` double-checks in-process.
"""

import dataclasses

import pytest

from repro.sim.config import ndp_config
from repro.sim.runner import collect, run_once
from repro.sim.system import System


def small_config(mechanism: str, **overrides):
    overrides.setdefault("workload", "bfs")
    overrides.setdefault("refs_per_core", 4000)
    overrides.setdefault("scale", 1 / 64)
    overrides.setdefault("seed", 7)
    return ndp_config(mechanism=mechanism, **overrides)


def result_fields(result) -> dict:
    fields = dataclasses.asdict(result)
    fields.pop("config")
    return fields


#: Golden RunResult values (generated at the PR that introduced the
#: fast paths; bit-exact on any machine).
GOLDEN = {
    "radix": {
        "cycles": 418858.0,
        "references": 4000,
        "walks": 2674,
        "tlb_miss_rate": 0.6685,
        "ptw_latency_mean": 121.48466716529543,
        "l1_data_miss_rate": 0.72525,
        "l1_metadata_miss_rate": 0.6622305030609529,
        "pte_memory_accesses": 3757,
        "data_evicted_by_metadata": 1168,
        "fault_cycles": 0.0,
        "dram_accesses_by_kind": {"data": 3367, "metadata": 2488,
                                  "instruction": 0},
        "dram_row_hit_rate": 0.02134927412467976,
    },
    "ndpage": {
        "cycles": 422178.0,
        "references": 4000,
        "walks": 2674,
        "tlb_miss_rate": 0.6685,
        "ptw_latency_mean": 123.79431563201197,
        "l1_data_miss_rate": 0.71875,
        "l1_metadata_miss_rate": 0.0,
        "pte_memory_accesses": 2677,
        "data_evicted_by_metadata": 0,
        "fault_cycles": 0.0,
        "dram_accesses_by_kind": {"data": 3291, "metadata": 2677,
                                  "instruction": 0},
        "dram_row_hit_rate": 0.02898793565683646,
    },
    "ideal": {
        "cycles": 203099.0,
        "references": 4000,
        "walks": 0,
        "tlb_miss_rate": 0.0,
        "ptw_latency_mean": 0.0,
        "l1_data_miss_rate": 0.71875,
        "l1_metadata_miss_rate": 0.0,
        "pte_memory_accesses": 0,
        "data_evicted_by_metadata": 0,
        "fault_cycles": 0.0,
        "dram_accesses_by_kind": {"data": 3291, "metadata": 0,
                                  "instruction": 0},
        "dram_row_hit_rate": 0.0,
    },
}


class TestGoldenStats:
    @pytest.mark.parametrize("mechanism", sorted(GOLDEN))
    def test_run_result_matches_golden(self, mechanism):
        result = run_once(small_config(mechanism))
        golden = GOLDEN[mechanism]
        mismatches = {
            name: (getattr(result, name), expected)
            for name, expected in golden.items()
            if getattr(result, name) != expected
        }
        assert not mismatches, (
            f"{mechanism}: simulated statistics drifted: {mismatches}")

    def test_deterministic_across_calls(self):
        first = result_fields(run_once(small_config("radix")))
        second = result_fields(run_once(small_config("radix")))
        assert first == second


class TestPathEquivalence:
    """Chunked fast path == one-reference step path, bit for bit."""

    @pytest.mark.parametrize("mechanism", ["radix", "ndpage", "ideal"])
    def test_step_until_matches_step(self, mechanism):
        fast = run_once(small_config(mechanism))

        system = System(small_config(mechanism))
        core = system.cores[0]
        now = 0.0
        while True:
            next_ready = core.step(now)
            if next_ready is None:
                break
            now = next_ready
        slow = collect(
            system, max(c.stats.cycles for c in system.cores))

        fast_fields = result_fields(fast)
        slow_fields = result_fields(slow)
        diff = {
            key: (fast_fields[key], slow_fields[key])
            for key in fast_fields
            if fast_fields[key] != slow_fields[key]
        }
        assert not diff, f"fast/slow paths diverged: {diff}"

    def test_multi_core_heap_unchanged(self):
        """Two-core runs (heap engine + step()) stay deterministic and
        aggregate the same references."""
        config = small_config("radix", refs_per_core=1500).with_cores(2)
        first = run_once(config)
        second = run_once(config)
        assert first.references == 3000
        assert result_fields(first) == result_fields(second)
