"""Tests for the experiment runner and RunResult metrics."""

import pytest

from repro.sim.config import ndp_config
from repro.sim.runner import run_mechanisms, run_once

FAST = dict(workload="rnd", refs_per_core=400, scale=1 / 64)


@pytest.fixture(scope="module")
def radix_result():
    return run_once(ndp_config(mechanism="radix", **FAST))


class TestRunOnce:
    def test_reference_counts(self, radix_result):
        assert radix_result.references == 400
        assert radix_result.instructions > 400

    def test_rates_are_probabilities(self, radix_result):
        for value in (radix_result.tlb_miss_rate,
                      radix_result.l1_data_miss_rate,
                      radix_result.l1_metadata_miss_rate,
                      radix_result.translation_fraction,
                      radix_result.metadata_mem_fraction,
                      radix_result.dram_row_hit_rate):
            assert 0.0 <= value <= 1.0

    def test_ptw_latency_positive(self, radix_result):
        assert radix_result.walks > 0
        assert radix_result.ptw_latency_mean > 0
        assert radix_result.ptw_latency_max \
            >= radix_result.ptw_latency_mean

    def test_pwc_hit_rates_for_radix_levels(self, radix_result):
        assert set(radix_result.pwc_hit_rates) \
            == {"PL4", "PL3", "PL2", "PL1"}

    def test_occupancy_snapshot(self, radix_result):
        assert radix_result.occupancy["PL1"] > 0

    def test_dram_attribution(self, radix_result):
        assert radix_result.dram_accesses_by_kind["metadata"] > 0
        assert radix_result.dram_accesses_by_kind["data"] > 0

    def test_summary_keys(self, radix_result):
        summary = radix_result.summary()
        assert {"cycles", "ipc", "ptw_mean", "tlb_miss"} <= set(summary)

    def test_speedup_identity(self, radix_result):
        assert radix_result.speedup_over(radix_result) == 1.0


class TestRunMechanisms:
    def test_all_mechanisms_present(self):
        results = run_mechanisms(
            ndp_config(**FAST), ["radix", "ndpage"])
        assert set(results) == {"radix", "ndpage"}

    def test_baseline_added_if_missing(self):
        results = run_mechanisms(
            ndp_config(**FAST), ["ndpage"], baseline="radix")
        assert "radix" in results

    def test_ideal_bounds_everyone(self):
        results = run_mechanisms(
            ndp_config(**FAST), ["radix", "ndpage", "ideal"])
        assert results["ideal"].cycles <= results["ndpage"].cycles
        assert results["ndpage"].cycles <= results["radix"].cycles
