"""Tests for SystemConfig (Table I defaults and validation)."""

import pytest

from repro.sim.config import (
    DEFAULT_SCALE,
    SystemConfig,
    cpu_config,
    ndp_config,
)


class TestDefaults:
    def test_table1_cache_defaults(self):
        cfg = SystemConfig()
        assert cfg.l1.size == 32 * 1024
        assert cfg.l1.associativity == 8
        assert cfg.l1.latency == 4
        assert cfg.l2.size == 512 * 1024
        assert cfg.l3_per_core.size == 2 * 1024 * 1024
        assert cfg.l3_per_core.latency == 35

    def test_table1_tlb_defaults(self):
        cfg = SystemConfig()
        assert cfg.tlb.l1_small_entries == 64
        assert cfg.tlb.l2_entries == 1536
        assert cfg.tlb.l2_latency == 12

    def test_table1_memory(self):
        cfg = SystemConfig(scale=1.0)
        assert cfg.physical_bytes == 16 * 1024 ** 3

    def test_default_scale_is_full(self):
        assert DEFAULT_SCALE == 1.0

    def test_phys_scales_with_workloads(self):
        cfg = SystemConfig(scale=0.5)
        assert cfg.physical_bytes == 8 * 1024 ** 3

    def test_explicit_phys_wins(self):
        cfg = SystemConfig(phys_bytes=123 * 1024 ** 2)
        assert cfg.physical_bytes == 123 * 1024 ** 2


class TestValidation:
    def test_bad_system(self):
        with pytest.raises(ValueError):
            SystemConfig(system="gpu")

    def test_bad_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            SystemConfig(scale=0)
        with pytest.raises(ValueError):
            SystemConfig(scale=1.5)

    def test_bad_refs(self):
        with pytest.raises(ValueError):
            SystemConfig(refs_per_core=0)

    def test_bad_mechanism_caught_early(self):
        with pytest.raises(ValueError):
            SystemConfig(mechanism="quantum")


class TestBuilders:
    def test_factories_set_system(self):
        assert ndp_config().system == "ndp"
        assert cpu_config().system == "cpu"

    def test_with_mechanism(self):
        cfg = ndp_config().with_mechanism("ndpage")
        assert cfg.mechanism == "ndpage"
        assert cfg.system == "ndp"

    def test_with_cores(self):
        assert ndp_config().with_cores(8).num_cores == 8

    def test_with_workload(self):
        assert ndp_config().with_workload("xs").workload == "xs"

    def test_configs_are_frozen(self):
        cfg = ndp_config()
        with pytest.raises(Exception):
            cfg.num_cores = 4
