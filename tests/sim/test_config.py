"""Tests for SystemConfig (Table I defaults, validation, serialization)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim.config import (
    DEFAULT_SCALE,
    CacheParams,
    SystemConfig,
    cpu_config,
    ndp_config,
)


class TestDefaults:
    def test_table1_cache_defaults(self):
        cfg = SystemConfig()
        assert cfg.l1.size == 32 * 1024
        assert cfg.l1.associativity == 8
        assert cfg.l1.latency == 4
        assert cfg.l2.size == 512 * 1024
        assert cfg.l3_per_core.size == 2 * 1024 * 1024
        assert cfg.l3_per_core.latency == 35

    def test_table1_tlb_defaults(self):
        cfg = SystemConfig()
        assert cfg.tlb.l1_small_entries == 64
        assert cfg.tlb.l2_entries == 1536
        assert cfg.tlb.l2_latency == 12

    def test_table1_memory(self):
        cfg = SystemConfig(scale=1.0)
        assert cfg.physical_bytes == 16 * 1024 ** 3

    def test_default_scale_is_full(self):
        assert DEFAULT_SCALE == 1.0

    def test_phys_scales_with_workloads(self):
        cfg = SystemConfig(scale=0.5)
        assert cfg.physical_bytes == 8 * 1024 ** 3

    def test_explicit_phys_wins(self):
        cfg = SystemConfig(phys_bytes=123 * 1024 ** 2)
        assert cfg.physical_bytes == 123 * 1024 ** 2


class TestValidation:
    def test_bad_system(self):
        with pytest.raises(ValueError):
            SystemConfig(system="gpu")

    def test_bad_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            SystemConfig(scale=0)
        with pytest.raises(ValueError):
            SystemConfig(scale=1.5)

    def test_bad_refs(self):
        with pytest.raises(ValueError):
            SystemConfig(refs_per_core=0)

    def test_bad_mechanism_caught_early(self):
        with pytest.raises(ValueError):
            SystemConfig(mechanism="quantum")


class TestBuilders:
    def test_factories_set_system(self):
        assert ndp_config().system == "ndp"
        assert cpu_config().system == "cpu"

    def test_with_mechanism(self):
        cfg = ndp_config().with_mechanism("ndpage")
        assert cfg.mechanism == "ndpage"
        assert cfg.system == "ndp"

    def test_with_cores(self):
        assert ndp_config().with_cores(8).num_cores == 8

    def test_with_workload(self):
        assert ndp_config().with_workload("xs").workload == "xs"

    def test_configs_are_frozen(self):
        cfg = ndp_config()
        with pytest.raises(Exception):
            cfg.num_cores = 4


class TestSerialization:
    """The canonical round-trip the sweep cache and workers rely on."""

    def test_to_dict_is_plain_data(self):
        data = ndp_config(workload="bfs").to_dict()
        assert data["workload"] == "bfs"
        assert data["l1"] == {"size": 32 * 1024, "associativity": 8,
                              "latency": 4}
        assert isinstance(data["tlb"], dict)
        assert isinstance(data["fault_costs"], dict)

    def test_round_trip_exact(self):
        cfg = cpu_config(workload="xs", mechanism="ndpage",
                         num_cores=8, refs_per_core=1234,
                         scale=0.125, seed=9,
                         l1=CacheParams(16 * 1024, 4, 3))
        assert SystemConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_validates(self):
        data = ndp_config().to_dict()
        data["mechanism"] = "quantum"
        with pytest.raises(ValueError):
            SystemConfig.from_dict(data)

    def test_canonical_json_deterministic(self):
        a = ndp_config(workload="bfs", seed=3)
        b = ndp_config(workload="bfs", seed=3)
        assert a.canonical_json() == b.canonical_json()
        assert a.canonical_json() != \
            ndp_config(workload="bfs", seed=4).canonical_json()

    def test_pickle_round_trip(self):
        import pickle
        cfg = ndp_config(workload="xs", num_cores=4)
        assert pickle.loads(pickle.dumps(cfg)) == cfg


class TestCrossProcessHash:
    """Equal configs must hash equal in freshly started interpreters,
    whatever PYTHONHASHSEED does — the on-disk cache depends on it."""

    CHILD = (
        "from repro.sim.config import ndp_config\n"
        "from repro.analysis.cache import config_key\n"
        "cfg = ndp_config(workload='bfs', mechanism='ndpage',\n"
        "                 refs_per_core=1234, seed=9)\n"
        "print(config_key(cfg))\n"
    )

    def _child_key(self, hash_seed: str) -> str:
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src)
        env["PYTHONHASHSEED"] = hash_seed
        out = subprocess.run(
            [sys.executable, "-c", self.CHILD], env=env,
            capture_output=True, text=True, check=True)
        return out.stdout.strip()

    def test_equal_configs_hash_equal_across_processes(self):
        from repro.analysis.cache import config_key
        parent = config_key(ndp_config(
            workload="bfs", mechanism="ndpage", refs_per_core=1234,
            seed=9))
        assert self._child_key("0") == parent
        assert self._child_key("424242") == parent
