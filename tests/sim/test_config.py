"""Tests for SystemConfig (Table I defaults, validation, serialization)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim.config import (
    DEFAULT_SCALE,
    CacheParams,
    NumaParams,
    SchedulerParams,
    SystemConfig,
    cpu_config,
    ndp_config,
)


class TestDefaults:
    def test_table1_cache_defaults(self):
        cfg = SystemConfig()
        assert cfg.l1.size == 32 * 1024
        assert cfg.l1.associativity == 8
        assert cfg.l1.latency == 4
        assert cfg.l2.size == 512 * 1024
        assert cfg.l3_per_core.size == 2 * 1024 * 1024
        assert cfg.l3_per_core.latency == 35

    def test_table1_tlb_defaults(self):
        cfg = SystemConfig()
        assert cfg.tlb.l1_small_entries == 64
        assert cfg.tlb.l2_entries == 1536
        assert cfg.tlb.l2_latency == 12

    def test_table1_memory(self):
        cfg = SystemConfig(scale=1.0)
        assert cfg.physical_bytes == 16 * 1024 ** 3

    def test_default_scale_is_full(self):
        assert DEFAULT_SCALE == 1.0

    def test_phys_scales_with_workloads(self):
        cfg = SystemConfig(scale=0.5)
        assert cfg.physical_bytes == 8 * 1024 ** 3

    def test_explicit_phys_wins(self):
        cfg = SystemConfig(phys_bytes=123 * 1024 ** 2)
        assert cfg.physical_bytes == 123 * 1024 ** 2


class TestValidation:
    def test_bad_system(self):
        with pytest.raises(ValueError):
            SystemConfig(system="gpu")

    def test_bad_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            SystemConfig(scale=0)
        with pytest.raises(ValueError):
            SystemConfig(scale=1.5)

    def test_bad_refs(self):
        with pytest.raises(ValueError):
            SystemConfig(refs_per_core=0)

    def test_bad_mechanism_caught_early(self):
        with pytest.raises(ValueError):
            SystemConfig(mechanism="quantum")


class TestBuilders:
    def test_factories_set_system(self):
        assert ndp_config().system == "ndp"
        assert cpu_config().system == "cpu"

    def test_with_mechanism(self):
        cfg = ndp_config().with_mechanism("ndpage")
        assert cfg.mechanism == "ndpage"
        assert cfg.system == "ndp"

    def test_with_cores(self):
        assert ndp_config().with_cores(8).num_cores == 8

    def test_with_workload(self):
        assert ndp_config().with_workload("xs").workload == "xs"

    def test_configs_are_frozen(self):
        cfg = ndp_config()
        with pytest.raises(Exception):
            cfg.num_cores = 4


class TestSerialization:
    """The canonical round-trip the sweep cache and workers rely on."""

    def test_to_dict_is_plain_data(self):
        data = ndp_config(workload="bfs").to_dict()
        assert data["workload"] == "bfs"
        assert data["l1"] == {"size": 32 * 1024, "associativity": 8,
                              "latency": 4}
        assert isinstance(data["tlb"], dict)
        assert isinstance(data["fault_costs"], dict)

    def test_round_trip_exact(self):
        cfg = cpu_config(workload="xs", mechanism="ndpage",
                         num_cores=8, refs_per_core=1234,
                         scale=0.125, seed=9,
                         l1=CacheParams(16 * 1024, 4, 3))
        assert SystemConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_validates(self):
        data = ndp_config().to_dict()
        data["mechanism"] = "quantum"
        with pytest.raises(ValueError):
            SystemConfig.from_dict(data)

    def test_canonical_json_deterministic(self):
        a = ndp_config(workload="bfs", seed=3)
        b = ndp_config(workload="bfs", seed=3)
        assert a.canonical_json() == b.canonical_json()
        assert a.canonical_json() != \
            ndp_config(workload="bfs", seed=4).canonical_json()

    def test_pickle_round_trip(self):
        import pickle
        cfg = ndp_config(workload="xs", num_cores=4)
        assert pickle.loads(pickle.dumps(cfg)) == cfg


class TestVersionedFields:
    """Fields added after the cache format shipped (the tenants axis)
    must round-trip — and, while default-valued, must not perturb the
    serialized form or any existing cache key."""

    #: Cache keys of two representative configs, computed at PR 2 (the
    #: release that froze the cache-key scheme).  If adding a config
    #: field moves these, every cached result silently invalidates —
    #: omit the field from to_dict() at its default instead.
    PR2_KEYS = {
        "ndp_default": "793ac0269636cdc2c58136bc269297bee4dc6a2a",
        "cpu_bfs": "afa774d1667a7ad5aa169d1d0e1fef7aee3bc44d",
    }

    def test_default_valued_new_fields_keep_pr2_cache_keys(self):
        from repro.analysis.cache import config_key
        assert config_key(ndp_config()) == self.PR2_KEYS["ndp_default"]
        assert config_key(cpu_config(
            workload="bfs", mechanism="ndpage", num_cores=4,
            refs_per_core=3000, scale=1 / 64, seed=7,
        )) == self.PR2_KEYS["cpu_bfs"]

    def test_default_valued_new_fields_omitted_from_to_dict(self):
        data = ndp_config().to_dict()
        assert "tenants" not in data
        assert "tenant_workloads" not in data
        assert "scheduler" not in data
        assert "numa" not in data

    def test_non_default_new_fields_serialized(self):
        cfg = ndp_config(tenants=2,
                         scheduler=SchedulerParams(quantum_refs=512))
        data = cfg.to_dict()
        assert data["tenants"] == 2
        assert data["scheduler"]["quantum_refs"] == 512

    def test_new_scheduler_subfields_omitted_at_defaults(self):
        """A non-default scheduler serialized today must be byte-equal
        to its PR 3 form: fields added to SchedulerParams later
        (shootdown_batch, tenant_weights) disappear at their
        defaults, so PR 3-era cache keys for custom-quantum configs
        survive."""
        cfg = ndp_config(tenants=2,
                         scheduler=SchedulerParams(quantum_refs=512))
        data = cfg.to_dict()
        assert "shootdown_batch" not in data["scheduler"]
        assert "tenant_weights" not in data["scheduler"]
        # Exactly the PR 3 field set, nothing more.
        assert sorted(data["scheduler"]) == [
            "context_switch_cycles", "flush_on_switch", "max_asids",
            "quantum_refs", "shootdown_cycles"]

    def test_non_default_scheduler_subfields_serialized(self):
        cfg = ndp_config(
            tenants=2,
            scheduler=SchedulerParams(shootdown_batch=8,
                                      tenant_weights=(2.0, 1.0)))
        data = cfg.to_dict()
        assert data["scheduler"]["shootdown_batch"] == 8
        assert data["scheduler"]["tenant_weights"] == (2.0, 1.0)
        assert SystemConfig.from_dict(data) == cfg

    def test_numa_axis_round_trips_and_keys_differ(self):
        import json
        cfg = ndp_config(numa=NumaParams(nodes=2,
                                         placement="pte-local"))
        data = cfg.to_dict()
        assert data["numa"]["nodes"] == 2
        rebuilt = SystemConfig.from_dict(
            json.loads(json.dumps(data)))
        assert rebuilt == cfg
        assert hash(rebuilt) == hash(cfg)
        assert cfg.canonical_json() != ndp_config().canonical_json()
        assert cfg.canonical_json() != ndp_config(
            numa=NumaParams(nodes=2)).canonical_json()

    def test_distance_matrix_round_trips_and_is_versioned(self):
        """The asymmetric-distance axis: omitted from the numa
        sub-dict at its default (None) so every PR 4-era NUMA cache
        key survives, serialized and round-tripped otherwise."""
        import json
        plain = ndp_config(numa=NumaParams(nodes=2))
        assert "distance_matrix" not in plain.to_dict()["numa"]

        cfg = ndp_config(numa=NumaParams(
            nodes=2, distance_matrix=((0, 300), (150, 0))))
        data = cfg.to_dict()
        assert data["numa"]["distance_matrix"] == \
            ((0.0, 300.0), (150.0, 0.0))
        rebuilt = SystemConfig.from_dict(
            json.loads(json.dumps(data)))
        assert rebuilt == cfg
        assert hash(rebuilt) == hash(cfg)
        assert isinstance(rebuilt.numa.distance_matrix[0], tuple)
        assert cfg.canonical_json() != plain.canonical_json()

    def test_distance_matrix_validation(self):
        with pytest.raises(ValueError):  # not square
            NumaParams(nodes=2, distance_matrix=((0, 1),))
        with pytest.raises(ValueError):  # wrong width
            NumaParams(nodes=2, distance_matrix=((0,), (0,)))
        with pytest.raises(ValueError):  # non-zero diagonal
            NumaParams(nodes=2, distance_matrix=((5, 1), (1, 0)))
        with pytest.raises(ValueError):  # negative distance
            NumaParams(nodes=2, distance_matrix=((0, -1), (1, 0)))

    def test_single_node_normalizes_distance_matrix(self):
        """A 1x1 matrix is moot on a flat machine and must not split
        cache keys."""
        assert NumaParams(nodes=1, distance_matrix=((0,),)) \
            == NumaParams()

    def test_weights_round_trip_through_json(self):
        import json
        cfg = ndp_config(
            tenants=2,
            scheduler=SchedulerParams(tenant_weights=(1.5, 1.0)))
        rebuilt = SystemConfig.from_dict(
            json.loads(json.dumps(cfg.to_dict())))
        assert rebuilt == cfg
        assert rebuilt.scheduler.tenant_weights == (1.5, 1.0)
        assert isinstance(rebuilt.scheduler.tenant_weights, tuple)

    def test_new_fields_validation(self):
        with pytest.raises(ValueError):
            SchedulerParams(shootdown_batch=0)
        with pytest.raises(ValueError):
            SchedulerParams(tenant_weights=(1.0, -1.0))
        with pytest.raises(ValueError):
            # weights must match the tenant count
            ndp_config(tenants=2,
                       scheduler=SchedulerParams(
                           tenant_weights=(1.0, 2.0, 3.0)))

    def test_new_fields_round_trip_exact(self):
        cfg = ndp_config(tenants=3, tenant_workloads=("bfs", "xs",
                                                      "rnd"),
                         scheduler=SchedulerParams(
                             quantum_refs=512, max_asids=2,
                             context_switch_cycles=9000,
                             shootdown_cycles=1111,
                             flush_on_switch=True))
        assert SystemConfig.from_dict(cfg.to_dict()) == cfg

    def test_new_fields_round_trip_through_json(self):
        import json
        cfg = ndp_config(tenants=2, tenant_workloads=("bfs", "xs"))
        rebuilt = SystemConfig.from_dict(
            json.loads(json.dumps(cfg.to_dict())))
        assert rebuilt == cfg
        assert rebuilt.tenant_workloads == ("bfs", "xs")  # tuple again
        assert hash(rebuilt) == hash(cfg)

    def test_canonical_json_distinguishes_tenant_counts(self):
        base = ndp_config()
        assert base.canonical_json() \
            != ndp_config(tenants=2).canonical_json()

    def test_validation(self):
        with pytest.raises(ValueError):
            ndp_config(tenants=0)
        with pytest.raises(ValueError):
            ndp_config(tenants=2, tenant_workloads=("bfs",))
        with pytest.raises(ValueError):
            SchedulerParams(quantum_refs=0)
        with pytest.raises(ValueError):
            SchedulerParams(max_asids=0)


class TestCrossProcessHash:
    """Equal configs must hash equal in freshly started interpreters,
    whatever PYTHONHASHSEED does — the on-disk cache depends on it."""

    CHILD = (
        "from repro.sim.config import ndp_config\n"
        "from repro.analysis.cache import config_key\n"
        "cfg = ndp_config(workload='bfs', mechanism='ndpage',\n"
        "                 refs_per_core=1234, seed=9)\n"
        "print(config_key(cfg))\n"
    )

    def _child_key(self, hash_seed: str) -> str:
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src)
        env["PYTHONHASHSEED"] = hash_seed
        out = subprocess.run(
            [sys.executable, "-c", self.CHILD], env=env,
            capture_output=True, text=True, check=True)
        return out.stdout.strip()

    def test_equal_configs_hash_equal_across_processes(self):
        from repro.analysis.cache import config_key
        parent = config_key(ndp_config(
            workload="bfs", mechanism="ndpage", refs_per_core=1234,
            seed=9))
        assert self._child_key("0") == parent
        assert self._child_key("424242") == parent
