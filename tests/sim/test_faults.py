"""Tests for fault injection and sweep fault tolerance.

Every recovery path the supervisor advertises is driven here through
a deterministic :class:`FaultPlan`: failing cells retry and quarantine,
wedged cells trip the timeout, SIGKILLed workers respawn, corrupted
cache entries are caught by checksum — and a sweep under faults still
completes every healthy cell bit-identically to a fault-free run.
"""

import dataclasses
import errno
import json
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.analysis.cache import ResultCache
from repro.service import SweepPolicy, SweepService
from repro.sim.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    apply_cell_faults,
    cell_label,
    corrupt_entry,
    guarded_io,
    maybe_corrupt_entry,
    maybe_io_fault,
    reset_fired,
)
from repro.sim.journal import (
    SweepJournal,
    journal_path,
    load_journal,
    sweep_digest,
)
from repro.sim.runner import run_once
from repro.sim.sweep import (
    SweepFailure,
    SweepInterrupted,
    SweepRunner,
    expand_grid,
)

TINY = dict(refs_per_core=300, scale=1 / 64, seed=7)


@pytest.fixture(autouse=True)
def _fresh_fault_state(monkeypatch):
    """No plan leaks in from the environment; one-shot state resets."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    reset_fired()
    yield
    reset_fired()


def tiny_grid(workloads=("rnd", "bfs"), mechanisms=("radix", "ndpage")):
    return expand_grid(workloads=workloads, mechanisms=mechanisms,
                       **TINY)


def fields(result) -> dict:
    return dataclasses.asdict(result)


class TestFaultPlanParsing:
    def test_parse_clauses(self):
        plan = FaultPlan.parse(
            "fail:bfs/ndpage/:*;hang:xs/radix/:1:30;"
            "kill:rnd/radix/:1,2;corrupt:bfs/radix/")
        assert [s.action for s in plan.specs] == \
            ["fail", "hang", "kill", "corrupt"]
        assert plan.specs[0].attempts is None
        assert plan.specs[1].seconds == 30.0
        assert plan.specs[2].attempts == (1, 2)

    def test_round_trip(self):
        text = "fail:bfs/ndpage/:1,2;hang:xs/radix/:*:5.0;kill:rnd/:3"
        assert FaultPlan.parse(FaultPlan.parse(text).to_text()) \
            .to_text() == FaultPlan.parse(text).to_text()

    def test_bad_clause_raises(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.parse("explode:everything")
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.parse("fail")

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan()
        assert FaultPlan.parse("fail:x:*")

    def test_from_env(self, monkeypatch):
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "fail:bfs/:1")
        plan = FaultPlan.from_env()
        assert plan is not None
        assert plan.specs[0].match == "bfs/"

    def test_applies_attempt_matching(self):
        spec = FaultSpec("fail", "bfs/ndpage/", attempts=(1,))
        assert spec.applies("bfs/ndpage/ndp/1c/s7", 1)
        assert not spec.applies("bfs/ndpage/ndp/1c/s7", 2)
        assert not spec.applies("rnd/radix/ndp/1c/s7", 1)
        # attempt=None (store-side matching) ignores the attempt filter
        assert spec.applies("bfs/ndpage/ndp/1c/s7", None)

    def test_cell_label_shape(self):
        config = tiny_grid()[0]
        label = cell_label(config)
        assert label == (f"{config.workload}/{config.mechanism}/"
                         f"{config.system}/{config.num_cores}c/"
                         f"s{config.seed}")


class TestApplyCellFaults:
    def test_fail_raises_injected_fault(self):
        plan = FaultPlan.parse("fail:bfs/ndpage/:*")
        with pytest.raises(InjectedFault, match="bfs/ndpage"):
            apply_cell_faults(plan, "bfs/ndpage/ndp/1c/s7", 1)

    def test_no_match_is_a_no_op(self):
        plan = FaultPlan.parse("fail:bfs/ndpage/:*")
        apply_cell_faults(plan, "rnd/radix/ndp/1c/s7", 1)

    def test_attempt_gated_fail(self):
        plan = FaultPlan.parse("fail:bfs/:1")
        with pytest.raises(InjectedFault):
            apply_cell_faults(plan, "bfs/radix/ndp/1c/s7", 1)
        apply_cell_faults(plan, "bfs/radix/ndp/1c/s7", 2)  # recovers


class TestCorruptEntry:
    def test_valid_json_payload_perturbed(self, tmp_path):
        """The adversarial case: still-parseable JSON, wrong payload."""
        path = tmp_path / "entry.json"
        entry = {"format": 2, "result": {"cycles": 100.0}}
        path.write_text(json.dumps(entry))
        corrupt_entry(path)
        after = json.loads(path.read_text())
        assert after["result"]["cycles"] == 101.0

    def test_unparseable_entry_truncated(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("this is not json at all")
        corrupt_entry(path)
        assert len(path.read_text()) < len("this is not json at all")

    def test_maybe_corrupt_is_one_shot(self, tmp_path):
        plan = FaultPlan.parse("corrupt:bfs/radix/")
        path = tmp_path / "entry.json"
        path.write_text(json.dumps({"result": {"cycles": 1.0}}))
        assert maybe_corrupt_entry(path, "bfs/radix/ndp/1c/s7",
                                   plan=plan)
        assert not maybe_corrupt_entry(path, "bfs/radix/ndp/1c/s7",
                                       plan=plan)
        assert json.loads(path.read_text())["result"]["cycles"] == 2.0

    def test_maybe_corrupt_no_plan(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("{}")
        assert not maybe_corrupt_entry(path, "bfs/radix/ndp/1c/s7")


class TestSerialFaultTolerance:
    def test_keep_going_leaves_hole_and_manifest(self):
        configs = tiny_grid()
        bad = cell_label(configs[1])
        runner = SweepRunner(jobs=1, strict=False, retries=1,
                             backoff=0.0,
                             fault_plan=f"fail:{bad}:*")
        results = runner.run(configs)
        assert results[1] is None
        assert all(r is not None
                   for i, r in enumerate(results) if i != 1)
        stats = runner.last_stats
        assert stats.failed == 1
        assert stats.retries == 1          # 2 attempts = 1 retry
        assert stats.manifest.labels() == [bad]
        failure = stats.manifest.failures[0]
        assert failure.kind == "error"
        assert failure.attempts == 2
        assert "InjectedFault" in failure.error
        assert bad in stats.manifest.format()
        assert "quarantined" in stats.summary()

    def test_strict_raises_after_completing_others(self, tmp_path):
        configs = tiny_grid()
        bad = cell_label(configs[0])
        cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache, strict=True,
                             retries=0, backoff=0.0,
                             fault_plan=f"fail:{bad}:*")
        with pytest.raises(SweepFailure) as excinfo:
            runner.run(configs)
        assert excinfo.value.manifest.labels() == [bad]
        # Every healthy cell was still completed and persisted.
        assert len(cache) == len(configs) - 1

    def test_retry_recovers_flaky_cell(self):
        configs = tiny_grid()
        flaky = cell_label(configs[2])
        runner = SweepRunner(jobs=1, retries=1, backoff=0.0,
                             fault_plan=f"fail:{flaky}:1")
        results = runner.run(configs)
        assert all(r is not None for r in results)
        assert runner.last_stats.retries == 1
        assert not runner.last_stats.manifest
        # The recovered result is bit-identical to a clean run.
        assert fields(results[2]) == fields(run_once(configs[2]))

    def test_retries_zero_means_one_attempt(self):
        configs = tiny_grid()
        runner = SweepRunner(jobs=1, strict=False, retries=0,
                             backoff=0.0,
                             fault_plan=f"fail:{cell_label(configs[0])}:1")
        results = runner.run(configs)
        assert results[0] is None
        assert runner.last_stats.manifest.failures[0].attempts == 1

    def test_plan_from_environment(self, monkeypatch):
        configs = tiny_grid()
        monkeypatch.setenv(FAULT_PLAN_ENV,
                           f"fail:{cell_label(configs[0])}:*")
        runner = SweepRunner(jobs=1, strict=False, retries=0,
                             backoff=0.0)
        results = runner.run(configs)
        assert results[0] is None
        assert runner.last_stats.failed == 1


class TestSupervisedFaultTolerance:
    def test_worker_kill_recovers_bit_identically(self):
        """SIGKILL mid-cell: the sentinel wakes the supervisor, the
        worker is respawned, the cell re-dispatched and completed."""
        configs = tiny_grid()
        victim = cell_label(configs[1])
        runner = SweepRunner(jobs=2, retries=1, backoff=0.01,
                             fault_plan=f"kill:{victim}:1")
        results = runner.run(configs)
        assert all(r is not None for r in results)
        stats = runner.last_stats
        assert stats.worker_deaths >= 1
        assert stats.retries >= 1
        assert not stats.manifest
        assert fields(results[1]) == fields(run_once(configs[1]))

    def test_worker_kill_exhausts_retries_into_manifest(self):
        configs = tiny_grid()
        victim = cell_label(configs[0])
        runner = SweepRunner(jobs=2, strict=False, retries=1,
                             backoff=0.01,
                             fault_plan=f"kill:{victim}:*")
        results = runner.run(configs)
        assert results[0] is None
        assert all(r is not None for r in results[1:])
        failure = runner.last_stats.manifest.failures[0]
        assert failure.kind == "worker-died"
        assert failure.attempts == 2
        assert "worker died" in failure.error

    def test_hung_cell_trips_timeout(self):
        configs = tiny_grid()
        wedged = cell_label(configs[1])
        runner = SweepRunner(jobs=2, strict=False, retries=0,
                             cell_timeout=1.0, backoff=0.01,
                             fault_plan=f"hang:{wedged}:*:30")
        results = runner.run(configs)
        assert results[1] is None
        assert all(r is not None
                   for i, r in enumerate(results) if i != 1)
        stats = runner.last_stats
        assert stats.timeouts == 1
        failure = stats.manifest.failures[0]
        assert failure.kind == "timeout"
        assert "cell_timeout" in failure.error

    def test_failing_cell_in_pool_quarantined(self):
        configs = tiny_grid()
        bad = cell_label(configs[3])
        runner = SweepRunner(jobs=2, strict=False, retries=1,
                             backoff=0.01,
                             fault_plan=f"fail:{bad}:*")
        results = runner.run(configs)
        assert results[3] is None
        failure = runner.last_stats.manifest.failures[0]
        assert failure.kind == "error"
        assert "InjectedFault" in failure.error

    def test_resume_after_worker_kill(self, tmp_path):
        """An always-killed cell quarantines; the healthy cells land in
        the cache, and a clean re-run simulates only the casualty."""
        configs = tiny_grid()
        victim = cell_label(configs[2])
        first = SweepRunner(jobs=2, cache_dir=tmp_path, strict=False,
                            retries=1, backoff=0.01,
                            fault_plan=f"kill:{victim}:*")
        results = first.run(configs)
        assert results[2] is None
        assert first.last_stats.failed == 1

        second = SweepRunner(jobs=1, cache_dir=tmp_path)
        resumed = second.run(configs)
        assert all(r is not None for r in resumed)
        assert second.last_stats.simulated == 1
        assert second.last_stats.cache_hits == len(configs) - 1
        assert fields(resumed[2]) == fields(run_once(configs[2]))

    def test_unpicklable_run_fn_fails_fast(self):
        configs = tiny_grid()
        runner = SweepRunner(jobs=2)
        with pytest.raises(ValueError, match="not picklable"):
            runner.run(configs, run_fn=lambda config: run_once(config))


class TestCorruptionThroughSweep:
    def test_corrupt_entry_caught_on_next_load(self, tmp_path):
        """A corrupt clause perturbs the entry at store time; the next
        sweep's checksum check catches it and re-simulates the cell."""
        configs = tiny_grid()
        target = cell_label(configs[0])
        plan = FaultPlan.parse(f"corrupt:{target}")
        cache = ResultCache(tmp_path, fault_plan=plan)
        SweepRunner(jobs=1, cache=cache).run(configs)

        clean_cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=clean_cache)
        results = runner.run(configs)
        assert clean_cache.stats.corrupt == 1
        assert runner.last_stats.simulated == 1
        assert runner.last_stats.cache_hits == len(configs) - 1
        # The re-simulated result is the real one, not the corrupted.
        assert fields(results[0]) == fields(run_once(configs[0]))


class TestAcceptance20Cells:
    """The ISSUE's acceptance scenario: a 20-cell sweep under injected
    faults completes every healthy cell, quarantines the faulty ones,
    and a follow-up run re-simulates only quarantined/missing cells."""

    GRID = dict(workloads=("rnd", "bfs"),
                mechanisms=("radix", "ndpage", "ech", "hugepage",
                            "ideal"),
                systems=("ndp", "cpu"),
                refs_per_core=120, scale=1 / 64, seed=7)

    def test_chaos_sweep_completes_then_resumes(self, tmp_path):
        configs = expand_grid(**self.GRID)
        assert len(configs) == 20
        labels = [cell_label(c) for c in configs]
        doomed = labels[labels.index("bfs/ndpage/ndp/1c/s7")]
        wedged = labels[labels.index("rnd/ech/ndp/1c/s7")]
        killed = labels[labels.index("bfs/radix/ndp/1c/s7")]
        corrupted = labels[labels.index("rnd/hugepage/ndp/1c/s7")]
        plan = FaultPlan.parse(
            f"fail:{doomed}:*;hang:{wedged}:*:30;"
            f"kill:{killed}:1;corrupt:{corrupted}")

        cache = ResultCache(tmp_path, fault_plan=plan)
        chaos = SweepRunner(jobs=2, cache=cache, strict=False,
                            retries=1, cell_timeout=1.0, backoff=0.01,
                            fault_plan=plan)
        results = chaos.run(configs)

        stats = chaos.last_stats
        assert stats.failed == 2
        assert sorted(stats.manifest.labels()) == \
            sorted([doomed, wedged])
        assert stats.worker_deaths >= 1
        assert stats.timeouts >= 1
        # Every healthy cell completed despite the chaos.
        holes = {labels[i] for i, r in enumerate(results) if r is None}
        assert holes == {doomed, wedged}

        # Follow-up run, no faults: exactly the 2 quarantined cells
        # plus the 1 corrupt entry are re-simulated, nothing else.
        resume_cache = ResultCache(tmp_path)
        resume = SweepRunner(jobs=1, cache=resume_cache)
        resumed = resume.run(configs)
        assert all(r is not None for r in resumed)
        assert resume.last_stats.simulated == 3
        assert resume.last_stats.cache_hits == 17
        assert resume_cache.stats.corrupt == 1

        # Third run: fully cache-served and bit-identical to clean.
        third = SweepRunner(jobs=1, cache_dir=tmp_path)
        final = third.run(configs)
        assert third.last_stats.simulated == 0
        for config, result in zip(configs, final):
            assert fields(result) == fields(run_once(config))


class TestIOFaultParsing:
    def test_parse_io_clauses(self):
        plan = FaultPlan.parse(
            "ioerr:cache/:1;enospc:queue/:*;stall:events/:1:0.2")
        assert [s.action for s in plan.specs] == \
            ["ioerr", "enospc", "stall"]
        assert plan.specs[0].attempts == (1,)
        assert plan.specs[1].attempts is None
        assert plan.specs[2].seconds == 0.2

    def test_stall_default_duration_is_small(self):
        # A stall only needs to be observable (unlike a hang, which
        # must outlast a cell timeout).
        assert FaultPlan.parse("stall:x/:*").specs[0].seconds == 0.05

    def test_io_clauses_round_trip(self):
        text = "ioerr:cache/:1,2;enospc:queue/:*;stall:events/:1:0.25"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.to_text()).to_text() \
            == plan.to_text()


class TestMaybeIoFault:
    def test_nth_matching_write_fires(self):
        plan = FaultPlan.parse("ioerr:cache/:2")
        maybe_io_fault("cache", "bfs", plan)          # write 1: clean
        with pytest.raises(OSError) as excinfo:
            maybe_io_fault("cache", "bfs", plan)      # write 2: EIO
        assert excinfo.value.errno == errno.EIO
        maybe_io_fault("cache", "bfs", plan)          # write 3: clean

    def test_enospc_errno(self):
        plan = FaultPlan.parse("enospc:queue/:*")
        with pytest.raises(OSError) as excinfo:
            maybe_io_fault("queue", "item.json", plan)
        assert excinfo.value.errno == errno.ENOSPC

    def test_site_detail_matching(self):
        plan = FaultPlan.parse("ioerr:cache/bfs:*")
        maybe_io_fault("queue", "bfs", plan)    # wrong site: no fault
        maybe_io_fault("cache", "rnd", plan)    # wrong detail: no fault
        with pytest.raises(OSError):
            maybe_io_fault("cache", "bfs/radix", plan)

    def test_stall_sleeps_and_returns(self):
        plan = FaultPlan.parse("stall:events/:*:0.01")
        start = time.perf_counter()
        maybe_io_fault("events", "cell.completed", plan)
        assert time.perf_counter() - start >= 0.005

    def test_no_plan_is_a_no_op(self):
        maybe_io_fault("cache", "anything")


class TestGuardedIo:
    def test_transient_fault_absorbed_by_retry(self):
        plan = FaultPlan.parse("ioerr:cache/:1")
        sleeps = []
        assert guarded_io(lambda: "stored", "cache", "bfs", plan,
                          sleep=sleeps.append) == "stored"
        assert len(sleeps) == 1

    def test_persistent_fault_propagates_after_backoff(self):
        plan = FaultPlan.parse("enospc:cache/:*")
        sleeps = []
        with pytest.raises(OSError) as excinfo:
            guarded_io(lambda: "stored", "cache", "bfs", plan,
                       retries=2, backoff=0.02, sleep=sleeps.append)
        assert excinfo.value.errno == errno.ENOSPC
        assert sleeps == [0.02, 0.04]    # exponential backoff

    def test_real_oserror_from_fn_is_retried(self):
        failures = iter([OSError(errno.EIO, "flaky"), None])

        def write():
            exc = next(failures)
            if exc is not None:
                raise exc
            return "ok"

        assert guarded_io(write, "cache", sleep=lambda s: None) == "ok"


class TestCacheStoreDegrade:
    def test_persistent_enospc_degrades_to_manifest_hole(
            self, tmp_path, monkeypatch):
        """The cell's result is still served (this run completes); the
        cache gets a hole and the manifest a ``cache-io`` entry so the
        next run knows to re-simulate."""
        configs = tiny_grid()
        victim = cell_label(configs[1])
        # I/O plans reach writers through the environment (the cache
        # was built without an explicit plan).
        monkeypatch.setenv(FAULT_PLAN_ENV,
                           f"enospc:cache/{victim}:*")
        service = SweepService(
            backend="serial", cache_dir=tmp_path / "cache",
            policy=SweepPolicy(strict=False))
        results = service.run(configs)
        assert all(r is not None for r in results)
        assert fields(results[1]) == fields(run_once(configs[1]))
        manifest = service.last_stats.manifest
        assert len(manifest) == 1
        failure = manifest.failures[0]
        assert failure.kind == "cache-io"
        assert failure.label == victim
        assert "cache store failed" in failure.error
        entries = list((tmp_path / "cache").glob("*.json"))
        assert len(entries) == len(configs) - 1
        assert service.last_stats.metrics["cache.store_errors"] == 1

    def test_transient_enospc_absorbed_silently(self, tmp_path,
                                                monkeypatch):
        configs = tiny_grid()
        victim = cell_label(configs[1])
        monkeypatch.setenv(FAULT_PLAN_ENV,
                           f"enospc:cache/{victim}:1")
        service = SweepService(
            backend="serial", cache_dir=tmp_path / "cache",
            policy=SweepPolicy(strict=False))
        results = service.run(configs)
        assert all(r is not None for r in results)
        assert not service.last_stats.manifest
        entries = list((tmp_path / "cache").glob("*.json"))
        assert len(entries) == len(configs)


class TestSweepJournal:
    def test_digest_is_order_independent(self):
        assert sweep_digest(["b", "a", "c"]) == sweep_digest(
            ["c", "a", "b"])
        assert sweep_digest(["a"]) != sweep_digest(["b"])
        path = journal_path("/tmp/x", ["a", "b"])
        assert path.name == (f"sweep-{sweep_digest(['a', 'b'])}"
                             f".journal.jsonl")

    def test_record_load_round_trip(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        with SweepJournal(path) as journal:
            journal.record("start", cells=4)
            journal.record("dispatch", key="k1", label="l1", attempt=1)
            journal.record("outcome", key="k1", attempt=1,
                           status="error")
            journal.record("retry", key="k1", attempt=1,
                           not_before=123.0)
            journal.record("outcome", key="k2", attempt=1, status="ok")
            journal.record("quarantine", key="k3", label="l3",
                           attempts=2, fail_kind="timeout",
                           error="too slow")
            journal.record("interrupted", completed=1, pending=0,
                           requeued=1)
        state = load_journal(path)
        assert state.attempts == {"k1": 1}
        assert state.not_before == {"k1": 123.0}
        assert state.completed == {"k2"}
        assert state.quarantined["k3"]["fail_kind"] == "timeout"
        assert state.quarantined["k3"]["attempts"] == 2
        assert state.interrupted
        assert bool(state)

    def test_ok_outcome_clears_backoff_gate(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path) as journal:
            journal.record("retry", key="k1", attempt=1,
                           not_before=99.0)
            journal.record("outcome", key="k1", attempt=2,
                           status="ok")
        state = load_journal(path)
        assert state.not_before == {}
        assert state.completed == {"k1"}

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path) as journal:
            journal.record("outcome", key="k1", attempt=1,
                           status="error")
        with open(path, "a") as handle:
            handle.write('{"v": 1, "kind": "outco')   # torn append
        state = load_journal(path)
        assert state.attempts == {"k1": 1}
        assert state.records == 1

    def test_missing_journal_is_empty_state(self, tmp_path):
        state = load_journal(tmp_path / "absent.jsonl")
        assert not state
        assert state.attempts == {}

    def test_fresh_run_truncates_resume_appends(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path) as journal:
            journal.record("outcome", key="old", attempt=1,
                           status="error")
        with SweepJournal(path, resume=True) as journal:
            journal.record("outcome", key="new", attempt=1,
                           status="error")
        assert load_journal(path).attempts == {"old": 1, "new": 1}
        with SweepJournal(path) as journal:       # fresh: truncate
            journal.record("outcome", key="only", attempt=1,
                           status="error")
        assert load_journal(path).attempts == {"only": 1}

    def test_persistent_write_fault_degrades_to_counted_drop(
            self, tmp_path):
        path = tmp_path / "j.jsonl"
        plan = FaultPlan.parse("ioerr:journal/:*")
        with SweepJournal(path, fault_plan=plan) as journal:
            journal.record("outcome", key="k1", attempt=1,
                           status="ok")
            journal.record("outcome", key="k2", attempt=1,
                           status="ok")
            assert journal.dropped == 2
        assert not load_journal(path)


class TestResumeSupervision:
    def _keys(self, tmp_path, configs):
        cache = ResultCache(tmp_path / "cache")
        return [cache.key(config) for config in configs]

    def test_quarantine_carried_on_resume(self, tmp_path):
        """A cell the previous run gave up on stays quarantined under
        ``--resume`` — no silent fresh retry budget."""
        configs = tiny_grid()
        bad = cell_label(configs[1])
        first = SweepService(
            backend="serial", cache_dir=tmp_path / "cache",
            policy=SweepPolicy(retries=0, backoff=0.0, strict=False,
                               fault_plan=f"fail:{bad}:*"))
        assert first.run(configs)[1] is None
        assert len(first.last_stats.manifest) == 1

        resumed = SweepService(
            backend="serial", cache_dir=tmp_path / "cache",
            resume=True,
            policy=SweepPolicy(retries=0, strict=False))
        results = resumed.run(configs)
        assert results[1] is None
        stats = resumed.last_stats
        assert stats.simulated == 0          # nothing re-simulated
        assert stats.cache_hits == len(configs) - 1
        failure = stats.manifest.failures[0]
        assert failure.label == bad
        assert "InjectedFault" in failure.error

        # A plain re-run (no --resume) grants a fresh budget instead.
        fresh = SweepService(
            backend="serial", cache_dir=tmp_path / "cache",
            policy=SweepPolicy(retries=0, strict=False))
        assert all(r is not None for r in fresh.run(configs))
        assert fresh.last_stats.simulated == 1

    def test_attempt_counts_carried_on_resume(self, tmp_path):
        """Failures charged by a killed supervisor still count: the
        journal says two attempts burned, so one more exhausts a
        retries=2 budget."""
        configs = tiny_grid()
        bad_index = 2
        bad = cell_label(configs[bad_index])
        keys = self._keys(tmp_path, configs)
        path = journal_path(tmp_path / "cache" / "journal", keys)
        with SweepJournal(path) as journal:
            journal.record("outcome", key=keys[bad_index], attempt=1,
                           status="error")
            journal.record("outcome", key=keys[bad_index], attempt=2,
                           status="error")

        service = SweepService(
            backend="serial", cache_dir=tmp_path / "cache",
            resume=True,
            policy=SweepPolicy(retries=2, backoff=0.0, strict=False,
                               fault_plan=f"fail:{bad}:*"))
        results = service.run(configs)
        assert results[bad_index] is None
        stats = service.last_stats
        failure = stats.manifest.failures[0]
        assert failure.attempts == 3     # 2 carried + 1 new
        # Only one dispatch happened this run (attempt 3): without the
        # journal the cell would have burned attempts 1..3 again.
        assert stats.retries == 1

    def test_sigterm_drains_and_resume_completes(self, tmp_path):
        """SIGTERM mid-sweep: in-flight work is cancelled, the journal
        records the interruption, SweepInterrupted propagates — and a
        ``--resume`` run completes only what is missing."""
        configs = tiny_grid()
        victim = cell_label(configs[3])
        cache_dir = tmp_path / "cache"
        service = SweepService(
            backend="pool", jobs=2, cache_dir=cache_dir,
            policy=SweepPolicy(retries=0, strict=False,
                               fault_plan=f"hang:{victim}:*:60"))

        def send_term():
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if len(list(cache_dir.glob("*.json"))) >= 3:
                    os.kill(os.getpid(), signal.SIGTERM)
                    return
                time.sleep(0.01)

        killer = threading.Thread(target=send_term, daemon=True)
        killer.start()
        with pytest.raises(SweepInterrupted) as excinfo:
            service.run(configs)
        killer.join(timeout=5)
        assert excinfo.value.completed == 3
        assert excinfo.value.requeued == 1
        assert "interrupted" in str(excinfo.value)

        keys = self._keys(tmp_path, configs)
        state = load_journal(
            journal_path(cache_dir / "journal", keys))
        assert state.interrupted
        assert len(state.completed) == 3
        # The in-flight dispatch was never charged an attempt.
        assert state.attempts.get(keys[3], 0) == 0

        resumed = SweepService(backend="serial", cache_dir=cache_dir,
                               resume=True)
        results = resumed.run(configs)
        assert all(r is not None for r in results)
        assert resumed.last_stats.cache_hits == 3
        assert resumed.last_stats.simulated == 1
        assert fields(results[3]) == fields(run_once(configs[3]))

    def test_interrupted_is_not_swallowed_by_except_exception(self):
        with pytest.raises(KeyboardInterrupt):
            try:
                raise SweepInterrupted(1, 2, 3)
            except Exception:             # generic recovery code
                pytest.fail("drain must not be swallowed")
