"""Tests for fault injection and sweep fault tolerance.

Every recovery path the supervisor advertises is driven here through
a deterministic :class:`FaultPlan`: failing cells retry and quarantine,
wedged cells trip the timeout, SIGKILLed workers respawn, corrupted
cache entries are caught by checksum — and a sweep under faults still
completes every healthy cell bit-identically to a fault-free run.
"""

import dataclasses
import json

import pytest

from repro.analysis.cache import ResultCache
from repro.sim.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    apply_cell_faults,
    cell_label,
    corrupt_entry,
    maybe_corrupt_entry,
    reset_fired,
)
from repro.sim.runner import run_once
from repro.sim.sweep import (
    SweepFailure,
    SweepRunner,
    expand_grid,
)

TINY = dict(refs_per_core=300, scale=1 / 64, seed=7)


@pytest.fixture(autouse=True)
def _fresh_fault_state(monkeypatch):
    """No plan leaks in from the environment; one-shot state resets."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    reset_fired()
    yield
    reset_fired()


def tiny_grid(workloads=("rnd", "bfs"), mechanisms=("radix", "ndpage")):
    return expand_grid(workloads=workloads, mechanisms=mechanisms,
                       **TINY)


def fields(result) -> dict:
    return dataclasses.asdict(result)


class TestFaultPlanParsing:
    def test_parse_clauses(self):
        plan = FaultPlan.parse(
            "fail:bfs/ndpage/:*;hang:xs/radix/:1:30;"
            "kill:rnd/radix/:1,2;corrupt:bfs/radix/")
        assert [s.action for s in plan.specs] == \
            ["fail", "hang", "kill", "corrupt"]
        assert plan.specs[0].attempts is None
        assert plan.specs[1].seconds == 30.0
        assert plan.specs[2].attempts == (1, 2)

    def test_round_trip(self):
        text = "fail:bfs/ndpage/:1,2;hang:xs/radix/:*:5.0;kill:rnd/:3"
        assert FaultPlan.parse(FaultPlan.parse(text).to_text()) \
            .to_text() == FaultPlan.parse(text).to_text()

    def test_bad_clause_raises(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.parse("explode:everything")
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.parse("fail")

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan()
        assert FaultPlan.parse("fail:x:*")

    def test_from_env(self, monkeypatch):
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "fail:bfs/:1")
        plan = FaultPlan.from_env()
        assert plan is not None
        assert plan.specs[0].match == "bfs/"

    def test_applies_attempt_matching(self):
        spec = FaultSpec("fail", "bfs/ndpage/", attempts=(1,))
        assert spec.applies("bfs/ndpage/ndp/1c/s7", 1)
        assert not spec.applies("bfs/ndpage/ndp/1c/s7", 2)
        assert not spec.applies("rnd/radix/ndp/1c/s7", 1)
        # attempt=None (store-side matching) ignores the attempt filter
        assert spec.applies("bfs/ndpage/ndp/1c/s7", None)

    def test_cell_label_shape(self):
        config = tiny_grid()[0]
        label = cell_label(config)
        assert label == (f"{config.workload}/{config.mechanism}/"
                         f"{config.system}/{config.num_cores}c/"
                         f"s{config.seed}")


class TestApplyCellFaults:
    def test_fail_raises_injected_fault(self):
        plan = FaultPlan.parse("fail:bfs/ndpage/:*")
        with pytest.raises(InjectedFault, match="bfs/ndpage"):
            apply_cell_faults(plan, "bfs/ndpage/ndp/1c/s7", 1)

    def test_no_match_is_a_no_op(self):
        plan = FaultPlan.parse("fail:bfs/ndpage/:*")
        apply_cell_faults(plan, "rnd/radix/ndp/1c/s7", 1)

    def test_attempt_gated_fail(self):
        plan = FaultPlan.parse("fail:bfs/:1")
        with pytest.raises(InjectedFault):
            apply_cell_faults(plan, "bfs/radix/ndp/1c/s7", 1)
        apply_cell_faults(plan, "bfs/radix/ndp/1c/s7", 2)  # recovers


class TestCorruptEntry:
    def test_valid_json_payload_perturbed(self, tmp_path):
        """The adversarial case: still-parseable JSON, wrong payload."""
        path = tmp_path / "entry.json"
        entry = {"format": 2, "result": {"cycles": 100.0}}
        path.write_text(json.dumps(entry))
        corrupt_entry(path)
        after = json.loads(path.read_text())
        assert after["result"]["cycles"] == 101.0

    def test_unparseable_entry_truncated(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("this is not json at all")
        corrupt_entry(path)
        assert len(path.read_text()) < len("this is not json at all")

    def test_maybe_corrupt_is_one_shot(self, tmp_path):
        plan = FaultPlan.parse("corrupt:bfs/radix/")
        path = tmp_path / "entry.json"
        path.write_text(json.dumps({"result": {"cycles": 1.0}}))
        assert maybe_corrupt_entry(path, "bfs/radix/ndp/1c/s7",
                                   plan=plan)
        assert not maybe_corrupt_entry(path, "bfs/radix/ndp/1c/s7",
                                       plan=plan)
        assert json.loads(path.read_text())["result"]["cycles"] == 2.0

    def test_maybe_corrupt_no_plan(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("{}")
        assert not maybe_corrupt_entry(path, "bfs/radix/ndp/1c/s7")


class TestSerialFaultTolerance:
    def test_keep_going_leaves_hole_and_manifest(self):
        configs = tiny_grid()
        bad = cell_label(configs[1])
        runner = SweepRunner(jobs=1, strict=False, retries=1,
                             backoff=0.0,
                             fault_plan=f"fail:{bad}:*")
        results = runner.run(configs)
        assert results[1] is None
        assert all(r is not None
                   for i, r in enumerate(results) if i != 1)
        stats = runner.last_stats
        assert stats.failed == 1
        assert stats.retries == 1          # 2 attempts = 1 retry
        assert stats.manifest.labels() == [bad]
        failure = stats.manifest.failures[0]
        assert failure.kind == "error"
        assert failure.attempts == 2
        assert "InjectedFault" in failure.error
        assert bad in stats.manifest.format()
        assert "quarantined" in stats.summary()

    def test_strict_raises_after_completing_others(self, tmp_path):
        configs = tiny_grid()
        bad = cell_label(configs[0])
        cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache, strict=True,
                             retries=0, backoff=0.0,
                             fault_plan=f"fail:{bad}:*")
        with pytest.raises(SweepFailure) as excinfo:
            runner.run(configs)
        assert excinfo.value.manifest.labels() == [bad]
        # Every healthy cell was still completed and persisted.
        assert len(cache) == len(configs) - 1

    def test_retry_recovers_flaky_cell(self):
        configs = tiny_grid()
        flaky = cell_label(configs[2])
        runner = SweepRunner(jobs=1, retries=1, backoff=0.0,
                             fault_plan=f"fail:{flaky}:1")
        results = runner.run(configs)
        assert all(r is not None for r in results)
        assert runner.last_stats.retries == 1
        assert not runner.last_stats.manifest
        # The recovered result is bit-identical to a clean run.
        assert fields(results[2]) == fields(run_once(configs[2]))

    def test_retries_zero_means_one_attempt(self):
        configs = tiny_grid()
        runner = SweepRunner(jobs=1, strict=False, retries=0,
                             backoff=0.0,
                             fault_plan=f"fail:{cell_label(configs[0])}:1")
        results = runner.run(configs)
        assert results[0] is None
        assert runner.last_stats.manifest.failures[0].attempts == 1

    def test_plan_from_environment(self, monkeypatch):
        configs = tiny_grid()
        monkeypatch.setenv(FAULT_PLAN_ENV,
                           f"fail:{cell_label(configs[0])}:*")
        runner = SweepRunner(jobs=1, strict=False, retries=0,
                             backoff=0.0)
        results = runner.run(configs)
        assert results[0] is None
        assert runner.last_stats.failed == 1


class TestSupervisedFaultTolerance:
    def test_worker_kill_recovers_bit_identically(self):
        """SIGKILL mid-cell: the sentinel wakes the supervisor, the
        worker is respawned, the cell re-dispatched and completed."""
        configs = tiny_grid()
        victim = cell_label(configs[1])
        runner = SweepRunner(jobs=2, retries=1, backoff=0.01,
                             fault_plan=f"kill:{victim}:1")
        results = runner.run(configs)
        assert all(r is not None for r in results)
        stats = runner.last_stats
        assert stats.worker_deaths >= 1
        assert stats.retries >= 1
        assert not stats.manifest
        assert fields(results[1]) == fields(run_once(configs[1]))

    def test_worker_kill_exhausts_retries_into_manifest(self):
        configs = tiny_grid()
        victim = cell_label(configs[0])
        runner = SweepRunner(jobs=2, strict=False, retries=1,
                             backoff=0.01,
                             fault_plan=f"kill:{victim}:*")
        results = runner.run(configs)
        assert results[0] is None
        assert all(r is not None for r in results[1:])
        failure = runner.last_stats.manifest.failures[0]
        assert failure.kind == "worker-died"
        assert failure.attempts == 2
        assert "worker died" in failure.error

    def test_hung_cell_trips_timeout(self):
        configs = tiny_grid()
        wedged = cell_label(configs[1])
        runner = SweepRunner(jobs=2, strict=False, retries=0,
                             cell_timeout=1.0, backoff=0.01,
                             fault_plan=f"hang:{wedged}:*:30")
        results = runner.run(configs)
        assert results[1] is None
        assert all(r is not None
                   for i, r in enumerate(results) if i != 1)
        stats = runner.last_stats
        assert stats.timeouts == 1
        failure = stats.manifest.failures[0]
        assert failure.kind == "timeout"
        assert "cell_timeout" in failure.error

    def test_failing_cell_in_pool_quarantined(self):
        configs = tiny_grid()
        bad = cell_label(configs[3])
        runner = SweepRunner(jobs=2, strict=False, retries=1,
                             backoff=0.01,
                             fault_plan=f"fail:{bad}:*")
        results = runner.run(configs)
        assert results[3] is None
        failure = runner.last_stats.manifest.failures[0]
        assert failure.kind == "error"
        assert "InjectedFault" in failure.error

    def test_resume_after_worker_kill(self, tmp_path):
        """An always-killed cell quarantines; the healthy cells land in
        the cache, and a clean re-run simulates only the casualty."""
        configs = tiny_grid()
        victim = cell_label(configs[2])
        first = SweepRunner(jobs=2, cache_dir=tmp_path, strict=False,
                            retries=1, backoff=0.01,
                            fault_plan=f"kill:{victim}:*")
        results = first.run(configs)
        assert results[2] is None
        assert first.last_stats.failed == 1

        second = SweepRunner(jobs=1, cache_dir=tmp_path)
        resumed = second.run(configs)
        assert all(r is not None for r in resumed)
        assert second.last_stats.simulated == 1
        assert second.last_stats.cache_hits == len(configs) - 1
        assert fields(resumed[2]) == fields(run_once(configs[2]))

    def test_unpicklable_run_fn_fails_fast(self):
        configs = tiny_grid()
        runner = SweepRunner(jobs=2)
        with pytest.raises(ValueError, match="not picklable"):
            runner.run(configs, run_fn=lambda config: run_once(config))


class TestCorruptionThroughSweep:
    def test_corrupt_entry_caught_on_next_load(self, tmp_path):
        """A corrupt clause perturbs the entry at store time; the next
        sweep's checksum check catches it and re-simulates the cell."""
        configs = tiny_grid()
        target = cell_label(configs[0])
        plan = FaultPlan.parse(f"corrupt:{target}")
        cache = ResultCache(tmp_path, fault_plan=plan)
        SweepRunner(jobs=1, cache=cache).run(configs)

        clean_cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=clean_cache)
        results = runner.run(configs)
        assert clean_cache.stats.corrupt == 1
        assert runner.last_stats.simulated == 1
        assert runner.last_stats.cache_hits == len(configs) - 1
        # The re-simulated result is the real one, not the corrupted.
        assert fields(results[0]) == fields(run_once(configs[0]))


class TestAcceptance20Cells:
    """The ISSUE's acceptance scenario: a 20-cell sweep under injected
    faults completes every healthy cell, quarantines the faulty ones,
    and a follow-up run re-simulates only quarantined/missing cells."""

    GRID = dict(workloads=("rnd", "bfs"),
                mechanisms=("radix", "ndpage", "ech", "hugepage",
                            "ideal"),
                systems=("ndp", "cpu"),
                refs_per_core=120, scale=1 / 64, seed=7)

    def test_chaos_sweep_completes_then_resumes(self, tmp_path):
        configs = expand_grid(**self.GRID)
        assert len(configs) == 20
        labels = [cell_label(c) for c in configs]
        doomed = labels[labels.index("bfs/ndpage/ndp/1c/s7")]
        wedged = labels[labels.index("rnd/ech/ndp/1c/s7")]
        killed = labels[labels.index("bfs/radix/ndp/1c/s7")]
        corrupted = labels[labels.index("rnd/hugepage/ndp/1c/s7")]
        plan = FaultPlan.parse(
            f"fail:{doomed}:*;hang:{wedged}:*:30;"
            f"kill:{killed}:1;corrupt:{corrupted}")

        cache = ResultCache(tmp_path, fault_plan=plan)
        chaos = SweepRunner(jobs=2, cache=cache, strict=False,
                            retries=1, cell_timeout=1.0, backoff=0.01,
                            fault_plan=plan)
        results = chaos.run(configs)

        stats = chaos.last_stats
        assert stats.failed == 2
        assert sorted(stats.manifest.labels()) == \
            sorted([doomed, wedged])
        assert stats.worker_deaths >= 1
        assert stats.timeouts >= 1
        # Every healthy cell completed despite the chaos.
        holes = {labels[i] for i, r in enumerate(results) if r is None}
        assert holes == {doomed, wedged}

        # Follow-up run, no faults: exactly the 2 quarantined cells
        # plus the 1 corrupt entry are re-simulated, nothing else.
        resume_cache = ResultCache(tmp_path)
        resume = SweepRunner(jobs=1, cache=resume_cache)
        resumed = resume.run(configs)
        assert all(r is not None for r in resumed)
        assert resume.last_stats.simulated == 3
        assert resume.last_stats.cache_hits == 17
        assert resume_cache.stats.corrupt == 1

        # Third run: fully cache-served and bit-identical to clean.
        third = SweepRunner(jobs=1, cache_dir=tmp_path)
        final = third.run(configs)
        assert third.last_stats.simulated == 0
        for config, result in zip(configs, final):
            assert fields(result) == fields(run_once(config))
