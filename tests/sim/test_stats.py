"""Tests for the statistics primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    CounterBag,
    HitMissStats,
    LatencyStats,
    geometric_mean,
    ratio,
    weighted_mean,
)


class TestRatio:
    def test_normal(self):
        assert ratio(1, 4) == 0.25

    def test_zero_denominator(self):
        assert ratio(5, 0) == 0.0


class TestHitMiss:
    def test_rates(self):
        stats = HitMissStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75
        assert stats.miss_rate == 0.25
        assert stats.accesses == 4

    def test_empty(self):
        assert HitMissStats().hit_rate == 0.0

    def test_merge(self):
        a = HitMissStats(hits=1, misses=1)
        a.merge(HitMissStats(hits=3, misses=0))
        assert a.hits == 4

    def test_reset(self):
        stats = HitMissStats(hits=3, misses=1)
        stats.reset()
        assert stats.accesses == 0


class TestLatency:
    def test_record(self):
        stats = LatencyStats()
        stats.record(10)
        stats.record(20)
        assert stats.mean == 15
        assert stats.maximum == 20
        assert stats.count == 2

    def test_empty_mean(self):
        assert LatencyStats().mean == 0.0

    def test_merge_keeps_max(self):
        a = LatencyStats()
        a.record(5)
        b = LatencyStats()
        b.record(50)
        a.merge(b)
        assert a.maximum == 50
        assert a.mean == 27.5

    @given(st.lists(st.floats(min_value=0, max_value=1e6),
                    min_size=1, max_size=50))
    def test_mean_bounded_by_extremes(self, values):
        stats = LatencyStats()
        for value in values:
            stats.record(value)
        slack = 1e-9 * (1 + max(values))  # float-summation tolerance
        assert min(values) - slack <= stats.mean <= max(values) + slack


class TestCounterBag:
    def test_add_get(self):
        bag = CounterBag()
        bag.add("x")
        bag.add("x", 4)
        assert bag.get("x") == 5
        assert bag.get("y") == 0

    def test_merge(self):
        a = CounterBag()
        a.add("x")
        b = CounterBag()
        b.add("x", 2)
        b.add("y")
        a.merge(b)
        assert a.as_dict() == {"x": 3, "y": 1}


class TestAggregates:
    def test_weighted_mean(self):
        assert weighted_mean([1, 3], [1, 1]) == 2
        assert weighted_mean([1, 3], [3, 1]) == 1.5

    def test_weighted_mean_empty(self):
        assert weighted_mean([], []) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_geometric_mean_requires_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1, 0])

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0
