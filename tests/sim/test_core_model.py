"""Tests for the core timing model (MLP window, accounting)."""

import pytest

from repro.mem.dram import HBM2
from repro.mem.hierarchy import build_ndp_hierarchy
from repro.mmu.mmu import Mmu
from repro.mmu.tlb import build_table1_tlbs
from repro.mmu.walker import PageTableWalker
from repro.sim.core_model import Core
from repro.vm.frames import FrameAllocator
from repro.vm.ideal import IdealPageTable
from repro.vm.os_model import OSMemoryManager

MIB = 1024 ** 2


def make_core(stream, mlp=2, gap=1):
    from repro.vm.os_model import FaultCosts
    allocator = FrameAllocator(64 * MIB)
    table = IdealPageTable()
    # Zero fault costs: these tests isolate the core's timing window.
    os_model = OSMemoryManager(allocator, table,
                               costs=FaultCosts(minor_fault_cycles=0))
    hierarchy = build_ndp_hierarchy(1, HBM2)
    walker = PageTableWalker(table, hierarchy, core_id=0)
    mmu = Mmu(0, build_table1_tlbs(), walker, os_model, ideal=True)
    return Core(0, mmu, hierarchy, iter(stream), gap_cycles=gap, mlp=mlp)


class TestStepping:
    def test_step_consumes_one_reference(self):
        core = make_core([(0x1000, False), (0x2000, False)])
        assert core.step(0.0) is not None
        assert core.stats.references == 1

    def test_exhausted_stream_returns_none(self):
        core = make_core([(0x1000, False)])
        now = core.step(0.0)
        assert core.step(now) is None
        assert core.finished

    def test_instructions_include_gap(self):
        core = make_core([(0x1000, False)] * 3, gap=4)
        now = 0.0
        while (now := core.step(now)) is not None:
            pass
        assert core.stats.instructions == 3 * 5  # 1 mem + 4 ALU each

    def test_time_advances_monotonically(self):
        core = make_core([(i * 4096, False) for i in range(20)])
        now, times = 0.0, []
        while True:
            nxt = core.step(now)
            if nxt is None:
                break
            times.append(nxt)
            now = nxt
        assert times == sorted(times)

    def test_drain_extends_cycles_to_last_completion(self):
        core = make_core([(0x100000, False)])
        now = core.step(0.0)
        core.step(now)
        # The data access (DRAM) outlives the issue slot.
        assert core.stats.cycles >= HBM2.row_miss_cycles

    def test_mlp_validated(self):
        with pytest.raises(ValueError):
            make_core([], mlp=0)


class TestMlpWindow:
    def test_window_limits_outstanding_misses(self):
        # Distinct lines -> every access misses L1 and goes to DRAM.
        stream = [(i * 64 * 64, False) for i in range(12)]
        narrow = make_core(list(stream), mlp=1)
        wide = make_core(list(stream), mlp=8)
        for core in (narrow, wide):
            now = 0.0
            while (now := core.step(now)) is not None:
                pass
        assert narrow.stats.cycles > wide.stats.cycles
        assert narrow.stats.data_stall_cycles \
            > wide.stats.data_stall_cycles

    def test_l1_hits_do_not_stall(self):
        stream = [(0x1000, False)] * 50
        core = make_core(stream, mlp=1)
        now = 0.0
        while (now := core.step(now)) is not None:
            pass
        # After the first fill, every access hits: ~issue+gap per ref.
        assert core.stats.cycles < 50 * 20


class TestAccounting:
    def test_translation_fraction_zero_for_ideal(self):
        core = make_core([(0x1000, False)] * 5)
        now = 0.0
        while (now := core.step(now)) is not None:
            pass
        assert core.stats.translation_fraction == 0.0

    def test_ipc_positive(self):
        core = make_core([(0x1000, False)] * 5)
        now = 0.0
        while (now := core.step(now)) is not None:
            pass
        assert core.stats.ipc > 0
