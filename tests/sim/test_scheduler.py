"""Multi-process scheduling tests: ASID-tagged TLBs, switches,
shootdowns, cross-tenant pressure, and multiprogrammed golden pins.

The multi-tenant path has its own golden values (like the
single-address-space ones in test_golden_stats.py): the simulator is
deterministic across processes, so any change that perturbs the
scheduled simulation moves these and must be deliberate.
"""

import dataclasses

import pytest

from repro.mmu.tlb import build_table1_tlbs
from repro.sim.config import SchedulerParams, ndp_config
from repro.sim.runner import run_once
from repro.sim.scheduler import TenantCoordinator, tenant_seed
from repro.sim.sweep import SweepRunner
from repro.vm.address import asid_tag
from repro.vm.base import Translation
from repro.vm.frames import FrameAllocator, OutOfMemoryError
from repro.vm.os_model import OSMemoryManager
from repro.vm.radix import RadixPageTable

MIB = 1024 ** 2


def mt_config(mechanism="radix", **overrides):
    overrides.setdefault("workload", "bfs")
    overrides.setdefault("refs_per_core", 3000)
    overrides.setdefault("scale", 1 / 64)
    overrides.setdefault("seed", 7)
    overrides.setdefault("tenants", 2)
    return ndp_config(mechanism=mechanism, **overrides)


def result_fields(result) -> dict:
    fields = dataclasses.asdict(result)
    fields.pop("config")
    return fields


#: Golden multi-tenant values (2 tenants, 1 core, bfs @ 1/64 scale).
MT_GOLDEN = {
    "radix": {
        "cycles": 679136.0,
        "references": 6000,
        "walks": 4217,
        "tlb_miss_rate": 0.7028333333333333,
        "fault_cycles": 0.0,
    },
    "ndpage": {
        "cycles": 676647.0,
        "references": 6000,
        "walks": 4217,
        "tlb_miss_rate": 0.7028333333333333,
        "fault_cycles": 0.0,
    },
}

#: Scheduler accounting shared by both golden cells: 2 tenants x 3000
#: refs at the default 2048-ref quantum = 2 slices each, 3 switches,
#: all ASID-preserved (2 tenants fit 16 ASIDs), no memory pressure.
MT_GOLDEN_EXTRAS = {
    "tenants": 2.0,
    "context_switches": 3.0,
    "preserved_switches": 3.0,
    "flush_switches": 0.0,
    "switch_cycles": 18000.0,
    "shootdowns": 0.0,
    "shootdown_cycles": 0.0,
    "cross_tenant_reclaims": 0.0,
}


class TestMultiTenantGolden:
    @pytest.mark.parametrize("mechanism", sorted(MT_GOLDEN))
    def test_run_result_matches_golden(self, mechanism):
        result = run_once(mt_config(mechanism))
        golden = MT_GOLDEN[mechanism]
        mismatches = {
            name: (getattr(result, name), expected)
            for name, expected in golden.items()
            if getattr(result, name) != expected
        }
        extras = dict(result.extras)
        extras.pop("frame_pressure")  # pinned loosely below
        assert extras == MT_GOLDEN_EXTRAS
        assert 0.0 < result.extras["frame_pressure"] < 1.0
        assert not mismatches, (
            f"{mechanism}: multi-tenant statistics drifted: "
            f"{mismatches}")

    def test_deterministic_across_calls(self):
        first = result_fields(run_once(mt_config()))
        second = result_fields(run_once(mt_config()))
        assert first == second

    def test_deterministic_across_worker_counts(self):
        """Same cells through the pool = serial, field for field."""
        configs = [mt_config(m) for m in ("radix", "ndpage")]
        serial = SweepRunner(jobs=1).run(configs)
        pooled = SweepRunner(jobs=2).run(configs)
        for a, b in zip(serial, pooled):
            assert result_fields(a) == result_fields(b)

    def test_references_conserved(self):
        """Every (slot, tenant) context runs its full stream."""
        result = run_once(mt_config(tenants=3, num_cores=2))
        assert result.references == 3 * 2 * 3000


class TestSchedulerRunAhead:
    """The multi-slot run-ahead loops must match the per-reference
    reference engine (``REPRO_REFERENCE_ENGINE=1``) bit for bit —
    including quantum accounting, retire order, and cross-tenant
    shootdown interleaving under memory pressure."""

    @pytest.mark.parametrize("mechanism", ["radix", "ndpage"])
    def test_multislot_matches_reference_engine(self, mechanism,
                                                monkeypatch):
        from repro.sim.engine import REFERENCE_ENGINE_ENV
        config = mt_config(mechanism, num_cores=2,
                           refs_per_core=1200)
        fast = result_fields(run_once(config))
        monkeypatch.setenv(REFERENCE_ENGINE_ENV, "1")
        reference = result_fields(run_once(config))
        assert fast == reference

    def test_pressure_run_matches_reference_engine(self, monkeypatch):
        """Shootdowns from one slot's faults invalidate other slots'
        TLBs — their order relative to every reference is pinned."""
        from repro.sim.engine import REFERENCE_ENGINE_ENV
        config = mt_config(workload="rnd", num_cores=2,
                           refs_per_core=1500,
                           phys_bytes=24 * MIB,
                           scheduler=SchedulerParams(quantum_refs=256))
        fast = result_fields(run_once(config))
        monkeypatch.setenv(REFERENCE_ENGINE_ENV, "1")
        reference = result_fields(run_once(config))
        assert fast == reference

    def test_weighted_quanta_match_reference_engine(self, monkeypatch):
        from repro.sim.engine import REFERENCE_ENGINE_ENV
        config = mt_config(num_cores=2, refs_per_core=900,
                           scheduler=SchedulerParams(
                               tenant_weights=(2.0, 1.0)))
        fast = result_fields(run_once(config))
        monkeypatch.setenv(REFERENCE_ENGINE_ENV, "1")
        reference = result_fields(run_once(config))
        assert fast == reference

    def test_multislot_deterministic_across_worker_counts(self):
        """Multi-slot scheduled cells through the pool = serial."""
        configs = [mt_config(m, num_cores=2, refs_per_core=1000)
                   for m in ("radix", "ndpage")]
        serial = SweepRunner(jobs=1).run(configs)
        pooled = SweepRunner(jobs=2).run(configs)
        for a, b in zip(serial, pooled):
            assert result_fields(a) == result_fields(b)


class TestAsidAccounting:
    def test_switches_preserve_tlb_within_asid_capacity(self):
        result = run_once(mt_config())
        assert result.extras["preserved_switches"] \
            == result.extras["context_switches"]
        assert result.extras["flush_switches"] == 0.0

    def test_asid_exhaustion_forces_flushes(self):
        result = run_once(mt_config(
            scheduler=SchedulerParams(max_asids=1)))
        assert result.extras["flush_switches"] \
            == result.extras["context_switches"] > 0
        assert result.extras["preserved_switches"] == 0.0

    def test_flushing_costs_more_than_preserving(self):
        """ASID reuse (flush) must lose against tagged coexistence."""
        preserved = run_once(mt_config())
        flushed = run_once(mt_config(
            scheduler=SchedulerParams(flush_on_switch=True)))
        assert flushed.extras["flush_switches"] > 0
        assert flushed.tlb_miss_rate > preserved.tlb_miss_rate
        assert flushed.cycles > preserved.cycles

    def test_switch_cycles_charged(self):
        quantum = 1000
        cheap = run_once(mt_config(
            scheduler=SchedulerParams(quantum_refs=quantum,
                                      context_switch_cycles=0)))
        costly = run_once(mt_config(
            scheduler=SchedulerParams(quantum_refs=quantum,
                                      context_switch_cycles=50_000)))
        switches = costly.extras["context_switches"]
        assert switches == cheap.extras["context_switches"] > 0
        # Shifting slice start times also perturbs DRAM queueing a
        # little, so the delta is the switch bill within 1 %.
        delta = costly.cycles - cheap.cycles
        assert abs(delta - 50_000 * switches) < 0.01 * 50_000 * switches

    def test_heap_engine_counts_switches_per_slot(self):
        """Two slots each round-robin their own contexts."""
        one = run_once(mt_config(num_cores=1))
        two = run_once(mt_config(num_cores=2))
        assert two.extras["context_switches"] \
            == 2 * one.extras["context_switches"]


class TestShootdowns:
    def test_pressure_run_issues_shootdowns(self):
        result = run_once(mt_config(
            workload="rnd", refs_per_core=4000, tenants=3,
            phys_bytes=24 * MIB))
        assert result.extras["shootdowns"] > 0
        assert result.extras["shootdowns"] == result.os_stats["reclaims"]
        assert result.extras["shootdown_cycles"] > 0
        assert result.extras["frame_pressure"] == 1.0

    def test_no_pressure_no_shootdowns(self):
        result = run_once(mt_config())
        assert result.extras["shootdowns"] == 0.0

    def test_unmap_hook_invalidates_tagged_entry_on_every_slot(self):
        coordinator = TenantCoordinator(SchedulerParams())
        slots = [build_table1_tlbs(0), build_table1_tlbs(1)]
        for tlbs in slots:
            coordinator.register_slot(tlbs)
        hook = coordinator.unmap_hook(asid=2)
        page, key = 0x1234, 0x1234 | asid_tag(2)
        for tlbs in slots:
            tlbs.l1_small.insert(key, Translation(7, 12))
            tlbs.l2.insert(key, Translation(7, 12))
        hook(page, False)
        for tlbs in slots:
            assert tlbs.l1_small.lookup(key) is None
            assert tlbs.l2.lookup(key) is None
        assert coordinator.stats.shootdowns == 1
        assert coordinator.drain_cycles() \
            == SchedulerParams().shootdown_cycles
        assert coordinator.drain_cycles() == 0.0  # drained once

    def test_unmap_hook_invalidates_huge_mapping(self):
        coordinator = TenantCoordinator(SchedulerParams())
        tlbs = build_table1_tlbs()
        coordinator.register_slot(tlbs)
        base_page = 3 * 512  # 2 MB-aligned VPN
        key = base_page | asid_tag(1)
        tlbs.insert(key, Translation(9, 21))
        assert tlbs.l1_huge.occupancy == 1
        coordinator.unmap_hook(asid=1)(base_page, True)
        assert tlbs.l1_huge.occupancy == 0


class TestCrossTenantReclaim:
    def _two_tenants(self, phys=8 * MIB):
        allocator = FrameAllocator(phys, fragmentation=0.0)
        coordinator = TenantCoordinator(SchedulerParams())
        tenants = []
        for asid in range(2):
            table = RadixPageTable(allocator)
            os_model = OSMemoryManager(
                allocator, table,
                on_unmap=coordinator.unmap_hook(asid),
                peer_reclaim=coordinator.peer_reclaim_hook(asid),
                extra_fault_cycles=coordinator.drain_cycles)
            coordinator.register_tenant(asid, os_model)
            tenants.append(os_model)
        return allocator, coordinator, tenants

    def test_exhausted_tenant_reclaims_from_peer(self):
        allocator, coordinator, (victim, starved) = self._two_tenants()
        # The victim maps until the pool is dry...
        page = 0
        while allocator.free_frames > 0:
            victim.ensure_mapped(page << 12)
            page += 1
        before = victim.page_table.mapped_pages
        # ...then the starved tenant (no mappings of its own to evict)
        # faults: its reclaim must steal from the victim, not OOM.
        starved.ensure_mapped(0)
        assert starved.page_table.lookup(0) is not None
        assert coordinator.stats.cross_tenant_reclaims >= 1
        assert victim.page_table.mapped_pages < before
        assert coordinator.stats.shootdowns >= 1

    def test_machine_wide_exhaustion_still_raises(self):
        allocator, coordinator, (a, b) = self._two_tenants()
        page = 0
        while allocator.free_frames > 0:
            a.ensure_mapped(page << 12)
            page += 1
        # Strip both tenants of anything reclaimable.
        a._lru_frames.clear()
        b._lru_frames.clear()
        with pytest.raises(OutOfMemoryError):
            b.ensure_mapped(0)

    def test_initiator_pays_shootdown_cycles(self):
        allocator, coordinator, (victim, starved) = self._two_tenants()
        page = 0
        while allocator.free_frames > 0:
            victim.ensure_mapped(page << 12)
            page += 1
        cycles = starved.ensure_mapped(0)
        assert cycles >= starved.costs.minor_fault_cycles \
            + coordinator.params.shootdown_cycles


class TestTenantStreams:
    def test_tenant_zero_keeps_base_seed(self):
        assert tenant_seed(42, 0) == 42

    def test_tenant_seeds_distinct(self):
        seeds = [tenant_seed(42, asid) for asid in range(8)]
        assert len(set(seeds)) == 8

    def test_single_tenant_config_bypasses_scheduler(self):
        result = run_once(mt_config(tenants=1))
        assert result.extras == {}

    def test_tenant_workloads_honored_at_one_tenant(self):
        """A 1-tenant cell with tenant_workloads must run the tenant
        workload (what the config serializes as), not ``workload`` —
        grids sweeping tenant counts rely on it."""
        override = run_once(mt_config(
            tenants=1, workload="rnd", tenant_workloads=("bfs",)))
        plain = run_once(mt_config(tenants=1, workload="bfs"))
        assert result_fields(override) == result_fields(plain)

    def test_mixed_tenant_workloads(self):
        result = run_once(mt_config(
            tenant_workloads=("bfs", "rnd"), refs_per_core=1500))
        assert result.references == 3000


class TestQuantumGranularity:
    def test_large_quantum_exact_on_single_slot(self):
        """quantum > the 8192-ref generation batch must still switch
        at exact quantum boundaries, matching the heap path's
        per-reference counting: 2 x 20000 refs at q=10000 is four
        full slices (3 boundary switches) plus one retire switch each
        when the exhausted contexts get their empty slice = 5 — not
        the 3 that chunk-rounded 16384-ref slices would give."""
        result = run_once(mt_config(
            refs_per_core=20_000,
            scheduler=SchedulerParams(quantum_refs=10_000)))
        assert result.extras["context_switches"] == 5.0
        assert result.references == 40_000

    def test_quantum_chunks_tile_boundaries(self):
        from repro.sim.scheduler import quantum_chunks
        chunks = [(list(range(8192)), [False] * 8192),
                  (list(range(8192)), [False] * 8192)]
        sizes = [len(a) for a, _ in quantum_chunks(iter(chunks), 10_000)]
        assert sizes == [8192, 1808, 6384]
        assert sum(sizes) == 16384

    def test_quantum_chunks_identity_when_aligned(self):
        from repro.sim.scheduler import quantum_chunks
        chunks = [(list(range(2048)), [False] * 2048)] * 3
        out = list(quantum_chunks(iter(chunks), 2048))
        assert [len(a) for a, _ in out] == [2048, 2048, 2048]
        assert out[0][0] is chunks[0][0]  # no copy on the fast path


class TestWeightedQuanta:
    def test_equal_weights_identical_to_no_weights(self):
        """Explicit 1.0 weights must reproduce the unweighted schedule
        bit for bit (only the serialized config differs)."""
        plain = run_once(mt_config())
        weighted = run_once(mt_config(
            scheduler=SchedulerParams(tenant_weights=(1.0, 1.0))))
        assert result_fields(plain) == result_fields(weighted)

    def test_tenant_quantum_scaling(self):
        from repro.sim.scheduler import tenant_quantum
        params = SchedulerParams(quantum_refs=1000,
                                 tenant_weights=(2.0, 1.0, 0.5))
        assert tenant_quantum(params, 0) == 2000
        assert tenant_quantum(params, 1) == 1000
        assert tenant_quantum(params, 2) == 500
        assert tenant_quantum(SchedulerParams(quantum_refs=1000), 5) \
            == 1000

    def test_heavier_tenant_switches_less(self):
        """Doubling tenant 0's weight halves its slice count: fewer
        context switches than the equal-weight schedule."""
        equal = run_once(mt_config(
            scheduler=SchedulerParams(quantum_refs=500)))
        weighted = run_once(mt_config(
            scheduler=SchedulerParams(quantum_refs=500,
                                      tenant_weights=(4.0, 1.0))))
        assert weighted.extras["context_switches"] \
            < equal.extras["context_switches"]
        assert weighted.references == equal.references == 6000

    def test_weights_exact_on_single_slot_and_heap(self):
        """Chunk-granular (1 slot) and heap (2 slots) engines count
        weighted quanta identically: per-slot switch totals match."""
        scheduler = SchedulerParams(quantum_refs=750,
                                    tenant_weights=(2.0, 1.0))
        one = run_once(mt_config(num_cores=1, scheduler=scheduler))
        two = run_once(mt_config(num_cores=2, scheduler=scheduler))
        assert two.extras["context_switches"] \
            == 2 * one.extras["context_switches"]


class TestShootdownBatching:
    def _coordinator(self, batch, slots=1):
        coordinator = TenantCoordinator(
            SchedulerParams(shootdown_batch=batch))
        for slot in range(slots):
            coordinator.register_slot(build_table1_tlbs(slot))
        return coordinator

    def test_batching_charges_one_ipi_per_batch(self):
        coordinator = self._coordinator(batch=4)
        hook = coordinator.unmap_hook(asid=1)
        for page in range(10):
            hook(page, False)
        # 10 unmaps at batch 4: two full batches billed; the partial
        # batch stays pending across faults (deferred flush batching).
        cost = SchedulerParams().shootdown_cycles
        assert coordinator.stats.shootdowns == 10
        assert coordinator.stats.shootdown_ipis == 2
        assert coordinator.stats.shootdown_cycles == 2 * cost
        assert coordinator.drain_cycles() == 2 * cost
        assert coordinator.drain_cycles() == 0.0
        # Two more unmaps complete the third batch.
        hook(10, False)
        hook(11, False)
        assert coordinator.stats.shootdown_ipis == 3
        assert coordinator.drain_cycles() == cost

    def test_unbatched_default_charges_per_page(self):
        coordinator = self._coordinator(batch=1)
        hook = coordinator.unmap_hook(asid=1)
        for page in range(10):
            hook(page, False)
        cost = SchedulerParams().shootdown_cycles
        assert coordinator.stats.shootdowns == 10
        assert coordinator.stats.shootdown_ipis == 10
        assert coordinator.stats.shootdown_cycles == 10 * cost

    def test_batched_invalidations_still_land_immediately(self):
        coordinator = self._coordinator(batch=8)
        tlbs = coordinator._slots[0]
        key = 0x99 | asid_tag(1)
        tlbs.l1_small.insert(key, Translation(7, 12))
        coordinator.unmap_hook(asid=1)(0x99, False)
        assert tlbs.l1_small.lookup(key) is None  # before any IPI bill

    def test_pressure_run_batching_cuts_shootdown_cycles(self):
        pressure = dict(workload="rnd", refs_per_core=4000, tenants=3,
                        phys_bytes=24 * MIB)
        unbatched = run_once(mt_config(**pressure))
        batched = run_once(mt_config(
            scheduler=SchedulerParams(shootdown_batch=8), **pressure))
        assert unbatched.extras["shootdowns"] > 0
        # Same invalidations, roughly an eighth of the IPI bill.
        assert batched.extras["shootdowns"] > 0
        assert batched.extras["shootdown_ipis"] \
            == batched.extras["shootdowns"] // 8
        assert batched.extras["shootdown_cycles"] \
            <= unbatched.extras["shootdown_cycles"] / 4
        assert "shootdown_ipis" not in unbatched.extras

    def test_reset_clears_partial_batch(self):
        coordinator = self._coordinator(batch=4)
        hook = coordinator.unmap_hook(asid=1)
        hook(1, False)
        coordinator.reset()
        assert coordinator.drain_cycles() == 0.0
        assert coordinator.stats.shootdown_ipis == 0
