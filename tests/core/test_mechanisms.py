"""Tests for the mechanism registry (Section VI)."""

import pytest

from repro.core.bypass import MetadataBypass, NoBypass
from repro.core.flattened import FlattenedPageTable
from repro.core.mechanisms import (
    MECHANISMS,
    PAPER_MECHANISMS,
    get_mechanism,
)
from repro.vm.cuckoo import ElasticCuckooPageTable
from repro.vm.frames import FrameAllocator
from repro.vm.ideal import IdealPageTable
from repro.vm.os_model import PagingPolicy
from repro.vm.radix import RadixPageTable

MIB = 1024 ** 2


class TestRegistry:
    def test_paper_mechanisms_present(self):
        assert set(PAPER_MECHANISMS) <= set(MECHANISMS)

    def test_paper_order(self):
        assert PAPER_MECHANISMS == ("radix", "ech", "hugepage",
                                    "ndpage", "ideal")

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            get_mechanism("tlb-of-theseus")

    @pytest.mark.parametrize("key,table_cls", [
        ("radix", RadixPageTable),
        ("ech", ElasticCuckooPageTable),
        ("hugepage", RadixPageTable),
        ("ndpage", FlattenedPageTable),
        ("ideal", IdealPageTable),
    ])
    def test_table_types(self, key, table_cls):
        spec = get_mechanism(key)
        table = spec.build_table(FrameAllocator(256 * MIB))
        assert isinstance(table, table_cls)

    def test_only_ndpage_bypasses(self):
        assert isinstance(get_mechanism("ndpage").build_bypass(),
                          MetadataBypass)
        for key in ("radix", "ech", "hugepage", "ideal"):
            assert isinstance(get_mechanism(key).build_bypass(),
                              NoBypass)

    def test_only_hugepage_uses_thp(self):
        assert get_mechanism("hugepage").paging_policy \
            is PagingPolicy.HUGE
        for key in ("radix", "ech", "ndpage", "ideal"):
            assert get_mechanism(key).paging_policy is PagingPolicy.SMALL

    def test_only_ideal_is_ideal(self):
        assert get_mechanism("ideal").ideal
        assert not any(get_mechanism(k).ideal
                       for k in ("radix", "ech", "hugepage", "ndpage"))

    def test_pwc_levels(self):
        assert get_mechanism("radix").pwc_levels \
            == ("PL4", "PL3", "PL2", "PL1")
        assert get_mechanism("ndpage").pwc_levels \
            == ("PL4", "PL3", "PL2/1")
        assert get_mechanism("ech").pwc_levels == ()

    def test_ablation_variants(self):
        bypass_only = get_mechanism("ndpage-bypass-only")
        assert isinstance(
            bypass_only.build_table(FrameAllocator(64 * MIB)),
            RadixPageTable)
        assert isinstance(bypass_only.build_bypass(), MetadataBypass)
        flatten_only = get_mechanism("ndpage-flatten-only")
        assert isinstance(flatten_only.build_bypass(), NoBypass)
        assert get_mechanism("ndpage-nopwc").pwc_levels == ()
