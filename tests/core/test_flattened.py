"""Tests for NDPage's flattened L2/L1 page table (Section V-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flattened import FlattenedPageTable, flattened_coverage_bytes
from repro.vm.address import FLAT_ENTRIES, PAGE_SHIFT, make_vpn
from repro.vm.base import MappingError, Translation
from repro.vm.frames import FrameAllocator, OutOfMemoryError

MIB = 1024 ** 2
VPNS = st.integers(min_value=0, max_value=(1 << 36) - 1)


@pytest.fixture
def table(allocator):
    return FlattenedPageTable(allocator)


class TestMapping:
    def test_unmapped_lookup_none(self, table):
        assert table.lookup(7) is None

    def test_map_then_lookup(self, table):
        table.map_page(0xABCDE, pfn=42)
        assert table.lookup(0xABCDE) == Translation(42, PAGE_SHIFT)

    def test_double_map_rejected(self, table):
        table.map_page(1, pfn=1)
        with pytest.raises(MappingError):
            table.map_page(1, pfn=2)

    def test_unmap(self, table):
        table.map_page(1, pfn=1)
        table.unmap_page(1)
        assert table.lookup(1) is None

    def test_unmap_missing_rejected(self, table):
        with pytest.raises(MappingError):
            table.unmap_page(1)

    def test_huge_pages_intentionally_unsupported(self, table):
        # NDPage keeps the flexibility of 4 KB pages (Section V-B).
        with pytest.raises(MappingError):
            table.map_page(0, pfn=512, page_shift=21)

    @given(st.lists(VPNS, min_size=1, max_size=50, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_many_mappings_roundtrip(self, pages):
        table = FlattenedPageTable(FrameAllocator(512 * MIB))
        for i, page in enumerate(pages):
            table.map_page(page, pfn=i)
        for i, page in enumerate(pages):
            assert table.lookup(page) == Translation(i, PAGE_SHIFT)


class TestWalkStructure:
    def test_walk_has_three_stages(self, table):
        # The headline property: 4 sequential accesses become 3.
        table.map_page(0x54321, pfn=9)
        stages = table.walk_stages(0x54321)
        assert [s[0].level for s in stages] == ["PL4", "PL3", "PL2/1"]

    def test_walk_unmapped_rejected(self, table):
        with pytest.raises(MappingError):
            table.walk_stages(3)

    def test_flat_index_spans_18_bits(self, table):
        low = make_vpn(0, 0, 0, 0)
        high = make_vpn(0, 0, 511, 511)
        table.map_page(low, pfn=1)
        table.map_page(high, pfn=2)
        leaf_low = table.walk_stages(low)[2][0]
        leaf_high = table.walk_stages(high)[2][0]
        # Same flattened node, indices 0 and 2^18 - 1.
        assert leaf_high.pte_paddr - leaf_low.pte_paddr \
            == (FLAT_ENTRIES - 1) * 8

    def test_pages_one_gb_apart_use_different_flat_nodes(self, table):
        a = make_vpn(0, 0, 0, 0)
        b = make_vpn(0, 1, 0, 0)
        table.map_page(a, pfn=1)
        table.map_page(b, pfn=2)
        assert table.flat_node_count == 2

    def test_pl2_sibling_pages_share_flat_node(self, table):
        a = make_vpn(0, 0, 3, 0)
        b = make_vpn(0, 0, 4, 0)
        table.map_page(a, pfn=1)
        table.map_page(b, pfn=2)
        assert table.flat_node_count == 1

    def test_pwc_keys(self, table):
        page = make_vpn(1, 2, 3, 4)
        table.map_page(page, pfn=1)
        stages = table.walk_stages(page)
        assert stages[0][0].pwc_key == ("PL4", page >> 27)
        assert stages[1][0].pwc_key == ("PL3", page >> 18)
        assert stages[2][0].pwc_key == ("PL2/1", page)

    def test_coverage_is_one_gb(self):
        assert flattened_coverage_bytes() == 1 << 30


class TestPhysicalStructure:
    def test_flat_node_consumes_contiguous_block(self, table, allocator):
        before = allocator.free_block_count
        table.map_page(0, pfn=1)
        assert allocator.free_block_count == before - 1

    def test_flat_node_is_2mb_aligned(self, table):
        table.map_page(0, pfn=1)
        leaf = table.walk_stages(0)[2][0]
        node_base = leaf.pte_paddr - (leaf.pte_paddr % (2 * MIB))
        assert node_base % (2 * MIB) == 0

    def test_table_bytes_counts_flat_nodes(self, table):
        empty = table.table_bytes()
        table.map_page(0, pfn=1)
        grown = table.table_bytes() - empty
        assert grown == 2 * MIB + 4096  # flat node + new PL3 node

    def test_contiguity_exhaustion_raises(self):
        allocator = FrameAllocator(8 * MIB, reserved_bytes=0)
        table = FlattenedPageTable(allocator)
        while allocator.alloc_huge() is not None:
            pass
        with pytest.raises(OutOfMemoryError):
            table.map_page(0, pfn=1)

    def test_occupancy_report(self, table):
        for i in range(1000):
            table.map_page(i, pfn=i)
        occ = table.occupancy()
        assert occ["PL2/1"] == pytest.approx(1000 / FLAT_ENTRIES)
        assert occ["PL4"] == 1 / 512

    def test_mapped_pages(self, table):
        table.map_page(10, pfn=1)
        table.map_page(20, pfn=2)
        assert table.mapped_pages == 2
        table.unmap_page(10)
        assert table.mapped_pages == 1


class TestEquivalenceWithRadix:
    """Flattening must not change *what* translations exist."""

    @given(st.lists(VPNS, min_size=1, max_size=40, unique=True))
    @settings(max_examples=20, deadline=None)
    def test_same_translations_as_radix(self, pages):
        from repro.vm.radix import RadixPageTable
        flat = FlattenedPageTable(FrameAllocator(512 * MIB))
        radix = RadixPageTable(FrameAllocator(512 * MIB))
        for i, page in enumerate(pages):
            flat.map_page(page, pfn=i)
            radix.map_page(page, pfn=i)
        for page in pages:
            assert flat.lookup(page) == radix.lookup(page)
        probe = (pages[0] + 1) & ((1 << 36) - 1)
        if probe not in pages:
            assert flat.lookup(probe) == radix.lookup(probe)

    @given(VPNS)
    @settings(max_examples=30, deadline=None)
    def test_walk_is_exactly_one_stage_shorter(self, page):
        flat = FlattenedPageTable(FrameAllocator(64 * MIB))
        radix = RadixPageTable_cached(page)
        flat.map_page(page, pfn=1)
        assert len(flat.walk_stages(page)) == len(radix) - 1


def RadixPageTable_cached(page):
    """Build a radix walk for comparison (helper, not a fixture)."""
    from repro.vm.radix import RadixPageTable
    table = RadixPageTable(FrameAllocator(64 * MIB))
    table.map_page(page, pfn=1)
    return table.walk_stages(page)
