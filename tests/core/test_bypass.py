"""Tests for metadata bypass policies (Section V-A)."""

from repro.core.bypass import MetadataBypass, NoBypass


class TestNoBypass:
    def test_never_bypasses(self):
        policy = NoBypass()
        assert not policy.should_bypass("PL1")
        assert not policy.should_bypass("PL2/1")


class TestMetadataBypass:
    def test_bypasses_everything_by_default(self):
        policy = MetadataBypass()
        for level in ("PL4", "PL3", "PL2", "PL1", "PL2/1", "ECH-way0"):
            assert policy.should_bypass(level)

    def test_whitelist_restricts(self):
        policy = MetadataBypass(levels=("PL2/1",))
        assert policy.should_bypass("PL2/1")
        assert not policy.should_bypass("PL4")

    def test_empty_whitelist_bypasses_nothing(self):
        policy = MetadataBypass(levels=())
        assert not policy.should_bypass("PL1")
