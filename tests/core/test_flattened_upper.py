"""Tests for the counterfactual upper-flattened (PL3/PL2) table."""

import pytest

from repro.core.flattened_upper import UpperFlattenedPageTable
from repro.vm.address import PAGE_SHIFT, make_vpn
from repro.vm.base import MappingError, Translation
from repro.vm.frames import FrameAllocator

MIB = 1024 ** 2


@pytest.fixture
def table(allocator):
    return UpperFlattenedPageTable(allocator)


class TestFunctional:
    def test_map_lookup(self, table):
        table.map_page(0x12345, pfn=9)
        assert table.lookup(0x12345) == Translation(9, PAGE_SHIFT)

    def test_unmapped_none(self, table):
        assert table.lookup(3) is None

    def test_double_map_rejected(self, table):
        table.map_page(5, pfn=1)
        with pytest.raises(MappingError):
            table.map_page(5, pfn=2)

    def test_unmap(self, table):
        table.map_page(5, pfn=1)
        table.unmap_page(5)
        assert table.lookup(5) is None

    def test_huge_rejected(self, table):
        with pytest.raises(MappingError):
            table.map_page(0, pfn=0, page_shift=21)

    def test_mapped_pages(self, table):
        table.map_page(1, pfn=1)
        table.map_page(2, pfn=2)
        assert table.mapped_pages == 2


class TestStructure:
    def test_three_stage_walk(self, table):
        table.map_page(0x12345, pfn=1)
        stages = table.walk_stages(0x12345)
        assert [s[0].level for s in stages] == ["PL4", "PL3/2", "PL1"]

    def test_merged_level_spans_18_bits(self, table):
        low = make_vpn(0, 0, 0, 7)
        high = make_vpn(0, 511, 511, 7)
        table.map_page(low, pfn=1)
        table.map_page(high, pfn=2)
        a = table.walk_stages(low)[1][0]
        b = table.walk_stages(high)[1][0]
        assert b.pte_paddr - a.pte_paddr == ((1 << 18) - 1) * 8

    def test_pl1_nodes_conventional(self, table):
        table.map_page(make_vpn(0, 0, 0, 3), pfn=1)
        table.map_page(make_vpn(0, 0, 0, 4), pfn=2)
        a = table.walk_stages(make_vpn(0, 0, 0, 3))[2][0]
        b = table.walk_stages(make_vpn(0, 0, 0, 4))[2][0]
        assert b.pte_paddr - a.pte_paddr == 8

    def test_flat_node_consumes_block(self, table, allocator):
        before = allocator.free_block_count
        table.map_page(0, pfn=1)
        assert allocator.free_block_count == before - 1

    def test_occupancy(self, table):
        for i in range(512):
            table.map_page(i, pfn=i)
        occ = table.occupancy()
        assert occ["PL1"] == 1.0
        assert occ["PL3/2"] == 1 / (1 << 18)

    def test_registered_as_mechanism(self):
        from repro.core.mechanisms import get_mechanism
        spec = get_mechanism("ndpage-flatten-upper")
        table = spec.build_table(FrameAllocator(64 * MIB))
        assert isinstance(table, UpperFlattenedPageTable)


class TestWhyBottomIsRight:
    """The design argument: bottom-two flattening removes an access the
    walker actually performs; upper-two removes one the PWCs already
    absorbed."""

    def test_upper_walk_still_pays_two_leaf_levels(self, table):
        from repro.core.flattened import FlattenedPageTable
        bottom = FlattenedPageTable(FrameAllocator(64 * MIB))
        table.map_page(0x777, pfn=1)
        bottom.map_page(0x777, pfn=1)
        upper_levels = [s[0].level for s in table.walk_stages(0x777)]
        bottom_levels = [s[0].level for s in bottom.walk_stages(0x777)]
        # Both are 3-stage, but upper keeps two poorly-caching low
        # levels (PL3/2 node per-region entries + PL1), while bottom
        # keeps only one.
        assert len(upper_levels) == len(bottom_levels) == 3
        assert upper_levels[-1] == "PL1"
        assert bottom_levels[-1] == "PL2/1"
