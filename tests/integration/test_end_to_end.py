"""End-to-end integration tests across the full simulator stack."""

import pytest

from repro import ndp_config, cpu_config, run_once, run_mechanisms

FAST = dict(workload="rnd", refs_per_core=600, scale=1 / 32)


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        a = run_once(ndp_config(**FAST))
        b = run_once(ndp_config(**FAST))
        assert a.cycles == b.cycles
        assert a.ptw_latency_mean == b.ptw_latency_mean
        assert a.dram_accesses_by_kind == b.dram_accesses_by_kind

    def test_seed_changes_results(self):
        a = run_once(ndp_config(seed=1, **FAST))
        b = run_once(ndp_config(seed=2, **FAST))
        assert a.cycles != b.cycles


class TestCrossMechanismInvariants:
    @pytest.fixture(scope="class")
    def results(self):
        return run_mechanisms(
            ndp_config(**FAST),
            ["radix", "ech", "hugepage", "ndpage", "ideal"])

    def test_all_execute_same_references(self, results):
        refs = {r.references for r in results.values()}
        assert len(refs) == 1

    def test_ideal_is_fastest(self, results):
        fastest = min(results.values(), key=lambda r: r.cycles)
        assert fastest is results["ideal"]

    def test_ideal_has_no_metadata_traffic(self, results):
        assert results["ideal"].pte_memory_accesses == 0
        assert results["ideal"].dram_accesses_by_kind["metadata"] == 0

    def test_ndpage_beats_radix(self, results):
        assert results["ndpage"].cycles < results["radix"].cycles

    def test_ndpage_never_caches_metadata(self, results):
        assert results["ndpage"].l1_metadata_miss_rate == 0.0
        assert results["ndpage"].data_evicted_by_metadata == 0

    def test_radix_pollutes_cache(self, results):
        assert results["radix"].data_evicted_by_metadata > 0

    def test_ndpage_walks_are_shorter(self, results):
        """Flattening: fewer PTE accesses per walk than radix."""
        radix_per_walk = (results["radix"].pte_memory_accesses
                          / results["radix"].walks)
        ndpage_per_walk = (results["ndpage"].pte_memory_accesses
                           / results["ndpage"].walks)
        assert ndpage_per_walk < radix_per_walk

    def test_translation_fraction_sane(self, results):
        for key in ("radix", "ech", "hugepage", "ndpage"):
            assert 0 < results[key].translation_fraction < 1
        assert results["ideal"].translation_fraction == 0.0


class TestPlatformContrast:
    """Fig. 4: deep CPU caches absorb PTE traffic; the NDP system pays
    DRAM latency and queueing.  Needs 4 cores and full-scale footprints
    for the contention/reuse regime to show."""

    @pytest.fixture(scope="class")
    def platforms(self):
        kwargs = dict(workload="bfs", num_cores=4, refs_per_core=5000)
        return (run_once(ndp_config(**kwargs)),
                run_once(cpu_config(**kwargs)))

    def test_cpu_walks_faster_than_ndp(self, platforms):
        ndp, cpu = platforms
        assert ndp.ptw_latency_mean > 1.2 * cpu.ptw_latency_mean

    def test_cpu_sends_fewer_ptes_to_dram(self, platforms):
        ndp, cpu = platforms
        assert ndp.dram_accesses_by_kind["metadata"] \
            > 1.3 * cpu.dram_accesses_by_kind["metadata"]


class TestCoreScaling:
    def test_ndp_ptw_latency_grows_with_cores(self):
        one = run_once(ndp_config(num_cores=1, **FAST))
        four = run_once(ndp_config(num_cores=4, **FAST))
        assert four.ptw_latency_mean > one.ptw_latency_mean

    def test_workload_variety(self):
        for workload in ("bfs", "xs", "gen"):
            result = run_once(ndp_config(
                workload=workload, refs_per_core=400, scale=1 / 32))
            assert result.references == 400
            assert result.walks > 0
