"""Scaled-down checks of the paper's qualitative claims.

These use small reference counts so they run in CI time; the full-size
reproduction lives in benchmarks/.  Each test names the paper claim it
guards.
"""

import pytest

from repro import ndp_config, run_mechanisms, run_once
from repro.vm.occupancy import occupancy_report
from repro.workloads.registry import make_workload

REFS = 1500


@pytest.fixture(scope="module")
def gups_results():
    return run_mechanisms(
        ndp_config(workload="rnd", refs_per_core=REFS),
        ["radix", "ech", "hugepage", "ndpage", "ideal"])


class TestObservation1Irregularity:
    """Section IV-A: PTE accesses are irregular and pollute the L1."""

    def test_metadata_misses_more_than_data(self, gups_results):
        radix = gups_results["radix"]
        assert radix.l1_metadata_miss_rate > radix.l1_data_miss_rate

    def test_metadata_is_large_share_of_accesses(self, gups_results):
        # Paper: 65.8% of memory accesses are PTEs.
        assert gups_results["radix"].metadata_mem_fraction > 0.4

    def test_pollution_present(self, gups_results):
        # Paper Fig. 7: actual normal-data miss 35.89% vs ideal 26.16%
        # (1.37x).  Our streams have less data-side cache affinity, so
        # the *rate* gap is small, but the mechanism — metadata fills
        # evicting live data lines — is directly observable and the
        # direction never inverts.  Recorded in EXPERIMENTS.md.
        radix = gups_results["radix"]
        ideal = gups_results["ideal"]
        assert radix.data_evicted_by_metadata > 100
        assert radix.l1_data_miss_rate \
            >= ideal.l1_data_miss_rate - 0.01


class TestObservation2Occupancy:
    """Section IV-B / Fig. 8: PL1/PL2 nearly full, PL3/PL4 nearly empty."""

    @pytest.mark.parametrize("workload", ["bfs", "rnd", "gen"])
    def test_occupancy_shape(self, workload):
        report = occupancy_report(
            make_workload(workload).page_ranges())
        assert report["PL1"] > 0.9
        assert report["PL2"] > 0.8
        assert report["PL3"] < 0.2
        assert report["PL4"] < 0.05
        assert report["PL2/1"] > 0.8


class TestMechanism1Bypass:
    """Section V-A: bypass removes pollution and PTE lookup cost.

    Measured nuance (recorded in EXPERIMENTS.md): applied to the
    *radix* tree alone, bypassing also forfeits the L1 hits its
    reusable upper-level PTEs would get, so bypass-only lands within a
    few percent of radix.  The bypass pays off in the NDPage composite,
    where flattening removes exactly those reusable levels.
    """

    def test_bypass_only_close_to_radix_but_pollution_free(self):
        results = run_mechanisms(
            ndp_config(workload="rnd", refs_per_core=REFS),
            ["radix", "ndpage-bypass-only"])
        ratio = results["radix"].cycles \
            / results["ndpage-bypass-only"].cycles
        assert ratio > 0.85
        assert results["ndpage-bypass-only"].data_evicted_by_metadata == 0

    def test_bypass_free_inside_composite(self):
        """Flat leaf PTEs have no L1 reuse, so bypassing them costs
        nothing and removes pollution: NDPage stays within a few
        percent of flatten-only while keeping the L1 clean."""
        results = run_mechanisms(
            ndp_config(workload="rnd", refs_per_core=REFS),
            ["ndpage", "ndpage-flatten-only"])
        assert results["ndpage"].cycles \
            <= results["ndpage-flatten-only"].cycles * 1.1
        assert results["ndpage"].data_evicted_by_metadata == 0
        assert results["ndpage-flatten-only"].data_evicted_by_metadata \
            >= 0


class TestMechanism2Flattening:
    """Section V-B: the flattened walk is one access shorter."""

    def test_flatten_only_beats_radix(self):
        results = run_mechanisms(
            ndp_config(workload="rnd", refs_per_core=REFS),
            ["radix", "ndpage-flatten-only"])
        assert results["ndpage-flatten-only"].cycles \
            < results["radix"].cycles

    def test_composite_beats_bypass_only(self):
        results = run_mechanisms(
            ndp_config(workload="rnd", refs_per_core=REFS),
            ["ndpage", "ndpage-bypass-only"])
        assert results["ndpage"].cycles \
            <= results["ndpage-bypass-only"].cycles


class TestPwc:
    """Section V-C: upper-level PWCs hit nearly always; leaf rarely."""

    def test_pwc_hit_rate_profile(self):
        result = run_once(ndp_config(workload="rnd",
                                     refs_per_core=3000))
        rates = result.pwc_hit_rates
        assert rates["PL4"] > 0.95
        assert rates["PL3"] > 0.9
        assert rates["PL1"] < 0.4


class TestHeadline:
    """Fig. 12 ordering on the most translation-bound workload."""

    def test_mechanism_ordering(self, gups_results):
        cycles = {k: r.cycles for k, r in gups_results.items()}
        assert cycles["ideal"] < cycles["ndpage"]
        assert cycles["ndpage"] < cycles["ech"]
        assert cycles["ndpage"] < cycles["hugepage"]
        assert cycles["ech"] < cycles["radix"]
