"""End-to-end behaviour under physical-memory pressure.

Shrinking ``phys_bytes`` relative to the touched footprint forces the
OS reclaim and huge-page compaction/fallback paths to run inside full
simulations — the machinery behind the paper's Section VII-B argument
about Huge Page at scale.
"""

import pytest

from repro import ndp_config, run_mechanisms, run_once

MIB = 1024 ** 2

# GUPS at 1/64 scale touches more pages than this physical memory has
# frames, once per-core private regions are included.
PRESSURE = dict(workload="rnd", scale=1 / 64, phys_bytes=14 * MIB,
                refs_per_core=4000, num_cores=2)


class TestReclaimUnderPressure:
    @pytest.fixture(scope="class")
    def result(self):
        return run_once(ndp_config(mechanism="radix", **PRESSURE))

    def test_run_completes(self, result):
        assert result.references == 8000

    def test_reclaim_happened(self, result):
        assert result.os_stats["reclaims"] > 0

    def test_roi_refaults_charged(self, result):
        # Reclaimed pages re-fault inside the measured region.
        assert result.os_stats["minor_faults"] > 0
        assert result.fault_cycles > 0


class TestHugePageUnderPressure:
    def test_contiguity_exhaustion_path(self):
        result = run_once(ndp_config(
            mechanism="hugepage", thp_promotion_fraction=1.0,
            boot_fragmentation=0.7, **PRESSURE))
        stats = result.os_stats
        assert stats["huge_fallbacks"] > 0 or stats["compactions"] > 0

    def test_flat_node_space_overhead_is_real(self):
        """At pathologically tiny physical memory the 2 MB flattened
        nodes are a measurable fraction of DRAM — the space cost the
        paper calls 'minimal due to the small fraction of the page
        table relative to the actual data size' at real scale.  Both
        facts are checked: the overhead exists here, and vanishes at
        realistic memory sizes (the ablation benchmark covers the
        realistic-scale win over Huge Page)."""
        results = run_mechanisms(
            ndp_config(mechanism="radix", thp_promotion_fraction=1.0,
                       boot_fragmentation=0.7, **PRESSURE),
            ["radix", "hugepage", "ndpage"])
        ndpage = results["ndpage"]
        assert ndpage.table_bytes >= 2 * MIB  # at least one flat node
        assert ndpage.table_bytes > results["radix"].table_bytes
        # Even under this pressure NDPage stays within 25% of radix.
        assert ndpage.cycles < results["radix"].cycles * 1.25

    def test_every_mechanism_survives_pressure(self):
        for mechanism in ("radix", "ech", "hugepage", "ndpage", "ideal"):
            result = run_once(ndp_config(mechanism=mechanism, **PRESSURE))
            assert result.references == 8000, mechanism
