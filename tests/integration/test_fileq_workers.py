"""The multi-host acceptance path: external ``repro worker`` processes.

These tests spawn real ``python -m repro worker`` subprocesses against
a shared queue directory — the deployment the fileq backend exists for
— and pin the PR's acceptance criteria: a fig12-shaped grid driven by
two external workers is bit-identical to the serial loop, and a worker
SIGKILLed mid-cell loses nothing (its claim is reclaimed, the cell
retried elsewhere, zero quarantined cells).
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.core.mechanisms import PAPER_MECHANISMS
from repro.service import SweepPolicy, SweepService
from repro.sim.backends.fileq import (
    QueueLayout,
    _atomic_write,
    item_name,
    repair_queue,
)
from repro.sim.faults import cell_label
from repro.sim.sweep import expand_grid

# The fig12 axes (1-core speedups over Radix: every workload x every
# paper mechanism) at test scale.
FIG12 = dict(workloads=("bfs", "xs", "rnd"),
             mechanisms=PAPER_MECHANISMS, core_counts=(1,),
             refs_per_core=300, scale=1 / 64, seed=42)
#: Tight liveness intervals so dead-worker detection runs in test time.
FAST_Q = dict(heartbeat_interval=0.05, stale_after=0.4)


def fields(result) -> dict:
    return dataclasses.asdict(result)


def worker_env(extra_env=None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(repro.__file__).parents[1])]
        + env.get("PYTHONPATH", "").split(os.pathsep))
    env.update(extra_env or {})
    return env


def spawn_worker(queue: Path, extra_env=None,
                 max_idle: float = 30) -> subprocess.Popen:
    # Workers judge staleness far more patiently than the supervisor
    # (30 s vs 0.4 s), so dead-worker recovery deterministically goes
    # through the supervisor's reclaim — the path these tests pin.
    # Worker-side stealing has its own unit tests.
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--queue", str(queue), "--poll-interval", "0.02",
         "--heartbeat-interval", "0.05", "--stale-after", "30",
         "--max-idle", str(max_idle)],
        env=worker_env(extra_env), stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)


def terminate(workers) -> None:
    for proc in workers:
        if proc.poll() is None:
            proc.terminate()
    for proc in workers:
        try:
            proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5)


class TestExternalWorkers:
    def test_two_external_workers_bit_identical_to_serial(
            self, tmp_path):
        configs = expand_grid(**FIG12)
        reference = SweepService(backend="serial").run(configs)

        queue = tmp_path / "queue"
        workers = [spawn_worker(queue) for _ in range(2)]
        try:
            service = SweepService(backend="fileq", jobs=0,
                                   queue_dir=queue, **FAST_Q)
            results = service.run(configs)
        finally:
            terminate(workers)

        assert [fields(r) for r in results] \
            == [fields(r) for r in reference]
        stats = service.last_stats
        assert stats.simulated == len(configs)
        assert not stats.manifest

    def test_sigkilled_worker_cells_are_stolen_and_completed(
            self, tmp_path):
        """One worker wedges on a cell (injected hang) and is
        SIGKILLed mid-attempt.  Its heartbeat stops, the supervisor
        reclaims the claim as lost, the surviving worker completes the
        retry — zero quarantined cells, results bit-identical."""
        configs = expand_grid(**FIG12)
        reference = SweepService(backend="serial").run(configs)

        victim_config = configs[len(configs) // 2]
        victim = cell_label(victim_config)
        queue = tmp_path / "queue"
        # Only the workers see the plan: whichever claims the victim
        # cell's first attempt sleeps far past the test's patience.
        plan = {"REPRO_FAULT_PLAN": f"hang:{victim}:1:120"}
        workers = [spawn_worker(queue, extra_env=plan)
                   for _ in range(2)]

        victim_item = item_name(victim_config.canonical_json(), 1)
        killed: dict = {}

        def kill_wedged_worker() -> None:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                for claim in queue.glob(f"claims/*/{victim_item}"):
                    worker_id = claim.parent.name
                    pid = int(worker_id.rsplit("-", 1)[1])
                    os.kill(pid, signal.SIGKILL)
                    killed["pid"] = pid
                    return
                time.sleep(0.01)

        killer = threading.Thread(target=kill_wedged_worker,
                                  daemon=True)
        killer.start()
        try:
            service = SweepService(
                backend="fileq", jobs=0, queue_dir=queue,
                policy=SweepPolicy(retries=2, backoff=0.01),
                **FAST_Q)
            results = service.run(configs)
        finally:
            killer.join(timeout=5)
            terminate(workers)

        assert killed, "no worker ever claimed the wedged cell"
        assert [fields(r) for r in results] \
            == [fields(r) for r in reference]
        stats = service.last_stats
        assert stats.worker_deaths >= 1
        assert stats.retries >= 1
        assert not stats.manifest           # zero quarantined cells
        assert stats.failed == 0
        # The SIGKILLed process is really gone and the survivor did
        # the rest.
        assert any(proc.poll() == -signal.SIGKILL
                   for proc in workers)


# -- resilience-layer helpers -------------------------------------------------

#: One fast cell for the single-worker drain/fencing scenarios.
ONE_CELL = dict(workloads=("rnd",), mechanisms=("radix",),
                core_counts=(1,), refs_per_core=300, scale=1 / 64,
                seed=42)


def enqueue(queue: Path, config, attempt: int = 1) -> str:
    """Pre-fill one todo item the way the supervisor's dispatch does;
    returns the item's key (its canonical config JSON)."""
    layout = QueueLayout(queue)
    layout.ensure()
    key = config.canonical_json()
    _atomic_write(layout.todo / item_name(key, attempt),
                  {"key": key, "attempt": attempt,
                   "label": cell_label(config),
                   "config": config.to_dict()})
    return key


def wait_for(predicate, timeout: float, interval: float = 0.01):
    """Poll ``predicate`` until it returns something truthy."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return predicate()


class TestWorkerDrain:
    """SIGTERM semantics of ``repro worker``: first signal finishes
    the in-flight cell and drains; a second abandons it promptly.
    Either way the exit is clean — claim returned, heartbeat gone."""

    def test_sigterm_finishes_in_flight_cell_then_drains(
            self, tmp_path):
        config = expand_grid(**ONE_CELL)[0]
        queue = tmp_path / "queue"
        key = enqueue(queue, config)
        item = item_name(key, 1)
        # The injected hang holds the cell in flight long enough for
        # the signal to land mid-cell.
        plan = {"REPRO_FAULT_PLAN":
                f"hang:{cell_label(config)}:1:1.5"}
        worker = spawn_worker(queue, extra_env=plan)
        try:
            assert wait_for(
                lambda: list(queue.glob(f"claims/*/{item}")), 30)
            worker.send_signal(signal.SIGTERM)
            out, _ = worker.communicate(timeout=60)
        finally:
            terminate([worker])

        assert worker.returncode == 0
        assert "1 cell(s) executed (drained)" in out
        # The in-flight cell was finished and published, not dropped.
        assert (queue / "results" / item).exists()
        assert not (queue / "todo" / item).exists()
        # No ghost STALE debris: heartbeat and claim dir are gone,
        # and a repair pass over the drained queue finds nothing.
        assert not list(queue.glob("workers/*.hb"))
        assert not list((queue / "claims").iterdir())
        assert sum(repair_queue(queue).values()) == 0

    def test_second_sigterm_abandons_in_flight_cell(self, tmp_path):
        config = expand_grid(**ONE_CELL)[0]
        queue = tmp_path / "queue"
        key = enqueue(queue, config)
        item = item_name(key, 1)
        # Far past the test's patience: only an abandon gets out.
        plan = {"REPRO_FAULT_PLAN":
                f"hang:{cell_label(config)}:1:120"}
        worker = spawn_worker(queue, extra_env=plan)
        try:
            assert wait_for(
                lambda: list(queue.glob(f"claims/*/{item}")), 30)
            worker.send_signal(signal.SIGTERM)
            time.sleep(0.3)
            worker.send_signal(signal.SIGTERM)
            out, _ = worker.communicate(timeout=60)
        finally:
            terminate([worker])

        assert worker.returncode == 0
        assert "worker drained (in-flight cell abandoned)" in out
        # The abandoned claim went straight back to todo/ — no result
        # was published, no other worker has to wait out staleness.
        assert (queue / "todo" / item).exists()
        assert not (queue / "results" / item).exists()
        assert not list(queue.glob("workers/*.hb"))
        assert not list(queue.glob("claims/*/*.json"))


class TestZombieFencing:
    def test_sigstopped_zombie_never_publishes_stolen_claim(
            self, tmp_path):
        """A worker SIGSTOPped mid-cell looks dead; its claim is
        stolen.  When it wakes and finishes the cell anyway, the fence
        (claim-file re-check) makes it abandon the result instead of
        racing the thief — the acceptance scenario."""
        config = expand_grid(**ONE_CELL)[0]
        queue = tmp_path / "queue"
        key = enqueue(queue, config)
        item = item_name(key, 1)
        # A ~2 s hang gives the test a window to freeze the worker
        # mid-cell; the cell still completes afterwards.
        plan = {"REPRO_FAULT_PLAN":
                f"hang:{cell_label(config)}:1:2"}
        worker = spawn_worker(queue, extra_env=plan, max_idle=1)
        try:
            claims = wait_for(
                lambda: list(queue.glob(f"claims/*/{item}")), 30)
            assert claims
            os.kill(worker.pid, signal.SIGSTOP)
            # Steal the frozen worker's claim, as a live worker would
            # after its heartbeat went stale.
            thief = queue / "claims" / "thief"
            thief.mkdir(parents=True, exist_ok=True)
            os.replace(claims[0], thief / item)
            (queue / "workers" / "thief.hb").touch()
            os.kill(worker.pid, signal.SIGCONT)
            out, err = worker.communicate(timeout=60)
        finally:
            terminate([worker])

        assert worker.returncode == 0
        assert "was stolen; abandoning result" in err
        # The fenced-off zombie never published: the attempt's result
        # slot belongs to whoever owns the claim now.
        assert not (queue / "results" / item).exists()
        assert "0 cell(s) executed" in out
        # The thief's claim is untouched (the worker's 30 s staleness
        # patience spares the fresh thief heartbeat).
        assert (thief / item).exists()


#: Driver for the supervisor-SIGKILL scenario, run as its own process
#: group so `kill -9` takes supervisor and local workers together.
#: The victim cell fails its first two attempts and succeeds on the
#: third; the generous backoff opens a kill window after the second.
SUPERVISOR_DRIVER = """
import sys

from repro.service import SweepPolicy, SweepService
from repro.sim.faults import cell_label
from repro.sim.sweep import expand_grid

queue_dir, cache_dir = sys.argv[1], sys.argv[2]
configs = expand_grid(workloads=("bfs", "rnd"),
                      mechanisms=("radix", "ndpage"),
                      core_counts=(1,), refs_per_core=300,
                      scale=1 / 64, seed=42)
plan = "fail:" + cell_label(configs[-1]) + ":1,2"
service = SweepService(backend="fileq", jobs=2, queue_dir=queue_dir,
                       cache_dir=cache_dir,
                       heartbeat_interval=0.05, stale_after=0.4,
                       policy=SweepPolicy(retries=3, backoff=1.5,
                                          strict=False,
                                          fault_plan=plan),
                       resume="--resume" in sys.argv)
service.run_grid(configs)
stats = service.last_stats
print(f"RESULT cached={stats.cache_hits} "
      f"simulated={stats.simulated} retries={stats.retries} "
      f"failed={stats.failed}", flush=True)
"""


class TestSupervisorResume:
    def test_sigkilled_supervisor_resumes_with_attempt_counts(
            self, tmp_path):
        """SIGKILL the supervisor mid-sweep (after the victim cell
        burned two attempts), then ``--resume``: completed cells come
        from the cache, the victim's attempt count carries over from
        the journal, and it succeeds on attempt 3 without re-failing —
        the acceptance scenario."""
        from repro.analysis.cache import ResultCache
        from repro.sim.journal import JOURNAL_DIR, journal_path

        script = tmp_path / "drive.py"
        script.write_text(SUPERVISOR_DRIVER)
        queue, cache_dir = tmp_path / "queue", tmp_path / "cache"

        def launch(*extra):
            return subprocess.Popen(
                [sys.executable, str(script), str(queue),
                 str(cache_dir), *extra],
                env=worker_env(), stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True,
                start_new_session=True)

        configs = expand_grid(workloads=("bfs", "rnd"),
                              mechanisms=("radix", "ndpage"),
                              core_counts=(1,), refs_per_core=300,
                              scale=1 / 64, seed=42)
        cache = ResultCache(cache_dir)
        keys = [cache.key(config) for config in configs]
        victim_key = keys[-1]
        jpath = journal_path(cache_dir / JOURNAL_DIR, keys)

        def journal_records():
            if not jpath.exists():
                return []
            records = []
            for line in jpath.read_text().splitlines():
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue   # torn tail mid-append
            return records

        def victim_outcomes(status_ok: bool):
            return [r for r in journal_records()
                    if r.get("kind") == "outcome"
                    and r.get("key") == victim_key
                    and (r.get("status") == "ok") is status_ok]

        first = launch()
        try:
            # Kill window: the victim has failed twice and sits in
            # its 3 s backoff; every healthy cell is already durable.
            assert wait_for(
                lambda: (len(victim_outcomes(False)) >= 2
                         and len(list(cache_dir.glob("*.json")))
                         >= len(configs) - 1),
                timeout=60, interval=0.01)
            os.killpg(first.pid, signal.SIGKILL)
            first.wait(timeout=30)
        finally:
            terminate([first])
        assert first.returncode == -signal.SIGKILL
        entries_at_kill = len(list(cache_dir.glob("*.json")))
        assert entries_at_kill == len(configs) - 1
        errors_at_kill = len(victim_outcomes(False))

        resumed = launch("--resume")
        try:
            out, err = resumed.communicate(timeout=120)
        finally:
            terminate([resumed])
        assert resumed.returncode == 0, err
        # No completed cell was re-simulated; only the victim ran.
        assert (f"RESULT cached={entries_at_kill} "
                f"simulated={len(configs) - entries_at_kill} "
                f"retries=1 failed=0") in out
        # The journal carried the attempt count across the kill: the
        # victim succeeded at attempt 3 and never re-failed.
        ok = victim_outcomes(True)
        assert [r["attempt"] for r in ok] == [3]
        assert len(victim_outcomes(False)) == errors_at_kill == 2
