"""The multi-host acceptance path: external ``repro worker`` processes.

These tests spawn real ``python -m repro worker`` subprocesses against
a shared queue directory — the deployment the fileq backend exists for
— and pin the PR's acceptance criteria: a fig12-shaped grid driven by
two external workers is bit-identical to the serial loop, and a worker
SIGKILLed mid-cell loses nothing (its claim is reclaimed, the cell
retried elsewhere, zero quarantined cells).
"""

import dataclasses
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.core.mechanisms import PAPER_MECHANISMS
from repro.service import SweepPolicy, SweepService
from repro.sim.backends.fileq import item_name
from repro.sim.faults import cell_label
from repro.sim.sweep import expand_grid

# The fig12 axes (1-core speedups over Radix: every workload x every
# paper mechanism) at test scale.
FIG12 = dict(workloads=("bfs", "xs", "rnd"),
             mechanisms=PAPER_MECHANISMS, core_counts=(1,),
             refs_per_core=300, scale=1 / 64, seed=42)
#: Tight liveness intervals so dead-worker detection runs in test time.
FAST_Q = dict(heartbeat_interval=0.05, stale_after=0.4)


def fields(result) -> dict:
    return dataclasses.asdict(result)


def spawn_worker(queue: Path, extra_env=None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(repro.__file__).parents[1])]
        + env.get("PYTHONPATH", "").split(os.pathsep))
    env.update(extra_env or {})
    # Workers judge staleness far more patiently than the supervisor
    # (30 s vs 0.4 s), so dead-worker recovery deterministically goes
    # through the supervisor's reclaim — the path these tests pin.
    # Worker-side stealing has its own unit tests.
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--queue", str(queue), "--poll-interval", "0.02",
         "--heartbeat-interval", "0.05", "--stale-after", "30",
         "--max-idle", "30"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)


def terminate(workers) -> None:
    for proc in workers:
        if proc.poll() is None:
            proc.terminate()
    for proc in workers:
        try:
            proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5)


class TestExternalWorkers:
    def test_two_external_workers_bit_identical_to_serial(
            self, tmp_path):
        configs = expand_grid(**FIG12)
        reference = SweepService(backend="serial").run(configs)

        queue = tmp_path / "queue"
        workers = [spawn_worker(queue) for _ in range(2)]
        try:
            service = SweepService(backend="fileq", jobs=0,
                                   queue_dir=queue, **FAST_Q)
            results = service.run(configs)
        finally:
            terminate(workers)

        assert [fields(r) for r in results] \
            == [fields(r) for r in reference]
        stats = service.last_stats
        assert stats.simulated == len(configs)
        assert not stats.manifest

    def test_sigkilled_worker_cells_are_stolen_and_completed(
            self, tmp_path):
        """One worker wedges on a cell (injected hang) and is
        SIGKILLed mid-attempt.  Its heartbeat stops, the supervisor
        reclaims the claim as lost, the surviving worker completes the
        retry — zero quarantined cells, results bit-identical."""
        configs = expand_grid(**FIG12)
        reference = SweepService(backend="serial").run(configs)

        victim_config = configs[len(configs) // 2]
        victim = cell_label(victim_config)
        queue = tmp_path / "queue"
        # Only the workers see the plan: whichever claims the victim
        # cell's first attempt sleeps far past the test's patience.
        plan = {"REPRO_FAULT_PLAN": f"hang:{victim}:1:120"}
        workers = [spawn_worker(queue, extra_env=plan)
                   for _ in range(2)]

        victim_item = item_name(victim_config.canonical_json(), 1)
        killed: dict = {}

        def kill_wedged_worker() -> None:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                for claim in queue.glob(f"claims/*/{victim_item}"):
                    worker_id = claim.parent.name
                    pid = int(worker_id.rsplit("-", 1)[1])
                    os.kill(pid, signal.SIGKILL)
                    killed["pid"] = pid
                    return
                time.sleep(0.01)

        killer = threading.Thread(target=kill_wedged_worker,
                                  daemon=True)
        killer.start()
        try:
            service = SweepService(
                backend="fileq", jobs=0, queue_dir=queue,
                policy=SweepPolicy(retries=2, backoff=0.01),
                **FAST_Q)
            results = service.run(configs)
        finally:
            killer.join(timeout=5)
            terminate(workers)

        assert killed, "no worker ever claimed the wedged cell"
        assert [fields(r) for r in results] \
            == [fields(r) for r in reference]
        stats = service.last_stats
        assert stats.worker_deaths >= 1
        assert stats.retries >= 1
        assert not stats.manifest           # zero quarantined cells
        assert stats.failed == 0
        # The SIGKILLed process is really gone and the survivor did
        # the rest.
        assert any(proc.poll() == -signal.SIGKILL
                   for proc in workers)
