"""Tests for the submit-level sweep API (:mod:`repro.service`).

Everything above the simulator talks to sweeps through this surface:
``submit``/``gather`` handle resolution, ``run_grid`` grids under an
explicit :class:`SweepPolicy`, and the deprecation shims that keep the
old :class:`SweepRunner` call sites working (warning included).
"""

import dataclasses
import warnings

import pytest

import repro.service as service_mod
from repro.service import (
    CellHandle,
    SweepFailure,
    SweepPolicy,
    SweepResult,
    SweepService,
    gather,
    run_grid,
    submit,
)
from repro.sim.faults import FAULT_PLAN_ENV, cell_label, reset_fired
from repro.sim.runner import run_once
from repro.sim.sweep import SweepRunner, expand_grid, run_sweep

TINY = dict(refs_per_core=300, scale=1 / 64, seed=7)


@pytest.fixture(autouse=True)
def _fresh_state(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    reset_fired()
    monkeypatch.setattr(service_mod, "_default_service", None)
    yield
    reset_fired()


def tiny_grid(workloads=("rnd", "bfs"), mechanisms=("radix", "ndpage")):
    return expand_grid(workloads=workloads, mechanisms=mechanisms,
                       **TINY)


def fields(result) -> dict:
    return dataclasses.asdict(result)


class TestSubmitGather:
    def test_submit_returns_pending_handle(self):
        service = SweepService(backend="serial")
        handle = service.submit(tiny_grid()[0])
        assert isinstance(handle, CellHandle)
        assert handle.state == "pending"
        assert not handle.done()

    def test_gather_resolves_batch_bit_identically(self):
        configs = tiny_grid()
        service = SweepService(backend="serial")
        handles = [service.submit(c) for c in configs]
        results = service.gather(handles)
        assert all(h.done() and h.state == "done" for h in handles)
        assert [fields(r) for r in results] \
            == [fields(run_once(c)) for c in configs]

    def test_result_triggers_lazy_gather(self):
        configs = tiny_grid()
        service = SweepService(backend="serial")
        handles = [service.submit(c) for c in configs]
        # Asking one handle executes the whole pending batch at once.
        assert fields(handles[0].result()) == fields(run_once(configs[0]))
        assert all(h.done() for h in handles)
        assert service.last_stats.simulated == len(configs)

    def test_duplicate_submit_returns_same_handle(self):
        service = SweepService(backend="serial")
        config = tiny_grid()[0]
        assert service.submit(config) is service.submit(config)

    def test_gather_none_gathers_everything(self):
        configs = tiny_grid()
        service = SweepService(backend="serial")
        handles = [service.submit(c) for c in configs]
        results = service.gather()
        assert len(results) == len(configs)
        assert all(h.done() for h in handles)

    def test_gather_marks_failed_handles(self):
        configs = tiny_grid()
        bad = cell_label(configs[1])
        service = SweepService(
            backend="serial",
            policy=SweepPolicy(retries=0, backoff=0.0, strict=False,
                               fault_plan=f"fail:{bad}:*"))
        handles = [service.submit(c) for c in configs]
        results = service.gather(handles)
        assert results[1] is None
        assert handles[1].state == "failed"
        assert "InjectedFault" in handles[1].error
        assert handles[0].state == "done"

    def test_gather_strict_raises_after_marking_handles(self):
        configs = tiny_grid()
        bad = cell_label(configs[0])
        service = SweepService(
            backend="serial",
            policy=SweepPolicy(retries=0, backoff=0.0,
                               fault_plan=f"fail:{bad}:*"))
        handles = [service.submit(c) for c in configs]
        with pytest.raises(SweepFailure):
            service.gather(handles)
        assert handles[0].state == "failed"
        assert all(h.state == "done" for h in handles[1:])

    def test_module_level_submit_uses_default_service(self):
        config = tiny_grid()[0]
        handle = submit(config)
        assert submit(config) is handle
        assert gather([handle]) == [handle.result()]
        assert fields(handle.result()) == fields(run_once(config))

    def test_module_gather_mixes_services(self):
        configs = tiny_grid()
        a, b = SweepService(backend="serial"), \
            SweepService(backend="serial")
        handles = [a.submit(configs[0]), b.submit(configs[1]),
                   a.submit(configs[2])]
        results = gather(handles)
        assert all(h.done() for h in handles)
        assert [fields(r) for r in results] \
            == [fields(run_once(c)) for c in
                (configs[0], configs[1], configs[2])]


class TestRunGrid:
    def test_sweep_result_surface(self):
        configs = tiny_grid()
        grid = SweepService(backend="serial").run_grid(configs)
        assert isinstance(grid, SweepResult)
        assert grid.ok
        assert len(grid) == len(configs)
        assert list(grid) == grid.results
        assert grid[0] is grid.results[0]
        assert not grid.manifest
        assert grid.stats.simulated == len(configs)

    def test_policy_override_leaves_holes(self):
        configs = tiny_grid()
        bad = cell_label(configs[1])
        grid = SweepService(backend="serial").run_grid(
            configs,
            policy=SweepPolicy(retries=0, backoff=0.0, strict=False,
                               fault_plan=f"fail:{bad}:*"))
        assert not grid.ok
        assert grid[1] is None
        assert grid.manifest.labels() == [bad]

    def test_retry_policy_recovers_flaky_cell(self):
        configs = tiny_grid()
        flaky = cell_label(configs[2])
        service = SweepService(backend="serial")
        grid = service.run_grid(
            configs,
            policy=SweepPolicy(retries=1, backoff=0.0,
                               fault_plan=f"fail:{flaky}:1"))
        assert grid.ok
        assert grid.stats.retries == 1
        assert fields(grid[2]) == fields(run_once(configs[2]))

    def test_strict_grid_raises_but_persists_healthy(self, tmp_path):
        from repro.analysis.cache import ResultCache

        configs = tiny_grid()
        bad = cell_label(configs[0])
        cache = ResultCache(tmp_path)
        service = SweepService(
            backend="serial", cache=cache,
            policy=SweepPolicy(retries=0, backoff=0.0,
                               fault_plan=f"fail:{bad}:*"))
        with pytest.raises(SweepFailure):
            service.run_grid(configs)
        assert service.last_stats.failed == 1
        assert len(cache) == len(configs) - 1

    def test_module_level_run_grid(self, tmp_path):
        configs = tiny_grid()
        grid = run_grid(configs, backend="serial",
                        cache_dir=tmp_path / "cache")
        assert grid.ok and len(grid) == len(configs)
        # Second call is served from the cache it just populated.
        again = run_grid(configs, backend="serial",
                         cache_dir=tmp_path / "cache")
        assert again.stats.cache_hits == len(configs)
        assert [fields(r) for r in again] == [fields(r) for r in grid]

    def test_experiments_drivers_accept_a_service(self):
        from repro.analysis import experiments

        table = experiments.speedup_experiment(
            1, workloads=("rnd",), refs_per_core=300, scale=1 / 64,
            runner=SweepService(backend="serial"))[0]
        assert "rnd" in table


class TestDeprecationShims:
    def test_sweep_runner_warns_and_matches_service(self):
        configs = tiny_grid()
        with pytest.warns(DeprecationWarning,
                          match="SweepRunner is deprecated"):
            runner = SweepRunner(jobs=1)
        legacy = runner.run(configs)
        fresh = SweepService(backend="serial").run(configs)
        assert [fields(r) for r in legacy] \
            == [fields(r) for r in fresh]
        assert runner.last_stats.simulated == len(configs)

    def test_sweep_runner_keeps_kwarg_surface(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            runner = SweepRunner(jobs=2, cache_dir=tmp_path,
                                 chunk_size=8, retries=2,
                                 cell_timeout=60.0, backoff=0.1,
                                 strict=False)
        assert runner.jobs == 2
        assert runner.chunk_size == 8
        assert runner.retries == 2
        assert runner.cell_timeout == 60.0
        assert runner.strict is False
        assert runner.cache is not None

    def test_run_sweep_warns_and_matches(self):
        configs = tiny_grid()
        with pytest.warns(DeprecationWarning,
                          match="run_sweep is deprecated"):
            legacy = run_sweep(configs, jobs=1)
        fresh = SweepService(backend="serial").run(configs)
        assert [fields(r) for r in legacy] \
            == [fields(r) for r in fresh]

    def test_service_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SweepService(backend="serial").run(tiny_grid()[:1])
