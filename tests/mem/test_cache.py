"""Tests for the set-associative cache and its metadata attribution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.cache import Cache
from repro.mem.request import AccessType, MemoryRequest, RequestKind


def data_read(paddr):
    return MemoryRequest(paddr=paddr)


def data_write(paddr):
    return MemoryRequest(paddr=paddr, access=AccessType.WRITE)


def meta_read(paddr):
    return MemoryRequest(paddr=paddr, kind=RequestKind.METADATA)


@pytest.fixture
def cache():
    # 4 KB, 4-way, 64 B lines: 16 sets.
    return Cache("L1D", 4096, 4, hit_latency=4)


class TestGeometry:
    def test_num_sets(self, cache):
        assert cache.num_sets == 16

    def test_size_must_divide(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 3, 1)

    def test_table1_l1(self):
        l1 = Cache("L1D", 32 * 1024, 8, 4)
        assert l1.num_sets == 64


class TestHitMiss:
    def test_cold_miss(self, cache):
        assert not cache.access(data_read(0)).hit

    def test_second_access_hits(self, cache):
        cache.access(data_read(0))
        assert cache.access(data_read(0)).hit

    def test_same_line_different_bytes_hit(self, cache):
        cache.access(data_read(0))
        assert cache.access(data_read(63)).hit

    def test_adjacent_line_misses(self, cache):
        cache.access(data_read(0))
        assert not cache.access(data_read(64)).hit

    def test_stats_per_kind(self, cache):
        cache.access(data_read(0))
        cache.access(meta_read(4096))
        cache.access(meta_read(4096))
        assert cache.stats.data.misses == 1
        assert cache.stats.metadata.misses == 1
        assert cache.stats.metadata.hits == 1

    def test_contains_no_side_effects(self, cache):
        cache.access(data_read(0))
        hits_before = cache.stats.data.hits
        assert cache.contains(0)
        assert cache.stats.data.hits == hits_before


class TestEviction:
    def test_lru_eviction_within_set(self, cache):
        stride = cache.num_sets * 64  # same set
        for i in range(5):
            cache.access(data_read(i * stride))
        assert not cache.contains(0)
        assert cache.contains(4 * stride)

    def test_eviction_reports_victim(self, cache):
        stride = cache.num_sets * 64
        for i in range(4):
            cache.access(data_read(i * stride))
        result = cache.access(data_read(4 * stride))
        assert result.eviction is not None
        assert result.eviction.line_addr == 0

    def test_dirty_eviction_flagged(self, cache):
        stride = cache.num_sets * 64
        cache.access(data_write(0))
        for i in range(1, 5):
            result = cache.access(data_read(i * stride))
        assert result.eviction.dirty
        assert cache.stats.writebacks == 1

    def test_clean_eviction_not_writeback(self, cache):
        stride = cache.num_sets * 64
        for i in range(5):
            cache.access(data_read(i * stride))
        assert cache.stats.writebacks == 0

    def test_pollution_counter(self, cache):
        """Metadata fills evicting data lines — the Fig. 7 mechanism."""
        stride = cache.num_sets * 64
        for i in range(4):
            cache.access(data_read(i * stride))
        cache.access(meta_read(4 * stride))
        assert cache.stats.data_evicted_by_metadata == 1

    def test_reverse_pollution_counter(self, cache):
        stride = cache.num_sets * 64
        for i in range(4):
            cache.access(meta_read(i * stride))
        cache.access(data_read(4 * stride))
        assert cache.stats.metadata_evicted_by_data == 1


class TestWriteSemantics:
    def test_write_hit_marks_dirty(self, cache):
        cache.access(data_read(0))
        cache.access(data_write(0))
        stride = cache.num_sets * 64
        for i in range(1, 5):
            result = cache.access(data_read(i * stride))
        assert result.eviction.dirty

    def test_write_allocates(self, cache):
        cache.access(data_write(128))
        assert cache.contains(128)


class TestMaintenance:
    def test_invalidate(self, cache):
        cache.access(data_read(0))
        assert cache.invalidate(0)
        assert not cache.contains(0)

    def test_invalidate_absent(self, cache):
        assert not cache.invalidate(0)

    def test_flush(self, cache):
        for i in range(8):
            cache.access(data_read(i * 64))
        cache.flush()
        assert cache.resident_lines == 0

    def test_resident_kind_counts(self, cache):
        cache.access(data_read(0))
        cache.access(meta_read(64))
        counts = cache.resident_kind_counts()
        assert counts[RequestKind.DATA] == 1
        assert counts[RequestKind.METADATA] == 1


class TestProperties:
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_capacity_never_exceeded(self, lines):
        cache = Cache("prop", 2048, 2, 1)
        for line in lines:
            cache.access(data_read(line * 64))
        assert cache.resident_lines <= 2048 // 64
        for s in cache._sets:
            assert len(s) <= 2

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = Cache("prop", 2048, 2, 1)
        for line in lines:
            cache.access(data_read(line * 64))
        stats = cache.stats.data
        assert stats.hits + stats.misses == len(lines)

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_small_working_set_always_hits_after_warmup(self, lines):
        cache = Cache("prop", 4096, 8, 1)  # 8 lines fit in one set? no: 8 sets
        for line in set(lines):
            cache.access(data_read(line * 64))
        for line in lines:
            assert cache.access(data_read(line * 64)).hit
