"""Tests for cache replacement policies."""

import pytest

from repro.mem.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    SrripPolicy,
    make_policy,
)


def filled_set(tags):
    return {tag: f"line{tag}" for tag in tags}


class TestLru:
    def test_victim_is_oldest(self):
        policy = LruPolicy()
        cache_set = filled_set([1, 2, 3])
        assert policy.victim(cache_set) == 1

    def test_hit_refreshes(self):
        policy = LruPolicy()
        cache_set = filled_set([1, 2, 3])
        policy.on_hit(cache_set, 1)
        assert policy.victim(cache_set) == 2

    def test_repeated_hits_keep_line_young(self):
        policy = LruPolicy()
        cache_set = filled_set([1, 2, 3])
        for _ in range(5):
            policy.on_hit(cache_set, 1)
        assert policy.victim(cache_set) == 2


class TestFifo:
    def test_victim_is_first_in(self):
        policy = FifoPolicy()
        cache_set = filled_set([4, 5, 6])
        assert policy.victim(cache_set) == 4

    def test_hits_do_not_refresh(self):
        policy = FifoPolicy()
        cache_set = filled_set([4, 5, 6])
        policy.on_hit(cache_set, 4)
        assert policy.victim(cache_set) == 4


class TestRandom:
    def test_victim_member_of_set(self):
        policy = RandomPolicy(seed=1)
        cache_set = filled_set([7, 8, 9])
        assert policy.victim(cache_set) in cache_set

    def test_deterministic_under_seed(self):
        a = RandomPolicy(seed=5)
        b = RandomPolicy(seed=5)
        cache_set = filled_set(range(16))
        assert [a.victim(cache_set) for _ in range(10)] \
            == [b.victim(cache_set) for _ in range(10)]


class TestSrrip:
    def test_insert_then_evictable(self):
        policy = SrripPolicy()
        cache_set = filled_set([1])
        policy.on_insert(cache_set, 1)
        assert policy.victim(cache_set) == 1

    def test_hit_protects_line(self):
        policy = SrripPolicy()
        cache_set = filled_set([1, 2])
        policy.on_insert(cache_set, 1)
        policy.on_insert(cache_set, 2)
        policy.on_hit(cache_set, 1)
        assert policy.victim(cache_set) == 2

    def test_aging_terminates(self):
        policy = SrripPolicy()
        cache_set = filled_set([1, 2, 3])
        for tag in cache_set:
            policy.on_insert(cache_set, tag)
            policy.on_hit(cache_set, tag)
        assert policy.victim(cache_set) in cache_set


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LruPolicy), ("fifo", FifoPolicy),
        ("random", RandomPolicy), ("srrip", SrripPolicy),
        ("LRU", LruPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("belady")


class TestEvictionHooks:
    """on_evict/on_clear keep stateful policies from leaking entries."""

    def test_srrip_victim_state_cleaned_on_evict(self):
        policy = SrripPolicy()
        cache_set = filled_set([1, 2])
        policy.on_insert(cache_set, 1)
        policy.on_insert(cache_set, 2)
        victim = policy.victim(cache_set)
        del cache_set[victim]
        policy.on_evict(cache_set, victim)
        assert victim not in policy._rrpv

    def test_srrip_on_clear_empties_state(self):
        policy = SrripPolicy()
        cache_set = filled_set([1, 2, 3])
        for tag in cache_set:
            policy.on_insert(cache_set, tag)
        policy.on_clear()
        assert policy._rrpv == {}

    def test_default_hooks_are_noops(self):
        policy = LruPolicy()
        cache_set = filled_set([1])
        policy.on_evict(cache_set, 1)  # must not raise
        policy.on_clear()

    def test_cache_invalidate_informs_policy(self):
        from repro.mem.cache import Cache
        from repro.mem.request import MemoryRequest

        cache = Cache("srrip", 1024, 2, 1, replacement="srrip")
        cache.access(MemoryRequest(paddr=0))
        line = cache.line_addr(0)
        assert line in cache._policy._rrpv
        cache.invalidate(0)
        assert line not in cache._policy._rrpv

    def test_cache_flush_informs_policy(self):
        from repro.mem.cache import Cache
        from repro.mem.request import MemoryRequest

        cache = Cache("srrip", 1024, 2, 1, replacement="srrip")
        for i in range(8):
            cache.access(MemoryRequest(paddr=i * 64))
        cache.flush()
        assert cache._policy._rrpv == {}

    def test_srrip_no_leak_across_fills(self):
        """Fill-driven evictions must not leave RRPV entries behind —
        the leak that skewed later victim picks before the hooks."""
        from repro.mem.cache import Cache
        from repro.mem.request import MemoryRequest

        cache = Cache("srrip", 1024, 2, 1, replacement="srrip")
        for i in range(200):
            cache.access(MemoryRequest(paddr=i * 64))
        assert len(cache._policy._rrpv) <= cache.resident_lines
