"""Tests for the banked DRAM timing model."""

import pytest

from repro.mem.dram import DDR4_2400, HBM2, DramModel, DramTiming
from repro.mem.request import AccessType, MemoryRequest, RequestKind


def req(paddr, kind=RequestKind.DATA):
    return MemoryRequest(paddr=paddr, kind=kind)


@pytest.fixture
def dram():
    return DramModel(HBM2)


class TestPresets:
    def test_ddr4_geometry(self):
        assert DDR4_2400.channels == 2
        assert DDR4_2400.banks_per_channel == 16

    def test_hbm_lower_burst_than_ddr4(self):
        # HBM's edge is interface bandwidth, not latency.
        assert HBM2.burst_cycles < DDR4_2400.burst_cycles

    def test_row_miss_slower_than_hit(self):
        for timing in (DDR4_2400, HBM2):
            assert timing.row_miss_cycles > timing.row_hit_cycles
            assert timing.row_cycle_cycles >= timing.row_miss_cycles - 10


class TestLatency:
    def test_first_access_is_row_miss(self, dram):
        latency = dram.access(0.0, req(0))
        assert latency == HBM2.row_miss_cycles
        assert dram.stats.row_misses == 1

    # Geometry notes for HBM2: 2 channels, 8 banks, 32 lines per row.
    # Same channel-0 bank 0 row 0: paddr 0 and 128 (lines 0 and 2).
    # Same bank, different row: row must be a multiple of 8 so the
    # permutation (bank ^ row % 8) maps back to bank 0 -> row 8 starts
    # at line 2 * 32 * 8 * 8 = 4096, i.e. paddr 262144.

    SAME_ROW = 128
    SAME_BANK_OTHER_ROW = 262_144

    def test_same_row_hit(self, dram):
        dram.access(0.0, req(0))
        latency = dram.access(1000.0, req(self.SAME_ROW))
        assert latency == HBM2.row_hit_cycles
        assert dram.stats.row_hits == 1

    def test_row_conflict_after_other_row(self, dram):
        dram.access(0.0, req(0))
        dram.access(1000.0, req(self.SAME_BANK_OTHER_ROW))
        later = dram.access(2000.0, req(0))
        assert later == HBM2.row_miss_cycles
        assert dram.stats.row_misses == 3

    def test_bank_queueing_adds_delay(self, dram):
        first = dram.access(0.0, req(0))
        second = dram.access(0.0, req(self.SAME_ROW))
        # Same bank at the same instant: the second waits out the
        # occupancy window of the first.
        assert second > HBM2.row_hit_cycles
        assert dram.stats.queue_delay.total > 0
        assert first == HBM2.row_miss_cycles

    def test_different_channels_no_queueing(self, dram):
        dram.access(0.0, req(0))
        dram.access(0.0, req(64))  # line 1 -> channel 1
        assert dram.stats.queue_delay.total == 0.0


class TestAttribution:
    def test_kind_counters(self, dram):
        dram.access(0.0, req(0))
        dram.access(0.0, req(1 << 20, kind=RequestKind.METADATA))
        by_kind = dram.stats.accesses_by_kind
        assert by_kind[RequestKind.DATA] == 1
        assert by_kind[RequestKind.METADATA] == 1

    def test_writes_counted(self, dram):
        dram.access(0.0, MemoryRequest(paddr=0, access=AccessType.WRITE))
        assert dram.stats.writes == 1

    def test_drain_write_counts_but_is_posted(self, dram):
        dram.drain_write(0.0, MemoryRequest(
            paddr=0, access=AccessType.WRITE))
        assert dram.stats.writes == 1
        # Posted write occupies the bank: a racing read queues.
        latency = dram.access(0.0, req(0))
        assert latency >= HBM2.row_hit_cycles

    def test_row_hit_rate(self, dram):
        dram.access(0.0, req(0))
        dram.access(500.0, req(128))
        dram.access(1000.0, req(256))
        assert dram.stats.row_hit_rate == pytest.approx(2 / 3)


class TestInterleaving:
    def test_sequential_lines_share_rows(self, dram):
        """Open-page interleave: streaming gets row-buffer hits."""
        dram.access(0.0, req(0))
        hits_before = dram.stats.row_hits
        # Lines 2, 4, ... on channel 0 fall in the same row at first.
        latency = dram.access(10_000.0, req(2 * 64))
        assert dram.stats.row_hits == hits_before + 1
        assert latency == HBM2.row_hit_cycles

    def test_aligned_hot_addresses_spread_over_banks(self):
        """Permutation interleave defeats bank camping (the XSBench
        midpoint pathology): addresses sharing a page offset must not
        collapse onto one bank."""
        dram = DramModel(HBM2)
        banks = set()
        for i in range(64):
            bank, _ = dram._decode(i * 4096 * 507 + 4032)
            banks.add(id(bank))
        assert len(banks) >= 6

    def test_reset_state_clears_busy_banks(self, dram):
        dram.access(0.0, req(0))
        dram.reset_state()
        latency = dram.access(0.0, req(0))
        assert latency == HBM2.row_miss_cycles  # row closed again


class TestCustomTiming:
    def test_custom_geometry_respected(self):
        timing = DramTiming("toy", channels=1, banks_per_channel=2,
                            row_bytes=128, row_hit_cycles=10,
                            row_miss_cycles=20, burst_cycles=2,
                            row_cycle_cycles=25)
        dram = DramModel(timing)
        assert dram.access(0.0, req(0)) == 20
        assert dram.access(100.0, req(64)) == 10
