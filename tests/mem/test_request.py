"""Tests for memory-request descriptors."""

from repro.mem.request import (
    AccessType,
    RequestKind,
    read,
    write,
)


class TestRequestKind:
    def test_metadata_flag(self):
        assert RequestKind.METADATA.is_metadata
        assert not RequestKind.DATA.is_metadata
        assert not RequestKind.INSTRUCTION.is_metadata


class TestConstructors:
    def test_read_defaults(self):
        req = read(0x1000)
        assert req.access is AccessType.READ
        assert req.kind is RequestKind.DATA
        assert not req.bypass_l1

    def test_write(self):
        req = write(0x1000, kind=RequestKind.METADATA, core_id=3)
        assert req.access is AccessType.WRITE
        assert req.core_id == 3

    def test_with_bypass_copies(self):
        req = read(0x40, kind=RequestKind.METADATA, core_id=2)
        bypassed = req.with_bypass()
        assert bypassed.bypass_l1
        assert not req.bypass_l1  # original untouched (frozen)
        assert bypassed.paddr == req.paddr
        assert bypassed.kind == req.kind
        assert bypassed.core_id == req.core_id

    def test_requests_are_immutable(self):
        req = read(0)
        try:
            req.paddr = 1
        except Exception:
            return
        raise AssertionError("MemoryRequest should be frozen")
