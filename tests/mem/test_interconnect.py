"""Tests for the mesh interconnect model."""

import pytest

from repro.mem.interconnect import MeshConfig, MeshInterconnect


class TestNdpMode:
    def test_single_hop_for_all_cores(self):
        noc = MeshInterconnect(8, near_memory=True)
        assert all(noc.hops(c) == 1 for c in range(8))

    def test_latency_is_hop_plus_serialization(self):
        noc = MeshInterconnect(1, near_memory=True)
        assert noc.latency(0) == 4 + 1  # Table I: 4-cycle hop, 64 B link


class TestCpuMode:
    def test_distance_grows_across_mesh(self):
        noc = MeshInterconnect(8, near_memory=False)
        assert noc.hops(7) > noc.hops(1)

    def test_minimum_one_hop(self):
        noc = MeshInterconnect(4, near_memory=False)
        assert noc.hops(0) >= 1

    def test_core_bounds_checked(self):
        noc = MeshInterconnect(4)
        with pytest.raises(ValueError):
            noc.hops(4)

    def test_needs_a_core(self):
        with pytest.raises(ValueError):
            MeshInterconnect(0)


class TestConfig:
    def test_narrow_link_serializes_more(self):
        narrow = MeshInterconnect(
            1, MeshConfig(link_bytes=16), near_memory=True)
        wide = MeshInterconnect(
            1, MeshConfig(link_bytes=64), near_memory=True)
        assert narrow.latency(0) > wide.latency(0)

    def test_traversals_counted(self):
        noc = MeshInterconnect(2, near_memory=True)
        noc.latency(0)
        noc.latency(1)
        assert noc.traversals == 2
