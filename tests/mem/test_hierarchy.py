"""Tests for memory-hierarchy composition and the L1 bypass path."""

import pytest

from repro.mem.dram import DDR4_2400, HBM2
from repro.mem.hierarchy import build_cpu_hierarchy, build_ndp_hierarchy
from repro.mem.request import AccessType, MemoryRequest, RequestKind


def data(paddr, core=0):
    return MemoryRequest(paddr=paddr, core_id=core)


def meta(paddr, core=0, bypass=False):
    return MemoryRequest(paddr=paddr, kind=RequestKind.METADATA,
                         core_id=core, bypass_l1=bypass)


@pytest.fixture
def ndp():
    return build_ndp_hierarchy(2, HBM2)


@pytest.fixture
def cpu():
    return build_cpu_hierarchy(2, DDR4_2400)


class TestShapes:
    def test_ndp_has_single_cache_level(self, ndp):
        assert ndp.l2s is None
        assert ndp.l3 is None
        assert len(ndp.l1ds) == 2

    def test_cpu_has_three_levels(self, cpu):
        assert len(cpu.l2s) == 2
        assert cpu.l3 is not None

    def test_cpu_l3_scales_with_cores(self):
        assert build_cpu_hierarchy(4, DDR4_2400).l3.size_bytes \
            == 4 * 2 * 1024 * 1024

    def test_l2_count_must_match(self, ndp):
        from repro.mem.hierarchy import MemoryHierarchy
        with pytest.raises(ValueError):
            MemoryHierarchy(ndp.l1ds, ndp.dram, ndp.noc, l2s=[])


class TestLatencies:
    def test_l1_hit_costs_l1_latency(self, ndp):
        ndp.access(0.0, data(0))
        assert ndp.access(1000.0, data(0)) == 4.0

    def test_ndp_miss_goes_to_dram(self, ndp):
        latency = ndp.access(0.0, data(0))
        # L1 lookup + 2x NoC + DRAM row miss.
        assert latency == 4 + 5 + HBM2.row_miss_cycles + 5

    def test_cpu_miss_descends_through_levels(self, cpu):
        latency = cpu.access(0.0, data(0))
        assert latency > 4 + 16 + 35  # at least all lookups + memory

    def test_cpu_l2_hit_cheaper_than_memory(self, cpu):
        cpu.access(0.0, data(0))
        big_stride = 64 * 64 * 8 * 4  # beyond L1 sets, within L2
        cpu.access(0.0, data(big_stride))
        # Evict line 0 from tiny L1 by filling its set.
        for i in range(1, 9):
            cpu.access(0.0, data(i * 64 * 64))
        latency = cpu.access(10_000.0, data(0))
        assert latency == 4 + 16  # L1 miss, L2 hit


class TestBypass:
    def test_bypassed_metadata_skips_l1(self, ndp):
        ndp.access(0.0, meta(0, bypass=True))
        assert not ndp.l1ds[0].contains(0)
        assert ndp.stats.l1_bypasses == 1

    def test_bypassed_metadata_not_looked_up_in_l1(self, ndp):
        ndp.access(0.0, data(0))  # line resident
        before = ndp.l1ds[0].stats.metadata.accesses
        ndp.access(0.0, meta(0, bypass=True))
        assert ndp.l1ds[0].stats.metadata.accesses == before

    def test_cacheable_metadata_allocates_into_l1(self, ndp):
        ndp.access(0.0, meta(0, bypass=False))
        assert ndp.l1ds[0].contains(0)

    def test_bypass_saves_l1_latency_on_miss(self, ndp):
        lat_bypass = ndp.access(0.0, meta(1 << 20, bypass=True))
        lat_cached = ndp.access(0.0, meta(2 << 20, bypass=False))
        assert lat_cached == lat_bypass + 4


class TestIsolation:
    def test_private_l1_per_core(self, ndp):
        ndp.access(0.0, data(0, core=0))
        assert ndp.l1ds[0].contains(0)
        assert not ndp.l1ds[1].contains(0)

    def test_shared_l3_across_cores(self, cpu):
        cpu.access(0.0, data(0, core=0))
        latency = cpu.access(10_000.0, data(0, core=1))
        # Core 1 misses its L1/L2 but hits the shared L3.
        assert latency == 4 + 16 + 35


class TestWritebacks:
    def test_dirty_eviction_reaches_dram(self, ndp):
        stride = 64 * 64  # L1 set stride (64 sets)
        ndp.access(0.0, MemoryRequest(paddr=0, access=AccessType.WRITE))
        for i in range(1, 9):  # evict through the 8 ways
            ndp.access(0.0, data(i * stride))
        assert ndp.dram.stats.writes >= 1

    def test_miss_rate_helper(self, ndp):
        ndp.access(0.0, data(0))
        ndp.access(0.0, data(0))
        assert ndp.l1_miss_rate(RequestKind.DATA) == 0.5

    def test_reset_stats(self, ndp):
        ndp.access(0.0, data(0))
        ndp.reset_stats()
        assert ndp.stats.accesses == 0
        assert ndp.l1ds[0].stats.data.accesses == 0
