"""Calibration sweep: per-workload mechanism comparison + motivation stats."""
import sys
import time
from repro import ndp_config, run_once
from repro.workloads import ALL_WORKLOADS

cores = int(sys.argv[1]) if len(sys.argv) > 1 else 1
refs = int(sys.argv[2]) if len(sys.argv) > 2 else 20000
mechs = ['radix', 'ech', 'hugepage', 'ndpage', 'ideal']

print(f"== NDP {cores}-core, {refs} refs/core ==")
avg = {m: [] for m in mechs}
for wl in ALL_WORKLOADS:
    base = None
    row = []
    for m in mechs:
        t0 = time.time()
        r = run_once(ndp_config(workload=wl, mechanism=m, num_cores=cores,
                                refs_per_core=refs))
        if m == 'radix':
            base = r
            extra = (f" ptw={r.ptw_latency_mean:6.1f}"
                     f" tlbm={r.tlb_miss_rate:.2f}"
                     f" tf={r.translation_fraction:.2f}"
                     f" l1m={r.l1_metadata_miss_rate:.2f}"
                     f" l1d={r.l1_data_miss_rate:.2f}")
        sp = base.cycles / r.cycles
        avg[m].append(sp)
        row.append(f"{m[:4]}={sp:5.2f}")
    print(f"{wl:5s} {' '.join(row)}{extra}")
print("AVG  " + " ".join(f"{m[:4]}={sum(v)/len(v):5.2f}"
                         for m, v in avg.items()))
