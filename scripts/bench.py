#!/usr/bin/env python
"""Simulator throughput benchmark: refs/sec on representative workloads.

Runs :func:`repro.sim.runner.run_once` on a small suite of configurations
that exercise the hot path from different angles — a walker-heavy random
stream under the Radix baseline, a graph traversal, and the paper's
NDPage mechanism — and reports wall-clock seconds and simulated
references per second for each, plus two aggregates (total refs / total
wall and the geometric mean of per-config refs/sec).

Results are written as JSON (default ``BENCH_PR1.json`` at the repo
root) so successive PRs accumulate a performance trajectory::

    PYTHONPATH=src python scripts/bench.py
    PYTHONPATH=src python scripts/bench.py --refs 200000 --out BENCH.json
    PYTHONPATH=src python scripts/bench.py --baseline BENCH_PR1.json

``--baseline`` compares the current run against a previous JSON and
prints per-config and aggregate speedups; adding ``--fail-below R``
turns the comparison into a regression gate that exits non-zero when
the aggregate refs/s falls below ``R x`` the baseline (CI runs this
with ``R = 0.8``).  ``--profile`` adds one instrumented pass per
config after the timed suite and embeds each config's top-25
functions by cumulative time in the report (a ``profile`` block), so
future perf PRs can cite where the time goes.

Alongside the single-run rows the harness times one *parallel sweep*
per execution backend (the QUICK workload grid through
``repro.service`` at ``--sweep-jobs N``, fresh cache) and reports the
throughput in a ``sweep`` block — the scale-out number that future
"more scenarios" PRs move, next to the per-core number PR 1 moved.
The primary backend (first of ``--sweep-backends``, default ``pool``)
keeps the block's historical shape for baseline comparison; every
measured backend lands under ``sweep.backends.<name>`` (``fileq``
runs over a throwaway queue directory with local workers, so the
file-queue coordination overhead is on the perf trajectory too).
``--sweep-jobs 0`` skips the sweep block entirely.

JSON format (``BENCH_*.json``)::

    {
      "label": "PR1",
      "python": "3.11.x",
      "host": {"cpu_count": 8, "cpu_model": "...", "machine": "...",
               "platform": "..."},
      "refs_per_core": 120000,
      "scale": 0.05,
      "results": [
        {"name": "...", "workload": "...", "mechanism": "...",
         "num_cores": 1, "references": 120000,
         "wall_seconds": 1.23, "refs_per_sec": 97561.0,
         "cycles": 1234567.0}
      ],
      "aggregate": {"total_references": ..., "total_wall_seconds": ...,
                    "refs_per_sec": ..., "geomean_refs_per_sec": ...},
      "baseline": { ... same shape, when --baseline was given ... }
    }

``cycles`` is recorded so a throughput win can be cross-checked against
statistics preservation (same simulated cycles, less wall time).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import SweepService  # noqa: E402
from repro.sim.config import NumaParams, ndp_config  # noqa: E402
from repro.sim.runner import run_once  # noqa: E402
from repro.sim.sweep import expand_grid  # noqa: E402

#: The benchmark suite: walker-heavy baseline, graph traversal, the
#: paper's mechanism, a two-tenant schedule (the multi-process
#: scheduler + ASID-tagged-TLB path), a two-node NUMA interleave
#: (per-node DRAM routing + remote-distance charging on the miss
#: path), and — since the run-ahead engine (PR 5) — two multi-core
#: configs: a 4-core traversal through the linear-scan run-ahead loop
#: and a 2-tenant 2-core schedule through the scheduler's run-ahead
#: loop, so the interleaved paths sit on the same perf trajectory as
#: the single-core ones.
SUITE = (
    {"name": "rnd-radix", "workload": "rnd", "mechanism": "radix"},
    {"name": "bfs-radix", "workload": "bfs", "mechanism": "radix"},
    {"name": "xs-ndpage", "workload": "xs", "mechanism": "ndpage"},
    {"name": "xs-radix-2t", "workload": "xs", "mechanism": "radix",
     "tenants": 2},
    {"name": "rnd-radix-2n", "workload": "rnd", "mechanism": "radix",
     "nodes": 2, "placement": "interleave"},
    {"name": "bfs-radix-4c", "workload": "bfs", "mechanism": "radix",
     "num_cores": 4},
    {"name": "xs-ndpage-2t-2c", "workload": "xs",
     "mechanism": "ndpage", "tenants": 2, "num_cores": 2},
)


def bench_config(entry: dict, refs: int, scale: float, seed: int = 42):
    """Build the SystemConfig for one suite entry."""
    numa = NumaParams(nodes=entry.get("nodes", 1),
                      placement=entry.get("placement", "local"))
    return ndp_config(
        workload=entry["workload"],
        mechanism=entry["mechanism"],
        num_cores=entry.get("num_cores", 1),
        refs_per_core=refs,
        scale=scale,
        seed=seed,
        tenants=entry.get("tenants", 1),
        numa=numa,
    )


def _cpu_model() -> str:
    """Human-readable CPU model, best effort across platforms."""
    if sys.platform.startswith("linux"):
        try:
            with open("/proc/cpuinfo") as handle:
                for line in handle:
                    if line.lower().startswith("model name"):
                        return line.split(":", 1)[1].strip()
        except OSError:
            pass
    return platform.processor() or platform.machine()


def host_info() -> dict:
    """Machine identity embedded in every report.

    BENCH_*.json files accumulate a cross-PR performance trajectory;
    refs/sec is only comparable between reports measured on the same
    class of machine, so each report says what it ran on.
    """
    return {
        "cpu_count": os.cpu_count(),
        "cpu_model": _cpu_model(),
        "machine": platform.machine(),
        "platform": platform.platform(),
    }


def run_suite(refs: int, scale: float, seed: int = 42,
              verbose: bool = True, repeats: int = 1) -> dict:
    """Time ``run_once`` on every suite entry; return the report dict.

    With ``repeats > 1`` each configuration is run that many times and
    the best (minimum) wall time is reported — the standard way to
    estimate throughput on a machine with noisy neighbours.
    """
    results = []
    total_refs = 0
    total_wall = 0.0
    product = 1.0
    for entry in SUITE:
        config = bench_config(entry, refs, scale, seed)
        wall = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = run_once(config)
            elapsed = time.perf_counter() - start
            if elapsed < wall:
                wall = elapsed
        refs_per_sec = result.references / wall if wall > 0 else 0.0
        row = {
            "name": entry["name"],
            "workload": entry["workload"],
            "mechanism": entry["mechanism"],
            "num_cores": config.num_cores,
            "tenants": config.tenants,
            "nodes": config.numa.nodes,
            "references": result.references,
            "wall_seconds": round(wall, 4),
            "refs_per_sec": round(refs_per_sec, 1),
            "cycles": result.cycles,
        }
        results.append(row)
        total_refs += result.references
        total_wall += wall
        product *= refs_per_sec
        if verbose:
            print(f"  {entry['name']:<12} {result.references:>9,} refs  "
                  f"{wall:7.2f} s  {refs_per_sec:>12,.0f} refs/s")
    aggregate = {
        "total_references": total_refs,
        "total_wall_seconds": round(total_wall, 4),
        "refs_per_sec": round(total_refs / total_wall, 1)
        if total_wall else 0.0,
        "geomean_refs_per_sec": round(product ** (1.0 / len(results)), 1)
        if results else 0.0,
    }
    return {
        "python": platform.python_version(),
        "host": host_info(),
        "refs_per_core": refs,
        "scale": scale,
        "results": results,
        "aggregate": aggregate,
    }


#: Entries kept per config by ``--profile`` (cProfile, by cumulative).
PROFILE_TOP = 25


def profile_suite(refs: int, scale: float, seed: int = 42,
                  top: int = PROFILE_TOP, verbose: bool = True) -> dict:
    """Run each suite config once under cProfile; return the hot spots.

    One extra (instrumented, slower) pass per config after the timed
    suite — never mixed into the throughput numbers.  Per config the
    report carries the ``top`` functions by cumulative time
    (``file:line:function``, call count, tottime, cumtime), so a perf
    PR can cite where the time goes on the exact trajectory configs
    instead of re-deriving the breakdown by hand.
    """
    import cProfile
    import pstats

    profiles = {}
    for entry in SUITE:
        config = bench_config(entry, refs, scale, seed)
        profiler = cProfile.Profile()
        profiler.enable()
        run_once(config)
        profiler.disable()
        stats = pstats.Stats(profiler)
        ranked = sorted(stats.stats.items(),
                        key=lambda item: item[1][3], reverse=True)
        rows = []
        for (filename, line, name), (_, ncalls, tottime, cumtime,
                                     _) in ranked[:top]:
            rows.append({
                "function": f"{Path(filename).name}:{line}:{name}",
                "ncalls": ncalls,
                "tottime": round(tottime, 4),
                "cumtime": round(cumtime, 4),
            })
        profiles[entry["name"]] = rows
        if verbose and rows:
            hottest = max(rows, key=lambda row: row["tottime"])
            print(f"  profile {entry['name']:<16} hottest "
                  f"{hottest['function']} "
                  f"(tottime {hottest['tottime']}s)")
    return profiles


#: The parallel-sweep benchmark grid: the QUICK workload subset under
#: the paper's baseline and its mechanism, single-core cells.
SWEEP_WORKLOADS = ("bfs", "xs", "rnd")
SWEEP_MECHANISMS = ("radix", "ndpage")


#: Backends measured by the sweep block, primary (baseline-compared)
#: first.
SWEEP_BACKENDS = ("pool", "fileq")


def run_sweep_bench(refs: int, scale: float, jobs: int,
                    seed: int = 42, backend: str = "pool",
                    verbose: bool = True) -> dict:
    """Time one parallel sweep (fresh cache-less run) at ``jobs`` on
    the named execution backend."""
    import tempfile

    configs = expand_grid(workloads=SWEEP_WORKLOADS,
                          mechanisms=SWEEP_MECHANISMS,
                          refs_per_core=refs, scale=scale, seed=seed)
    queue_dir = None
    if backend == "fileq":
        queue_dir = tempfile.TemporaryDirectory(prefix="bench-fileq-")
    try:
        service = SweepService(
            backend=backend, jobs=max(1, jobs),
            queue_dir=queue_dir.name if queue_dir else None)
        start = time.perf_counter()
        results = service.run(configs)
        wall = time.perf_counter() - start
    finally:
        if queue_dir is not None:
            queue_dir.cleanup()
    references = sum(r.references for r in results)
    refs_per_sec = references / wall if wall > 0 else 0.0
    stats = service.last_stats
    block = {
        "backend": backend,
        "jobs": max(1, jobs),
        "cells": len(configs),
        "references": references,
        "wall_seconds": round(wall, 4),
        "refs_per_sec": round(refs_per_sec, 1),
        # Fault-tolerance counters (supervised sweep): all zero on a
        # healthy box — nonzero values flag that the throughput row
        # includes recovery work (retries/backoff) and is not
        # comparable to a clean baseline.
        "retries": stats.retries,
        "timeouts": stats.timeouts,
        "worker_deaths": stats.worker_deaths,
        "quarantined": stats.failed,
        # Per-sweep telemetry snapshot (queue wait / attempt wall /
        # cache-store histograms) from the supervisor's registry.
        "metrics": stats.metrics,
    }
    if verbose:
        print(f"  sweep/{backend:<6} {references:>9,} refs  "
              f"{wall:7.2f} s  {refs_per_sec:>12,.0f} refs/s  "
              f"({len(configs)} cells, {max(1, jobs)} jobs)")
    return block


def compare(report: dict, baseline: dict) -> None:
    """Print per-config and aggregate speedups against ``baseline``."""
    base_rows = {row["name"]: row for row in baseline.get("results", ())}
    print("\nSpeedup vs baseline:")
    for row in report["results"]:
        base = base_rows.get(row["name"])
        if base is None or not base.get("refs_per_sec"):
            continue
        ratio = row["refs_per_sec"] / base["refs_per_sec"]
        print(f"  {row['name']:<12} {ratio:5.2f}x "
              f"({base['refs_per_sec']:,.0f} -> "
              f"{row['refs_per_sec']:,.0f} refs/s)")
    base_agg = baseline.get("aggregate", {}).get("refs_per_sec")
    if base_agg:
        agg = report["aggregate"]["refs_per_sec"] / base_agg
        print(f"  {'aggregate':<12} {agg:5.2f}x")
    base_sweep = baseline.get("sweep", {}).get("refs_per_sec")
    if base_sweep and report.get("sweep"):
        ratio = report["sweep"]["refs_per_sec"] / base_sweep
        print(f"  {'sweep':<12} {ratio:5.2f}x")


def aggregate_ratio(report: dict, baseline: dict) -> float | None:
    """Current aggregate refs/s over the baseline's.

    ``None`` when the baseline has no usable aggregate — the gate must
    report a bad baseline file, not a phantom 100% regression.
    """
    base = baseline.get("aggregate", {}).get("refs_per_sec") or 0.0
    if not base:
        return None
    return report["aggregate"]["refs_per_sec"] / base


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the simulator on representative workloads.")
    parser.add_argument("--refs", type=int, default=120_000,
                        help="references per core (default 120000)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workload footprint scale (default 0.05)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs per config; best wall time is kept")
    parser.add_argument("--label", default="PR1",
                        help="label recorded in the JSON report")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR1.json"),
                        help="output JSON path (default BENCH_PR1.json)")
    parser.add_argument("--baseline", default=None,
                        help="previous BENCH_*.json to compare against "
                             "and embed in the report")
    parser.add_argument("--fail-below", type=float, default=None,
                        metavar="RATIO",
                        help="with --baseline: exit 1 if aggregate "
                             "refs/s < RATIO x baseline (CI gate)")
    parser.add_argument("--sweep-jobs", type=int, default=None,
                        help="workers for the parallel sweep bench "
                             "(default: min(4, cpu_count); 0 skips)")
    parser.add_argument("--sweep-backends", nargs="+",
                        default=list(SWEEP_BACKENDS),
                        choices=("serial", "pool", "fileq"),
                        help="backends measured by the sweep block; "
                             "the first is the primary compared "
                             "against baselines")
    parser.add_argument("--profile", action="store_true",
                        help="after the timed suite, run each config "
                             "once under cProfile and embed the top-"
                             f"{PROFILE_TOP} functions by cumulative "
                             "time per config in the JSON report")
    args = parser.parse_args(argv)
    if args.fail_below is not None and not args.baseline:
        parser.error("--fail-below requires --baseline")

    print(f"bench: {len(SUITE)} configs, {args.refs:,} refs/core, "
          f"scale {args.scale}, best of {max(1, args.repeats)}")
    report = run_suite(args.refs, args.scale, args.seed,
                       repeats=args.repeats)
    report["label"] = args.label
    report["repeats"] = max(1, args.repeats)
    agg = report["aggregate"]
    print(f"  {'aggregate':<12} {agg['total_references']:>9,} refs  "
          f"{agg['total_wall_seconds']:7.2f} s  "
          f"{agg['refs_per_sec']:>12,.0f} refs/s")

    sweep_jobs = args.sweep_jobs
    if sweep_jobs is None:
        sweep_jobs = min(4, os.cpu_count() or 1)
    if sweep_jobs > 0:
        blocks = {
            backend: run_sweep_bench(
                max(1, args.refs // 4), args.scale, sweep_jobs,
                args.seed, backend=backend)
            for backend in args.sweep_backends
        }
        # Primary backend keeps the historical top-level shape (what
        # compare()/the CI gate read); every backend lands under
        # "backends" as the new axis.
        primary = args.sweep_backends[0]
        report["sweep"] = dict(blocks[primary])
        report["sweep"]["backends"] = blocks

    if args.profile:
        # Full-length configs, so the hot-spot ranking describes the
        # exact runs the timed rows measured (cProfile slows the pass
        # ~3x; it never touches the throughput numbers above).
        report["profile"] = profile_suite(
            args.refs, args.scale, args.seed)

    failed = False
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        report["baseline"] = baseline
        compare(report, baseline)
        if args.fail_below is not None:
            ratio = aggregate_ratio(report, baseline)
            floor = args.fail_below
            if ratio is None:
                print(f"\nFAIL: baseline {args.baseline} has no "
                      f"aggregate refs/s to gate against")
                failed = True
            elif ratio < floor:
                print(f"\nFAIL: aggregate throughput is {ratio:.2f}x "
                      f"the baseline (floor {floor:.2f}x)")
                failed = True
            else:
                print(f"\nregression gate: {ratio:.2f}x baseline "
                      f">= {floor:.2f}x floor — ok")

    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
