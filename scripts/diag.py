"""Per-mechanism PTW/queue diagnostics on a few workloads."""
import sys
from repro import ndp_config, run_once

cores = int(sys.argv[1]) if len(sys.argv) > 1 else 4
refs = int(sys.argv[2]) if len(sys.argv) > 2 else 12000
for wl in ['bfs', 'pr', 'xs', 'rnd']:
    base = None
    for m in ['radix', 'ech', 'hugepage', 'ndpage', 'ideal']:
        r = run_once(ndp_config(workload=wl, mechanism=m, num_cores=cores,
                                refs_per_core=refs))
        if m == 'radix':
            base = r
        dram = sum(r.dram_accesses_by_kind.values())
        meta_dram = r.dram_accesses_by_kind.get('metadata', 0)
        cyc_per_ref = r.cycles * cores / max(1, r.references)
        print(f"{wl:4s} {m:9s} sp={base.cycles/r.cycles:5.2f} "
              f"ptw={r.ptw_latency_mean:6.1f} "
              f"qd={r.dram_queue_delay_mean:6.1f} "
              f"pte_acc={r.pte_memory_accesses:6d} "
              f"dram={dram:7d} meta_dram={meta_dram:6d} "
              f"cyc/ref={cyc_per_ref:6.1f} "
              f"tf={r.translation_fraction:.2f}")
    print()
