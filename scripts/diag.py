"""Per-mechanism PTW/queue diagnostics — now ``repro diag``.

Thin compatibility shim: ``python scripts/diag.py [CORES [REFS]]``
forwards to the ``repro diag`` subcommand, which adds
``--workloads`` / ``--mechanisms`` selection on top of the original
positional knobs.
"""
import sys

from repro.cli import main

if __name__ == "__main__":
    argv = ["diag"]
    if len(sys.argv) > 1:
        argv += ["--cores", sys.argv[1]]
    if len(sys.argv) > 2:
        argv += ["--refs", sys.argv[2]]
    sys.exit(main(argv))
