"""Operating-system memory-management model.

Sits between the MMU and the page table: when a walk discovers an
unmapped page the OS takes a fault, allocates physical memory and
installs the mapping.  The model covers the behaviours the paper's
evaluation depends on:

* demand paging with per-core allocation sites (fragments contiguity);
* the transparent-huge-page policy used by the *Huge Page* mechanism,
  including compaction attempts and permanent 4 KB fallback for a
  region once contiguity is gone (Section VII-B);
* elastic-cuckoo rehash costs charged when the hash table grows;
* FIFO page reclaim under memory pressure, so long runs degrade
  gracefully instead of aborting;
* marking of PTE regions so the hardware can issue cache-bypassing
  accesses for metadata (Section V-A).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple

from repro.vm.address import (
    ENTRIES_PER_NODE,
    HUGE_PAGE_SHIFT,
    PAGE_SHIFT,
    VA_MASK,
)
from repro.vm.base import PageTable
from repro.vm.cuckoo import ElasticCuckooPageTable
from repro.vm.frames import FrameAllocator, OutOfMemoryError


class PagingPolicy(enum.Enum):
    """How the OS backs anonymous memory."""

    SMALL = "4KB"       # always 4 KB pages
    HUGE = "2MB-THP"    # 2 MB when contiguity allows, 4 KB fallback


@dataclass(frozen=True)
class FaultCosts:
    """Cycle costs of OS paths, charged to the faulting core.

    Values follow the usual lore: a minor fault is on the order of a
    microsecond; a 2 MB fault must additionally zero 512x more bytes;
    compaction scans and migrates pages, costing tens of microseconds.
    """

    minor_fault_cycles: int = 1_600
    huge_fault_cycles: int = 10_400
    compaction_cycles: int = 130_000
    reclaim_cycles: int = 2_600
    ech_rehash_cycles_per_entry: int = 36


@dataclass(slots=True)
class OsStats:
    """Fault/compaction accounting for one run."""

    minor_faults: int = 0
    huge_faults: int = 0
    huge_fallbacks: int = 0
    compactions: int = 0
    reclaims: int = 0
    fault_cycles: float = 0.0
    regions_fallen_back: int = 0


@dataclass
class _FrameRecord:
    page: int
    frame: int
    huge: bool


class OSMemoryManager:
    """Demand paging + huge-page policy over one page table.

    Under multiprogramming each tenant process gets its own manager
    (private page table and reclaim list) over the *shared*
    :class:`FrameAllocator`; three optional hooks wire the managers
    together without changing single-process behaviour:

    * ``on_unmap(page, huge)`` — called after reclaim unmaps a page,
      so the system can run a TLB shootdown for it;
    * ``peer_reclaim()`` — called when this tenant has nothing left to
      evict; returns True if memory was reclaimed from another tenant
      (cross-tenant pressure), letting the allocation retry instead of
      dying on OOM;
    * ``extra_fault_cycles()`` — drained into the cycles returned by
      :meth:`ensure_translated`, charging shootdown costs to the core
      whose fault triggered the reclaim.
    """

    def __init__(self, allocator: FrameAllocator, page_table: PageTable,
                 policy: PagingPolicy = PagingPolicy.SMALL,
                 costs: FaultCosts = FaultCosts(),
                 thp_promotion_fraction: float = 1.0,
                 on_unmap=None, peer_reclaim=None,
                 extra_fault_cycles=None):
        if not 0.0 <= thp_promotion_fraction <= 1.0:
            raise ValueError("thp_promotion_fraction must be in [0, 1]")
        self.allocator = allocator
        self.page_table = page_table
        self.policy = policy
        self.costs = costs
        self._on_unmap = on_unmap
        self._peer_reclaim = peer_reclaim
        self._extra_fault_cycles = extra_fault_cycles
        # NUMA facade hook: post the faulting core before map_page so
        # page-table allocations (made under PT_ALLOC_SITE, not a core
        # site) can resolve locality.  None on the flat allocator.
        self._note_fault_site = getattr(allocator, "note_fault_site",
                                        None)
        #: Fraction of huge-eligible regions the THP machinery actually
        #: backs with 2 MB pages.  Linux promotes lazily (khugepaged)
        #: and demotes under pressure; Ingens (the paper's [23]) shows
        #: real coverage is far below 100 % on loaded systems.  Regions
        #: are selected by a deterministic hash, so coverage is
        #: insensitive to touch order.
        self.thp_promotion_fraction = thp_promotion_fraction
        self.stats = OsStats()
        self._fallback_regions: set = set()
        self._lru_frames: Deque[_FrameRecord] = deque()
        self._is_ech = isinstance(page_table, ElasticCuckooPageTable)
        self._last_rehashed = self._rehashed_entries()

    # -- helpers -------------------------------------------------------------

    def _rehashed_entries(self) -> int:
        if self._is_ech:
            return self.page_table.stats.rehashed_entries
        return 0

    def _charge_rehash(self):
        """Cycles for ECH growth work done since the last fault."""
        if not self._is_ech:
            return 0
        current = self.page_table.stats.rehashed_entries
        delta = current - self._last_rehashed
        self._last_rehashed = current
        return delta * self.costs.ech_rehash_cycles_per_entry

    # -- fault handling -------------------------------------------------------

    def ensure_translated(self, vaddr: int, site: int = 0):
        """Resolve ``vaddr``'s translation, faulting it in if needed.

        Returns ``(translation, fault_cycles)``; ``fault_cycles`` is
        0.0 when the page was already mapped (the common case: this
        runs on every TLB miss, before the walk).  Returning the
        translation spares the MMU a second page-table descent after
        the walk — the walk itself never changes the mapping.
        """
        page = (vaddr & VA_MASK) >> PAGE_SHIFT
        translation = self.page_table.lookup(page)
        if translation is not None:
            return translation, 0.0
        if self._note_fault_site is not None:
            self._note_fault_site(site)
        if self.policy is PagingPolicy.HUGE and self._supports_huge():
            cycles = self._fault_huge(page, site)
        else:
            cycles = self._fault_small(page, site)
        cycles += self._charge_rehash()
        if self._extra_fault_cycles is not None:
            # Shootdown IPIs etc. raised by reclaim during this fault,
            # charged to the faulting core (multi-tenant only).
            cycles += self._extra_fault_cycles()
        self.stats.fault_cycles += cycles
        return self.page_table.lookup(page), cycles

    def ensure_mapped(self, vaddr: int, site: int = 0) -> float:
        """Map the page backing ``vaddr`` if needed; return fault cycles."""
        return self.ensure_translated(vaddr, site)[1]

    def _supports_huge(self) -> bool:
        # Only the radix tree stores 2 MB leaves; other mechanisms run
        # with the SMALL policy in the paper's configuration.
        return hasattr(self.page_table, "huge_mappings")

    def _fault_small(self, page: int, site: int) -> float:
        frame = self._retrying(self.allocator.alloc_frame, site=site)
        # Installing the mapping may itself allocate page-table nodes.
        self._retrying(self.page_table.map_page, page, frame, PAGE_SHIFT)
        self._lru_frames.append(_FrameRecord(page, frame, huge=False))
        self.stats.minor_faults += 1
        return self.costs.minor_fault_cycles

    def _retrying(self, operation, *args, **kwargs):
        """Run an allocating operation, reclaiming memory on OOM.

        ``_reclaim_one`` raises when nothing is left to evict, which
        bounds the loop.
        """
        while True:
            try:
                return operation(*args, **kwargs)
            except OutOfMemoryError:
                self._reclaim_one()

    @property
    def resident_records(self) -> int:
        """Length of the reclaim list — an upper bound on evictable
        mappings (stale records included), used by the cross-tenant
        coordinator to rank eviction victims."""
        return len(self._lru_frames)

    def reclaim_one(self) -> None:
        """Evict one mapping to free physical memory.

        Public entry point for external reclaimers (the cross-tenant
        coordinator evicting from a victim process); raises
        :class:`OutOfMemoryError` when nothing is reclaimable.
        """
        self._reclaim_one()

    def _reclaim_one(self) -> None:
        """Evict the oldest mapping (FIFO) to free physical memory.

        Small mappings are preferred; when only huge mappings remain
        the OS breaks one up (unmap + free the whole block), which is
        far more expensive — part of the huge-page churn the paper
        blames for the 8-core Huge Page slowdown.
        """
        huge_skipped = []
        try:
            while self._lru_frames:
                record = self._lru_frames.popleft()
                if record.huge:
                    huge_skipped.append(record)
                    continue
                if self.page_table.lookup(record.page) is None:
                    continue
                self.page_table.unmap_page(record.page)
                self.allocator.free_frame(record.frame)
                self.stats.reclaims += 1
                self.stats.fault_cycles += self.costs.reclaim_cycles
                if self._on_unmap is not None:
                    self._on_unmap(record.page, False)
                return
            for record in huge_skipped:
                if self.page_table.lookup(record.page) is None:
                    continue
                huge_skipped.remove(record)
                self.page_table.unmap_page(record.page)
                self.allocator.free_block(record.frame)
                self.stats.reclaims += 1
                self.stats.fault_cycles += 4 * self.costs.reclaim_cycles
                if self._on_unmap is not None:
                    self._on_unmap(record.page, True)
                return
            # Own address space exhausted: under multiprogramming, lean
            # on a co-tenant before declaring the machine out of memory.
            if self._peer_reclaim is not None and self._peer_reclaim():
                return
            raise OutOfMemoryError("nothing reclaimable: memory exhausted")
        finally:
            self._lru_frames.extendleft(reversed(huge_skipped))

    def _promotable(self, region: int) -> bool:
        """Whether khugepaged would back this region with a 2 MB page."""
        fraction = self.thp_promotion_fraction
        if fraction >= 1.0:
            return True
        if fraction <= 0.0:
            return False
        # splitmix-style hash keeps the choice stable and order-free.
        h = (region * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return (h >> 40) % 1024 < int(fraction * 1024)

    def _fault_huge(self, page: int, site: int) -> float:
        region = page >> (HUGE_PAGE_SHIFT - PAGE_SHIFT)
        if region in self._fallback_regions:
            self.stats.huge_fallbacks += 1
            return self._fault_small(page, site)
        if not self._promotable(region):
            self._fallback_regions.add(region)
            self.stats.huge_fallbacks += 1
            return self._fault_small(page, site)

        first_frame = self.allocator.alloc_huge(site=site)
        cycles = 0.0
        if first_frame is None:
            # Contiguity exhausted: try one compaction pass, then give
            # this region up to 4 KB pages permanently.
            cycles += self.costs.compaction_cycles
            self.stats.compactions += 1
            if self.allocator.compact() > 0:
                first_frame = self.allocator.alloc_huge(site=site)
            if first_frame is None:
                self._fallback_regions.add(region)
                self.stats.regions_fallen_back += 1
                self.stats.huge_fallbacks += 1
                return cycles + self._fault_small(page, site)

        base_page = region << (HUGE_PAGE_SHIFT - PAGE_SHIFT)
        self._retrying(self.page_table.map_page, base_page, first_frame,
                       HUGE_PAGE_SHIFT)
        self._lru_frames.append(
            _FrameRecord(base_page, first_frame, huge=True))
        self.stats.huge_faults += 1
        return cycles + self.costs.huge_fault_cycles

    # -- metadata marking (Section V-A) ---------------------------------------

    def metadata_bytes(self) -> int:
        """Physical memory currently holding page-table structures."""
        return self.page_table.table_bytes()

    def prefault_range(self, base_vaddr: int, length: int,
                       site: int = 0) -> Tuple[int, float]:
        """Populate mappings for a VA range (dataset initialization).

        Returns (pages mapped, total fault cycles).  Used by workloads
        whose setup phase writes the whole dataset, which is what makes
        the paper's PL1/PL2 levels nearly fully occupied.
        """
        pages = 0
        cycles = 0.0
        step = 1 << PAGE_SHIFT
        addr = base_vaddr
        end = base_vaddr + length
        while addr < end:
            cost = self.ensure_mapped(addr, site=site)
            if cost:
                pages += 1
                cycles += cost
            addr += step
        return pages, cycles


def huge_region_of(page: int) -> int:
    """2 MB region index containing 4 KB-granularity VPN ``page``."""
    return page >> (HUGE_PAGE_SHIFT - PAGE_SHIFT)


def region_base_page(region: int) -> int:
    """First 4 KB VPN of 2 MB region ``region``."""
    return region << (HUGE_PAGE_SHIFT - PAGE_SHIFT)


def pages_per_huge_region() -> int:
    return ENTRIES_PER_NODE
