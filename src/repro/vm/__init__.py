"""Virtual-memory substrate: addresses, frames, page tables, OS model."""

from repro.vm import address
from repro.vm.base import (
    MappingError,
    PageTable,
    Translation,
    WalkStage,
)
from repro.vm.cuckoo import ElasticCuckooPageTable
from repro.vm.frames import (
    FRAMES_PER_BLOCK,
    FrameAllocator,
    OutOfMemoryError,
)
from repro.vm.ideal import IdealPageTable
from repro.vm.occupancy import (
    flattened_occupancy_from_ranges,
    level_occupancy_from_ranges,
    normalize_ranges,
    occupancy_report,
    table_occupancy,
)
from repro.vm.os_model import (
    FaultCosts,
    OSMemoryManager,
    PagingPolicy,
)
from repro.vm.radix import RadixPageTable

__all__ = [
    "ElasticCuckooPageTable",
    "FRAMES_PER_BLOCK",
    "FaultCosts",
    "FrameAllocator",
    "IdealPageTable",
    "MappingError",
    "OSMemoryManager",
    "OutOfMemoryError",
    "PageTable",
    "PagingPolicy",
    "RadixPageTable",
    "Translation",
    "WalkStage",
    "address",
    "flattened_occupancy_from_ranges",
    "level_occupancy_from_ranges",
    "normalize_ranges",
    "occupancy_report",
    "table_occupancy",
]
