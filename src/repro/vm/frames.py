"""Physical frame allocator with 2 MB-block contiguity tracking.

The allocator manages physical memory as an array of 4 KB frames grouped
into 2 MB blocks (512 frames).  Small allocations bump-allocate out of
per-site partial blocks; huge allocations (2 MB pages, and NDPage's
flattened page-table nodes) need a *whole free block*.

Contiguity is the resource whose exhaustion explains the paper's 8-core
Huge Page result (Section VII-B): once small allocations have broken up
every block, 2 MB requests fail and the OS must either compact — at a
large cycle cost — or fall back to 4 KB mappings.  Both paths are
modeled here and in :mod:`repro.vm.os_model`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.vm.address import HUGE_PAGE_SIZE, PAGE_SIZE

FRAMES_PER_BLOCK = HUGE_PAGE_SIZE // PAGE_SIZE  # 512


class OutOfMemoryError(Exception):
    """Raised when no physical frame can satisfy an allocation."""


@dataclass
class AllocatorStats:
    """Counters describing allocator behaviour over a run."""

    small_allocs: int = 0
    huge_allocs: int = 0
    huge_failures: int = 0
    compactions: int = 0
    blocks_recovered: int = 0
    frees: int = 0


class _PartialBlock:
    """A 2 MB block being carved into 4 KB frames for one site."""

    __slots__ = ("first_frame", "next_offset")

    def __init__(self, first_frame: int):
        self.first_frame = first_frame
        self.next_offset = 0

    @property
    def exhausted(self) -> bool:
        return self.next_offset >= FRAMES_PER_BLOCK

    def take(self) -> int:
        frame = self.first_frame + self.next_offset
        self.next_offset += 1
        return frame


class FrameAllocator:
    """Block-aware physical memory allocator.

    Args:
        phys_bytes: total physical memory (Table I: 16 GB, scaled).
        reserved_bytes: carve-out for the kernel/firmware; never
            allocatable (defaults to 2 % of physical memory).
        compaction_efficiency: fraction of scattered free frames that a
            compaction pass can actually coalesce into whole blocks —
            real compaction is imperfect because unmovable pages pin
            blocks.
        fragmentation: fraction of 2 MB blocks already broken at boot by
            long-uptime unmovable allocations (kernel objects, page
            cache).  Fragmented blocks keep half their frames usable for
            4 KB allocations but can never satisfy a 2 MB request nor be
            compacted — the Ingens-style THP pathology ([23] in the
            paper) that limits transparent huge pages on real systems.
    """

    def __init__(self, phys_bytes: int, reserved_bytes: Optional[int] = None,
                 compaction_efficiency: float = 0.5,
                 fragmentation: float = 0.0):
        if phys_bytes < HUGE_PAGE_SIZE:
            raise ValueError("physical memory smaller than one 2 MB block")
        if not 0.0 <= fragmentation < 1.0:
            raise ValueError("fragmentation must be in [0, 1)")
        if reserved_bytes is None:
            reserved_bytes = phys_bytes // 50
        self.phys_bytes = phys_bytes
        self.compaction_efficiency = compaction_efficiency
        self.fragmentation = fragmentation
        self.num_frames = phys_bytes // PAGE_SIZE
        self.num_blocks = self.num_frames // FRAMES_PER_BLOCK
        reserved_blocks = -(-reserved_bytes // HUGE_PAGE_SIZE)
        if reserved_blocks >= self.num_blocks:
            raise ValueError("reservation swallows all physical memory")
        usable = range(reserved_blocks, self.num_blocks)
        self._free_blocks: Deque[int] = deque()
        self._fragmented: Deque[_PartialBlock] = deque()
        for i, block in enumerate(usable):
            # Evenly interleave fragmented blocks at the requested rate.
            if int(i * fragmentation) < int((i + 1) * fragmentation):
                partial = _PartialBlock(block * FRAMES_PER_BLOCK)
                partial.next_offset = FRAMES_PER_BLOCK // 2  # boot noise
                self._fragmented.append(partial)
            else:
                self._free_blocks.append(block)
        self._partials: Dict[int, _PartialBlock] = {}
        self._free_frames: Deque[int] = deque()  # frames returned by free()
        self.stats = AllocatorStats()

    # -- capacity inspection --------------------------------------------------

    @property
    def free_block_count(self) -> int:
        """Whole 2 MB blocks still available (the contiguity pool)."""
        return len(self._free_blocks)

    @property
    def free_frames(self) -> int:
        """Total free 4 KB frames, contiguous or not."""
        partial = sum(FRAMES_PER_BLOCK - p.next_offset
                      for p in self._partials.values())
        fragmented = sum(FRAMES_PER_BLOCK - p.next_offset
                         for p in self._fragmented)
        return (len(self._free_blocks) * FRAMES_PER_BLOCK
                + partial + fragmented + len(self._free_frames))

    @property
    def scattered_free_frames(self) -> int:
        """Free frames *not* part of a whole free block."""
        return self.free_frames - len(self._free_blocks) * FRAMES_PER_BLOCK

    @property
    def free_fraction(self) -> float:
        """Fraction of all physical frames currently free."""
        if self.num_frames == 0:
            return 0.0
        return self.free_frames / self.num_frames

    @property
    def pressure(self) -> float:
        """Occupied fraction of physical memory (0 idle .. 1 full).

        Under multiprogramming this is the contention signal tenants
        share: every tenant's faults drain the same pool, so pressure
        approaching 1 means reclaim — and cross-tenant reclaim — is
        imminent for all of them.
        """
        return 1.0 - self.free_fraction

    @property
    def movable_scattered_frames(self) -> int:
        """Scattered free frames compaction could actually coalesce.

        Free room inside boot-fragmented blocks is pinned by unmovable
        allocations and excluded.
        """
        partial = sum(FRAMES_PER_BLOCK - p.next_offset
                      for site, p in self._partials.items()
                      if not self._is_fragmented(p))
        return partial + len(self._free_frames)

    def _is_fragmented(self, partial: _PartialBlock) -> bool:
        return any(p is partial for p in self._fragmented)

    # -- allocation -----------------------------------------------------------

    def alloc_frame(self, site: int = 0) -> int:
        """Allocate one 4 KB frame for allocation site ``site``.

        Sites (one per core, plus one for the OS/page tables) carve from
        separate partial blocks, mirroring per-CPU page allocator caches;
        this is what interleaves lifetimes across blocks and fragments
        the contiguity pool.
        """
        if self._free_frames:
            self.stats.small_allocs += 1
            return self._free_frames.popleft()
        partial = self._partials.get(site)
        if partial is None or partial.exhausted:
            partial = self._open_block(site)
        self.stats.small_allocs += 1
        return partial.take()

    def _open_block(self, site: int) -> _PartialBlock:
        # Prefer boot-fragmented blocks for small allocations: their
        # contiguity is already lost, so spending them preserves whole
        # blocks for 2 MB requests (Linux's grouping-by-mobility).
        while self._fragmented:
            partial = self._fragmented[0]
            if partial.exhausted:
                self._fragmented.popleft()
                continue
            self._partials[site] = partial
            return partial
        if not self._free_blocks:
            # Steal leftover room from the least-drained other partial.
            best = None
            for other in self._partials.values():
                if not other.exhausted and (
                        best is None
                        or other.next_offset < best.next_offset):
                    best = other
            if best is not None:
                self._partials[site] = best
                return best
            raise OutOfMemoryError("no free 4 KB frame")
        block = self._free_blocks.popleft()
        partial = _PartialBlock(block * FRAMES_PER_BLOCK)
        self._partials[site] = partial
        return partial

    def alloc_huge(self, site: int = 0) -> Optional[int]:
        """Allocate a whole 2 MB block; return its first frame or None.

        None signals contiguity exhaustion: the caller (OS model) decides
        between compaction and 4 KB fallback.  ``site`` keeps the
        signature uniform with :meth:`alloc_frame` (the NUMA facade
        routes on it; the flat allocator has one pool).
        """
        if not self._free_blocks:
            self.stats.huge_failures += 1
            return None
        block = self._free_blocks.popleft()
        self.stats.huge_allocs += 1
        return block * FRAMES_PER_BLOCK

    def free_frame(self, frame: int) -> None:
        """Return one 4 KB frame to the (scattered) free pool."""
        if not 0 <= frame < self.num_frames:
            raise ValueError(f"frame {frame} out of range")
        self.stats.frees += 1
        self._free_frames.append(frame)

    def free_block(self, first_frame: int) -> None:
        """Return a whole 2 MB block (from a reclaimed huge page)."""
        if first_frame % FRAMES_PER_BLOCK != 0:
            raise ValueError(
                f"frame {first_frame} is not 2 MB block-aligned")
        if not 0 <= first_frame < self.num_frames:
            raise ValueError(f"frame {first_frame} out of range")
        self.stats.frees += 1
        self._free_blocks.append(first_frame // FRAMES_PER_BLOCK)

    def compact(self) -> int:
        """Run a compaction pass; return whole blocks recovered.

        Coalesces ``compaction_efficiency`` of the scattered free frames
        into whole blocks.  The *cycle* cost of doing so is charged by
        the OS model, not here.
        """
        self.stats.compactions += 1
        reclaimable = int(self.movable_scattered_frames
                          * self.compaction_efficiency)
        blocks = reclaimable // FRAMES_PER_BLOCK
        if blocks == 0:
            return 0
        # Drain scattered pools to represent the coalesced memory.
        drained = 0
        while self._free_frames and drained < blocks * FRAMES_PER_BLOCK:
            self._free_frames.popleft()
            drained += 1
        for site in list(self._partials):
            if drained >= blocks * FRAMES_PER_BLOCK:
                break
            partial = self._partials[site]
            if self._is_fragmented(partial):
                continue  # pinned by unmovable boot allocations
            room = FRAMES_PER_BLOCK - partial.next_offset
            take = min(room, blocks * FRAMES_PER_BLOCK - drained)
            partial.next_offset += take
            drained += take
        # The recovered blocks come from imaginary coalesced regions at
        # block granularity; hand back synthetic block numbers from the
        # tail of physical memory that were previously fragmented.
        base = self.num_blocks - blocks
        for i in range(blocks):
            self._free_blocks.append(base + i)
        self.stats.blocks_recovered += blocks
        return blocks

    def frame_paddr(self, frame: int) -> int:
        """Physical byte address of frame ``frame``."""
        return frame * PAGE_SIZE
