"""Elastic cuckoo hash page table (ECH baseline, Skarlatos et al.).

The state-of-the-art hash-based page table the paper compares against
(mechanism (2) in Section VI).  Translations live in ``d`` ways, each a
flat array of 16-byte entries in physical memory; a lookup probes one
slot in every way *in parallel*, so walk latency is the max — not the
sum — of the probe latencies.  The cost is probe traffic: every walk
moves ``d`` cache lines, which is exactly the bandwidth pressure that
erodes ECH's advantage in the 8-core experiments (Fig. 14).

Elasticity: when the load factor crosses a threshold the table grows by
a configurable multiple and entries are rehashed.  The simulator charges
the OS-visible cost of rehashing at fault time (see
:mod:`repro.vm.os_model`), while this module keeps the functional
mechanics — displacement chains, bounded kicks, resize — faithful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.vm.address import PAGE_SHIFT, PAGE_SIZE
from repro.vm.base import MappingError, PageTable, Translation, WalkStage
from repro.vm.frames import FrameAllocator
from repro.vm.radix import PT_ALLOC_SITE

ECH_ENTRY_BYTES = 16  # VPN tag + PTE, as in the ECH paper


def _splitmix64(value: int) -> int:
    """Deterministic 64-bit mixer used as the per-way hash function."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


@dataclass(slots=True)
class CuckooStats:
    """Behavioural counters for the hash table."""

    inserts: int = 0
    kicks: int = 0
    resizes: int = 0
    rehashed_entries: int = 0


class _Way:
    """One hash way: a contiguous array of entries in physical memory."""

    __slots__ = ("salt", "size", "base_paddr", "slots")

    def __init__(self, salt: int, size: int, base_paddr: int):
        self.salt = salt
        self.size = size
        self.base_paddr = base_paddr
        # slot index -> (vpn, Translation)
        self.slots: Dict[int, tuple] = {}

    def index_of(self, page: int) -> int:
        return _splitmix64(page ^ self.salt) % self.size

    def slot_paddr(self, index: int) -> int:
        return self.base_paddr + index * ECH_ENTRY_BYTES


class ElasticCuckooPageTable(PageTable):
    """d-ary elastic cuckoo hash table over 4 KB mappings.

    Args:
        allocator: physical memory source for the way arrays.
        ways: number of hash ways (d); ECH uses 3.
        initial_entries: starting slots per way.
        resize_threshold: grow when occupied/capacity exceeds this.
        growth_factor: multiplicative resize step (k in the ECH paper).
        max_kicks: displacement-chain bound before forcing a resize.
        seed: RNG seed for way salts and kick choices.
    """

    level_names = ()

    def __init__(self, allocator: FrameAllocator, ways: int = 2,
                 initial_entries: int = 1 << 14,
                 resize_threshold: float = 0.8,
                 growth_factor: float = 2.0,
                 max_kicks: int = 32,
                 seed: int = 0x5EED):
        if ways < 2:
            raise ValueError("cuckoo hashing needs at least 2 ways")
        self._allocator = allocator
        self._rng = random.Random(seed)
        self._ways_count = ways
        self._resize_threshold = resize_threshold
        self._growth_factor = growth_factor
        self._max_kicks = max_kicks
        self.stats = CuckooStats()
        self._table_bytes = 0
        self._ways: List[_Way] = [
            self._new_way(initial_entries) for _ in range(ways)
        ]
        self._mapped_pages = 0

    def _new_way(self, size: int) -> _Way:
        num_bytes = size * ECH_ENTRY_BYTES
        num_frames = -(-num_bytes // PAGE_SIZE)
        first = self._allocator.alloc_frame(site=PT_ALLOC_SITE)
        for _ in range(num_frames - 1):
            self._allocator.alloc_frame(site=PT_ALLOC_SITE)
        self._table_bytes += num_frames * PAGE_SIZE
        return _Way(self._rng.getrandbits(64), size,
                    self._allocator.frame_paddr(first))

    # -- functional operations ------------------------------------------------

    @property
    def load_factor(self) -> float:
        occupied = sum(len(w.slots) for w in self._ways)
        capacity = sum(w.size for w in self._ways)
        return occupied / capacity if capacity else 0.0

    def lookup(self, page: int) -> Optional[Translation]:
        for way in self._ways:
            entry = way.slots.get(way.index_of(page))
            if entry is not None and entry[0] == page:
                return entry[1]
        return None

    def map_page(self, page: int, pfn: int,
                 page_shift: int = PAGE_SHIFT) -> None:
        if page_shift != PAGE_SHIFT:
            raise MappingError(
                "this ECH instance holds the 4 KB table; huge pages would"
                " live in a separate table per the ECH design"
            )
        if self.lookup(page) is not None:
            raise MappingError(f"page {page:#x} already mapped")
        self.stats.inserts += 1
        self._insert(page, Translation(pfn, PAGE_SHIFT))
        self._mapped_pages += 1
        self.structure_version += 1
        if self.load_factor > self._resize_threshold:
            self._resize()

    def _insert(self, page: int, translation: Translation) -> None:
        item = (page, translation)
        for _ in range(self._max_kicks):
            for way in self._ways:
                index = way.index_of(item[0])
                if index not in way.slots:
                    way.slots[index] = item
                    return
            # All candidate slots occupied: displace a random way's entry.
            way = self._ways[self._rng.randrange(self._ways_count)]
            index = way.index_of(item[0])
            item, way.slots[index] = way.slots[index], item
            self.stats.kicks += 1
        # Displacement chain too long -> grow and retry with the orphan.
        self._resize()
        self._insert(item[0], item[1])

    def _resize(self) -> None:
        self.stats.resizes += 1
        self.structure_version += 1
        entries = [
            entry for way in self._ways for entry in way.slots.values()
        ]
        self.stats.rehashed_entries += len(entries)
        new_size = int(self._ways[0].size * self._growth_factor)
        self._ways = [
            self._new_way(new_size) for _ in range(self._ways_count)
        ]
        for page, translation in entries:
            self._insert(page, translation)

    def unmap_page(self, page: int) -> None:
        for way in self._ways:
            index = way.index_of(page)
            entry = way.slots.get(index)
            if entry is not None and entry[0] == page:
                del way.slots[index]
                self._mapped_pages -= 1
                self.structure_version += 1
                return
        raise MappingError(f"page {page:#x} not mapped")

    # -- walker-facing structure ----------------------------------------------

    def walk_stages(self, page: int) -> List[List[WalkStage]]:
        """One stage of ``d`` parallel probes (nests disabled)."""
        if self.lookup(page) is None:
            raise MappingError(f"walk of unmapped page {page:#x}")
        probes = [
            WalkStage(f"ECH-way{i}",
                      way.slot_paddr(way.index_of(page)), None)
            for i, way in enumerate(self._ways)
        ]
        return [probes]

    def walk_info(self, page: int):
        """Specialized :meth:`PageTable.walk_info`: the way probes also
        resolve the translation, so one pass yields both."""
        translation = None
        probes = []
        for i, way in enumerate(self._ways):
            index = _splitmix64(page ^ way.salt) % way.size
            probes.append((f"ECH-way{i}",
                           way.base_paddr + index * ECH_ENTRY_BYTES,
                           None))
            entry = way.slots.get(index)
            if entry is not None and entry[0] == page:
                translation = entry[1]
        if translation is None:
            return None
        return (tuple(probes),), translation

    def occupancy(self) -> Dict[str, float]:
        return {
            f"ECH-way{i}": len(way.slots) / way.size
            for i, way in enumerate(self._ways)
        }

    def table_bytes(self) -> int:
        return self._table_bytes

    @property
    def mapped_pages(self) -> int:
        return self._mapped_pages
