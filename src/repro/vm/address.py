"""x86-64 address manipulation helpers.

All page-table designs in this package share the x86-64 virtual address
layout (Fig. 2 of the paper): a 48-bit canonical virtual address whose
upper 36 bits are split into four 9-bit radix indices (PL4..PL1) above a
12-bit page offset.  The flattened L2/L1 table of NDPage (Fig. 9) instead
consumes the bottom two indices as one 18-bit index.

Everything here is a plain function on integers; these run on the
simulator's hot path, so no classes are introduced.
"""

from __future__ import annotations

# Base page geometry -------------------------------------------------------
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT            # 4 KB
HUGE_PAGE_SHIFT = 21
HUGE_PAGE_SIZE = 1 << HUGE_PAGE_SHIFT  # 2 MB

# Cache geometry (Table I: 64 B lines everywhere) ---------------------------
LINE_SHIFT = 6
LINE_SIZE = 1 << LINE_SHIFT

# Radix page-table geometry -------------------------------------------------
LEVEL_BITS = 9
ENTRIES_PER_NODE = 1 << LEVEL_BITS     # 512 entries per 4 KB node
PTE_SIZE = 8                           # 64-bit entries
VA_BITS = 48
NUM_LEVELS = 4

# Flattened L2/L1 geometry (NDPage, Section V-B) ----------------------------
FLAT_LEVEL_BITS = 2 * LEVEL_BITS       # 18 bits
FLAT_ENTRIES = 1 << FLAT_LEVEL_BITS    # 262,144 entries
FLAT_NODE_BYTES = FLAT_ENTRIES * PTE_SIZE  # one 2 MB node

_LEVEL_MASK = ENTRIES_PER_NODE - 1
_FLAT_MASK = FLAT_ENTRIES - 1
VA_MASK = (1 << VA_BITS) - 1

# ASID tagging (multi-process) -----------------------------------------------
# VPNs occupy VA_BITS - PAGE_SHIFT = 36 bits, so an address-space id
# packed at bit 40 (a few bits of headroom) turns a (asid, vpn) pair
# into a single int that drops into the existing TLB/PWC integer keys.
# ASID 0 tags to 0, keeping single-address-space keys — and the
# allocation-free fast path built on them — bit-identical.
ASID_SHIFT = VA_BITS - PAGE_SHIFT + 4   # 40
ASID_KEY_MASK = (1 << ASID_SHIFT) - 1   # strips the tag back off


def asid_tag(asid: int) -> int:
    """Key-space tag for address space ``asid`` (0 stays 0)."""
    if asid < 0:
        raise ValueError("asid must be non-negative")
    return asid << ASID_SHIFT


# NUMA node tagging (physical side) -----------------------------------------
# Frame numbers stay below 2**28 for any per-node pool up to 1 TiB, so a
# node id packed at frame bit 28 (physical-address bit 40) turns a
# (node, frame) pair into a single int that flows through the existing
# page tables, caches and DRAM decode unchanged — the physical mirror of
# the ASID trick on the virtual side.  Node 0 tags to 0, keeping every
# single-node frame number and physical address bit-identical.
NODE_FRAME_SHIFT = 28
NODE_PADDR_SHIFT = NODE_FRAME_SHIFT + PAGE_SHIFT  # 40
NODE_FRAME_MASK = (1 << NODE_FRAME_SHIFT) - 1     # strips the node tag
NODE_PADDR_MASK = (1 << NODE_PADDR_SHIFT) - 1


def node_frame_tag(node: int) -> int:
    """Frame-number tag for NUMA node ``node`` (0 stays 0)."""
    if node < 0:
        raise ValueError("node must be non-negative")
    return node << NODE_FRAME_SHIFT


def node_of_frame(frame: int) -> int:
    """NUMA node encoded in a tagged frame number."""
    return frame >> NODE_FRAME_SHIFT


def node_of_paddr(paddr: int) -> int:
    """NUMA node encoded in a tagged physical address."""
    return paddr >> NODE_PADDR_SHIFT


def page_offset(vaddr: int) -> int:
    """Offset of ``vaddr`` within its 4 KB page."""
    return vaddr & (PAGE_SIZE - 1)


def vpn(vaddr: int) -> int:
    """Virtual page number (4 KB granularity) of ``vaddr``."""
    return (vaddr & VA_MASK) >> PAGE_SHIFT


def huge_vpn(vaddr: int) -> int:
    """Virtual page number at 2 MB granularity."""
    return (vaddr & VA_MASK) >> HUGE_PAGE_SHIFT


def vpn_to_vaddr(page: int) -> int:
    """First virtual address covered by 4 KB-granularity VPN ``page``."""
    return page << PAGE_SHIFT


def level_index(page: int, level: int) -> int:
    """Radix index used at page-table ``level`` (4 = root .. 1 = leaf).

    ``page`` is a 4 KB-granularity VPN.  Matches the hardware split of the
    36 translated bits into four 9-bit groups.
    """
    if not 1 <= level <= NUM_LEVELS:
        raise ValueError(f"radix level must be 1..4, got {level}")
    return (page >> (LEVEL_BITS * (level - 1))) & _LEVEL_MASK


def flat_index(page: int) -> int:
    """18-bit index into a flattened L2/L1 node (NDPage)."""
    return page & _FLAT_MASK


def flat_tag(page: int) -> int:
    """Upper VPN bits selecting *which* flattened node covers ``page``."""
    return page >> FLAT_LEVEL_BITS


def make_vpn(i4: int, i3: int, i2: int, i1: int) -> int:
    """Compose a VPN from its four radix indices (inverse of level_index)."""
    for name, idx in (("i4", i4), ("i3", i3), ("i2", i2), ("i1", i1)):
        if not 0 <= idx < ENTRIES_PER_NODE:
            raise ValueError(f"{name} out of range: {idx}")
    return (((i4 << LEVEL_BITS | i3) << LEVEL_BITS | i2) << LEVEL_BITS) | i1


def line_of(paddr: int) -> int:
    """Cache-line number of physical address ``paddr``."""
    return paddr >> LINE_SHIFT


def align_down(addr: int, alignment: int) -> int:
    """Round ``addr`` down to a multiple of ``alignment`` (a power of two)."""
    return addr & ~(alignment - 1)


def align_up(addr: int, alignment: int) -> int:
    """Round ``addr`` up to a multiple of ``alignment`` (a power of two)."""
    return (addr + alignment - 1) & ~(alignment - 1)


def is_canonical(vaddr: int) -> bool:
    """True when ``vaddr`` fits the simulated 48-bit user address space."""
    return 0 <= vaddr < (1 << VA_BITS)


def pages_in_range(base: int, length: int) -> range:
    """VPNs of every 4 KB page overlapping ``[base, base + length)``."""
    if length <= 0:
        return range(0)
    first = vpn(base)
    last = vpn(base + length - 1)
    return range(first, last + 1)
