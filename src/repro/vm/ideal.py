"""Ideal translation (mechanism (4) in Section VI).

Every translation request hits a zero-latency L1 TLB: no page-table
memory traffic exists at all.  This bounds what any translation
mechanism could achieve and anchors the top of Figs. 12-14.

Functionally a dict; ``walk_stages`` is empty so the walker issues no
memory requests, and the MMU charges zero lookup latency when it is
configured with the IDEAL mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.vm.address import PAGE_SHIFT
from repro.vm.base import MappingError, PageTable, Translation, WalkStage


class IdealPageTable(PageTable):
    """Perfect translation oracle with no physical footprint.

    Accepts (and ignores) an allocator so it is constructible through
    the same mechanism-spec factory as the real tables.
    """

    level_names = ()

    def __init__(self, allocator=None):
        del allocator  # no physical structures exist
        self._mappings: Dict[int, Translation] = {}

    def lookup(self, page: int) -> Optional[Translation]:
        return self._mappings.get(page)

    def map_page(self, page: int, pfn: int,
                 page_shift: int = PAGE_SHIFT) -> None:
        if page_shift != PAGE_SHIFT:
            raise MappingError("ideal table tracks 4 KB mappings only")
        if page in self._mappings:
            raise MappingError(f"page {page:#x} already mapped")
        self._mappings[page] = Translation(pfn, PAGE_SHIFT)
        self.structure_version += 1

    def unmap_page(self, page: int) -> None:
        if page not in self._mappings:
            raise MappingError(f"page {page:#x} not mapped")
        del self._mappings[page]
        self.structure_version += 1

    def walk_stages(self, page: int) -> List[List[WalkStage]]:
        if page not in self._mappings:
            raise MappingError(f"walk of unmapped page {page:#x}")
        return []

    def occupancy(self) -> Dict[str, float]:
        return {}

    def table_bytes(self) -> int:
        return 0

    @property
    def mapped_pages(self) -> int:
        return len(self._mappings)
