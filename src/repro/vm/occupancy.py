"""Page-table occupancy analysis (Fig. 8, key observation 2).

Two equivalent views are provided:

* :func:`table_occupancy` inspects a live :class:`~repro.vm.base.PageTable`.
* :func:`occupancy_report` computes the same ratios *analytically* from
  the set of mapped VPN ranges, without building any table.  This lets
  the Fig. 8 benchmark evaluate occupancy at the paper's full dataset
  scale (8-33 GB of mappings) in milliseconds; the equivalence of the
  two views on small layouts is asserted by property-based tests.

Occupancy at level L is defined as the paper uses it: the fraction of
entries in use across the *allocated* nodes of that level (an
unallocated subtree consumes no entries and no space).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.vm.address import ENTRIES_PER_NODE, FLAT_ENTRIES, LEVEL_BITS
from repro.vm.base import PageTable

PageRange = Tuple[int, int]  # (first_vpn, last_vpn), inclusive


def normalize_ranges(ranges: Iterable[PageRange]) -> List[PageRange]:
    """Sort and merge overlapping/adjacent VPN ranges."""
    ordered = sorted((lo, hi) for lo, hi in ranges)
    merged: List[PageRange] = []
    for lo, hi in ordered:
        if lo > hi:
            raise ValueError(f"inverted range ({lo}, {hi})")
        if merged and lo <= merged[-1][1] + 1:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def _count_units(merged: List[PageRange], unit: int) -> int:
    """Distinct ``unit``-sized aligned groups touched by the ranges.

    Ranges must be normalized.  Disjoint page ranges can still share a
    group, so group intervals are re-merged before counting.
    """
    total = 0
    current_lo = current_hi = None
    for lo, hi in merged:
        glo, ghi = lo // unit, hi // unit
        if current_hi is not None and glo <= current_hi:
            current_hi = max(current_hi, ghi)
        else:
            if current_hi is not None:
                total += current_hi - current_lo + 1
            current_lo, current_hi = glo, ghi
    if current_hi is not None:
        total += current_hi - current_lo + 1
    return total


def level_occupancy_from_ranges(ranges: Iterable[PageRange],
                                level: int) -> float:
    """Occupancy of radix level ``level`` (1..4) for mapped ``ranges``."""
    if not 1 <= level <= 4:
        raise ValueError(f"level must be 1..4, got {level}")
    merged = normalize_ranges(ranges)
    if not merged:
        return 0.0
    entry_span = ENTRIES_PER_NODE ** (level - 1)
    node_span = ENTRIES_PER_NODE ** level
    entries = _count_units(merged, entry_span)
    nodes = _count_units(merged, node_span)
    return entries / (nodes * ENTRIES_PER_NODE)


def flattened_occupancy_from_ranges(ranges: Iterable[PageRange]) -> float:
    """Occupancy a flattened PL2/1 node set would show for ``ranges``."""
    merged = normalize_ranges(ranges)
    if not merged:
        return 0.0
    entries = _count_units(merged, 1)
    nodes = _count_units(merged, 1 << (2 * LEVEL_BITS))
    return entries / (nodes * FLAT_ENTRIES)


def occupancy_report(ranges: Iterable[PageRange]) -> Dict[str, float]:
    """Fig. 8 row for one workload: PL1..PL4 plus combined PL2/1."""
    merged = normalize_ranges(ranges)
    report = {
        f"PL{level}": level_occupancy_from_ranges(merged, level)
        for level in (1, 2, 3, 4)
    }
    report["PL2/1"] = flattened_occupancy_from_ranges(merged)
    return report


def table_occupancy(table: PageTable) -> Dict[str, float]:
    """Occupancy as reported by a live page table instance."""
    return table.occupancy()
