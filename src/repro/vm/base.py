"""Abstract page-table interface shared by every translation mechanism.

A page table in this simulator answers three questions:

1. *Functional*: what physical frame backs this VPN (``lookup``)?
2. *Structural*: which physical PTE addresses would a hardware walker
   touch, in what order (``walk_stages``)?  Stages are a list of groups;
   groups are sequential (radix levels), the accesses *within* a group
   happen in parallel (elastic-cuckoo ways).
3. *Spatial*: how full is each level (``occupancy``), the paper's
   Fig. 8 evidence for flattening.

The walker (:mod:`repro.mmu.walker`) turns stages into timed memory
requests; page tables themselves are timing-free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.vm.address import PAGE_SHIFT


class Translation(NamedTuple):
    """Result of a successful lookup."""

    pfn: int         # physical frame number at ``page_shift`` granularity
    page_shift: int  # 12 for 4 KB mappings, 21 for 2 MB mappings

    def paddr(self, vaddr: int) -> int:
        """Physical address of ``vaddr`` under this translation."""
        offset = vaddr & ((1 << self.page_shift) - 1)
        return (self.pfn << self.page_shift) | offset


class WalkStage(NamedTuple):
    """One PTE access a hardware walker would perform."""

    level: str                       # 'PL4', 'PL3', 'PL2', 'PL1',
    #                                  'PL2/1' (flattened), 'ECH-wayN'
    pte_paddr: int                   # physical address of the PTE
    pwc_key: Optional[Tuple[str, int]]  # page-walk-cache tag, or None


class MappingError(Exception):
    """Raised on invalid map/unmap operations."""


class PageTable(ABC):
    """Interface implemented by radix, flattened, cuckoo and ideal tables."""

    #: Ordered level labels, root first (empty for hash-based tables).
    level_names: Tuple[str, ...] = ()

    #: Monotonic counter every implementation bumps on any structural
    #: change (map/unmap/resize).  Lets walkers memoize ``walk_stages``
    #: results — the stages for a page are a pure function of the table
    #: structure — and invalidate the memo when the structure moves.
    structure_version: int = 0

    @abstractmethod
    def lookup(self, page: int) -> Optional[Translation]:
        """Translate 4 KB-granularity VPN ``page``; None if unmapped."""

    @abstractmethod
    def map_page(self, page: int, pfn: int,
                 page_shift: int = PAGE_SHIFT) -> None:
        """Install a mapping.  ``page`` is always a 4 KB-granularity VPN;
        a 2 MB mapping covers the whole aligned group containing it."""

    @abstractmethod
    def unmap_page(self, page: int) -> None:
        """Remove a mapping (raises MappingError if absent)."""

    @abstractmethod
    def walk_stages(self, page: int) -> List[List[WalkStage]]:
        """PTE accesses for a walk of ``page``.

        Requires the page to be mapped (the MMU resolves faults before
        walking).  Outer list = sequential stages; inner list = parallel
        accesses within the stage.
        """

    def walk_plan(self, page: int) -> Tuple[Tuple[Tuple[str, int,
                                                        Optional[int]],
                                                  ...], ...]:
        """Allocation-lean equivalent of :meth:`walk_stages`.

        Returns a tuple of sequential stages, each a tuple of parallel
        ``(level, pte_paddr, pwc_prefix_or_None)`` triples, where
        ``pwc_prefix`` is the integer half of ``WalkStage.pwc_key``
        (each page-table level has its own walk cache, so the level
        string in the key is redundant).  The default derives the plan
        from :meth:`walk_stages`; hot tables override it to skip the
        ``WalkStage`` construction entirely.
        """
        return tuple(
            tuple((step.level, step.pte_paddr,
                   step.pwc_key[-1] if step.pwc_key is not None else None)
                  for step in stage)
            for stage in self.walk_stages(page))

    def walk_info(self, page: int):
        """``(walk_plan, translation)`` in one descent, or None.

        A walker needs both the PTE access plan and the resulting
        translation of a walk; resolving them separately costs two
        table descents.  Returns None when the page is unmapped (the
        caller faults and retries).  The default composes
        :meth:`lookup` and :meth:`walk_plan`; hot tables override it to
        share a single descent.
        """
        translation = self.lookup(page)
        if translation is None:
            return None
        return self.walk_plan(page), translation

    def walk_info_decorated(self, page: int, level_info: dict, resolve):
        """:meth:`walk_info` with the walker's per-level treatment baked
        into each step.

        ``level_info`` maps a level name to ``(bypass_flag,
        pwc_probe_or_None)`` and ``resolve(level)`` computes-and-caches
        a missing entry.  Returns ``(flat, staged, translation)``:

        * when every stage is a single step (radix-family tables) the
          plan is *flat*: ``flat`` is a tuple of ``(pte_paddr,
          bypass_flag, pwc_probe, pwc_prefix, level)`` steps — one per
          sequential stage — and ``staged`` is None;
        * otherwise (parallel probes, e.g. cuckoo ways) ``flat`` is
          None and ``staged`` is a tuple of stages, each a tuple of
          such steps.

        Everything a walker needs per step is resolved once per
        (page, table version) instead of per walk.  None when the page
        is unmapped.
        """
        info = self.walk_info(page)
        if info is None:
            return None
        raw, translation = info
        staged = []
        flat = True
        for stage in raw:
            steps = []
            for level, pte_paddr, key in stage:
                deco = level_info.get(level)
                if deco is None:
                    deco = resolve(level)
                steps.append((pte_paddr, deco[0], deco[1], key, level))
            if len(steps) != 1:
                flat = False
            staged.append(tuple(steps))
        if flat:
            return tuple(stage[0] for stage in staged), None, translation
        return None, tuple(staged), translation

    @abstractmethod
    def occupancy(self) -> Dict[str, float]:
        """Mean fraction of used entries per allocated node, per level."""

    @abstractmethod
    def table_bytes(self) -> int:
        """Physical memory consumed by the table structures themselves."""

    @property
    def mapped_pages(self) -> int:
        """Number of 4 KB-granularity mappings installed (override where
        cheaper bookkeeping exists)."""
        raise NotImplementedError
