"""Abstract page-table interface shared by every translation mechanism.

A page table in this simulator answers three questions:

1. *Functional*: what physical frame backs this VPN (``lookup``)?
2. *Structural*: which physical PTE addresses would a hardware walker
   touch, in what order (``walk_stages``)?  Stages are a list of groups;
   groups are sequential (radix levels), the accesses *within* a group
   happen in parallel (elastic-cuckoo ways).
3. *Spatial*: how full is each level (``occupancy``), the paper's
   Fig. 8 evidence for flattening.

The walker (:mod:`repro.mmu.walker`) turns stages into timed memory
requests; page tables themselves are timing-free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.vm.address import PAGE_SHIFT


class Translation(NamedTuple):
    """Result of a successful lookup."""

    pfn: int         # physical frame number at ``page_shift`` granularity
    page_shift: int  # 12 for 4 KB mappings, 21 for 2 MB mappings

    def paddr(self, vaddr: int) -> int:
        """Physical address of ``vaddr`` under this translation."""
        offset = vaddr & ((1 << self.page_shift) - 1)
        return (self.pfn << self.page_shift) | offset


class WalkStage(NamedTuple):
    """One PTE access a hardware walker would perform."""

    level: str                       # 'PL4', 'PL3', 'PL2', 'PL1',
    #                                  'PL2/1' (flattened), 'ECH-wayN'
    pte_paddr: int                   # physical address of the PTE
    pwc_key: Optional[Tuple[str, int]]  # page-walk-cache tag, or None


class MappingError(Exception):
    """Raised on invalid map/unmap operations."""


class PageTable(ABC):
    """Interface implemented by radix, flattened, cuckoo and ideal tables."""

    #: Ordered level labels, root first (empty for hash-based tables).
    level_names: Tuple[str, ...] = ()

    @abstractmethod
    def lookup(self, page: int) -> Optional[Translation]:
        """Translate 4 KB-granularity VPN ``page``; None if unmapped."""

    @abstractmethod
    def map_page(self, page: int, pfn: int,
                 page_shift: int = PAGE_SHIFT) -> None:
        """Install a mapping.  ``page`` is always a 4 KB-granularity VPN;
        a 2 MB mapping covers the whole aligned group containing it."""

    @abstractmethod
    def unmap_page(self, page: int) -> None:
        """Remove a mapping (raises MappingError if absent)."""

    @abstractmethod
    def walk_stages(self, page: int) -> List[List[WalkStage]]:
        """PTE accesses for a walk of ``page``.

        Requires the page to be mapped (the MMU resolves faults before
        walking).  Outer list = sequential stages; inner list = parallel
        accesses within the stage.
        """

    @abstractmethod
    def occupancy(self) -> Dict[str, float]:
        """Mean fraction of used entries per allocated node, per level."""

    @abstractmethod
    def table_bytes(self) -> int:
        """Physical memory consumed by the table structures themselves."""

    @property
    def mapped_pages(self) -> int:
        """Number of 4 KB-granularity mappings installed (override where
        cheaper bookkeeping exists)."""
        raise NotImplementedError
