"""Four-level x86-64 radix page table (the paper's *Radix* baseline).

Supports mixed page sizes: 4 KB leaves at PL1 and 2 MB leaves at PL2,
which is how the *Huge Page* mechanism (transparent huge pages) is
expressed — same tree, shorter walks for 2 MB-mapped regions.

Page-table nodes are real physical pages drawn from the
:class:`~repro.vm.frames.FrameAllocator`, so PTE physical addresses are
honest: they land in DRAM banks and cache sets exactly like the paper's
"metadata" traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.vm.address import (
    ENTRIES_PER_NODE,
    LEVEL_BITS,
    PAGE_SHIFT,
    HUGE_PAGE_SHIFT,
    PAGE_SIZE,
    PTE_SIZE,
    level_index,
)
from repro.vm.base import (
    MappingError,
    PageTable,
    Translation,
    WalkStage,
)
from repro.vm.frames import FrameAllocator

#: Allocation site used for page-table pages, distinct from any core.
PT_ALLOC_SITE = 1 << 20

_LEVEL_NAMES = {4: "PL4", 3: "PL3", 2: "PL2", 1: "PL1"}


class _Node:
    """One 4 KB page-table page."""

    __slots__ = ("level", "base_paddr", "entries")

    def __init__(self, level: int, base_paddr: int):
        self.level = level
        self.base_paddr = base_paddr
        # index -> child _Node (interior) or Translation (leaf)
        self.entries: Dict[int, object] = {}

    def pte_paddr(self, index: int) -> int:
        return self.base_paddr + index * PTE_SIZE


def _pwc_key(level: int, page: int):
    """Tag identifying the translation prefix cached at ``level``."""
    return (_LEVEL_NAMES[level], page >> (LEVEL_BITS * (level - 1)))


class RadixPageTable(PageTable):
    """Mixed 4 KB / 2 MB four-level radix tree."""

    level_names = ("PL4", "PL3", "PL2", "PL1")

    def __init__(self, allocator: FrameAllocator):
        self._allocator = allocator
        self._nodes_by_level: Dict[int, List[_Node]] = {
            4: [], 3: [], 2: [], 1: []}
        self._root = self._new_node(4)
        self._mapped_pages = 0
        self.huge_mappings = 0

    # -- construction helpers -------------------------------------------------

    def _new_node(self, level: int) -> _Node:
        frame = self._allocator.alloc_frame(site=PT_ALLOC_SITE)
        node = _Node(level, self._allocator.frame_paddr(frame))
        self._nodes_by_level[level].append(node)
        return node

    def _child(self, node: _Node, index: int, create: bool) -> Optional[_Node]:
        child = node.entries.get(index)
        if child is None and create:
            child = self._new_node(node.level - 1)
            node.entries[index] = child
        if isinstance(child, Translation):
            return None
        return child

    # -- PageTable interface --------------------------------------------------

    def lookup(self, page: int) -> Optional[Translation]:
        # Unrolled descent with the level_index shifts inlined: this
        # runs on every TLB miss (fault check + walk refill), so the
        # loop/call overhead is worth trimming.
        mask = ENTRIES_PER_NODE - 1
        node = self._root
        for shift in (3 * LEVEL_BITS, 2 * LEVEL_BITS, LEVEL_BITS):
            entry = node.entries.get((page >> shift) & mask)
            if entry is None:
                return None
            if type(entry) is Translation:  # 2 MB leaf at PL2
                return entry
            node = entry
        leaf = node.entries.get(page & mask)
        return leaf if type(leaf) is Translation else None

    def map_page(self, page: int, pfn: int,
                 page_shift: int = PAGE_SHIFT) -> None:
        if page_shift == PAGE_SHIFT:
            self._map_small(page, pfn)
        elif page_shift == HUGE_PAGE_SHIFT:
            self._map_huge(page, pfn)
        else:
            raise MappingError(f"unsupported page_shift {page_shift}")

    def _map_small(self, page: int, pfn: int) -> None:
        # Inlined descent (this runs on every demand-paging fault).
        mask = ENTRIES_PER_NODE - 1
        node = self._root
        for level, shift in ((3, 3 * LEVEL_BITS), (2, 2 * LEVEL_BITS)):
            index = (page >> shift) & mask
            child = node.entries.get(index)
            if child is None:
                child = self._new_node(level)
                node.entries[index] = child
            node = child
        idx2 = (page >> LEVEL_BITS) & mask
        entry = node.entries.get(idx2)
        if type(entry) is Translation:
            raise MappingError(f"page {page:#x} lies inside a 2 MB mapping")
        if entry is None:
            entry = self._new_node(1)
            node.entries[idx2] = entry
        idx1 = page & mask
        if idx1 in entry.entries:
            raise MappingError(f"page {page:#x} already mapped")
        entry.entries[idx1] = Translation(pfn, PAGE_SHIFT)
        self._mapped_pages += 1
        self.structure_version += 1

    def _map_huge(self, page: int, pfn: int) -> None:
        if page % ENTRIES_PER_NODE != 0:
            raise MappingError("2 MB mapping must be 512-page aligned")
        if (pfn << PAGE_SHIFT) % (1 << HUGE_PAGE_SHIFT):
            raise MappingError("2 MB mapping needs a 2 MB-aligned frame")
        node = self._root
        for level in (4, 3):
            node = self._child(node, level_index(page, level), create=True)
        idx2 = level_index(page, 2)
        if idx2 in node.entries:
            raise MappingError(f"PL2 slot for page {page:#x} already in use")
        node.entries[idx2] = Translation(
            pfn >> (HUGE_PAGE_SHIFT - PAGE_SHIFT), HUGE_PAGE_SHIFT)
        self._mapped_pages += ENTRIES_PER_NODE
        self.huge_mappings += 1
        self.structure_version += 1

    def unmap_page(self, page: int) -> None:
        node = self._root
        for level in (4, 3):
            node = self._child(node, level_index(page, level), create=False)
            if node is None:
                raise MappingError(f"page {page:#x} not mapped")
        idx2 = level_index(page, 2)
        entry = node.entries.get(idx2)
        if isinstance(entry, Translation):
            del node.entries[idx2]
            self._mapped_pages -= ENTRIES_PER_NODE
            self.huge_mappings -= 1
            self.structure_version += 1
            return
        if entry is None or level_index(page, 1) not in entry.entries:
            raise MappingError(f"page {page:#x} not mapped")
        del entry.entries[level_index(page, 1)]
        self._mapped_pages -= 1
        self.structure_version += 1

    def walk_stages(self, page: int) -> List[List[WalkStage]]:
        stages: List[List[WalkStage]] = []
        node = self._root
        for level in (4, 3, 2):
            index = level_index(page, level)
            stages.append([WalkStage(
                _LEVEL_NAMES[level], node.pte_paddr(index),
                _pwc_key(level, page))])
            entry = node.entries.get(index)
            if entry is None:
                raise MappingError(f"walk of unmapped page {page:#x}")
            if isinstance(entry, Translation):
                return stages  # 2 MB leaf: 3-stage walk
            node = entry
        index = level_index(page, 1)
        if index not in node.entries:
            raise MappingError(f"walk of unmapped page {page:#x}")
        stages.append([WalkStage(
            "PL1", node.pte_paddr(index), _pwc_key(1, page))])
        return stages

    def walk_plan(self, page: int):
        """Specialized :meth:`PageTable.walk_plan`: same stages as
        :meth:`walk_stages` without building ``WalkStage`` objects —
        walkers compile a plan per walked page, which makes this a warm
        path for low-reuse reference streams."""
        info = self.walk_info(page)
        if info is None:
            raise MappingError(f"walk of unmapped page {page:#x}")
        return info[0]

    def walk_info(self, page: int):
        """Specialized :meth:`PageTable.walk_info`: plan + translation
        from a single tree descent."""
        mask = ENTRIES_PER_NODE - 1
        node = self._root
        index = (page >> (3 * LEVEL_BITS)) & mask
        stage4 = ("PL4", node.base_paddr + index * PTE_SIZE,
                  page >> (3 * LEVEL_BITS))
        node = node.entries.get(index)
        if node is None:
            return None

        index = (page >> (2 * LEVEL_BITS)) & mask
        stage3 = ("PL3", node.base_paddr + index * PTE_SIZE,
                  page >> (2 * LEVEL_BITS))
        node = node.entries.get(index)
        if node is None:
            return None

        index = (page >> LEVEL_BITS) & mask
        stage2 = ("PL2", node.base_paddr + index * PTE_SIZE,
                  page >> LEVEL_BITS)
        entry = node.entries.get(index)
        if entry is None:
            return None
        if type(entry) is Translation:  # 2 MB leaf: 3-stage walk
            return ((stage4,), (stage3,), (stage2,)), entry

        index = page & mask
        leaf = entry.entries.get(index)
        if leaf is None:
            return None
        return (((stage4,), (stage3,), (stage2,),
                 (("PL1", entry.base_paddr + index * PTE_SIZE, page),)),
                leaf)

    def walk_info_decorated(self, page: int, level_info: dict, resolve):
        """Specialized :meth:`PageTable.walk_info_decorated`: one
        descent, flat plan, walker treatment baked in."""
        info4 = level_info.get("PL4")
        if info4 is None:
            info4 = resolve("PL4")
        info3 = level_info.get("PL3")
        if info3 is None:
            info3 = resolve("PL3")
        info2 = level_info.get("PL2")
        if info2 is None:
            info2 = resolve("PL2")

        mask = ENTRIES_PER_NODE - 1
        node = self._root
        index = (page >> (3 * LEVEL_BITS)) & mask
        stage4 = (node.base_paddr + index * PTE_SIZE, info4[0],
                  info4[1], page >> (3 * LEVEL_BITS), "PL4")
        node = node.entries.get(index)
        if node is None:
            return None

        index = (page >> (2 * LEVEL_BITS)) & mask
        stage3 = (node.base_paddr + index * PTE_SIZE, info3[0],
                  info3[1], page >> (2 * LEVEL_BITS), "PL3")
        node = node.entries.get(index)
        if node is None:
            return None

        index = (page >> LEVEL_BITS) & mask
        stage2 = (node.base_paddr + index * PTE_SIZE, info2[0],
                  info2[1], page >> LEVEL_BITS, "PL2")
        entry = node.entries.get(index)
        if entry is None:
            return None
        if type(entry) is Translation:  # 2 MB leaf: 3-stage walk
            return (stage4, stage3, stage2), None, entry

        index = page & mask
        leaf = entry.entries.get(index)
        if leaf is None:
            return None
        info1 = level_info.get("PL1")
        if info1 is None:
            info1 = resolve("PL1")
        return ((stage4, stage3, stage2,
                 (entry.base_paddr + index * PTE_SIZE, info1[0],
                  info1[1], page, "PL1")),
                None, leaf)

    def occupancy(self) -> Dict[str, float]:
        result = {}
        for level, nodes in self._nodes_by_level.items():
            if not nodes:
                continue
            used = sum(len(n.entries) for n in nodes)
            result[_LEVEL_NAMES[level]] = used / (
                len(nodes) * ENTRIES_PER_NODE)
        return result

    def node_count(self, level: int) -> int:
        """Number of allocated page-table pages at radix ``level``."""
        return len(self._nodes_by_level[level])

    def table_bytes(self) -> int:
        return sum(len(v) for v in self._nodes_by_level.values()) * PAGE_SIZE

    @property
    def mapped_pages(self) -> int:
        return self._mapped_pages
