"""Per-cell spans from an event log, exported as Chrome-trace JSON.

Reconstructs each sweep cell's lifecycle — queued → (claimed) →
attempt(s) → cached — from a JSONL event file and renders it in the
Chrome trace-event format (load ``chrome://tracing`` /
https://ui.perfetto.dev and drop the file in), so "why did this cell
spend 40 s queued" is one glance instead of log archaeology.

Lanes (``tid``) are cells, ordered by first dispatch; each attempt is
a complete-span (``ph: "X"``) whose duration is dispatch → outcome,
preceded by a ``queued`` span from when the cell last became ready
(sweep start, or its previous failure) to the dispatch.  Worker claim
events (fileq) nest an ``executing`` span inside the attempt on the
same lane, attributed to the worker.  Cache stores and quarantines
land as instant events.  Timestamps are wall-clock microseconds
relative to the first event, so multi-process logs align.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.obs.events import Event, read_events

#: Synthetic pid for all sweep lanes in the trace.
TRACE_PID = 1


def _microseconds(t_wall: float, origin: float) -> float:
    return round((t_wall - origin) * 1e6, 1)


def build_trace(events: Iterable[Event]) -> Dict[str, object]:
    """Chrome-trace dict (``{"traceEvents": [...]}``) from events.

    Tolerates incomplete lifecycles (a killed sweep leaves dispatched
    cells with no outcome: their attempt spans are simply omitted) and
    unknown event types (forward compatibility).
    """
    events = sorted(events, key=lambda e: (e.t_wall, e.pid, e.seq))
    if not events:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = events[0].t_wall

    lanes: Dict[str, int] = {}          # cell key -> tid
    labels: Dict[str, str] = {}         # cell key -> label
    ready_at: Dict[str, float] = {}     # key -> last became-ready t
    open_attempt: Dict[tuple, float] = {}   # (key, attempt) -> t
    claims: Dict[tuple, tuple] = {}     # (key, attempt) -> (worker, t)
    sweep_start = events[0].t_wall
    trace: List[Dict[str, object]] = []

    def lane(key: str) -> int:
        tid = lanes.get(key)
        if tid is None:
            tid = len(lanes) + 1
            lanes[key] = tid
        return tid

    def span(name: str, key: str, start: float, end: float,
             **args) -> None:
        trace.append({
            "name": name, "cat": "cell", "ph": "X",
            "ts": _microseconds(start, origin),
            "dur": round(max(0.0, end - start) * 1e6, 1),
            "pid": TRACE_PID, "tid": lane(key),
            "args": args,
        })

    def instant(name: str, key: str, at: float, **args) -> None:
        trace.append({
            "name": name, "cat": "cell", "ph": "i", "s": "t",
            "ts": _microseconds(at, origin),
            "pid": TRACE_PID, "tid": lane(key),
            "args": args,
        })

    for event in events:
        kind, data, now = event.type, event.data, event.t_wall
        key = data.get("key")
        if kind == "sweep.started":
            sweep_start = now
        elif kind == "cell.dispatched" and key:
            labels.setdefault(key, str(data.get("label", key[:12])))
            queued_since = ready_at.get(key, sweep_start)
            span("queued", key, queued_since, now,
                 attempt=data.get("attempt"))
            open_attempt[(key, data.get("attempt"))] = now
        elif kind in ("cell.completed", "cell.failed",
                      "cell.timeout") and key:
            attempt = data.get("attempt")
            started = open_attempt.pop((key, attempt), None)
            if started is not None:
                name = ("attempt" if kind == "cell.completed"
                        else f"attempt ({data.get('kind', 'timeout')})")
                span(name, key, started, now, attempt=attempt,
                     status=kind.split(".")[1])
            claim = claims.pop((key, attempt), None)
            if claim is not None:
                worker, claimed_at = claim
                span("executing", key, claimed_at, now,
                     attempt=attempt, worker=worker)
            ready_at[key] = now     # queued again if retried
        elif kind == "worker.claim" and key:
            claims[(key, data.get("attempt"))] = (
                str(data.get("worker")), now)
        elif kind == "cache.store" and key:
            instant("cache.store", key, now)
        elif kind == "cell.quarantined" and key:
            instant("quarantined", key, now,
                    kind=data.get("kind"),
                    attempts=data.get("attempts"))

    # Name the lanes after their cells (metadata events).
    for key, tid in lanes.items():
        trace.append({
            "name": "thread_name", "ph": "M", "pid": TRACE_PID,
            "tid": tid,
            "args": {"name": labels.get(key, key[:16])},
        })
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def export_trace(events_path: Union[str, Path],
                 out_path: Union[str, Path],
                 cell: Optional[str] = None) -> Dict[str, object]:
    """Read a JSONL event log, build the trace, write it to
    ``out_path``; returns the trace dict.  ``cell`` keeps only events
    whose label or key contains the substring (plus sweep events, so
    queue anchoring survives the filter)."""
    events = list(read_events(events_path, strict=False))
    if cell:
        events = [e for e in events
                  if e.type.startswith("sweep.")
                  or cell in str(e.data.get("label", ""))
                  or cell in str(e.data.get("key", ""))]
    trace = build_trace(events)
    Path(out_path).write_text(json.dumps(trace) + "\n")
    return trace
