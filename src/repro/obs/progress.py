"""Live sweep progress driven off the event stream.

:class:`ProgressState` is the pure part: it folds events into
counters (cells done/total, cache hits, retries, quarantines,
per-worker state) and computes the ETA from the observed completion
rate — testable on a synthetic event stream with no terminal
involved.  :class:`ProgressView` wraps it as an event sink that
renders a single self-overwriting status line to a TTY (plain
throttled lines on a non-TTY), which ``--progress`` on ``repro
sweep`` / ``figure`` chains next to the JSONL sink.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional

from repro.obs.events import Event, EventSink


def format_duration(seconds: float) -> str:
    """``90.5 -> '1m30s'``, ``42.3 -> '42s'``, ``7320 -> '2h02m'``."""
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressState:
    """Fold sweep events into a progress summary.

    ``total`` counts *unique* cells; cache-served cells are done the
    moment ``sweep.started`` arrives.  The ETA extrapolates from the
    completion rate of simulated cells only (cache hits are
    effectively instant and would skew the rate).
    """

    def __init__(self):
        self.total = 0
        self.done = 0
        self.cached = 0
        self.completed = 0       # simulated cells finished ok
        self.failed = 0          # quarantined
        self.retries = 0
        self.cache_hits = 0      # cache.hit events (includes preload)
        self.dispatched = 0
        self.started_mono: Optional[float] = None
        self.finished = False
        self.workers: Dict[str, str] = {}   # worker -> state/key

    # -- event folding -----------------------------------------------

    def observe(self, event: Event) -> None:
        kind = event.type
        data = event.data
        if kind == "sweep.started":
            self.total = data.get("unique", 0)
            self.cached = data.get("cached", 0)
            self.done = self.cached
            self.started_mono = event.t_mono
        elif kind == "sweep.finished":
            self.finished = True
        elif kind == "cell.completed":
            self.completed += 1
            self.done += 1
        elif kind == "cell.quarantined":
            self.failed += 1
            self.done += 1
        elif kind == "cell.retried":
            self.retries += 1
        elif kind == "cell.dispatched":
            self.dispatched += 1
        elif kind == "cache.hit":
            self.cache_hits += 1
        elif kind == "worker.spawned":
            self.workers[str(data.get("worker"))] = "idle"
        elif kind == "worker.died":
            self.workers[str(data.get("worker"))] = "dead"
        elif kind == "worker.claim":
            self.workers[str(data.get("worker"))] = str(
                data.get("key", ""))[:12]

    # -- derived -----------------------------------------------------

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done)

    @property
    def cache_hit_rate(self) -> float:
        if not self.total:
            return 0.0
        return min(self.cached / self.total, 1.0)

    def eta_seconds(self, now_mono: float) -> Optional[float]:
        """Remaining wall time extrapolated from the simulated-cell
        completion rate; ``None`` until the first cell completes."""
        if self.started_mono is None or not self.completed:
            return None
        elapsed = now_mono - self.started_mono
        if elapsed <= 0:
            return None
        rate = self.completed / elapsed
        if rate <= 0:
            return None
        return self.remaining / rate

    def render(self, now_mono: Optional[float] = None,
               width: int = 20) -> str:
        """One status line: bar, counts, cache rate, retries, ETA,
        live worker count."""
        if now_mono is None:
            now_mono = time.monotonic()
        if self.total:
            filled = int(width * self.done / self.total)
        else:
            filled = 0
        bar = "#" * filled + "-" * (width - filled)
        parts = [f"[{bar}] {self.done}/{self.total} cells"]
        if self.cached:
            parts.append(f"{self.cached} cached "
                         f"({self.cache_hit_rate:.0%})")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.failed:
            parts.append(f"{self.failed} quarantined")
        eta = self.eta_seconds(now_mono)
        if self.finished:
            parts.append("done")
        elif eta is not None:
            parts.append(f"ETA {format_duration(eta)}")
        live = sum(1 for state in self.workers.values()
                   if state != "dead")
        if self.workers:
            parts.append(f"{live} worker(s)")
        return "  ".join(parts)


class ProgressView(EventSink):
    """Event sink rendering :class:`ProgressState` to a terminal.

    On a TTY the line overwrites itself (``\\r``) at most every
    ``interval`` seconds; on a non-TTY it degrades to occasional plain
    lines (every ``interval``, only when progress moved) so logs stay
    readable.  ``close`` prints the final state and a newline.
    """

    def __init__(self, stream=None, interval: float = 0.1):
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.state = ProgressState()
        self._isatty = bool(getattr(self.stream, "isatty",
                                    lambda: False)())
        self._last_render = 0.0
        self._last_done = -1
        self._dirty = False

    def emit(self, event: Event) -> None:
        self.state.observe(event)
        self._dirty = True
        now = time.monotonic()
        if now - self._last_render < self.interval:
            return
        if not self._isatty and self.state.done == self._last_done:
            return   # non-TTY: only when progress actually moved
        self._render(now)

    def _render(self, now: float) -> None:
        line = self.state.render(now)
        if self._isatty:
            self.stream.write("\r\x1b[2K" + line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
        self._last_render = now
        self._last_done = self.state.done
        self._dirty = False

    def close(self) -> None:
        if self._dirty or self._isatty:
            self._render(time.monotonic())
        if self._isatty:
            self.stream.write("\n")
            self.stream.flush()
