"""Observability: structured events, metrics, progress, and traces.

The telemetry spine over the execution stack.  Everything here is
default-off: with no sink installed, :func:`repro.obs.events.emit` is
one global load and a compare, so fault-free sweeps stay bit-identical
with zero hot-path cost.  Instrumentation lives at supervisor /
backend / cache granularity — never inside ``Core.step_until``.

* :mod:`repro.obs.events` — typed, versioned event records emitted to
  a pluggable sink (JSONL file with atomic appends; null by default).
* :mod:`repro.obs.metrics` — a tiny counter/gauge/histogram registry
  the supervisor updates, snapshotted into ``SweepStats``.
* :mod:`repro.obs.progress` — a live TTY progress view driven off the
  event stream (``--progress`` on ``repro sweep`` / ``figure``).
* :mod:`repro.obs.trace` — per-cell spans exported as Chrome-trace
  JSON (``repro trace``).
"""

from repro.obs.events import (
    SCHEMA_VERSION,
    Event,
    JsonlSink,
    MemorySink,
    MultiSink,
    NullSink,
    emit,
    read_events,
    session,
    set_sink,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressState, ProgressView
from repro.obs.trace import build_trace

__all__ = [
    "SCHEMA_VERSION",
    "Event",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "MultiSink",
    "NullSink",
    "ProgressState",
    "ProgressView",
    "build_trace",
    "emit",
    "read_events",
    "session",
    "set_sink",
]
