"""A tiny counter/gauge/histogram registry for sweep telemetry.

Deliberately minimal — no labels, no exposition server, no background
threads.  The backend-agnostic supervisor creates one
:class:`MetricsRegistry` per sweep, updates it at cell granularity
(dispatches, queue wait, attempt wall, cache-store time), and
snapshots it into ``SweepStats.metrics`` when the sweep finishes, so
the breakdown rides along wherever the stats already go — the CLI
summary line's data source, ``scripts/bench.py``'s sweep block, and
any future service response.

Histograms track count/sum/min/max plus fixed power-of-two duration
buckets (1 ms .. ~65 s), which is enough to answer "where does
wall-clock go: queued, executing, or storing?" without reservoirs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Histogram bucket upper bounds in seconds: 1 ms .. 65.536 s, powers
#: of two, plus a +Inf overflow bucket.  Chosen for durations — cells
#: run milliseconds to minutes.
BUCKET_BOUNDS = tuple(0.001 * (2 ** i) for i in range(17))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """count / sum / min / max / mean plus fixed duration buckets."""

    __slots__ = ("count", "total", "vmin", "vmax", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self.buckets: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        for index, bound in enumerate(BUCKET_BOUNDS):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": round(self.vmin, 6) if self.vmin is not None
            else None,
            "max": round(self.vmax, 6) if self.vmax is not None
            else None,
            "mean": round(self.mean, 6),
        }


class MetricsRegistry:
    """Named metrics, created on first use, snapshotted as one dict.

    >>> registry = MetricsRegistry()
    >>> registry.counter("cells.dispatched").inc()
    >>> registry.histogram("cell.attempt_s").observe(0.25)
    >>> registry.snapshot()["cells.dispatched"]
    1
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, object]:
        """Plain-data (JSON-safe) view of every metric, sorted by
        name: counters/gauges as scalars, histograms as dicts."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}
