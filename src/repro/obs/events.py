"""Typed, versioned telemetry events with pluggable sinks.

Every observable step of a sweep — dispatch, completion, retry,
quarantine, worker birth and death, cache traffic — is an
:class:`Event`: a named record with both a wall-clock and a monotonic
timestamp, a per-process sequence number, and a flat payload dict
whose required fields are declared per event type in
:data:`EVENT_TYPES` (the schema; version :data:`SCHEMA_VERSION`).

Emission is *default-off*: the module-level sink starts as ``None``
and :func:`emit` returns immediately when no sink is installed — one
global load and an ``is None`` test — so instrumented code paths cost
nothing in ordinary runs.  Call sites live at supervisor / backend /
cache granularity (per cell, per worker), never inside the
per-reference simulation loop.

Sinks are tiny: :class:`JsonlSink` appends one JSON object per line
through a single ``os.write`` on an ``O_APPEND`` descriptor, so
concurrent writers (the supervisor and forked local workers sharing
the inherited descriptor, or external workers given the same path on
one host) interleave whole lines, never partial ones.
:class:`MemorySink` collects events for tests and in-process
consumers; :class:`MultiSink` fans one emission out to several sinks
(e.g. a JSONL file plus a live progress view); :class:`NullSink`
swallows everything (useful to force the enabled-path without I/O).

Ordering guarantees: within one process, ``seq`` is strictly
increasing and ``t_mono`` is non-decreasing across emitted events, so
a JSONL file written by a single process is replayable in order;
merged multi-process files sort stably by ``(t_mono, pid, seq)``
(CLOCK_MONOTONIC is machine-wide on Linux).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

#: Version of the event record schema, carried by every event (``v``).
#: Bump when a field is renamed/removed or an event type changes
#: meaning; adding new event types or optional payload fields is
#: backward compatible and keeps the version.
SCHEMA_VERSION = 1

#: The schema: event type -> required payload fields.  Emitting an
#: unknown type, or omitting a required field, raises ``ValueError``
#: (only when a sink is installed — the disabled path never looks).
EVENT_TYPES: Dict[str, tuple] = {
    # sweep lifecycle (the backend-agnostic supervisor)
    "sweep.started": ("cells", "unique", "cached", "missing",
                      "backend", "jobs"),
    "sweep.finished": ("cells", "completed", "failed", "retries",
                       "wall"),
    # per-cell attempt lifecycle
    "cell.dispatched": ("key", "label", "attempt"),
    "cell.completed": ("key", "label", "attempt", "wall"),
    "cell.failed": ("key", "label", "attempt", "kind"),
    "cell.retried": ("key", "label", "attempt", "delay"),
    "cell.timeout": ("key", "label", "attempt"),
    "cell.quarantined": ("key", "label", "attempts", "kind"),
    # sweep interruption (graceful SIGTERM/SIGINT drain)
    "sweep.interrupted": ("completed", "pending", "requeued"),
    # worker lifecycle (pool and fileq backends)
    "worker.spawned": ("worker", "backend"),
    "worker.died": ("worker", "reason"),
    "worker.drained": ("worker", "returned"),
    "worker.heartbeat": ("worker", "executed"),
    "worker.claim": ("worker", "key", "attempt"),
    "worker.executed": ("worker", "key", "attempt", "ok", "wall"),
    "worker.log": ("worker", "message"),
    # result-cache traffic
    "cache.hit": ("key",),
    "cache.store": ("key", "wall"),
    "cache.corrupt": ("key",),
}


@dataclass
class Event:
    """One telemetry record.

    ``t_wall`` is ``time.time()`` (cross-host alignment, trace
    export); ``t_mono`` is ``time.monotonic()`` (durations, ordering);
    ``seq`` is the emitting process's strictly increasing counter and
    ``pid`` scopes it.  ``data`` is the flat per-type payload.
    """

    type: str
    t_wall: float
    t_mono: float
    seq: int
    pid: int
    data: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "v": SCHEMA_VERSION, "type": self.type,
            "t_wall": self.t_wall, "t_mono": self.t_mono,
            "seq": self.seq, "pid": self.pid,
        }
        record.update(self.data)
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Event":
        data = {k: v for k, v in record.items()
                if k not in ("v", "type", "t_wall", "t_mono", "seq",
                             "pid")}
        return cls(type=record["type"],
                   t_wall=record["t_wall"],
                   t_mono=record["t_mono"],
                   seq=record["seq"],
                   pid=record["pid"],
                   data=data)

    @classmethod
    def from_json(cls, line: str) -> "Event":
        return cls.from_dict(json.loads(line))


# -- sinks --------------------------------------------------------------------

class EventSink:
    """Sink protocol: receive events, release resources on close."""

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class NullSink(EventSink):
    """Accept and discard — the enabled-path without I/O."""

    def emit(self, event: Event) -> None:
        pass


class MemorySink(EventSink):
    """Collect events in a list (tests, in-process consumers)."""

    def __init__(self):
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)


class JsonlSink(EventSink):
    """Append events to a JSONL file, one atomic write per event.

    The descriptor is opened ``O_APPEND``, and each event goes out as
    exactly one ``os.write`` of a complete line, so multiple writers
    on the same file — the supervisor and its forked local workers, or
    several processes handed the same path — interleave whole records.

    Telemetry must never take the sweep down with it: a failing write
    (ENOSPC, a yanked filesystem, an injected ``ioerr``) drops that
    event instead of raising.  Drops are counted (``dropped``; summed
    into the sweep's metrics snapshot as ``events.dropped``) and the
    first one prints a single stderr warning.
    """

    def __init__(self, path: Union[str, Path], fault_plan=None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self.dropped = 0
        self._warned = False
        # Injection seam (imported lazily: repro.sim pulls this module
        # in at package import time).  Resolved once here so the
        # per-event path stays two attribute loads when no plan is
        # active.
        self._plan = fault_plan
        self._io_fault = None
        if fault_plan is not None or os.environ.get(
                "REPRO_FAULT_PLAN"):
            from repro.sim.faults import FaultPlan, maybe_io_fault
            if self._plan is None:
                self._plan = FaultPlan.from_env()
            self._io_fault = maybe_io_fault

    def emit(self, event: Event) -> None:
        line = (event.to_json() + "\n").encode("utf-8")
        try:
            if self._io_fault is not None:
                self._io_fault("events", event.type, self._plan)
            os.write(self._fd, line)
        except OSError as exc:
            self.dropped += 1
            if not self._warned:
                self._warned = True
                import sys
                print(f"repro: warning: event sink {self.path}: "
                      f"write failed ({exc}); dropping events "
                      f"(counted, not fatal)", file=sys.stderr)

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None


class MultiSink(EventSink):
    """Fan one emission out to several sinks."""

    def __init__(self, sinks):
        self.sinks = list(sinks)

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# -- the process-wide sink ----------------------------------------------------

_sink: Optional[EventSink] = None
_seq = itertools.count(1)
_lock = threading.Lock()


def get_sink() -> Optional[EventSink]:
    return _sink


def set_sink(sink: Optional[EventSink]) -> Optional[EventSink]:
    """Install ``sink`` as the process-wide sink; returns the previous
    one (``None`` disables emission again)."""
    global _sink
    previous = _sink
    _sink = sink
    return previous


@contextmanager
def session(sink: EventSink):
    """Scope ``sink`` over a block, composing with any already-active
    sink (both receive every event) and closing ``sink`` on exit."""
    previous = get_sink()
    active = (sink if previous is None
              else MultiSink([previous, sink]))
    set_sink(active)
    try:
        yield sink
    finally:
        set_sink(previous)
        sink.close()


def dropped_events(sink: Optional[EventSink] = None) -> int:
    """Events dropped by ``sink`` (default: the installed sink tree).

    Recurses through :class:`MultiSink` compositions and sums the
    ``dropped`` counters of any sink that keeps one (today
    :class:`JsonlSink`); the sweep supervisor folds this into the
    metrics snapshot as the ``events.dropped`` counter.
    """
    if sink is None:
        sink = _sink
    if sink is None:
        return 0
    if isinstance(sink, MultiSink):
        return sum(dropped_events(inner) for inner in sink.sinks)
    return int(getattr(sink, "dropped", 0))


def emit(type_: str, **data) -> Optional[Event]:
    """Emit one event to the installed sink.

    With no sink installed this is a no-op returning ``None`` — the
    default, and the reason instrumented call sites need no guards.
    Payloads are validated against :data:`EVENT_TYPES` only on the
    enabled path.
    """
    sink = _sink
    if sink is None:
        return None
    required = EVENT_TYPES.get(type_)
    if required is None:
        raise ValueError(f"unknown event type {type_!r}")
    missing = [name for name in required if name not in data]
    if missing:
        raise ValueError(
            f"event {type_!r} missing required field(s) "
            f"{', '.join(missing)}")
    with _lock:
        seq = next(_seq)
    event = Event(type=type_, t_wall=time.time(),
                  t_mono=time.monotonic(), seq=seq, pid=os.getpid(),
                  data=data)
    sink.emit(event)
    return event


# -- reading ------------------------------------------------------------------

def read_events(path: Union[str, Path],
                strict: bool = True) -> Iterator[Event]:
    """Parse a JSONL event file back into :class:`Event` records.

    ``strict=True`` (default) raises on a malformed line;
    ``strict=False`` skips them (a file a crashed process was mid-way
    through is still mostly readable — though whole-line appends make
    partial lines rare).
    """
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield Event.from_json(line)
            except (json.JSONDecodeError, KeyError) as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: malformed event line: "
                        f"{exc}") from exc
