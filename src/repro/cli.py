"""Command-line interface: run simulations and paper experiments.

Examples::

    python -m repro run --workload rnd --mechanism ndpage --cores 4
    python -m repro compare --workload bfs --cores 8
    python -m repro figure fig12 --refs 4000
    python -m repro workloads

Sweeps fan independent cells out over a pluggable execution backend
(``--backend serial|pool|fileq``) and memoize finished cells on disk,
so figures parallelize and resume::

    # Fig. 12 on 4 workers, cached — re-running after an interrupt
    # (or with one new mechanism) simulates only the missing cells.
    python -m repro figure fig12 --jobs 4 --cache-dir .sweep-cache

    # Ad-hoc grid: workloads x mechanisms x systems x core counts.
    python -m repro sweep --workloads bfs xs rnd \\
        --mechanisms radix ndpage --cores 1 4 --jobs 4 \\
        --cache-dir .sweep-cache

    # Multi-host: a shared queue directory plus standalone workers
    # (any machine that can see the directory can contribute).
    python -m repro worker --queue .sweep-queue &
    python -m repro figure fig12 --backend fileq --jobs 0 \\
        --queue-dir .sweep-queue --cache-dir .sweep-cache

Observability: every sweep command takes ``--events-out PATH``
(structured JSONL telemetry) and ``--progress`` (live status line);
``repro trace`` turns an event log into a Chrome trace, ``repro
status`` inspects a fileq queue directory, and ``repro cache
verify|gc`` audits the result cache.

Resilience: SIGTERM/SIGINT drain sweeps and workers gracefully
(in-flight work is requeued and the exit is clean); ``--resume``
continues a killed sweep from its journal with retry budgets intact;
``repro queue repair`` fscks a queue directory after unclean deaths.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from pathlib import Path

from repro.analysis import experiments
from repro.analysis.cache import ResultCache
from repro.analysis.tables import format_mapping_table, format_table
from repro.core.mechanisms import MECHANISMS, PAPER_MECHANISMS
from repro.service import (
    BACKEND_NAMES,
    SweepFailure,
    SweepInterrupted,
    SweepPolicy,
    SweepService,
)
from repro.sim.config import (
    PLACEMENT_POLICIES,
    NumaParams,
    SchedulerParams,
    cpu_config,
    ndp_config,
)
from repro.sim.runner import run_mechanisms, run_once
from repro.sim.sweep import expand_grid
from repro.workloads.registry import ALL_WORKLOADS, workload_table

FIGURES = ("fig4", "fig5", "fig6", "fig7", "fig8", "fig10",
           "fig12", "fig13", "fig14", "interference", "numa")


def _numa_from(args) -> NumaParams:
    """NUMA axis from --nodes/--placement.  NumaParams itself
    normalizes the single-node case back to the flat default, so
    `--nodes 1 --placement interleave` cannot perturb cache keys."""
    return NumaParams(nodes=args.nodes, placement=args.placement)


def _config_from(args):
    factory = ndp_config if args.system == "ndp" else cpu_config
    scheduler = SchedulerParams(quantum_refs=args.quantum)
    return factory(workload=args.workload, mechanism=args.mechanism,
                   num_cores=args.cores, refs_per_core=args.refs,
                   seed=args.seed, tenants=args.tenants,
                   scheduler=scheduler, numa=_numa_from(args))


def _add_common(parser):
    parser.add_argument("--workload", default="rnd",
                        choices=ALL_WORKLOADS)
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--refs", type=int, default=5000,
                        help="memory references per core")
    parser.add_argument("--system", default="ndp",
                        choices=("ndp", "cpu"))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--tenants", type=int, default=1,
                        help="co-running processes time-sliced onto "
                             "the cores (default 1: single address "
                             "space)")
    parser.add_argument("--quantum", type=int,
                        default=SchedulerParams().quantum_refs,
                        help="scheduler time slice in references")
    _add_numa_opts(parser)


def _add_numa_opts(parser):
    parser.add_argument("--nodes", type=int, default=1,
                        help="NUMA nodes (default 1: flat machine)")
    parser.add_argument("--placement", default="local",
                        choices=PLACEMENT_POLICIES,
                        help="NUMA placement policy (with --nodes > 1)")


def _add_sweep_opts(parser):
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep "
                             "(default 1: serial in-process; with "
                             "--backend fileq, local workers — 0 "
                             "relies on external `repro worker`s)")
    parser.add_argument("--backend", default="auto",
                        choices=BACKEND_NAMES,
                        help="sweep execution backend (default auto: "
                             "serial for --jobs 1, pool otherwise)")
    parser.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="shared coordination directory for "
                             "--backend fileq")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk result cache; "
                             "makes the sweep resumable")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the journal a previous "
                             "(killed or drained) run of this exact "
                             "sweep left beside the cache: completed "
                             "cells come from the cache, attempt "
                             "counts / backoff clocks / quarantine "
                             "decisions from the journal (requires "
                             "--cache-dir)")
    parser.add_argument("--retries", type=int, default=1,
                        help="re-dispatches granted to a failing cell "
                             "before quarantine (default 1)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill and retry a cell running longer "
                             "than this (jobs > 1; default: no limit)")
    parser.add_argument("--keep-going", action="store_true",
                        help="complete every healthy cell when some "
                             "are quarantined, rendering them as "
                             "holes, instead of failing the command")
    parser.add_argument("--strict", action="store_true",
                        help="with --keep-going: still exit non-zero "
                             "when any cell was quarantined")
    parser.add_argument("--manifest-out", default=None, metavar="PATH",
                        help="write the failure manifest (plus retry/"
                             "timeout counters) as JSON to PATH")
    parser.add_argument("--events-out", default=None, metavar="PATH",
                        help="append structured telemetry events as "
                             "JSONL to PATH (replayable with "
                             "`repro trace`)")
    parser.add_argument("--progress", action="store_true",
                        help="stream a live progress line to stderr "
                             "while the sweep executes")


def _service_from(args) -> SweepService:
    if getattr(args, "resume", False) and args.cache_dir is None:
        raise SystemExit(
            "repro: --resume requires --cache-dir (the journal lives "
            "beside the cache, and completed cells come from it)")
    cache = (ResultCache(args.cache_dir)
             if args.cache_dir is not None else None)
    policy = SweepPolicy(retries=args.retries,
                         cell_timeout=args.cell_timeout,
                         strict=not args.keep_going)
    return SweepService(backend=args.backend, jobs=args.jobs,
                        cache=cache, cache_dir=args.cache_dir,
                        policy=policy,
                        queue_dir=args.queue_dir,
                        events_out=args.events_out,
                        progress=args.progress,
                        resume=getattr(args, "resume", False))


def _finish_sweep(args, service) -> int:
    """Shared sweep epilogue: print stats, report/persist failures.

    Under ``--keep-going`` the command completes with holes and exits
    zero — non-zero only when ``--strict`` is also given.  (Without
    ``--keep-going`` a quarantined cell raises SweepFailure out of the
    service and the command exits 1; this helper still records the
    manifest on that path.)
    """
    stats = service.last_stats
    if stats.cells:
        print(f"sweep: {stats.summary()}")
    manifest = stats.manifest
    if args.manifest_out:
        payload = manifest.to_dict()
        payload.update(retries=stats.retries, timeouts=stats.timeouts,
                       worker_deaths=stats.worker_deaths)
        Path(args.manifest_out).write_text(
            json.dumps(payload, indent=2) + "\n")
    if manifest:
        print(manifest.format())
        return 1 if args.strict else 0
    return 0


def cmd_run(args) -> int:
    result = run_once(_config_from(args))
    rows = [[key, value] for key, value in result.summary().items()]
    rows += [
        ["fault_cycles", result.fault_cycles],
        ["pte_mem_accesses", result.pte_memory_accesses],
        ["dram_row_hit", result.dram_row_hit_rate],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.workload} / {args.mechanism} / "
                             f"{args.cores}-core {args.system}"))
    return 0


def cmd_compare(args) -> int:
    mechanisms = args.mechanisms or list(PAPER_MECHANISMS)
    results = run_mechanisms(_config_from(args), mechanisms)
    baseline = results["radix"]
    rows = [
        [name, r.cycles, r.speedup_over(baseline),
         r.ptw_latency_mean, r.translation_fraction]
        for name, r in results.items()
    ]
    print(format_table(
        ["mechanism", "cycles", "speedup", "PTW (cy)", "transl. share"],
        rows, title=f"{args.workload}, {args.cores}-core {args.system}"))
    return 0


def _report_interrupt(args, exc: SweepInterrupted) -> int:
    """Shared SIGTERM/SIGINT epilogue: the sweep drained cleanly."""
    print(f"\nrepro: {exc}", file=sys.stderr)
    if args.cache_dir is not None:
        print("repro: completed cells are cached; rerun with "
              "--resume to continue with retry budgets intact",
              file=sys.stderr)
    return 130


def cmd_figure(args) -> int:
    service = _service_from(args)
    try:
        _render_figure(args, service)
    except SweepInterrupted as exc:
        return _report_interrupt(args, exc)
    except SweepFailure:
        # Strict (no --keep-going): every healthy cell completed and
        # was cached, but the figure is withheld — all-or-nothing.
        _finish_sweep(args, service)
        return 1
    return _finish_sweep(args, service)


def _render_figure(args, service) -> None:
    runner = service   # the drivers' runner= seam accepts a service
    refs = args.refs
    if args.figure == "fig4":
        table = experiments.ptw_latency_comparison(refs_per_core=refs,
                                                   runner=runner)
        print(format_mapping_table(table, ["ndp", "cpu", "increase"],
                                   row_label="workload",
                                   title="Fig. 4"))
    elif args.figure == "fig5":
        table = experiments.translation_overhead_comparison(
            refs_per_core=refs, runner=runner)
        print(format_mapping_table(table, ["ndp", "cpu"],
                                   row_label="workload",
                                   title="Fig. 5"))
    elif args.figure == "fig6":
        out = experiments.core_scaling(refs_per_core=refs,
                                       runner=runner)
        rows = [
            [cores, out["ndp"][cores]["ptw_latency"],
             out["cpu"][cores]["ptw_latency"],
             out["ndp"][cores]["overhead"],
             out["cpu"][cores]["overhead"]]
            for cores in sorted(out["ndp"])
        ]
        print(format_table(
            ["cores", "NDP PTW", "CPU PTW", "NDP ovh", "CPU ovh"],
            rows, title="Fig. 6"))
    elif args.figure == "fig7":
        table = experiments.l1_miss_breakdown(refs_per_core=refs,
                                              runner=runner)
        rows = [
            [wl, r.data_ideal, r.data_actual, r.metadata]
            for wl, r in table.items()
        ]
        print(format_table(
            ["workload", "data(ideal)", "data(actual)", "metadata"],
            rows, title="Fig. 7"))
    elif args.figure == "fig8":
        if args.jobs != 1 or args.cache_dir is not None:
            print("note: fig8 is computed analytically; "
                  "--jobs/--cache-dir have no effect")
        table = experiments.occupancy_study()
        print(format_mapping_table(
            table, ["PL1", "PL2", "PL3", "PL4", "PL2/1"],
            row_label="workload", title="Fig. 8"))
    elif args.figure == "fig10":
        rates = experiments.pwc_hit_rates(refs_per_core=refs,
                                          runner=runner)
        print(format_table(["level", "hit rate"],
                           sorted(rates.items()), title="Fig. 10"))
    elif args.figure == "interference":
        table = experiments.tenant_interference(refs_per_core=refs,
                                                runner=runner)
        columns = sorted(next(iter(table.values())),
                         key=lambda c: (int(c.split("t")[0]), c))
        print(format_mapping_table(
            table, columns, row_label="mechanism",
            title="Multi-tenant interference (cycles/ref, degradation "
                  "vs fewest tenants, shootdowns)"))
    elif args.figure == "numa":
        table = experiments.numa_placement(refs_per_core=refs,
                                           runner=runner)
        columns = sorted(next(iter(table.values())),
                         key=lambda c: (int(c.split("n")[0]), c))
        print(format_mapping_table(
            table, columns, row_label="mechanism/placement",
            title="NUMA placement (cycles/ref, degradation vs fewest "
                  "nodes, remote DRAM fraction)"))
    else:  # fig12 / fig13 / fig14
        cores = {"fig12": 1, "fig13": 4, "fig14": 8}[args.figure]
        table, averages, _ = experiments.speedup_experiment(
            cores, refs_per_core=refs, runner=runner)
        table["AVG"] = averages
        print(format_mapping_table(
            table, list(PAPER_MECHANISMS), row_label="workload",
            title=f"{args.figure} ({cores}-core speedups over Radix)"))


def cmd_sweep(args) -> int:
    configs = expand_grid(
        workloads=args.workloads, mechanisms=args.mechanisms,
        systems=args.systems, core_counts=args.cores,
        refs_per_core=args.refs, scale=args.scale, seed=args.seed,
        tenants=args.tenants,
        scheduler=SchedulerParams(quantum_refs=args.quantum),
        numa=_numa_from(args))
    service = _service_from(args)
    try:
        results = service.run(configs)
    except SweepInterrupted as exc:
        return _report_interrupt(args, exc)
    except SweepFailure:
        _finish_sweep(args, service)
        return 1
    rows = [
        [c.workload, c.mechanism, c.system, c.num_cores]
        + ([r.cycles, r.ipc, r.ptw_latency_mean] if r is not None
           else ["-", "-", "-"])          # quarantined: explicit hole
        for c, r in zip(configs, results)
    ]
    print(format_table(
        ["workload", "mechanism", "system", "cores", "cycles", "ipc",
         "PTW (cy)"],
        rows, title=f"sweep ({len(configs)} cells)"))
    return _finish_sweep(args, service)


def cmd_worker(args) -> int:
    """Standalone fileq worker: claim and simulate cells from a shared
    queue directory until idle for --max-idle seconds (or forever).

    SIGTERM/SIGINT drain gracefully: the first signal lets the
    in-flight cell finish, then unfinished claims go back to todo/,
    the heartbeat file and claim dir are removed, and the worker
    exits 0.  A second signal abandons the in-flight cell promptly
    (the claim is still returned and the exit is still clean)."""
    from repro.sim.backends.fileq import worker_loop
    stop = threading.Event()

    def _drain(signum, frame):
        if stop.is_set():
            # Second signal: abandon the in-flight cell.  worker_loop's
            # cleanup still returns the claim and removes the
            # heartbeat on the way out.
            raise SystemExit(0)
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _drain)
    try:
        summary = worker_loop(
            args.queue,
            poll_interval=args.poll_interval,
            heartbeat_interval=args.heartbeat_interval,
            stale_after=args.stale_after,
            max_idle=args.max_idle,
            stop_event=stop,
            events_out=args.events_out,
            log_stream=(None if args.quiet else sys.stderr))
    except SystemExit:
        print("worker drained (in-flight cell abandoned)")
        return 0
    print(f"worker {summary['worker']}: "
          f"{summary['cells']} cell(s) executed"
          + (" (drained)" if stop.is_set() else ""))
    return 0


def cmd_trace(args) -> int:
    """Export the per-cell spans of an event log as Chrome-trace JSON
    (open in chrome://tracing or https://ui.perfetto.dev)."""
    from repro.obs.trace import export_trace
    out = args.out or str(Path(args.events).with_suffix(".trace.json"))
    trace = export_trace(args.events, out, cell=args.cell)
    spans = sum(1 for entry in trace["traceEvents"]
                if entry.get("ph") == "X")
    lanes = sum(1 for entry in trace["traceEvents"]
                if entry.get("ph") == "M")
    print(f"trace: {lanes} cell(s), {spans} span(s) -> {out}")
    return 0


def cmd_status(args) -> int:
    """Read-only introspection of a fileq queue directory: todo depth,
    per-worker heartbeat age and claim count, stale-claim flags.
    Never moves or deletes anything — a running sweep's reclaim logic
    owns that."""
    from repro.sim.backends.fileq import QueueLayout
    layout = QueueLayout(args.queue)
    if not layout.root.is_dir():
        print(f"no queue directory at {layout.root}")
        return 1
    now = time.time()
    todo = (sorted(layout.todo.glob("*.json"))
            if layout.todo.is_dir() else [])
    pending = (sum(1 for _ in layout.results.glob("*.json"))
               if layout.results.is_dir() else 0)
    workers = set()
    if layout.workers.is_dir():
        workers.update(p.stem for p in layout.workers.glob("*.hb"))
    if layout.claims.is_dir():
        workers.update(p.name for p in layout.claims.iterdir()
                       if p.is_dir())
    rows, stale_claims = [], 0
    for worker_id in sorted(workers):
        try:
            age = now - layout.heartbeat(worker_id).stat().st_mtime
        except OSError:
            age = None
        claims_dir = layout.claims / worker_id
        claims = (sum(1 for _ in claims_dir.glob("*.json"))
                  if claims_dir.is_dir() else 0)
        live = age is not None and age < args.stale_after
        if not live:
            stale_claims += claims
        rows.append([worker_id,
                     f"{age:.1f}s" if age is not None else "-",
                     claims, "live" if live else "STALE"])
    print(f"queue {layout.root}: {len(todo)} todo item(s), "
          f"{pending} result(s) awaiting the supervisor")
    if rows:
        print(format_table(
            ["worker", "heartbeat", "claims", "state"], rows,
            title=f"workers ({len(rows)})"))
    else:
        print("no workers have registered")
    if stale_claims:
        print(f"warning: {stale_claims} claim(s) held by stale "
              f"workers — a running sweep (or an idle worker) will "
              f"reclaim them")
    return 0


def cmd_queue(args) -> int:
    """Queue-directory maintenance.  ``repair`` is the offline fsck:
    it removes orphaned tmp files, returns dead workers' claims to
    todo/, deletes ghost claim dirs and stale heartbeat files, and
    drops duplicate todo items (keeping the highest attempt).  Live
    workers (fresh heartbeats) are never touched.  After a clean
    drain the report is all zeros."""
    from repro.sim.backends.fileq import repair_queue
    report = repair_queue(args.queue, stale_after=args.stale_after,
                          apply=not args.dry_run)
    verb = "found" if args.dry_run else "repaired"
    total = sum(report.values())
    for kind, count in sorted(report.items()):
        if count:
            print(f"  {kind.replace('_', ' ')}: {count}")
    print(f"queue {args.queue}: {total} issue(s) {verb}")
    return 0


def cmd_cache(args) -> int:
    """Audit (`verify`) or clean (`gc`) an on-disk result cache."""
    cache = ResultCache(args.cache_dir)
    if args.action == "verify":
        report = cache.verify()
        print(f"cache {cache.root}: {report.summary()}")
        return 0
    removed = cache.gc()
    total = sum(removed.values())
    detail = ", ".join(f"{count} {kind}"
                       for kind, count in sorted(removed.items()))
    print(f"cache {cache.root}: removed {total} file(s) ({detail})")
    return 0


def cmd_diag(args) -> int:
    """Per-mechanism PTW/queue diagnostics on a few workloads (the
    former scripts/diag.py): speedup, PTW latency, DRAM queueing,
    PTE traffic per workload x mechanism."""
    for workload in args.workloads:
        base = None
        for mechanism in args.mechanisms:
            result = run_once(ndp_config(
                workload=workload, mechanism=mechanism,
                num_cores=args.cores, refs_per_core=args.refs))
            if base is None:
                base = result
            dram = sum(result.dram_accesses_by_kind.values())
            meta = result.dram_accesses_by_kind.get("metadata", 0)
            cyc_per_ref = (result.cycles * args.cores
                           / max(1, result.references))
            print(f"{workload:4s} {mechanism:9s} "
                  f"sp={base.cycles / result.cycles:5.2f} "
                  f"ptw={result.ptw_latency_mean:6.1f} "
                  f"qd={result.dram_queue_delay_mean:6.1f} "
                  f"pte_acc={result.pte_memory_accesses:6d} "
                  f"dram={dram:7d} meta_dram={meta:6d} "
                  f"cyc/ref={cyc_per_ref:6.1f} "
                  f"tf={result.translation_fraction:.2f}")
        print()
    return 0


def cmd_workloads(_args) -> int:
    rows = [
        [row["suite"], row["name"], row["dataset_gb"],
         row["gap_cycles"]]
        for row in workload_table(scale=1.0)
    ]
    print(format_table(["suite", "workload", "dataset (GB)", "gap cy"],
                       rows, title="Table II workloads"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NDPage (DATE 2025) reproduction simulator")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one simulation")
    _add_common(run_p)
    run_p.add_argument("--mechanism", default="radix",
                       choices=sorted(MECHANISMS))
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare",
                           help="compare translation mechanisms")
    _add_common(cmp_p)
    cmp_p.add_argument("--mechanisms", nargs="*",
                       choices=sorted(MECHANISMS), default=None)
    cmp_p.set_defaults(func=cmd_compare, mechanism="radix")

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("figure", choices=FIGURES)
    fig_p.add_argument("--refs", type=int, default=3000)
    _add_sweep_opts(fig_p)
    fig_p.set_defaults(func=cmd_figure)

    sweep_p = sub.add_parser(
        "sweep", help="run a config grid through the sweep runner")
    sweep_p.add_argument("--workloads", nargs="+",
                         choices=ALL_WORKLOADS,
                         default=["bfs", "xs", "rnd"])
    sweep_p.add_argument("--mechanisms", nargs="+",
                         choices=sorted(MECHANISMS),
                         default=list(PAPER_MECHANISMS))
    sweep_p.add_argument("--systems", nargs="+",
                         choices=("ndp", "cpu"), default=["ndp"])
    sweep_p.add_argument("--cores", type=int, nargs="+", default=[4])
    sweep_p.add_argument("--refs", type=int, default=5000,
                         help="memory references per core")
    sweep_p.add_argument("--scale", type=float, default=1.0)
    sweep_p.add_argument("--seed", type=int, default=42)
    sweep_p.add_argument("--tenants", type=int, default=1,
                         help="co-running processes per cell")
    sweep_p.add_argument("--quantum", type=int,
                         default=SchedulerParams().quantum_refs,
                         help="scheduler time slice in references")
    _add_numa_opts(sweep_p)
    _add_sweep_opts(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    worker_p = sub.add_parser(
        "worker", help="run a standalone fileq sweep worker")
    worker_p.add_argument("--queue", required=True, metavar="DIR",
                          help="shared queue directory (the sweep's "
                               "--queue-dir)")
    worker_p.add_argument("--max-idle", type=float, default=None,
                          metavar="SECONDS",
                          help="exit after this long with no work "
                               "(default: run until killed)")
    worker_p.add_argument("--poll-interval", type=float, default=0.05,
                          metavar="SECONDS",
                          help="queue scan period while idle")
    worker_p.add_argument("--heartbeat-interval", type=float,
                          default=1.0, metavar="SECONDS",
                          help="liveness heartbeat period")
    worker_p.add_argument("--stale-after", type=float, default=5.0,
                          metavar="SECONDS",
                          help="heartbeat age after which another "
                               "worker's claims are stolen")
    worker_p.add_argument("--events-out", default=None, metavar="PATH",
                          help="append this worker's telemetry events "
                               "as JSONL to PATH")
    worker_p.add_argument("--quiet", action="store_true",
                          help="suppress the timestamped per-cell log "
                               "lines on stderr")
    worker_p.set_defaults(func=cmd_worker)

    trace_p = sub.add_parser(
        "trace", help="export a Chrome trace from a sweep event log")
    trace_p.add_argument("events", metavar="EVENTS",
                         help="JSONL event log written via "
                              "--events-out")
    trace_p.add_argument("--out", default=None, metavar="PATH",
                         help="output path (default: EVENTS with a "
                              ".trace.json suffix)")
    trace_p.add_argument("--cell", default=None, metavar="SUBSTR",
                         help="keep only cells whose label or key "
                              "contains SUBSTR")
    trace_p.set_defaults(func=cmd_trace)

    status_p = sub.add_parser(
        "status",
        help="inspect a fileq queue directory (read-only)")
    status_p.add_argument("--queue", required=True, metavar="DIR",
                          help="the sweep's --queue-dir")
    status_p.add_argument("--stale-after", type=float, default=5.0,
                          metavar="SECONDS",
                          help="heartbeat age that flags a worker as "
                               "stale")
    status_p.set_defaults(func=cmd_status)

    queue_p = sub.add_parser(
        "queue", help="maintain a fileq queue directory")
    queue_p.add_argument("action", choices=("repair",),
                         help="repair: fsck the queue — remove tmp "
                              "orphans, requeue dead workers' "
                              "claims, drop ghost claim dirs / stale "
                              "heartbeats / duplicate todo items")
    queue_p.add_argument("--queue", required=True, metavar="DIR",
                         help="the sweep's --queue-dir")
    queue_p.add_argument("--stale-after", type=float, default=5.0,
                         metavar="SECONDS",
                         help="heartbeat age beyond which a worker "
                              "counts as dead (its claims are "
                              "requeued)")
    queue_p.add_argument("--dry-run", action="store_true",
                         help="report what would be repaired without "
                              "touching anything")
    queue_p.set_defaults(func=cmd_queue)

    cache_p = sub.add_parser(
        "cache", help="audit or clean an on-disk result cache")
    cache_p.add_argument("action", choices=("verify", "gc"),
                         help="verify: checksum every entry, "
                              "quarantine corrupt ones; gc: remove "
                              "stale/corrupt/quarantined files")
    cache_p.add_argument("--cache-dir", required=True, metavar="DIR",
                         help="the cache directory to audit")
    cache_p.set_defaults(func=cmd_cache)

    diag_p = sub.add_parser(
        "diag", help="per-mechanism PTW/queue diagnostics")
    diag_p.add_argument("--cores", type=int, default=4)
    diag_p.add_argument("--refs", type=int, default=12000,
                        help="memory references per core")
    diag_p.add_argument("--workloads", nargs="+",
                        choices=ALL_WORKLOADS,
                        default=["bfs", "pr", "xs", "rnd"])
    diag_p.add_argument("--mechanisms", nargs="+",
                        choices=sorted(MECHANISMS),
                        default=["radix", "ech", "hugepage", "ndpage",
                                 "ideal"])
    diag_p.set_defaults(func=cmd_diag)

    wl_p = sub.add_parser("workloads", help="list Table II workloads")
    wl_p.set_defaults(func=cmd_workloads)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
