"""The submit-level sweep API: one front door for every execution
backend.

Everything above the simulator — the CLI, the figure drivers,
``scripts/bench.py``, future services — talks to sweeps through this
module instead of hand-assembling runner + cache + fault plumbing:

* :meth:`SweepService.submit` — register one config, get a
  :class:`CellHandle` back immediately.
* :meth:`SweepService.gather` — execute every pending handle as one
  batched sweep (dedup, cache, retries) and resolve them.
* :meth:`SweepService.run_grid` — run a config grid under a
  :class:`SweepPolicy`, returning a :class:`SweepResult` (results in
  input order + stats + failure manifest).

Backend selection (``serial`` / ``pool`` / ``fileq`` / ``auto``) and
failure policy are explicit objects, so "run this grid on 4 local
workers, 2 retries, keep going" or "run it on the shared queue next
to the cache" are one-line changes::

    from repro.service import SweepPolicy, SweepService

    service = SweepService(backend="fileq", jobs=0,
                           queue_dir=".sweep-queue",
                           cache_dir=".sweep-cache",
                           policy=SweepPolicy(retries=2, strict=False))
    grid = service.run_grid(expand_grid(workloads=("bfs", "xs")))

Results are bit-identical across backends at any worker count; the
:class:`SweepPolicy` retry/quarantine contract is enforced by the
backend-agnostic supervisor in :mod:`repro.sim.sweep`.
"""

from __future__ import annotations

import contextlib
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.obs.events import JsonlSink, session
from repro.obs.progress import ProgressView
from repro.sim.backends.base import BACKEND_NAMES, BackendSpec
from repro.sim.config import SystemConfig
from repro.sim.runner import RunResult
from repro.sim.sweep import (
    FailureManifest,
    SweepFailure,
    SweepInterrupted,
    SweepPolicy,
    SweepStats,
    execute_sweep,
)

__all__ = [
    "BACKEND_NAMES",
    "BackendSpec",
    "CellHandle",
    "SweepFailure",
    "SweepInterrupted",
    "SweepPolicy",
    "SweepResult",
    "SweepService",
    "gather",
    "run_grid",
    "submit",
]


class CellHandle:
    """One submitted cell.  ``result()`` executes the service's whole
    pending batch on first use (so N submits still become one deduped,
    parallel sweep) and returns this cell's :class:`RunResult` —
    ``None`` if the cell was quarantined under a non-strict policy."""

    __slots__ = ("config", "key", "state", "error", "_service",
                 "_result")

    def __init__(self, config: SystemConfig, key: str,
                 service: "SweepService"):
        self.config = config
        self.key = key
        self.state = "pending"    # "pending" | "done" | "failed"
        self.error: Optional[str] = None
        self._service = service
        self._result: Optional[RunResult] = None

    def done(self) -> bool:
        return self.state != "pending"

    def result(self) -> Optional[RunResult]:
        if self.state == "pending":
            self._service.gather()
        return self._result

    def __repr__(self) -> str:
        return (f"CellHandle({self.key[:12]}, state={self.state!r})")


class SweepResult:
    """What :meth:`SweepService.run_grid` returns: results in input
    order (sequence-like), plus the stats and failure manifest."""

    __slots__ = ("results", "stats")

    def __init__(self, results: List[Optional[RunResult]],
                 stats: SweepStats):
        self.results = results
        self.stats = stats

    @property
    def manifest(self) -> FailureManifest:
        return self.stats.manifest

    @property
    def ok(self) -> bool:
        return not self.stats.manifest

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    def __repr__(self) -> str:
        return (f"SweepResult({len(self.results)} cells, "
                f"{self.stats.failed} failed)")


class SweepService:
    """A configured sweep executor: backend + cache + policy.

    Parameters
    ----------
    backend:
        ``"auto"`` (serial for one-job or single-cell sweeps, pool
        otherwise), ``"serial"``, ``"pool"``, ``"fileq"``, or a
        pre-built :class:`BackendSpec`.
    jobs:
        Worker processes — pool workers for ``pool``, *local* queue
        workers for ``fileq`` (``0`` relies on external
        ``repro worker`` processes).
    cache / cache_dir:
        A :class:`~repro.analysis.cache.ResultCache` (or compatible),
        or a directory to root one in; ``None`` disables persistence.
    policy:
        The default :class:`SweepPolicy`; per-call overrides go to
        :meth:`run_grid`.
    queue_dir:
        The fileq coordination directory (required for ``fileq``).
    events_out:
        Path of a JSONL event log; every sweep run through the
        service appends its structured telemetry there (see
        :mod:`repro.obs.events`).  ``None`` (default) keeps the
        telemetry spine disabled — a true no-op on the hot path.
    progress:
        Stream a live progress line to ``progress_stream`` (stderr
        by default) while sweeps execute.
    journal_dir:
        Directory for the crash-resume journals (see
        :mod:`repro.sim.journal`).  Defaults to ``journal/`` inside
        ``cache_dir`` when one is given; pass explicitly to journal a
        cache-less sweep, or ``False`` to disable journalling.
    resume:
        Resume from the journal a killed supervisor left behind:
        per-cell attempt counts, backoff clocks, and quarantine
        decisions carry over (completed cells come from the cache
        as always).
    """

    def __init__(self, backend: Union[str, BackendSpec] = "auto",
                 jobs: int = 1, cache=None, cache_dir=None,
                 policy: Optional[SweepPolicy] = None,
                 queue_dir=None,
                 heartbeat_interval: Optional[float] = None,
                 stale_after: Optional[float] = None,
                 events_out=None, progress: bool = False,
                 progress_stream=None, journal_dir=None,
                 resume: bool = False):
        if cache is None and cache_dir is not None:
            from repro.analysis.cache import ResultCache
            cache = ResultCache(cache_dir)
        if journal_dir is None and cache_dir is not None:
            from repro.sim.journal import JOURNAL_DIR
            journal_dir = Path(cache_dir) / JOURNAL_DIR
        self.journal_dir = journal_dir or None
        self.resume = resume
        if isinstance(backend, BackendSpec):
            spec = backend
        else:
            if backend not in BACKEND_NAMES:
                raise ValueError(
                    f"unknown backend {backend!r}; expected one of "
                    f"{', '.join(BACKEND_NAMES)}")
            spec = BackendSpec(name=backend, jobs=max(0, jobs),
                               queue_dir=queue_dir)
            if heartbeat_interval is not None:
                spec.heartbeat_interval = heartbeat_interval
            if stale_after is not None:
                spec.stale_after = stale_after
        self.spec = spec
        self.cache = cache
        self.policy = policy or SweepPolicy()
        self.events_out = events_out
        self.progress = progress
        self.progress_stream = progress_stream
        self.last_stats = SweepStats()
        self._handles: Dict[str, CellHandle] = {}

    # -- identity ----------------------------------------------------

    def _key(self, config: SystemConfig) -> str:
        if self.cache is not None:
            return self.cache.key(config)
        return config.canonical_json()

    # -- submit / gather ---------------------------------------------

    def submit(self, config: SystemConfig) -> CellHandle:
        """Register one cell for execution; returns immediately.

        Submitting the same config twice returns the same handle
        (in-service dedup, on top of the sweep's own)."""
        key = self._key(config)
        handle = self._handles.get(key)
        if handle is None:
            handle = CellHandle(config, key, self)
            self._handles[key] = handle
        return handle

    def gather(self, handles: Optional[Sequence[CellHandle]] = None
               ) -> List[Optional[RunResult]]:
        """Execute pending handles as one batched sweep and resolve
        them; returns their results in the given order.  ``None``
        gathers everything submitted so far."""
        if handles is None:
            handles = list(self._handles.values())
        handles = list(handles)
        pending = [h for h in handles if h.state == "pending"]
        if pending:
            results, stats = self._execute(
                [h.config for h in pending], self.policy, None)
            failed = {f.key: f for f in stats.manifest}
            for handle, result in zip(pending, results):
                if result is not None:
                    handle._result = result
                    handle.state = "done"
                else:
                    handle.state = "failed"
                    failure = failed.get(handle.key)
                    handle.error = (failure.error if failure
                                    else "missing result")
            if self.policy.strict and stats.manifest:
                raise SweepFailure(stats.manifest)
        return [h._result for h in handles]

    # -- grid execution ----------------------------------------------

    def run_grid(self, configs: Sequence[SystemConfig],
                 policy: Optional[SweepPolicy] = None,
                 run_fn: Optional[Callable] = None) -> SweepResult:
        """Run a config grid; returns a :class:`SweepResult`.

        Under a strict policy a quarantined cell raises
        :class:`SweepFailure` *after* every healthy cell completed
        and persisted (``last_stats`` still reflects the sweep)."""
        policy = policy or self.policy
        results, stats = self._execute(configs, policy, run_fn)
        if policy.strict and stats.manifest:
            raise SweepFailure(stats.manifest)
        return SweepResult(results, stats)

    def run(self, configs: Sequence[SystemConfig],
            run_fn: Optional[Callable] = None
            ) -> List[Optional[RunResult]]:
        """Drop-in replacement for ``SweepRunner.run``: plain result
        list, strict raise per the service policy."""
        return self.run_grid(configs, run_fn=run_fn).results

    def _execute(self, configs, policy, run_fn):
        with contextlib.ExitStack() as stack:
            if self.events_out:
                stack.enter_context(
                    session(JsonlSink(self.events_out)))
            if self.progress:
                stack.enter_context(
                    session(ProgressView(
                        stream=self.progress_stream)))
            results, stats = execute_sweep(configs, spec=self.spec,
                                           policy=policy,
                                           cache=self.cache,
                                           run_fn=run_fn,
                                           journal_dir=self.journal_dir,
                                           resume=self.resume)
        self.last_stats = stats
        return results, stats


# -- module-level convenience -------------------------------------------------

_default_service: Optional[SweepService] = None


def default_service() -> SweepService:
    """The process-wide serial, cache-less service behind the
    module-level :func:`submit`."""
    global _default_service
    if _default_service is None:
        _default_service = SweepService(backend="serial")
    return _default_service


def submit(config: SystemConfig,
           service: Optional[SweepService] = None) -> CellHandle:
    return (service or default_service()).submit(config)


def gather(handles: Sequence[CellHandle]
           ) -> List[Optional[RunResult]]:
    """Resolve handles from any mix of services, preserving order."""
    handles = list(handles)
    for service in dict.fromkeys(h._service for h in handles):
        service.gather([h for h in handles
                        if h._service is service])
    return [h._result for h in handles]


def run_grid(configs: Sequence[SystemConfig],
             policy: Optional[SweepPolicy] = None,
             **service_kwargs) -> SweepResult:
    """One-shot grid execution: build a :class:`SweepService` from
    ``service_kwargs`` (``backend=``, ``jobs=``, ``cache_dir=`` ...)
    and run the grid under ``policy``."""
    return SweepService(policy=policy,
                        **service_kwargs).run_grid(configs)
