"""Counterfactual design: flatten PL3/PL2 instead of PL2/PL1.

The paper merges the *bottom* two radix levels.  A natural question is
whether merging a different pair would do as well; this table merges
PL3 and PL2 (one 2 MB node per PL4 entry, covering 512 GB of VA) and
keeps a conventional PL1 leaf level.

It exists for the ablation benchmark, which shows why the paper's
choice is right: the upper levels were already covered by near-100 %
PWC hit rates (Section V-C), so merging them saves a memory access the
walker almost never performed — while the common-case PL2+PL1 misses
still cost two sequential accesses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.vm.address import (
    ENTRIES_PER_NODE,
    LEVEL_BITS,
    PAGE_SHIFT,
    PAGE_SIZE,
    PTE_SIZE,
    level_index,
)
from repro.vm.base import MappingError, PageTable, Translation, WalkStage
from repro.vm.frames import FRAMES_PER_BLOCK, FrameAllocator, OutOfMemoryError
from repro.vm.radix import PT_ALLOC_SITE

#: The merged PL3/PL2 index: 18 bits selecting a PL1 node.
UPPER_FLAT_BITS = 2 * LEVEL_BITS
UPPER_FLAT_ENTRIES = 1 << UPPER_FLAT_BITS


class _Pl1Node:
    __slots__ = ("base_paddr", "entries")

    def __init__(self, base_paddr: int):
        self.base_paddr = base_paddr
        self.entries: Dict[int, Translation] = {}

    def pte_paddr(self, index: int) -> int:
        return self.base_paddr + index * PTE_SIZE


class _UpperFlatNode:
    """One 2 MB node holding the merged PL3/PL2 entries."""

    __slots__ = ("base_paddr", "entries")

    def __init__(self, base_paddr: int):
        self.base_paddr = base_paddr
        self.entries: Dict[int, _Pl1Node] = {}

    def pte_paddr(self, index: int) -> int:
        return self.base_paddr + index * PTE_SIZE


class UpperFlattenedPageTable(PageTable):
    """PL4 -> merged PL3/PL2 -> PL1 (the counterfactual flattening)."""

    level_names = ("PL4", "PL3/2", "PL1")

    def __init__(self, allocator: FrameAllocator):
        self._allocator = allocator
        root_frame = allocator.alloc_frame(site=PT_ALLOC_SITE)
        self._root_paddr = allocator.frame_paddr(root_frame)
        self._flat_nodes: Dict[int, _UpperFlatNode] = {}
        self._pl1_count = 0
        self._mapped = 0

    def _upper_index(self, page: int) -> int:
        return (page >> LEVEL_BITS) & (UPPER_FLAT_ENTRIES - 1)

    def _pl1_for(self, page: int, create: bool) -> Optional[_Pl1Node]:
        idx4 = level_index(page, 4)
        flat = self._flat_nodes.get(idx4)
        if flat is None:
            if not create:
                return None
            first = self._allocator.alloc_huge()
            if first is None:
                raise OutOfMemoryError(
                    "no contiguous block for an upper-flattened node")
            flat = _UpperFlatNode(self._allocator.frame_paddr(first))
            self._flat_nodes[idx4] = flat
        upper = self._upper_index(page)
        pl1 = flat.entries.get(upper)
        if pl1 is None and create:
            frame = self._allocator.alloc_frame(site=PT_ALLOC_SITE)
            pl1 = _Pl1Node(self._allocator.frame_paddr(frame))
            flat.entries[upper] = pl1
            self._pl1_count += 1
        return pl1

    def lookup(self, page: int) -> Optional[Translation]:
        pl1 = self._pl1_for(page, create=False)
        if pl1 is None:
            return None
        return pl1.entries.get(level_index(page, 1))

    def map_page(self, page: int, pfn: int,
                 page_shift: int = PAGE_SHIFT) -> None:
        if page_shift != PAGE_SHIFT:
            raise MappingError("4 KB pages only")
        pl1 = self._pl1_for(page, create=True)
        idx1 = level_index(page, 1)
        if idx1 in pl1.entries:
            raise MappingError(f"page {page:#x} already mapped")
        pl1.entries[idx1] = Translation(pfn, PAGE_SHIFT)
        self._mapped += 1
        self.structure_version += 1

    def unmap_page(self, page: int) -> None:
        pl1 = self._pl1_for(page, create=False)
        idx1 = level_index(page, 1)
        if pl1 is None or idx1 not in pl1.entries:
            raise MappingError(f"page {page:#x} not mapped")
        del pl1.entries[idx1]
        self._mapped -= 1
        self.structure_version += 1

    def walk_stages(self, page: int) -> List[List[WalkStage]]:
        idx4 = level_index(page, 4)
        flat = self._flat_nodes.get(idx4)
        upper = self._upper_index(page)
        if flat is None or upper not in flat.entries:
            raise MappingError(f"walk of unmapped page {page:#x}")
        pl1 = flat.entries[upper]
        idx1 = level_index(page, 1)
        if idx1 not in pl1.entries:
            raise MappingError(f"walk of unmapped page {page:#x}")
        return [
            [WalkStage("PL4", self._root_paddr + idx4 * PTE_SIZE,
                       ("PL4", page >> (3 * LEVEL_BITS)))],
            [WalkStage("PL3/2", flat.pte_paddr(upper),
                       ("PL3/2", page >> LEVEL_BITS))],
            [WalkStage("PL1", pl1.pte_paddr(idx1), ("PL1", page))],
        ]

    def occupancy(self) -> Dict[str, float]:
        result = {"PL4": len(self._flat_nodes) / ENTRIES_PER_NODE}
        if self._flat_nodes:
            used = sum(len(f.entries) for f in self._flat_nodes.values())
            result["PL3/2"] = used / (len(self._flat_nodes)
                                      * UPPER_FLAT_ENTRIES)
        if self._pl1_count:
            used = sum(
                len(pl1.entries)
                for flat in self._flat_nodes.values()
                for pl1 in flat.entries.values()
            )
            result["PL1"] = used / (self._pl1_count * ENTRIES_PER_NODE)
        return result

    def table_bytes(self) -> int:
        flat_bytes = len(self._flat_nodes) * FRAMES_PER_BLOCK * PAGE_SIZE
        return PAGE_SIZE + flat_bytes + self._pl1_count * PAGE_SIZE

    @property
    def mapped_pages(self) -> int:
        return self._mapped
