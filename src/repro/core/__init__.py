"""NDPage's contribution: flattened page table, metadata bypass, specs."""

from repro.core.bypass import BypassPolicy, MetadataBypass, NoBypass
from repro.core.flattened import FlattenedPageTable, flattened_coverage_bytes
from repro.core.mechanisms import (
    MECHANISMS,
    PAPER_MECHANISMS,
    MechanismSpec,
    get_mechanism,
)

__all__ = [
    "BypassPolicy",
    "FlattenedPageTable",
    "MECHANISMS",
    "MechanismSpec",
    "MetadataBypass",
    "NoBypass",
    "PAPER_MECHANISMS",
    "flattened_coverage_bytes",
    "get_mechanism",
]
