"""Metadata cache-bypass policies — NDPage's first mechanism (Section V-A).

The OS marks page-table regions (4 KB, 64 B-aligned, so the marking
never splits a cache line with normal data) and the hardware issues
special non-caching loads (PFLD-style) for them.  In the simulator the
policy simply decides, per walk step, whether the PTE request carries
``bypass_l1``; the cache hierarchy does the rest.

Because the NDP system has a single cache level, bypassing cannot
violate multi-level inclusion — the paper's argument for why the
mechanism is safe in NDP but not trivially portable to deep hierarchies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Optional, Set


class BypassPolicy(ABC):
    """Decides whether a page-walk access skips the L1 cache."""

    @abstractmethod
    def should_bypass(self, level: str) -> bool:
        """True if PTE accesses for ``level`` must bypass the L1."""


class NoBypass(BypassPolicy):
    """Conventional behaviour: PTEs are cacheable (Radix/ECH/Huge Page)."""

    def should_bypass(self, level: str) -> bool:
        return False


class MetadataBypass(BypassPolicy):
    """NDPage's policy: all PTE accesses bypass the NDP L1.

    An optional level whitelist supports ablations (e.g. bypassing only
    the flattened leaf level, where the miss rate concentrates).
    """

    def __init__(self, levels: Optional[Iterable[str]] = None):
        self._levels: Optional[Set[str]] = (
            set(levels) if levels is not None else None
        )

    def should_bypass(self, level: str) -> bool:
        if self._levels is None:
            return True
        return level in self._levels
