"""Flattened L2/L1 page table — NDPage's second mechanism (Section V-B).

The bottom two radix levels are merged: each PL3 entry points at a
single 2 MB node holding 2^18 PTEs, indexed by the concatenated 18 bits
that PL2 and PL1 would have consumed separately (Fig. 9).  A walk
therefore takes three sequential accesses instead of four while mappings
stay 4 KB — the property that saves Huge Page's blow-ups in the 8-core
evaluation (Section VII-B).

Flattened nodes are physically contiguous 2 MB allocations; the paper
notes the extra space is negligible next to the data footprint, and the
table allocates nodes lazily exactly like the radix tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.vm.address import (
    ENTRIES_PER_NODE,
    FLAT_ENTRIES,
    FLAT_LEVEL_BITS,
    LEVEL_BITS,
    PAGE_SHIFT,
    PAGE_SIZE,
    PTE_SIZE,
    flat_index,
    level_index,
)
from repro.vm.base import MappingError, PageTable, Translation, WalkStage
from repro.vm.frames import FRAMES_PER_BLOCK, FrameAllocator, OutOfMemoryError
from repro.vm.radix import PT_ALLOC_SITE


class _InteriorNode:
    """A conventional 4 KB node (used at PL4 and PL3)."""

    __slots__ = ("base_paddr", "entries")

    def __init__(self, base_paddr: int):
        self.base_paddr = base_paddr
        self.entries: Dict[int, object] = {}

    def pte_paddr(self, index: int) -> int:
        return self.base_paddr + index * PTE_SIZE


class _FlatNode:
    """A merged L2/L1 node: one 2 MB page of 2^18 PTEs."""

    __slots__ = ("base_paddr", "entries")

    def __init__(self, base_paddr: int):
        self.base_paddr = base_paddr
        self.entries: Dict[int, Translation] = {}

    def pte_paddr(self, index: int) -> int:
        return self.base_paddr + index * PTE_SIZE


class FlattenedPageTable(PageTable):
    """PL4 -> PL3 -> flattened PL2/1 page table (4 KB pages only)."""

    level_names = ("PL4", "PL3", "PL2/1")

    def __init__(self, allocator: FrameAllocator):
        self._allocator = allocator
        self._root = self._new_interior()
        self._interior_nodes = 1
        self._flat_nodes: List[_FlatNode] = []
        self._mapped_pages = 0

    def _new_interior(self) -> _InteriorNode:
        frame = self._allocator.alloc_frame(site=PT_ALLOC_SITE)
        return _InteriorNode(self._allocator.frame_paddr(frame))

    def _new_flat(self) -> _FlatNode:
        first_frame = self._allocator.alloc_huge()
        if first_frame is None:
            raise OutOfMemoryError(
                "no contiguous 2 MB block for a flattened page-table node"
            )
        node = _FlatNode(self._allocator.frame_paddr(first_frame))
        self._flat_nodes.append(node)
        return node

    def _flat_node_for(self, page: int, create: bool) -> Optional[_FlatNode]:
        node = self._root
        idx4 = level_index(page, 4)
        child = node.entries.get(idx4)
        if child is None:
            if not create:
                return None
            child = self._new_interior()
            self._interior_nodes += 1
            node.entries[idx4] = child
        idx3 = level_index(page, 3)
        flat = child.entries.get(idx3)
        if flat is None and create:
            flat = self._new_flat()
            child.entries[idx3] = flat
        return flat

    # -- PageTable interface --------------------------------------------------

    def lookup(self, page: int) -> Optional[Translation]:
        # Inlined descent (this runs on every TLB miss).
        mask = ENTRIES_PER_NODE - 1
        child = self._root.entries.get((page >> (3 * LEVEL_BITS)) & mask)
        if child is None:
            return None
        flat = child.entries.get((page >> (2 * LEVEL_BITS)) & mask)
        if flat is None:
            return None
        return flat.entries.get(page & (FLAT_ENTRIES - 1))

    def map_page(self, page: int, pfn: int,
                 page_shift: int = PAGE_SHIFT) -> None:
        if page_shift != PAGE_SHIFT:
            raise MappingError(
                "flattened table keeps 4 KB flexibility; 2 MB mappings "
                "are intentionally unsupported"
            )
        flat = self._flat_node_for(page, create=True)
        index = flat_index(page)
        if index in flat.entries:
            raise MappingError(f"page {page:#x} already mapped")
        flat.entries[index] = Translation(pfn, PAGE_SHIFT)
        self._mapped_pages += 1
        self.structure_version += 1

    def unmap_page(self, page: int) -> None:
        flat = self._flat_node_for(page, create=False)
        if flat is None or flat_index(page) not in flat.entries:
            raise MappingError(f"page {page:#x} not mapped")
        del flat.entries[flat_index(page)]
        self._mapped_pages -= 1
        self.structure_version += 1

    def walk_stages(self, page: int) -> List[List[WalkStage]]:
        node = self._root
        idx4 = level_index(page, 4)
        stages = [[WalkStage("PL4", node.pte_paddr(idx4),
                             ("PL4", page >> (3 * LEVEL_BITS)))]]
        child = node.entries.get(idx4)
        if child is None:
            raise MappingError(f"walk of unmapped page {page:#x}")
        idx3 = level_index(page, 3)
        stages.append([WalkStage("PL3", child.pte_paddr(idx3),
                                 ("PL3", page >> (2 * LEVEL_BITS)))])
        flat = child.entries.get(idx3)
        if flat is None:
            raise MappingError(f"walk of unmapped page {page:#x}")
        index = flat_index(page)
        if index not in flat.entries:
            raise MappingError(f"walk of unmapped page {page:#x}")
        stages.append([WalkStage("PL2/1", flat.pte_paddr(index),
                                 ("PL2/1", page))])
        return stages

    def walk_plan(self, page: int):
        """Specialized :meth:`PageTable.walk_plan` (no ``WalkStage``
        construction; walkers compile a plan per walked page)."""
        info = self.walk_info(page)
        if info is None:
            raise MappingError(f"walk of unmapped page {page:#x}")
        return info[0]

    def walk_info(self, page: int):
        """Specialized :meth:`PageTable.walk_info`: plan + translation
        from a single descent."""
        mask = ENTRIES_PER_NODE - 1
        node = self._root
        idx4 = (page >> (3 * LEVEL_BITS)) & mask
        stage4 = ("PL4", node.base_paddr + idx4 * PTE_SIZE,
                  page >> (3 * LEVEL_BITS))
        child = node.entries.get(idx4)
        if child is None:
            return None
        idx3 = (page >> (2 * LEVEL_BITS)) & mask
        stage3 = ("PL3", child.base_paddr + idx3 * PTE_SIZE,
                  page >> (2 * LEVEL_BITS))
        flat = child.entries.get(idx3)
        if flat is None:
            return None
        index = page & (FLAT_ENTRIES - 1)
        leaf = flat.entries.get(index)
        if leaf is None:
            return None
        return ((stage4,), (stage3,),
                (("PL2/1", flat.base_paddr + index * PTE_SIZE, page),)
                ), leaf

    def walk_info_decorated(self, page: int, level_info: dict, resolve):
        """Specialized :meth:`PageTable.walk_info_decorated`: one
        descent, flat plan, walker treatment baked in."""
        info4 = level_info.get("PL4")
        if info4 is None:
            info4 = resolve("PL4")
        info3 = level_info.get("PL3")
        if info3 is None:
            info3 = resolve("PL3")
        info21 = level_info.get("PL2/1")
        if info21 is None:
            info21 = resolve("PL2/1")

        mask = ENTRIES_PER_NODE - 1
        node = self._root
        idx4 = (page >> (3 * LEVEL_BITS)) & mask
        stage4 = (node.base_paddr + idx4 * PTE_SIZE, info4[0], info4[1],
                  page >> (3 * LEVEL_BITS), "PL4")
        child = node.entries.get(idx4)
        if child is None:
            return None
        idx3 = (page >> (2 * LEVEL_BITS)) & mask
        stage3 = (child.base_paddr + idx3 * PTE_SIZE, info3[0], info3[1],
                  page >> (2 * LEVEL_BITS), "PL3")
        flat = child.entries.get(idx3)
        if flat is None:
            return None
        index = page & (FLAT_ENTRIES - 1)
        leaf = flat.entries.get(index)
        if leaf is None:
            return None
        return ((stage4, stage3,
                 (flat.base_paddr + index * PTE_SIZE, info21[0],
                  info21[1], page, "PL2/1")),
                None, leaf)

    def occupancy(self) -> Dict[str, float]:
        result: Dict[str, float] = {}
        root_used = len(self._root.entries)
        result["PL4"] = root_used / ENTRIES_PER_NODE
        pl3_nodes = [
            child for child in self._root.entries.values()
        ]
        if pl3_nodes:
            used = sum(len(n.entries) for n in pl3_nodes)
            result["PL3"] = used / (len(pl3_nodes) * ENTRIES_PER_NODE)
        if self._flat_nodes:
            used = sum(len(n.entries) for n in self._flat_nodes)
            result["PL2/1"] = used / (len(self._flat_nodes) * FLAT_ENTRIES)
        return result

    def table_bytes(self) -> int:
        flat_bytes = len(self._flat_nodes) * FRAMES_PER_BLOCK * PAGE_SIZE
        return self._interior_nodes * PAGE_SIZE + flat_bytes

    @property
    def flat_node_count(self) -> int:
        """Allocated flattened nodes (each covers 1 GB of VA)."""
        return len(self._flat_nodes)

    @property
    def mapped_pages(self) -> int:
        return self._mapped_pages


def flattened_coverage_bytes() -> int:
    """Virtual address span covered by one flattened node (1 GB)."""
    return (1 << FLAT_LEVEL_BITS) * PAGE_SIZE
