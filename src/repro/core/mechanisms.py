"""Address-translation mechanism registry (Section VI).

Each :class:`MechanismSpec` bundles everything that distinguishes one of
the paper's evaluated mechanisms — which page-table structure backs the
walk, whether PTE accesses bypass the NDP L1, which levels get page-walk
caches, and how the OS backs memory:

* ``radix``    — conventional 4-level x86-64 table (baseline).
* ``ech``      — elastic cuckoo hash table, parallel probes.
* ``hugepage`` — radix + transparent 2 MB pages.
* ``ndpage``   — flattened L2/L1 table + metadata L1 bypass + PWCs
  (this paper).
* ``ideal``    — zero-latency translation upper bound.

Ablation variants decompose NDPage's two mechanisms so their individual
contributions can be measured (DESIGN.md "ablations"):
``ndpage-bypass-only``, ``ndpage-flatten-only``, ``ndpage-nopwc``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.core.bypass import BypassPolicy, MetadataBypass, NoBypass
from repro.core.flattened import FlattenedPageTable
from repro.vm.base import PageTable
from repro.vm.cuckoo import ElasticCuckooPageTable
from repro.vm.frames import FrameAllocator
from repro.vm.ideal import IdealPageTable
from repro.vm.os_model import PagingPolicy
from repro.vm.radix import RadixPageTable


@dataclass(frozen=True)
class MechanismSpec:
    """Recipe for building one translation mechanism."""

    key: str
    label: str
    make_table: Callable[[FrameAllocator], PageTable]
    make_bypass: Callable[[], BypassPolicy]
    pwc_levels: Tuple[str, ...]
    paging_policy: PagingPolicy
    ideal: bool = False

    def build_table(self, allocator: FrameAllocator) -> PageTable:
        return self.make_table(allocator)

    def build_bypass(self) -> BypassPolicy:
        return self.make_bypass()


RADIX_PWC_LEVELS = ("PL4", "PL3", "PL2", "PL1")
NDPAGE_PWC_LEVELS = ("PL4", "PL3", "PL2/1")


def _make_upper_flattened(allocator: FrameAllocator) -> PageTable:
    # Imported lazily to keep the core import graph acyclic.
    from repro.core.flattened_upper import UpperFlattenedPageTable
    return UpperFlattenedPageTable(allocator)


def _spec(key: str, label: str, make_table, make_bypass, pwc_levels,
          paging_policy=PagingPolicy.SMALL, ideal=False) -> MechanismSpec:
    return MechanismSpec(key=key, label=label, make_table=make_table,
                         make_bypass=make_bypass, pwc_levels=pwc_levels,
                         paging_policy=paging_policy, ideal=ideal)


MECHANISMS = {
    "radix": _spec(
        "radix", "Radix (4-level x86-64)",
        RadixPageTable, NoBypass, RADIX_PWC_LEVELS),
    "ech": _spec(
        "ech", "Elastic Cuckoo Hash Table",
        ElasticCuckooPageTable, NoBypass, ()),
    "hugepage": _spec(
        "hugepage", "Huge Page (2MB THP)",
        RadixPageTable, NoBypass, RADIX_PWC_LEVELS,
        paging_policy=PagingPolicy.HUGE),
    "ndpage": _spec(
        "ndpage", "NDPage (this paper)",
        FlattenedPageTable, MetadataBypass, NDPAGE_PWC_LEVELS),
    "ideal": _spec(
        "ideal", "Ideal (zero-latency translation)",
        IdealPageTable, NoBypass, (), ideal=True),
    # --- ablations ---------------------------------------------------------
    "ndpage-bypass-only": _spec(
        "ndpage-bypass-only", "Radix + metadata L1 bypass",
        RadixPageTable, MetadataBypass, RADIX_PWC_LEVELS),
    "ndpage-flatten-only": _spec(
        "ndpage-flatten-only", "Flattened L2/L1, PTEs cacheable",
        FlattenedPageTable, NoBypass, NDPAGE_PWC_LEVELS),
    "ndpage-nopwc": _spec(
        "ndpage-nopwc", "NDPage without page-walk caches",
        FlattenedPageTable, MetadataBypass, ()),
    "ndpage-flatten-upper": _spec(
        "ndpage-flatten-upper", "Flatten PL3/PL2 instead (counterfactual)",
        _make_upper_flattened, MetadataBypass,
        ("PL4", "PL3/2", "PL1")),
}

#: The five mechanisms of Figs. 12-14, in the paper's plotting order.
PAPER_MECHANISMS = ("radix", "ech", "hugepage", "ndpage", "ideal")


def get_mechanism(key: str) -> MechanismSpec:
    """Look up a mechanism spec; raises with the valid keys on typos."""
    try:
        return MECHANISMS[key]
    except KeyError:
        raise ValueError(
            f"unknown mechanism {key!r}; choose from {sorted(MECHANISMS)}"
        ) from None
