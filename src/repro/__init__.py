"""NDPage reproduction: tailored page tables for near-data processing.

A functional + timing simulator reproducing *NDPage: Efficient Address
Translation for Near-Data Processing Architectures via Tailored Page
Table* (DATE 2025).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import ndp_config, run_once

    result = run_once(ndp_config(workload="rnd", mechanism="ndpage",
                                 num_cores=4, refs_per_core=20_000))
    print(result.summary())
"""

from repro.core import (
    MECHANISMS,
    PAPER_MECHANISMS,
    FlattenedPageTable,
    MechanismSpec,
    MetadataBypass,
    get_mechanism,
)
from repro.sim import (
    RunResult,
    SweepRunner,
    System,
    SystemConfig,
    cpu_config,
    expand_grid,
    ndp_config,
    run_mechanisms,
    run_once,
    run_sweep,
)
from repro.service import (
    SweepPolicy,
    SweepResult,
    SweepService,
)
from repro.vm import (
    ElasticCuckooPageTable,
    FrameAllocator,
    IdealPageTable,
    OSMemoryManager,
    PagingPolicy,
    RadixPageTable,
    occupancy_report,
)
from repro.workloads import ALL_WORKLOADS, make_workload, workload_table

__version__ = "1.0.0"

__all__ = [
    "ALL_WORKLOADS",
    "ElasticCuckooPageTable",
    "FlattenedPageTable",
    "FrameAllocator",
    "IdealPageTable",
    "MECHANISMS",
    "MechanismSpec",
    "MetadataBypass",
    "OSMemoryManager",
    "PAPER_MECHANISMS",
    "PagingPolicy",
    "RadixPageTable",
    "RunResult",
    "SweepPolicy",
    "SweepResult",
    "SweepRunner",
    "SweepService",
    "System",
    "SystemConfig",
    "cpu_config",
    "expand_grid",
    "get_mechanism",
    "make_workload",
    "ndp_config",
    "occupancy_report",
    "run_mechanisms",
    "run_once",
    "run_sweep",
    "workload_table",
]
