"""Memory request descriptors.

The distinction the paper leans on throughout is *normal data* versus
*metadata* (PTE) traffic: NDPage's first mechanism treats the two
differently at the L1 cache (Section V-A).  Every request in the
simulator therefore carries a :class:`RequestKind` so caches, DRAM and
statistics can attribute traffic correctly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RequestKind(enum.Enum):
    """What a memory request is fetching."""

    DATA = "data"          # the program's own loads/stores
    METADATA = "metadata"  # page-table entries touched by a walk
    INSTRUCTION = "instruction"

    @property
    def is_metadata(self) -> bool:
        return self is RequestKind.METADATA


class AccessType(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class MemoryRequest:
    """A single line-granularity physical memory request.

    Attributes:
        paddr: physical byte address (the hierarchy works at line
            granularity internally).
        kind: data vs metadata vs instruction, for attribution and for
            NDPage's metadata bypass decision.
        access: read or write.
        core_id: issuing core, used by the DRAM model for per-core stats.
        bypass_l1: when True the request must not be looked up in, nor
            allocated into, the first-level cache (NDPage Section V-A).
    """

    paddr: int
    kind: RequestKind = RequestKind.DATA
    access: AccessType = AccessType.READ
    core_id: int = 0
    bypass_l1: bool = False

    def with_bypass(self) -> "MemoryRequest":
        """Copy of this request flagged to bypass the L1 cache."""
        return MemoryRequest(
            paddr=self.paddr,
            kind=self.kind,
            access=self.access,
            core_id=self.core_id,
            bypass_l1=True,
        )


def read(paddr: int, kind: RequestKind = RequestKind.DATA,
         core_id: int = 0) -> MemoryRequest:
    """Convenience constructor for a read request."""
    return MemoryRequest(paddr=paddr, kind=kind, core_id=core_id)


def write(paddr: int, kind: RequestKind = RequestKind.DATA,
          core_id: int = 0) -> MemoryRequest:
    """Convenience constructor for a write request."""
    return MemoryRequest(paddr=paddr, kind=kind,
                         access=AccessType.WRITE, core_id=core_id)
