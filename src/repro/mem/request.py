"""Memory request descriptors.

The distinction the paper leans on throughout is *normal data* versus
*metadata* (PTE) traffic: NDPage's first mechanism treats the two
differently at the L1 cache (Section V-A).  Every request in the
simulator therefore carries a :class:`RequestKind` so caches, DRAM and
statistics can attribute traffic correctly.

Hot-path representation: the simulator's internal fast paths
(``Cache.access_fast``, ``MemoryHierarchy.access_fast``,
``DramModel.access_fast``) never build :class:`MemoryRequest` objects —
they pass a small *kind index* (:data:`KIND_DATA`,
:data:`KIND_METADATA`, :data:`KIND_INSTRUCTION`) and an ``is_write``
flag as plain positional ints.  :class:`MemoryRequest` remains the
public, self-describing API; the object-based entry points are thin
shims over the positional ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RequestKind(enum.Enum):
    """What a memory request is fetching."""

    DATA = "data"          # the program's own loads/stores
    METADATA = "metadata"  # page-table entries touched by a walk
    INSTRUCTION = "instruction"

    @property
    def is_metadata(self) -> bool:
        return self is RequestKind.METADATA


#: Integer kind codes used on the allocation-free fast paths.
KIND_DATA = 0
KIND_METADATA = 1
KIND_INSTRUCTION = 2

#: kind index -> RequestKind (inverse of KIND_INDEX).
KIND_BY_INDEX = (RequestKind.DATA, RequestKind.METADATA,
                 RequestKind.INSTRUCTION)

#: RequestKind -> kind index.
KIND_INDEX = {kind: index for index, kind in enumerate(KIND_BY_INDEX)}


class AccessType(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class MemoryRequest:
    """A single line-granularity physical memory request.

    Attributes:
        paddr: physical byte address (the hierarchy works at line
            granularity internally).
        kind: data vs metadata vs instruction, for attribution and for
            NDPage's metadata bypass decision.
        access: read or write.
        core_id: issuing core, used by the DRAM model for per-core stats.
        bypass_l1: when True the request must not be looked up in, nor
            allocated into, the first-level cache (NDPage Section V-A).
    """

    paddr: int
    kind: RequestKind = RequestKind.DATA
    access: AccessType = AccessType.READ
    core_id: int = 0
    bypass_l1: bool = False

    def with_bypass(self) -> "MemoryRequest":
        """Copy of this request flagged to bypass the L1 cache."""
        return MemoryRequest(
            paddr=self.paddr,
            kind=self.kind,
            access=self.access,
            core_id=self.core_id,
            bypass_l1=True,
        )


def read(paddr: int, kind: RequestKind = RequestKind.DATA,
         core_id: int = 0) -> MemoryRequest:
    """Convenience constructor for a read request."""
    return MemoryRequest(paddr=paddr, kind=kind, core_id=core_id)


def write(paddr: int, kind: RequestKind = RequestKind.DATA,
          core_id: int = 0) -> MemoryRequest:
    """Convenience constructor for a write request."""
    return MemoryRequest(paddr=paddr, kind=kind,
                         access=AccessType.WRITE, core_id=core_id)
