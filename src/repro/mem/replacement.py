"""Cache replacement policies.

Policies are small strategy objects operating on a per-set mapping of
``tag -> line`` (an insertion-ordered dict, which is what CPython gives
us for free).  The cache owns the mapping; the policy decides how hits
reorder it and which tag is evicted on a fill.

Stateful policies (SRRIP) also receive ``on_evict``/``on_clear``
notifications whenever the cache drops a line — fills, invalidations and
flushes alike — so their side tables cannot leak entries for lines that
are no longer resident and skew later victim picks.

LRU is the policy used for every structure in the paper's Table I; FIFO,
Random and SRRIP exist for ablations and for exercising the cache model
in tests.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict


class ReplacementPolicy(ABC):
    """Strategy interface for victim selection within one cache set."""

    @abstractmethod
    def on_hit(self, cache_set: Dict, tag: int) -> None:
        """Update recency state after a hit on ``tag``."""

    @abstractmethod
    def on_insert(self, cache_set: Dict, tag: int) -> None:
        """Update state after ``tag`` was inserted into the set."""

    @abstractmethod
    def victim(self, cache_set: Dict) -> int:
        """Choose the tag to evict from a full set."""

    def on_evict(self, cache_set: Dict, tag: int) -> None:
        """Drop any per-line state after ``tag`` left the cache.

        Called for *every* removal — fill-driven evictions,
        ``Cache.invalidate`` and ``Cache.flush`` — after the tag has
        been removed from ``cache_set``.  Stateless policies need not
        override this.
        """

    def on_clear(self) -> None:
        """Drop all per-line state (the cache was flushed)."""


class LruPolicy(ReplacementPolicy):
    """Least-recently-used via dict insertion order (oldest first)."""

    def on_hit(self, cache_set: Dict, tag: int) -> None:
        cache_set[tag] = cache_set.pop(tag)

    def on_insert(self, cache_set: Dict, tag: int) -> None:
        pass  # new insertions are already youngest

    def victim(self, cache_set: Dict) -> int:
        return next(iter(cache_set))


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: hits do not refresh a line's age."""

    def on_hit(self, cache_set: Dict, tag: int) -> None:
        pass

    def on_insert(self, cache_set: Dict, tag: int) -> None:
        pass

    def victim(self, cache_set: Dict) -> int:
        return next(iter(cache_set))


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim, deterministic under a fixed seed."""

    def __init__(self, seed: int = 0xC0FFEE):
        self._rng = random.Random(seed)

    def on_hit(self, cache_set: Dict, tag: int) -> None:
        pass

    def on_insert(self, cache_set: Dict, tag: int) -> None:
        pass

    def victim(self, cache_set: Dict) -> int:
        tags = list(cache_set)
        return tags[self._rng.randrange(len(tags))]


class SrripPolicy(ReplacementPolicy):
    """Static re-reference interval prediction (2-bit RRPV).

    Lines are inserted with a *long* predicted re-reference interval and
    promoted to *near-immediate* on hit; eviction picks a line with the
    maximum RRPV, aging the whole set when none exists.  Used by the
    cache-ablation benchmarks to show the paper's conclusions do not
    hinge on LRU specifically.
    """

    MAX_RRPV = 3

    def __init__(self):
        self._rrpv: Dict[int, int] = {}

    def on_hit(self, cache_set: Dict, tag: int) -> None:
        self._rrpv[tag] = 0

    def on_insert(self, cache_set: Dict, tag: int) -> None:
        self._rrpv[tag] = self.MAX_RRPV - 1

    def victim(self, cache_set: Dict) -> int:
        while True:
            for tag in cache_set:
                if self._rrpv.get(tag, self.MAX_RRPV) >= self.MAX_RRPV:
                    return tag
            for tag in cache_set:
                self._rrpv[tag] = self._rrpv.get(tag, 0) + 1

    def on_evict(self, cache_set: Dict, tag: int) -> None:
        self._rrpv.pop(tag, None)

    def on_clear(self) -> None:
        self._rrpv.clear()


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
    "srrip": SrripPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name ('lru', 'fifo', ...)."""
    try:
        factory = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    return factory()
