"""DRAM timing model: channels, banks, row buffers, queueing.

This is the substrate that produces the paper's multi-core behaviour.
Each bank tracks when it next becomes free and which row is open, so a
burst of page-walk traffic from many NDP cores queues up behind busy
banks and PTW latency climbs with core count (Fig. 6a), while the CPU
system — whose walks mostly hit in its L2/L3 — barely notices.

Timings are expressed in *core cycles* at the 2.6 GHz clock of Table I.
Two presets are provided: DDR4-2400 for the host CPU and HBM2 for the
3D-stacked NDP memory (more channels, lower latency — JESD235).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.mem.request import (
    KIND_BY_INDEX,
    KIND_INDEX,
    AccessType,
    MemoryRequest,
    RequestKind,
)
from repro.sim.stats import LatencyStats, ratio


@dataclass(frozen=True)
class DramTiming:
    """Timing/geometry parameters for one DRAM device.

    Attributes:
        name: preset label.
        channels: independent channels (line-interleaved).
        banks_per_channel: banks per channel.
        row_bytes: row-buffer size.
        row_hit_cycles: CAS-limited access into an open row.
        row_miss_cycles: precharge + activate + CAS.
        burst_cycles: bank occupancy for a row-buffer hit (data transfer).
        row_cycle_cycles: bank occupancy for a row-buffer miss (tRC: the
            bank is unusable for the whole activate..precharge cycle).
            This term — not raw latency — is what makes banks saturate
            under many-core page-walk traffic and reproduces Fig. 6.
    """

    name: str
    channels: int
    banks_per_channel: int
    row_bytes: int
    row_hit_cycles: int
    row_miss_cycles: int
    burst_cycles: int
    row_cycle_cycles: int


# 2 channels of DDR4-2400 behind the CPU's LLC.  ~23 ns CAS-limited and
# ~45 ns bank-miss latencies at 2.6 GHz; tRC ~46 ns.
DDR4_2400 = DramTiming(
    name="DDR4-2400",
    channels=2,
    banks_per_channel=16,
    row_bytes=8192,
    row_hit_cycles=60,
    row_miss_cycles=117,
    burst_cycles=14,
    row_cycle_cycles=120,
)

# HBM2 stack under the NDP logic layer.  HBM's advantage over DDR4 is
# interface width, *not* core latency: the DRAM arrays share the same
# technology, so tCL/tRC in core cycles are close to DDR4's.  The
# channel/bank numbers model the parallelism *visible to one NDP
# cluster* — cores in a logic-layer partition reach the banks of their
# local vault group, not the whole stack — which is what makes random,
# row-missing walk traffic from many NDP cores queue on banks and
# reproduces the paper's rising PTW latency with core count (Fig. 6).
HBM2 = DramTiming(
    name="HBM2",
    channels=2,
    banks_per_channel=8,
    row_bytes=2048,
    row_hit_cycles=52,
    row_miss_cycles=110,
    burst_cycles=4,
    row_cycle_cycles=112,
)


class DramStats:
    """Aggregate DRAM statistics, split by request kind.

    Per-kind access counters live in a plain list indexed by kind code
    (enum hashing is measurable on the per-access path); the
    :attr:`accesses_by_kind` mapping view is materialized on read.
    """

    __slots__ = ("kind_counts", "writes", "row_hits", "row_misses",
                 "queue_delay", "service_latency")

    def __init__(self):
        self.kind_counts: List[int] = [0] * len(KIND_BY_INDEX)
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.queue_delay = LatencyStats()
        self.service_latency = LatencyStats()

    @property
    def accesses_by_kind(self) -> Dict[RequestKind, int]:
        return {kind: self.kind_counts[index]
                for index, kind in enumerate(KIND_BY_INDEX)}

    @property
    def accesses(self) -> int:
        return sum(self.kind_counts)

    @property
    def row_hit_rate(self) -> float:
        return ratio(self.row_hits, self.row_hits + self.row_misses)

    def reset(self) -> None:
        self.kind_counts = [0] * len(KIND_BY_INDEX)
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.queue_delay.reset()
        self.service_latency.reset()

    def merge(self, other: "DramStats") -> None:
        """Fold another device's counters in (per-node NUMA DRAMs are
        reported as one machine-wide distribution)."""
        for index, count in enumerate(other.kind_counts):
            self.kind_counts[index] += count
        self.writes += other.writes
        self.row_hits += other.row_hits
        self.row_misses += other.row_misses
        self.queue_delay.merge(other.queue_delay)
        self.service_latency.merge(other.service_latency)


class _Bank:
    __slots__ = ("free_at", "open_row")

    def __init__(self):
        self.free_at = 0.0
        self.open_row = -1


class DramModel:
    """Bank-queueing DRAM model.

    ``access_fast`` is the timing entry point: given the cycle at which
    a request reaches the memory controller, it returns the total
    latency (queueing + service) and advances the target bank's busy
    window.  ``access`` is the :class:`MemoryRequest` shim over it.
    """

    LINE_SIZE = 64

    __slots__ = ("timing", "stats", "_banks", "_lines_per_row",
                 "_pow2", "_line_shift", "_ch_mask", "_ch_shift",
                 "_row_shift", "_bank_mask", "_bank_shift", "_hot")

    def __init__(self, timing: DramTiming):
        self.timing = timing
        self.stats = DramStats()
        self._banks: List[_Bank] = [
            _Bank()
            for _ in range(timing.channels * timing.banks_per_channel)
        ]
        self._lines_per_row = timing.row_bytes // self.LINE_SIZE
        # Every shipped geometry is power-of-two; precompute shift/mask
        # forms of the _decode arithmetic for the hot path (identical
        # results, cheaper ops).  Non-power-of-two geometries fall back
        # to the divmod path.
        self._pow2 = all(
            value & (value - 1) == 0 and value > 0
            for value in (self.LINE_SIZE, timing.channels,
                          timing.banks_per_channel, self._lines_per_row))
        if self._pow2:
            self._line_shift = self.LINE_SIZE.bit_length() - 1
            self._ch_mask = timing.channels - 1
            self._ch_shift = timing.channels.bit_length() - 1
            self._row_shift = self._lines_per_row.bit_length() - 1
            self._bank_mask = timing.banks_per_channel - 1
            self._bank_shift = timing.banks_per_channel.bit_length() - 1
        else:
            self._line_shift = self._ch_mask = self._ch_shift = 0
            self._row_shift = self._bank_mask = self._bank_shift = 0
        # One-tuple unpack replaces ~10 attribute loads on the
        # per-access path; every value is immutable for the device's
        # lifetime.
        self._hot = (self._pow2, self._line_shift, self._ch_mask,
                     self._ch_shift, self._row_shift, self._bank_mask,
                     self._bank_shift, self._banks,
                     timing.row_hit_cycles, timing.burst_cycles,
                     timing.row_miss_cycles, timing.row_cycle_cycles)

    def _decode(self, paddr: int):
        """Map a physical address to (bank object, row number).

        Lines interleave across channels, then fill a row's columns
        before moving to the next bank (open-page friendly: sequential
        streams get row-buffer hits).  The bank index is permuted with
        row bits (permutation-based page interleaving, as in real
        controllers), which prevents aligned hot addresses — page-table
        roots, search-tree midpoints — from all landing in one bank.
        """
        line = paddr // self.LINE_SIZE
        channel = line % self.timing.channels
        rest = line // self.timing.channels
        banks = self.timing.banks_per_channel
        within = rest // self._lines_per_row
        bank_raw = within % banks
        row = within // banks
        bank_idx = (bank_raw ^ (row % banks) ^ ((row >> 5) % banks)) % banks
        bank = self._banks[channel * banks + bank_idx]
        return bank, row

    def access_fast(self, now: float, paddr: int, kind: int,
                    is_write: int) -> float:
        """Service a request arriving at cycle ``now``; return latency.

        Allocation-free entry point: ``kind`` is a kind code, and the
        decode / latency-distribution updates are inlined (no method
        dispatch on the per-access path).
        """
        # Inline _decode (hot): line -> channel, then permuted bank.
        (pow2, line_shift, ch_mask, ch_shift, row_shift, bank_mask,
         bank_shift, banks, row_hit_cycles, burst_cycles,
         row_miss_cycles, row_cycle_cycles) = self._hot
        if pow2:
            line = paddr >> line_shift
            channel = line & ch_mask
            within = (line >> ch_shift) >> row_shift
            row = within >> bank_shift
            bank_idx = ((within ^ row ^ (row >> 5)) & bank_mask)
            bank = banks[(channel << bank_shift) + bank_idx]
        else:
            bank, row = self._decode(paddr)

        start = bank.free_at if bank.free_at > now else now
        queue_delay = start - now

        stats = self.stats
        if bank.open_row == row:
            service = row_hit_cycles
            occupancy = burst_cycles
            stats.row_hits += 1
        else:
            service = row_miss_cycles
            occupancy = row_cycle_cycles
            stats.row_misses += 1
            bank.open_row = row

        bank.free_at = start + occupancy
        stats.kind_counts[kind] += 1
        if is_write:
            stats.writes += 1
        total = queue_delay + service
        queue_stats = stats.queue_delay
        queue_stats.total += queue_delay
        queue_stats.count += 1
        if queue_delay > queue_stats.maximum:
            queue_stats.maximum = queue_delay
        service_stats = stats.service_latency
        service_stats.total += total
        service_stats.count += 1
        if total > service_stats.maximum:
            service_stats.maximum = total
        return total

    def access(self, now: float, request: MemoryRequest) -> float:
        """Object-API shim over :meth:`access_fast`."""
        return self.access_fast(
            now, request.paddr, KIND_INDEX[request.kind],
            1 if request.access is AccessType.WRITE else 0)

    def drain_write_fast(self, now: float, paddr: int, kind: int) -> None:
        """Account a write-back: occupies the bank but nobody waits on it."""
        if self._pow2:
            line = paddr >> self._line_shift
            channel = line & self._ch_mask
            within = (line >> self._ch_shift) >> self._row_shift
            row = within >> self._bank_shift
            bank_idx = ((within ^ row ^ (row >> 5)) & self._bank_mask)
            bank = self._banks[(channel << self._bank_shift) + bank_idx]
        else:
            bank, row = self._decode(paddr)
        start = bank.free_at if bank.free_at > now else now
        if bank.open_row != row:
            bank.open_row = row
            self.stats.row_misses += 1
            occupancy = self.timing.row_cycle_cycles
        else:
            self.stats.row_hits += 1
            occupancy = self.timing.burst_cycles
        bank.free_at = start + occupancy
        self.stats.kind_counts[kind] += 1
        self.stats.writes += 1

    def drain_write(self, now: float, request: MemoryRequest) -> None:
        """Object-API shim over :meth:`drain_write_fast`."""
        self.drain_write_fast(now, request.paddr, KIND_INDEX[request.kind])

    def reset_state(self) -> None:
        """Clear bank occupancy and open rows (statistics preserved)."""
        for bank in self._banks:
            bank.free_at = 0.0
            bank.open_row = -1
