"""DRAM timing model: channels, banks, row buffers, queueing.

This is the substrate that produces the paper's multi-core behaviour.
Each bank tracks when it next becomes free and which row is open, so a
burst of page-walk traffic from many NDP cores queues up behind busy
banks and PTW latency climbs with core count (Fig. 6a), while the CPU
system — whose walks mostly hit in its L2/L3 — barely notices.

Timings are expressed in *core cycles* at the 2.6 GHz clock of Table I.
Two presets are provided: DDR4-2400 for the host CPU and HBM2 for the
3D-stacked NDP memory (more channels, lower latency — JESD235).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.mem.request import AccessType, MemoryRequest, RequestKind
from repro.sim.stats import LatencyStats, ratio


@dataclass(frozen=True)
class DramTiming:
    """Timing/geometry parameters for one DRAM device.

    Attributes:
        name: preset label.
        channels: independent channels (line-interleaved).
        banks_per_channel: banks per channel.
        row_bytes: row-buffer size.
        row_hit_cycles: CAS-limited access into an open row.
        row_miss_cycles: precharge + activate + CAS.
        burst_cycles: bank occupancy for a row-buffer hit (data transfer).
        row_cycle_cycles: bank occupancy for a row-buffer miss (tRC: the
            bank is unusable for the whole activate..precharge cycle).
            This term — not raw latency — is what makes banks saturate
            under many-core page-walk traffic and reproduces Fig. 6.
    """

    name: str
    channels: int
    banks_per_channel: int
    row_bytes: int
    row_hit_cycles: int
    row_miss_cycles: int
    burst_cycles: int
    row_cycle_cycles: int


# 2 channels of DDR4-2400 behind the CPU's LLC.  ~23 ns CAS-limited and
# ~45 ns bank-miss latencies at 2.6 GHz; tRC ~46 ns.
DDR4_2400 = DramTiming(
    name="DDR4-2400",
    channels=2,
    banks_per_channel=16,
    row_bytes=8192,
    row_hit_cycles=60,
    row_miss_cycles=117,
    burst_cycles=14,
    row_cycle_cycles=120,
)

# HBM2 stack under the NDP logic layer.  HBM's advantage over DDR4 is
# interface width, *not* core latency: the DRAM arrays share the same
# technology, so tCL/tRC in core cycles are close to DDR4's.  The
# channel/bank numbers model the parallelism *visible to one NDP
# cluster* — cores in a logic-layer partition reach the banks of their
# local vault group, not the whole stack — which is what makes random,
# row-missing walk traffic from many NDP cores queue on banks and
# reproduces the paper's rising PTW latency with core count (Fig. 6).
HBM2 = DramTiming(
    name="HBM2",
    channels=2,
    banks_per_channel=8,
    row_bytes=2048,
    row_hit_cycles=52,
    row_miss_cycles=110,
    burst_cycles=4,
    row_cycle_cycles=112,
)


@dataclass
class DramStats:
    """Aggregate DRAM statistics, split by request kind."""

    accesses_by_kind: Dict[RequestKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in RequestKind})
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    queue_delay: LatencyStats = field(default_factory=LatencyStats)
    service_latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def accesses(self) -> int:
        return sum(self.accesses_by_kind.values())

    @property
    def row_hit_rate(self) -> float:
        return ratio(self.row_hits, self.row_hits + self.row_misses)

    def reset(self) -> None:
        for kind in self.accesses_by_kind:
            self.accesses_by_kind[kind] = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.queue_delay.reset()
        self.service_latency.reset()


class _Bank:
    __slots__ = ("free_at", "open_row")

    def __init__(self):
        self.free_at = 0.0
        self.open_row = -1


class DramModel:
    """Bank-queueing DRAM model.

    ``access`` is the only timing entry point: given the cycle at which a
    request reaches the memory controller, it returns the total latency
    (queueing + service) and advances the target bank's busy window.
    """

    LINE_SIZE = 64

    def __init__(self, timing: DramTiming):
        self.timing = timing
        self.stats = DramStats()
        self._banks: List[_Bank] = [
            _Bank()
            for _ in range(timing.channels * timing.banks_per_channel)
        ]
        self._lines_per_row = timing.row_bytes // self.LINE_SIZE

    def _decode(self, paddr: int):
        """Map a physical address to (bank object, row number).

        Lines interleave across channels, then fill a row's columns
        before moving to the next bank (open-page friendly: sequential
        streams get row-buffer hits).  The bank index is permuted with
        row bits (permutation-based page interleaving, as in real
        controllers), which prevents aligned hot addresses — page-table
        roots, search-tree midpoints — from all landing in one bank.
        """
        line = paddr // self.LINE_SIZE
        channel = line % self.timing.channels
        rest = line // self.timing.channels
        banks = self.timing.banks_per_channel
        within = rest // self._lines_per_row
        bank_raw = within % banks
        row = within // banks
        bank_idx = (bank_raw ^ (row % banks) ^ ((row >> 5) % banks)) % banks
        bank = self._banks[channel * banks + bank_idx]
        return bank, row

    def access(self, now: float, request: MemoryRequest) -> float:
        """Service ``request`` arriving at cycle ``now``; return latency."""
        bank, row = self._decode(request.paddr)
        start = bank.free_at if bank.free_at > now else now
        queue_delay = start - now

        if bank.open_row == row:
            service = self.timing.row_hit_cycles
            occupancy = self.timing.burst_cycles
            self.stats.row_hits += 1
        else:
            service = self.timing.row_miss_cycles
            occupancy = self.timing.row_cycle_cycles
            self.stats.row_misses += 1
            bank.open_row = row

        bank.free_at = start + occupancy
        self.stats.accesses_by_kind[request.kind] += 1
        if request.access is AccessType.WRITE:
            self.stats.writes += 1
        self.stats.queue_delay.record(queue_delay)
        total = queue_delay + service
        self.stats.service_latency.record(total)
        return total

    def drain_write(self, now: float, request: MemoryRequest) -> None:
        """Account a write-back: occupies the bank but nobody waits on it."""
        bank, row = self._decode(request.paddr)
        start = bank.free_at if bank.free_at > now else now
        if bank.open_row != row:
            bank.open_row = row
            self.stats.row_misses += 1
            occupancy = self.timing.row_cycle_cycles
        else:
            self.stats.row_hits += 1
            occupancy = self.timing.burst_cycles
        bank.free_at = start + occupancy
        self.stats.accesses_by_kind[request.kind] += 1
        self.stats.writes += 1

    def reset_state(self) -> None:
        """Clear bank occupancy and open rows (statistics preserved)."""
        for bank in self._banks:
            bank.free_at = 0.0
            bank.open_row = -1
