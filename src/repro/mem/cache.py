"""Set-associative cache model with data/metadata attribution.

The cache tracks, per line, whether it holds normal data or page-table
metadata.  This is what lets the simulator measure the paper's key
motivation numbers: the L1 miss rate of metadata (Fig. 7, ~98 %) and the
*pollution* effect — data lines evicted by metadata fills — that raises
the normal-data miss rate from its ideal value.

Hot-path design: resident lines are stored as packed ints
(``kind_index << 1 | dirty``) rather than per-line objects, and the
internal entry point :meth:`Cache.access_fast` takes plain positional
arguments and returns an int code — no :class:`MemoryRequest`,
:class:`CacheAccessResult` or per-fill ``CacheLine`` is ever allocated
on the simulated hot path.  The object-based :meth:`Cache.access`
remains as a thin shim for tests and external callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mem.replacement import (
    LruPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.mem.request import (
    KIND_BY_INDEX,
    KIND_INDEX,
    AccessType,
    MemoryRequest,
    RequestKind,
)
from repro.sim.stats import HitMissStats

#: Return codes of :meth:`Cache.access_fast`.
HIT = 0
MISS = 1
MISS_CLEAN_EVICT = 2
MISS_DIRTY_EVICT = 3


@dataclass(slots=True)
class CacheLine:
    """State of one resident line (public/introspection shape only).

    Internally lines live as packed ints; this class survives as the
    element type of :meth:`Cache.access`-era APIs.
    """

    kind: RequestKind
    dirty: bool = False


@dataclass(slots=True)
class Eviction:
    """Description of a line pushed out by a fill."""

    line_addr: int
    kind: RequestKind
    dirty: bool


@dataclass(slots=True)
class CacheAccessResult:
    """Outcome of one cache access."""

    hit: bool
    eviction: Optional[Eviction] = None


@dataclass(slots=True)
class CacheStats:
    """Per-kind hit/miss plus pollution accounting."""

    data: HitMissStats = field(default_factory=HitMissStats)
    metadata: HitMissStats = field(default_factory=HitMissStats)
    instruction: HitMissStats = field(default_factory=HitMissStats)
    # evictions_by[evictor_kind][victim_kind] -> count
    data_evicted_by_metadata: int = 0
    metadata_evicted_by_data: int = 0
    writebacks: int = 0

    def for_kind(self, kind: RequestKind) -> HitMissStats:
        if kind is RequestKind.DATA:
            return self.data
        if kind is RequestKind.METADATA:
            return self.metadata
        return self.instruction

    def reset(self) -> None:
        self.data.reset()
        self.metadata.reset()
        self.instruction.reset()
        self.data_evicted_by_metadata = 0
        self.metadata_evicted_by_data = 0
        self.writebacks = 0


class Cache:
    """A single set-associative, write-back, allocate-on-miss cache.

    Args:
        name: label used in aggregated statistics ('L1D', 'L2', ...).
        size_bytes: total capacity.
        associativity: ways per set.
        hit_latency: cycles charged for a lookup that hits (a miss also
            pays this lookup latency before descending, as in Sniper's
            cache model).
        line_size: bytes per line; Table I uses 64 B throughout.
        replacement: policy name understood by
            :func:`repro.mem.replacement.make_policy`.
    """

    __slots__ = ("name", "size_bytes", "associativity", "hit_latency",
                 "line_size", "num_sets", "stats", "_policy", "_sets",
                 "_line_shift", "_kind_stats", "_is_lru",
                 "_policy_evicts", "evict_tag", "evict_kind")

    def __init__(self, name: str, size_bytes: int, associativity: int,
                 hit_latency: int, line_size: int = 64,
                 replacement: str = "lru"):
        if size_bytes % (line_size * associativity) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"line_size*associativity = {line_size * associativity}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.hit_latency = hit_latency
        self.line_size = line_size
        self.num_sets = size_bytes // (line_size * associativity)
        self.stats = CacheStats()
        # The per-kind stat objects are bound once and indexed by kind
        # code on the fast path; CacheStats.reset() mutates them in
        # place, so the binding stays valid for a cache's lifetime.
        self._kind_stats = (self.stats.data, self.stats.metadata,
                            self.stats.instruction)
        self._policy: ReplacementPolicy = make_policy(replacement)
        # LRU (the Table I policy everywhere) is inlined on the fast
        # path; only other policies pay the strategy-object dispatch.
        self._is_lru = type(self._policy) is LruPolicy
        self._policy_evicts = (
            type(self._policy).on_evict is not ReplacementPolicy.on_evict)
        # tag -> packed line state: (kind_index << 1) | dirty
        self._sets: List[Dict[int, int]] = [
            {} for _ in range(self.num_sets)
        ]
        self._line_shift = line_size.bit_length() - 1
        # Victim details of the most recent access_fast that returned
        # MISS_CLEAN_EVICT or MISS_DIRTY_EVICT (valid until next fill).
        self.evict_tag = 0
        self.evict_kind = 0

    # -- geometry helpers ---------------------------------------------------

    def _locate(self, paddr: int):
        line = paddr >> self._line_shift
        return self._sets[line % self.num_sets], line

    def line_addr(self, paddr: int) -> int:
        """Line number containing physical byte address ``paddr``."""
        return paddr >> self._line_shift

    # -- operations ----------------------------------------------------------

    def contains(self, paddr: int) -> bool:
        """Presence check with no side effects (for tests/inspection)."""
        cache_set, line = self._locate(paddr)
        return line in cache_set

    def access_fast(self, paddr: int, kind: int, is_write: int) -> int:
        """Look up ``paddr``; on miss, allocate the line.

        Allocation-free internal entry point: ``kind`` is a kind code
        (:data:`repro.mem.request.KIND_DATA` ...), ``is_write`` is 0/1.
        Returns :data:`HIT`, :data:`MISS`, :data:`MISS_CLEAN_EVICT` or
        :data:`MISS_DIRTY_EVICT`; for the two eviction codes the victim
        is described by :attr:`evict_tag` / :attr:`evict_kind`.
        """
        line = paddr >> self._line_shift
        cache_set = self._sets[line % self.num_sets]
        resident = cache_set.get(line)
        kind_stats = self._kind_stats[kind]
        if resident is not None:
            kind_stats.hits += 1
            if self._is_lru:
                # on_hit + dirty update in one dict round-trip.
                cache_set[line] = cache_set.pop(line) | is_write
            else:
                self._policy.on_hit(cache_set, line)
                if is_write:
                    cache_set[line] = cache_set[line] | 1
            return HIT

        kind_stats.misses += 1
        if len(cache_set) < self.associativity:
            cache_set[line] = (kind << 1) | is_write
            if not self._is_lru:
                self._policy.on_insert(cache_set, line)
            return MISS

        if self._is_lru:
            victim_tag = next(iter(cache_set))
        else:
            victim_tag = self._policy.victim(cache_set)
        packed = cache_set.pop(victim_tag)
        if self._policy_evicts:
            self._policy.on_evict(cache_set, victim_tag)
        victim_kind = packed >> 1
        dirty = packed & 1
        if dirty:
            self.stats.writebacks += 1
        if kind == 1:  # METADATA evicting ...
            if victim_kind == 0:  # ... DATA
                self.stats.data_evicted_by_metadata += 1
        elif kind == 0 and victim_kind == 1:
            self.stats.metadata_evicted_by_data += 1
        cache_set[line] = (kind << 1) | is_write
        if not self._is_lru:
            self._policy.on_insert(cache_set, line)
        self.evict_tag = victim_tag
        self.evict_kind = victim_kind
        return MISS_DIRTY_EVICT if dirty else MISS_CLEAN_EVICT

    def access(self, request: MemoryRequest) -> CacheAccessResult:
        """Object-API shim over :meth:`access_fast`.

        Returns the hit/miss outcome plus any eviction the fill caused
        so callers can account for write-back traffic.
        """
        code = self.access_fast(
            request.paddr, KIND_INDEX[request.kind],
            1 if request.access is AccessType.WRITE else 0)
        if code == HIT:
            return CacheAccessResult(hit=True)
        if code == MISS:
            return CacheAccessResult(hit=False)
        return CacheAccessResult(hit=False, eviction=Eviction(
            line_addr=self.evict_tag,
            kind=KIND_BY_INDEX[self.evict_kind],
            dirty=code == MISS_DIRTY_EVICT,
        ))

    def invalidate(self, paddr: int) -> bool:
        """Drop the line holding ``paddr``; True if it was resident."""
        cache_set, line = self._locate(paddr)
        if line in cache_set:
            del cache_set[line]
            self._policy.on_evict(cache_set, line)
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (statistics are preserved)."""
        for cache_set in self._sets:
            cache_set.clear()
        self._policy.on_clear()

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident (for occupancy tests)."""
        return sum(len(s) for s in self._sets)

    def resident_kind_counts(self) -> Dict[RequestKind, int]:
        """How many resident lines hold each request kind."""
        counts = {kind: 0 for kind in RequestKind}
        for cache_set in self._sets:
            for packed in cache_set.values():
                counts[KIND_BY_INDEX[packed >> 1]] += 1
        return counts
