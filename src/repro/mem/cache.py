"""Set-associative cache model with data/metadata attribution.

The cache tracks, per line, whether it holds normal data or page-table
metadata.  This is what lets the simulator measure the paper's key
motivation numbers: the L1 miss rate of metadata (Fig. 7, ~98 %) and the
*pollution* effect — data lines evicted by metadata fills — that raises
the normal-data miss rate from its ideal value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mem.replacement import ReplacementPolicy, make_policy
from repro.mem.request import AccessType, MemoryRequest, RequestKind
from repro.sim.stats import HitMissStats


@dataclass
class CacheLine:
    """State of one resident line."""

    kind: RequestKind
    dirty: bool = False


@dataclass
class Eviction:
    """Description of a line pushed out by a fill."""

    line_addr: int
    kind: RequestKind
    dirty: bool


@dataclass
class CacheAccessResult:
    """Outcome of one cache access."""

    hit: bool
    eviction: Optional[Eviction] = None


@dataclass
class CacheStats:
    """Per-kind hit/miss plus pollution accounting."""

    data: HitMissStats = field(default_factory=HitMissStats)
    metadata: HitMissStats = field(default_factory=HitMissStats)
    instruction: HitMissStats = field(default_factory=HitMissStats)
    # evictions_by[evictor_kind][victim_kind] -> count
    data_evicted_by_metadata: int = 0
    metadata_evicted_by_data: int = 0
    writebacks: int = 0

    def for_kind(self, kind: RequestKind) -> HitMissStats:
        if kind is RequestKind.DATA:
            return self.data
        if kind is RequestKind.METADATA:
            return self.metadata
        return self.instruction

    def reset(self) -> None:
        self.data.reset()
        self.metadata.reset()
        self.instruction.reset()
        self.data_evicted_by_metadata = 0
        self.metadata_evicted_by_data = 0
        self.writebacks = 0


class Cache:
    """A single set-associative, write-back, allocate-on-miss cache.

    Args:
        name: label used in aggregated statistics ('L1D', 'L2', ...).
        size_bytes: total capacity.
        associativity: ways per set.
        hit_latency: cycles charged for a lookup that hits (a miss also
            pays this lookup latency before descending, as in Sniper's
            cache model).
        line_size: bytes per line; Table I uses 64 B throughout.
        replacement: policy name understood by
            :func:`repro.mem.replacement.make_policy`.
    """

    def __init__(self, name: str, size_bytes: int, associativity: int,
                 hit_latency: int, line_size: int = 64,
                 replacement: str = "lru"):
        if size_bytes % (line_size * associativity) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"line_size*associativity = {line_size * associativity}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.hit_latency = hit_latency
        self.line_size = line_size
        self.num_sets = size_bytes // (line_size * associativity)
        self.stats = CacheStats()
        self._policy: ReplacementPolicy = make_policy(replacement)
        self._sets: List[Dict[int, CacheLine]] = [
            {} for _ in range(self.num_sets)
        ]
        self._line_shift = line_size.bit_length() - 1

    # -- geometry helpers ---------------------------------------------------

    def _locate(self, paddr: int):
        line = paddr >> self._line_shift
        return self._sets[line % self.num_sets], line

    def line_addr(self, paddr: int) -> int:
        """Line number containing physical byte address ``paddr``."""
        return paddr >> self._line_shift

    # -- operations ----------------------------------------------------------

    def contains(self, paddr: int) -> bool:
        """Presence check with no side effects (for tests/inspection)."""
        cache_set, line = self._locate(paddr)
        return line in cache_set

    def access(self, request: MemoryRequest) -> CacheAccessResult:
        """Look up ``request``; on miss, allocate the line.

        Returns the hit/miss outcome plus any eviction the fill caused so
        the hierarchy can account for write-back traffic.
        """
        cache_set, line = self._locate(request.paddr)
        kind_stats = self.stats.for_kind(request.kind)
        resident = cache_set.get(line)
        if resident is not None:
            kind_stats.hits += 1
            self._policy.on_hit(cache_set, line)
            if request.access is AccessType.WRITE:
                resident.dirty = True
            return CacheAccessResult(hit=True)

        kind_stats.misses += 1
        eviction = self._fill(cache_set, line, request)
        return CacheAccessResult(hit=False, eviction=eviction)

    def _fill(self, cache_set, line, request: MemoryRequest):
        eviction = None
        if len(cache_set) >= self.associativity:
            victim_tag = self._policy.victim(cache_set)
            victim = cache_set.pop(victim_tag)
            eviction = Eviction(
                line_addr=victim_tag, kind=victim.kind, dirty=victim.dirty
            )
            if victim.dirty:
                self.stats.writebacks += 1
            if (request.kind is RequestKind.METADATA
                    and victim.kind is RequestKind.DATA):
                self.stats.data_evicted_by_metadata += 1
            elif (request.kind is RequestKind.DATA
                    and victim.kind is RequestKind.METADATA):
                self.stats.metadata_evicted_by_data += 1
        cache_set[line] = CacheLine(
            kind=request.kind,
            dirty=request.access is AccessType.WRITE,
        )
        self._policy.on_insert(cache_set, line)
        return eviction

    def invalidate(self, paddr: int) -> bool:
        """Drop the line holding ``paddr``; True if it was resident."""
        cache_set, line = self._locate(paddr)
        if line in cache_set:
            del cache_set[line]
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (statistics are preserved)."""
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident (for occupancy tests)."""
        return sum(len(s) for s in self._sets)

    def resident_kind_counts(self) -> Dict[RequestKind, int]:
        """How many resident lines hold each request kind."""
        counts = {kind: 0 for kind in RequestKind}
        for cache_set in self._sets:
            for line in cache_set.values():
                counts[line.kind] += 1
        return counts
