"""Memory-system substrate: caches, DRAM, interconnect, hierarchy."""

from repro.mem.cache import Cache, CacheAccessResult, CacheStats
from repro.mem.dram import DDR4_2400, HBM2, DramModel, DramTiming
from repro.mem.hierarchy import (
    MemoryHierarchy,
    build_cpu_hierarchy,
    build_ndp_hierarchy,
)
from repro.mem.interconnect import MeshConfig, MeshInterconnect
from repro.mem.replacement import make_policy
from repro.mem.request import (
    AccessType,
    MemoryRequest,
    RequestKind,
    read,
    write,
)

__all__ = [
    "AccessType",
    "Cache",
    "CacheAccessResult",
    "CacheStats",
    "DDR4_2400",
    "DramModel",
    "DramTiming",
    "HBM2",
    "MemoryHierarchy",
    "MemoryRequest",
    "MeshConfig",
    "MeshInterconnect",
    "RequestKind",
    "build_cpu_hierarchy",
    "build_ndp_hierarchy",
    "make_policy",
    "read",
    "write",
]
