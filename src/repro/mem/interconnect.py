"""Mesh interconnect model (Table I: 4-cycle hops, 512-bit links).

Cores and memory controllers sit on a 2D mesh.  The model charges a
deterministic latency per traversal: hop count x hop latency plus the
serialization of one 64 B line over a 512-bit (64 B) link.  NDP cores
live in the logic layer directly under the DRAM stack, so their distance
to memory is a single hop; CPU cores cross the chip mesh to reach a
corner memory controller.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MeshConfig:
    """Geometry and timing of the mesh."""

    hop_latency: int = 4          # cycles per hop (Table I)
    link_bytes: int = 64          # 512-bit links move a line per flit
    line_bytes: int = 64


class MeshInterconnect:
    """Deterministic mesh latency between cores and memory controllers.

    Cores are laid out row-major on the smallest square mesh that fits
    them; the memory controller occupies position (0, 0).  The paper's
    NDP cores bypass the chip mesh (they are *in* the memory), which is
    modeled as a fixed single hop.
    """

    def __init__(self, num_cores: int, config: MeshConfig = MeshConfig(),
                 near_memory: bool = False):
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self.config = config
        self.near_memory = near_memory
        self._side = max(1, math.isqrt(num_cores - 1) + 1)
        self.traversals = 0

    def hops(self, core_id: int) -> int:
        """Mesh hops from ``core_id``'s tile to the memory controller."""
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core_id {core_id} out of range")
        if self.near_memory:
            return 1
        x, y = core_id % self._side, core_id // self._side
        return max(1, x + y)

    def serialization_cycles(self) -> int:
        """Cycles to push one line across a link."""
        flits = -(-self.config.line_bytes // self.config.link_bytes)
        return flits

    def latency(self, core_id: int) -> int:
        """One-way latency from core to memory controller, in cycles."""
        self.traversals += 1
        return (self.hops(core_id) * self.config.hop_latency
                + self.serialization_cycles())
