"""Memory hierarchy composition: per-core caches, mesh, shared DRAM.

Two shapes exist in the paper (Table I):

* **CPU**: per-core L1D (32 KB) and L2 (512 KB), a shared L3 sized at
  2 MB per core, a chip mesh, and DDR4-2400 main memory.
* **NDP**: per-core L1D only — the logic-layer power/area budget allows
  a single shallow cache level — directly on top of HBM2.

``MemoryHierarchy.access_fast`` is the single timing entry point used by
the core model (normal data) and the page-table walker (metadata); it
takes plain positional arguments so the per-reference path allocates
nothing.  The object-based :meth:`MemoryHierarchy.access` shim accepts a
:class:`MemoryRequest` for external callers.  NDPage's metadata bypass
is expressed per request (``bypass_l1``), so the hierarchy stays
mechanism agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.mem.cache import (
    HIT,
    MISS_DIRTY_EVICT,
    Cache,
)
from repro.mem.dram import DramModel, DramStats, DramTiming
from repro.mem.interconnect import MeshInterconnect
from repro.mem.request import (
    KIND_INDEX,
    AccessType,
    MemoryRequest,
    RequestKind,
)
from repro.vm.address import NODE_PADDR_MASK, NODE_PADDR_SHIFT


@dataclass(slots=True)
class HierarchyStats:
    """Counters the caches/DRAM do not already track."""

    accesses: int = 0
    l1_bypasses: int = 0
    dram_reads: int = 0
    remote_reads: int = 0            # DRAM reads that paid node distance
    remote_penalty_cycles: float = 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.l1_bypasses = 0
        self.dram_reads = 0
        self.remote_reads = 0
        self.remote_penalty_cycles = 0.0


class MemoryHierarchy:
    """A configurable 1-3 level cache hierarchy over banked DRAM.

    Args:
        l1ds: one private L1 data cache per core.
        dram: main-memory model (node 0's device under NUMA).
        noc: mesh connecting cores to the memory controller.
        l2s: optional private L2 per core (CPU configuration).
        l3: optional shared last-level cache (CPU configuration).
        node_drams: one :class:`DramModel` per NUMA node (``dram``
            must be entry 0), or None for the flat single-node
            machine.
        numa_penalty: per-core rows of extra cycles by frame node
            (``numa_penalty[core_id][node]``); required with
            ``node_drams``.  The miss path decodes the node from the
            physical address tag (bit 40) and charges this before the
            remote device services the request.
    """

    __slots__ = ("l1ds", "l2s", "l3", "dram", "noc", "stats",
                 "_levels", "_levels_no_l1", "_noc_latency", "_line_size",
                 "_single_level", "drams", "_numa_penalty")

    def __init__(self, l1ds: List[Cache], dram: DramModel,
                 noc: MeshInterconnect, l2s: Optional[List[Cache]] = None,
                 l3: Optional[Cache] = None,
                 node_drams: Optional[List[DramModel]] = None,
                 numa_penalty: Optional[
                     Sequence[Sequence[float]]] = None):
        if l2s is not None and len(l2s) != len(l1ds):
            raise ValueError("need one L2 per core when L2s are present")
        if (node_drams is None) != (numa_penalty is None):
            raise ValueError("node_drams and numa_penalty come together")
        if node_drams is not None:
            if node_drams[0] is not dram:
                raise ValueError("dram must be node 0's device")
            if len(numa_penalty) != len(l1ds) or any(
                    len(row) != len(node_drams)
                    for row in numa_penalty):
                raise ValueError(
                    "numa_penalty must be num_cores x num_nodes")
        self.l1ds = l1ds
        self.l2s = l2s
        self.l3 = l3
        self.dram = dram
        self.drams = node_drams
        self._numa_penalty: Optional[Tuple[Tuple[float, ...], ...]] = (
            tuple(tuple(float(p) for p in row) for row in numa_penalty)
            if numa_penalty is not None else None)
        self.noc = noc
        self.stats = HierarchyStats()
        # Per-core cache-level tuples, precomputed once: the hierarchy's
        # shape is fixed after construction, so the hot path never
        # rebuilds level lists.
        self._levels = tuple(
            tuple(self._core_caches(core)) for core in range(len(l1ds)))
        self._levels_no_l1 = tuple(lv[1:] for lv in self._levels)
        # The mesh latency is a pure function of the core id; cache it
        # and bump the traversal counter in bulk on the fast path.
        self._noc_latency = tuple(
            noc.hops(core) * noc.config.hop_latency
            + noc.serialization_cycles()
            for core in range(len(l1ds)))
        self._line_size = l1ds[0].line_size if l1ds else 64
        # NDP shape: exactly one cache level -> skip the level loop.
        self._single_level = l2s is None and l3 is None

    @property
    def num_cores(self) -> int:
        return len(self.l1ds)

    def _core_caches(self, core_id: int):
        levels = [self.l1ds[core_id]]
        if self.l2s is not None:
            levels.append(self.l2s[core_id])
        if self.l3 is not None:
            levels.append(self.l3)
        return levels

    def access_fast(self, now: float, paddr: int, kind: int,
                    is_write: int, core_id: int, bypass_l1: int) -> float:
        """Service one request issued at cycle ``now``; return its latency.

        Allocation-free entry point (``kind`` is a kind code, flags are
        0/1 ints).  The request walks down the cache levels (paying each
        lookup latency), and on a full miss crosses the mesh to DRAM.
        Dirty victims created by fills are drained to DRAM as posted
        writes (they occupy banks but nobody waits on them), matching a
        write-back hierarchy.
        """
        self.stats.accesses += 1
        dram = self.dram
        if self._single_level:
            # NDP: one private L1 over DRAM — no level loop, and the
            # cache transition inlined (this is the hottest call chain
            # in the simulator: with hits short-circuited at the call
            # sites, nearly every request entering here misses to
            # DRAM).  Mirrors Cache.access_fast exactly.
            if bypass_l1:
                self.stats.l1_bypasses += 1
                latency = 0.0
            else:
                cache = self.l1ds[core_id]
                latency = 0.0 + cache.hit_latency
                line = paddr >> cache._line_shift
                cache_set = cache._sets[line % cache.num_sets]
                resident = cache_set.get(line)
                kind_stats = cache._kind_stats[kind]
                is_lru = cache._is_lru
                if resident is not None:
                    kind_stats.hits += 1
                    if is_lru:
                        cache_set[line] = cache_set.pop(line) | is_write
                    else:
                        cache._policy.on_hit(cache_set, line)
                        if is_write:
                            cache_set[line] = cache_set[line] | 1
                    return latency
                kind_stats.misses += 1
                if len(cache_set) < cache.associativity:
                    cache_set[line] = (kind << 1) | is_write
                    if not is_lru:
                        cache._policy.on_insert(cache_set, line)
                else:
                    if is_lru:
                        victim_tag = next(iter(cache_set))
                    else:
                        victim_tag = cache._policy.victim(cache_set)
                    packed = cache_set.pop(victim_tag)
                    if cache._policy_evicts:
                        cache._policy.on_evict(cache_set, victim_tag)
                    victim_kind = packed >> 1
                    cache_stats = cache.stats
                    if kind == 1:  # METADATA evicting ...
                        if victim_kind == 0:  # ... DATA
                            cache_stats.data_evicted_by_metadata += 1
                    elif kind == 0 and victim_kind == 1:
                        cache_stats.metadata_evicted_by_data += 1
                    cache_set[line] = (kind << 1) | is_write
                    if not is_lru:
                        cache._policy.on_insert(cache_set, line)
                    if packed & 1:  # dirty victim
                        cache_stats.writebacks += 1
                        self._drain_writeback(
                            now + latency,
                            victim_tag * self._line_size, victim_kind)
        else:
            if bypass_l1:
                self.stats.l1_bypasses += 1
                levels = self._levels_no_l1[core_id]
            else:
                levels = self._levels[core_id]
            latency = 0.0
            for cache in levels:
                latency += cache.hit_latency
                code = cache.access_fast(paddr, kind, is_write)
                if code == HIT:
                    return latency
                if code == MISS_DIRTY_EVICT:
                    self._drain_writeback(
                        now + latency,
                        cache.evict_tag * self._line_size,
                        cache.evict_kind)

        # Full miss: traverse the mesh, access DRAM, come back.
        noc_latency = self._noc_latency[core_id]
        self.noc.traversals += 2
        latency += noc_latency
        penalty_rows = self._numa_penalty
        if penalty_rows is None:
            latency += dram.access_fast(now + latency, paddr, kind,
                                        is_write)
        else:
            # One table lookup on the miss path: decode the frame's
            # node from the paddr tag, charge the interconnect
            # distance for distance-penalized nodes, and let that
            # node's banked DRAM service the (untagged) address.
            # ``remote_reads`` counts *penalized* accesses — a
            # zero-distance matrix makes every node local by
            # definition.
            node = paddr >> NODE_PADDR_SHIFT
            penalty = penalty_rows[core_id][node]
            if penalty:
                stats = self.stats
                stats.remote_reads += 1
                stats.remote_penalty_cycles += penalty
                latency += penalty
            latency += self.drams[node].access_fast(
                now + latency, paddr & NODE_PADDR_MASK, kind,
                is_write)
        latency += noc_latency
        self.stats.dram_reads += 1
        return latency

    def _drain_writeback(self, now: float, victim_paddr: int,
                         kind: int) -> None:
        """Route a posted write-back to its frame's DRAM device.

        Posted writes occupy the owning node's banks but nobody waits
        on them, so no distance penalty is charged (or counted).
        """
        if self._numa_penalty is None:
            self.dram.drain_write_fast(now, victim_paddr, kind)
        else:
            self.drams[victim_paddr >> NODE_PADDR_SHIFT].drain_write_fast(
                now, victim_paddr & NODE_PADDR_MASK, kind)

    def access(self, now: float, request: MemoryRequest) -> float:
        """Object-API shim over :meth:`access_fast`."""
        return self.access_fast(
            now, request.paddr, KIND_INDEX[request.kind],
            1 if request.access is AccessType.WRITE else 0,
            request.core_id, 1 if request.bypass_l1 else 0)

    # -- inspection helpers --------------------------------------------------

    def l1_miss_rate(self, kind: RequestKind = RequestKind.DATA) -> float:
        """Aggregate L1 miss rate across cores for one request kind."""
        hits = sum(c.stats.for_kind(kind).hits for c in self.l1ds)
        misses = sum(c.stats.for_kind(kind).misses for c in self.l1ds)
        total = hits + misses
        return misses / total if total else 0.0

    def dram_stats(self) -> DramStats:
        """Machine-wide DRAM statistics.

        The flat machine returns its single device's live stats object
        (identical values to every earlier release); a NUMA machine
        returns a merged view over the per-node devices.
        """
        if self.drams is None:
            return self.dram.stats
        merged = DramStats()
        for device in self.drams:
            merged.merge(device.stats)
        return merged

    def reset_stats(self) -> None:
        self.stats.reset()
        if self.drams is not None:
            for device in self.drams:
                device.stats.reset()
        else:
            self.dram.stats.reset()
        for cache in self.l1ds:
            cache.stats.reset()
        if self.l2s is not None:
            for cache in self.l2s:
                cache.stats.reset()
        if self.l3 is not None:
            self.l3.stats.reset()


def _node_drams(dram_timing: DramTiming, numa_nodes: int,
                numa_penalty) -> tuple:
    """(dram, node_drams, penalty) triple for the builders."""
    if numa_nodes <= 1:
        return DramModel(dram_timing), None, None
    if numa_penalty is None:
        raise ValueError("multi-node hierarchy needs numa_penalty")
    drams = [DramModel(dram_timing) for _ in range(numa_nodes)]
    return drams[0], drams, numa_penalty


def build_ndp_hierarchy(num_cores: int, dram_timing: DramTiming,
                        l1_size: int = 32 * 1024, l1_assoc: int = 8,
                        l1_latency: int = 4,
                        numa_nodes: int = 1,
                        numa_penalty=None) -> MemoryHierarchy:
    """NDP shape (Table I): private L1D per core, no L2/L3, HBM2.

    With ``numa_nodes > 1`` the HBM capacity splits into one banked
    device per node and ``numa_penalty`` (per-core rows of extra
    cycles by node) prices the vault-crossing distance.
    """
    l1ds = [
        Cache(f"L1D{c}", l1_size, l1_assoc, l1_latency)
        for c in range(num_cores)
    ]
    noc = MeshInterconnect(num_cores, near_memory=True)
    dram, drams, penalty = _node_drams(dram_timing, numa_nodes,
                                       numa_penalty)
    return MemoryHierarchy(l1ds, dram, noc, node_drams=drams,
                           numa_penalty=penalty)


def build_cpu_hierarchy(num_cores: int, dram_timing: DramTiming,
                        l1_size: int = 32 * 1024, l1_assoc: int = 8,
                        l1_latency: int = 4,
                        l2_size: int = 512 * 1024, l2_assoc: int = 16,
                        l2_latency: int = 16,
                        l3_per_core: int = 2 * 1024 * 1024,
                        l3_assoc: int = 16,
                        l3_latency: int = 35,
                        numa_nodes: int = 1,
                        numa_penalty=None) -> MemoryHierarchy:
    """CPU shape (Table I): L1D + L2 per core, shared L3, DDR4."""
    l1ds = [
        Cache(f"L1D{c}", l1_size, l1_assoc, l1_latency)
        for c in range(num_cores)
    ]
    l2s = [
        Cache(f"L2-{c}", l2_size, l2_assoc, l2_latency)
        for c in range(num_cores)
    ]
    l3 = Cache("L3", l3_per_core * num_cores, l3_assoc, l3_latency)
    noc = MeshInterconnect(num_cores, near_memory=False)
    dram, drams, penalty = _node_drams(dram_timing, numa_nodes,
                                       numa_penalty)
    return MemoryHierarchy(l1ds, dram, noc, l2s=l2s, l3=l3,
                           node_drams=drams, numa_penalty=penalty)
