"""Memory hierarchy composition: per-core caches, mesh, shared DRAM.

Two shapes exist in the paper (Table I):

* **CPU**: per-core L1D (32 KB) and L2 (512 KB), a shared L3 sized at
  2 MB per core, a chip mesh, and DDR4-2400 main memory.
* **NDP**: per-core L1D only — the logic-layer power/area budget allows
  a single shallow cache level — directly on top of HBM2.

``MemoryHierarchy.access`` is the single timing entry point used by the
core model (normal data) and the page-table walker (metadata).  NDPage's
metadata bypass is expressed on the request itself
(:attr:`MemoryRequest.bypass_l1`), so the hierarchy stays mechanism
agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.mem.cache import Cache
from repro.mem.dram import DramModel, DramTiming
from repro.mem.interconnect import MeshInterconnect
from repro.mem.request import AccessType, MemoryRequest, RequestKind


@dataclass
class HierarchyStats:
    """Counters the caches/DRAM do not already track."""

    accesses: int = 0
    l1_bypasses: int = 0
    dram_reads: int = 0

    def reset(self) -> None:
        self.accesses = 0
        self.l1_bypasses = 0
        self.dram_reads = 0


class MemoryHierarchy:
    """A configurable 1-3 level cache hierarchy over banked DRAM.

    Args:
        l1ds: one private L1 data cache per core.
        dram: shared main-memory model.
        noc: mesh connecting cores to the memory controller.
        l2s: optional private L2 per core (CPU configuration).
        l3: optional shared last-level cache (CPU configuration).
    """

    def __init__(self, l1ds: List[Cache], dram: DramModel,
                 noc: MeshInterconnect, l2s: Optional[List[Cache]] = None,
                 l3: Optional[Cache] = None):
        if l2s is not None and len(l2s) != len(l1ds):
            raise ValueError("need one L2 per core when L2s are present")
        self.l1ds = l1ds
        self.l2s = l2s
        self.l3 = l3
        self.dram = dram
        self.noc = noc
        self.stats = HierarchyStats()

    @property
    def num_cores(self) -> int:
        return len(self.l1ds)

    def _core_caches(self, core_id: int):
        levels = [self.l1ds[core_id]]
        if self.l2s is not None:
            levels.append(self.l2s[core_id])
        if self.l3 is not None:
            levels.append(self.l3)
        return levels

    def access(self, now: float, request: MemoryRequest) -> float:
        """Service ``request`` issued at cycle ``now``; return its latency.

        The request walks down the cache levels (paying each lookup
        latency), and on a full miss crosses the mesh to DRAM.  Dirty
        victims created by fills are drained to DRAM as posted writes
        (they occupy banks but nobody waits on them), matching a
        write-back hierarchy.
        """
        self.stats.accesses += 1
        latency = 0.0
        levels = self._core_caches(request.core_id)
        if request.bypass_l1:
            self.stats.l1_bypasses += 1
            levels = levels[1:]

        for cache in levels:
            latency += cache.hit_latency
            result = cache.access(request)
            if result.eviction is not None and result.eviction.dirty:
                self._writeback(now + latency, result.eviction, request)
            if result.hit:
                return latency

        # Full miss: traverse the mesh, access DRAM, come back.
        latency += self.noc.latency(request.core_id)
        latency += self.dram.access(now + latency, request)
        latency += self.noc.latency(request.core_id)
        self.stats.dram_reads += 1
        return latency

    def _writeback(self, now: float, eviction, request: MemoryRequest):
        line_paddr = eviction.line_addr * self.l1ds[0].line_size
        self.dram.drain_write(now, MemoryRequest(
            paddr=line_paddr,
            kind=eviction.kind,
            access=AccessType.WRITE,
            core_id=request.core_id,
        ))

    # -- inspection helpers --------------------------------------------------

    def l1_miss_rate(self, kind: RequestKind = RequestKind.DATA) -> float:
        """Aggregate L1 miss rate across cores for one request kind."""
        hits = sum(c.stats.for_kind(kind).hits for c in self.l1ds)
        misses = sum(c.stats.for_kind(kind).misses for c in self.l1ds)
        total = hits + misses
        return misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.stats.reset()
        self.dram.stats.reset()
        for cache in self.l1ds:
            cache.stats.reset()
        if self.l2s is not None:
            for cache in self.l2s:
                cache.stats.reset()
        if self.l3 is not None:
            self.l3.stats.reset()


def build_ndp_hierarchy(num_cores: int, dram_timing: DramTiming,
                        l1_size: int = 32 * 1024, l1_assoc: int = 8,
                        l1_latency: int = 4) -> MemoryHierarchy:
    """NDP shape (Table I): private L1D per core, no L2/L3, HBM2."""
    l1ds = [
        Cache(f"L1D{c}", l1_size, l1_assoc, l1_latency)
        for c in range(num_cores)
    ]
    noc = MeshInterconnect(num_cores, near_memory=True)
    return MemoryHierarchy(l1ds, DramModel(dram_timing), noc)


def build_cpu_hierarchy(num_cores: int, dram_timing: DramTiming,
                        l1_size: int = 32 * 1024, l1_assoc: int = 8,
                        l1_latency: int = 4,
                        l2_size: int = 512 * 1024, l2_assoc: int = 16,
                        l2_latency: int = 16,
                        l3_per_core: int = 2 * 1024 * 1024,
                        l3_assoc: int = 16,
                        l3_latency: int = 35) -> MemoryHierarchy:
    """CPU shape (Table I): L1D + L2 per core, shared L3, DDR4."""
    l1ds = [
        Cache(f"L1D{c}", l1_size, l1_assoc, l1_latency)
        for c in range(num_cores)
    ]
    l2s = [
        Cache(f"L2-{c}", l2_size, l2_assoc, l2_latency)
        for c in range(num_cores)
    ]
    l3 = Cache("L3", l3_per_core * num_cores, l3_assoc, l3_latency)
    noc = MeshInterconnect(num_cores, near_memory=False)
    return MemoryHierarchy(l1ds, DramModel(dram_timing), noc,
                           l2s=l2s, l3=l3)
