"""Result analysis: metrics, table formatting, paper experiments."""

from repro.analysis.metrics import (
    average_speedups,
    mean,
    speedup_table,
)
from repro.analysis.tables import format_table
from repro.analysis import experiments

__all__ = [
    "average_speedups",
    "experiments",
    "format_table",
    "mean",
    "speedup_table",
]
