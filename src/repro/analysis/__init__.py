"""Result analysis: metrics, tables, result cache, paper experiments."""

from repro.analysis.cache import CODE_VERSION, ResultCache, config_key
from repro.analysis.metrics import (
    average_speedups,
    mean,
    speedup_table,
)
from repro.analysis.tables import format_table
from repro.analysis import experiments

__all__ = [
    "CODE_VERSION",
    "ResultCache",
    "average_speedups",
    "config_key",
    "experiments",
    "format_table",
    "mean",
    "speedup_table",
]
