"""Derived metrics over :class:`~repro.sim.runner.RunResult` sets."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from repro.sim.runner import RunResult
from repro.sim.stats import geometric_mean


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def speedup_table(results_by_workload: Mapping[str, Mapping[str, RunResult]],
                  baseline: str = "radix") -> Dict[str, Dict[str, float]]:
    """Per-workload speedups of every mechanism over ``baseline``.

    Input maps workload -> mechanism -> RunResult (one paper figure's
    raw data); output maps workload -> mechanism -> speedup.  A cell
    quarantined by a keep-going sweep arrives as ``None`` and yields
    NaN — an explicit hole in the figure, not a crash; a missing
    baseline holes its whole row.
    """
    table: Dict[str, Dict[str, float]] = {}
    for workload, by_mechanism in results_by_workload.items():
        base = by_mechanism.get(baseline)
        row: Dict[str, float] = {}
        for mechanism, result in by_mechanism.items():
            if result is None or base is None:
                row[mechanism] = float("nan")
            else:
                row[mechanism] = result.speedup_over(base)
        table[workload] = row
    return table


def average_speedups(table: Mapping[str, Mapping[str, float]],
                     geo: bool = False) -> Dict[str, float]:
    """Across-workload average speedup per mechanism (figure 'AVG' bar).

    NaN cells (quarantined sweep cells) are excluded from the average
    rather than poisoning it.
    """
    mechanisms: List[str] = sorted(
        {m for row in table.values() for m in row})
    averages = {}
    for mechanism in mechanisms:
        values = [row[mechanism] for row in table.values()
                  if mechanism in row and row[mechanism] == row[mechanism]]
        averages[mechanism] = (
            geometric_mean(values) if geo else mean(values))
    return averages


def improvement_over(table: Mapping[str, Mapping[str, float]],
                     subject: str, reference: str) -> float:
    """Average relative improvement of ``subject`` over ``reference``.

    The paper's headline numbers ("NDPage outperforms ECH by 14.3%")
    compare average speedups of the two mechanisms.
    """
    averages = average_speedups(table)
    if averages.get(reference, 0.0) == 0.0:
        return 0.0
    return averages[subject] / averages[reference] - 1.0
