"""High-level experiment drivers: one function per paper table/figure.

Each function *declares* the config grid a figure needs, hands the grid
to a :class:`~repro.service.SweepService`, and assembles the returned
results into plain data (dicts keyed by workload/mechanism); the
benchmark harness prints the rows and EXPERIMENTS.md records
paper-vs-measured.  All drivers accept ``workloads``, ``refs_per_core``,
``scale`` and ``seed`` so tests can shrink them and the benches can run
them at full sweep size, plus ``runner`` — a
:class:`~repro.service.SweepService` (or legacy
:class:`~repro.sim.sweep.SweepRunner`) to parallelize and cache the
sweep (``python -m repro figure fig12 --jobs 4 --cache-dir DIR``).
Results are bit-identical whatever the backend: cells are independent
and the simulator is deterministic across processes.

A keep-going service (``SweepPolicy(strict=False)``) returns ``None``
for cells it had to quarantine (see the failure manifest in
``runner.last_stats``); every driver here renders those as explicit
NaN holes in its tables instead of crashing, so a 30-cell figure with
one faulty cell still reports the other 29.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import average_speedups, mean, speedup_table
from repro.core.mechanisms import PAPER_MECHANISMS
from repro.sim.config import (
    DEFAULT_SCALE,
    PLACEMENT_POLICIES,
    NumaParams,
    SystemConfig,
    cpu_config,
    ndp_config,
)
from repro.sim.runner import RunResult
from repro.vm.occupancy import occupancy_report
from repro.workloads.registry import ALL_WORKLOADS, make_workload

DEFAULT_REFS = 30_000


def _config(system: str, workload: str, mechanism: str, num_cores: int,
            refs_per_core: int, scale: float, seed: int) -> SystemConfig:
    factory = ndp_config if system == "ndp" else cpu_config
    return factory(workload=workload, mechanism=mechanism,
                   num_cores=num_cores, refs_per_core=refs_per_core,
                   scale=scale, seed=seed)


def _sweep(configs: Sequence[SystemConfig],
           runner) -> List[Optional[RunResult]]:
    """Run a declared grid through any object with the ``run(configs)``
    surface — a :class:`~repro.service.SweepService` or a legacy
    :class:`~repro.sim.sweep.SweepRunner`; serial in-process when no
    runner is given."""
    if runner is None:
        from repro.service import SweepService
        runner = SweepService(backend="serial")
    return runner.run(configs)


def _metric(result: Optional[RunResult], attr: str) -> float:
    """Metric of one cell; NaN for a quarantined (None) cell."""
    if result is None:
        return float("nan")
    return getattr(result, attr)


def _cpr(result: Optional[RunResult]) -> float:
    """Cycles per reference; NaN for a quarantined cell."""
    if result is None:
        return float("nan")
    return result.cycles / max(1, result.references)


# -- Motivation: Figs. 4-6 ----------------------------------------------------

def ptw_latency_comparison(workloads: Sequence[str] = ALL_WORKLOADS,
                           num_cores: int = 4,
                           refs_per_core: int = DEFAULT_REFS,
                           scale: float = DEFAULT_SCALE,
                           seed: int = 42,
                           runner=None
                           ) -> Dict[str, Dict[str, float]]:
    """Fig. 4: average radix PTW latency, NDP vs CPU, per workload."""
    grid = [(workload, system)
            for workload in workloads for system in ("ndp", "cpu")]
    results = _sweep([_config(system, workload, "radix", num_cores,
                              refs_per_core, scale, seed)
                      for workload, system in grid], runner)
    table: Dict[str, Dict[str, float]] = {}
    for (workload, system), result in zip(grid, results):
        row = table.setdefault(workload, {})
        row[system] = _metric(result, "ptw_latency_mean")
        row[f"{system}_max"] = _metric(result, "ptw_latency_max")
    for row in table.values():
        row["increase"] = (row["ndp"] / row["cpu"] - 1.0
                           if row["cpu"] else 0.0)
    return table


def translation_overhead_comparison(
        workloads: Sequence[str] = ALL_WORKLOADS,
        num_cores: int = 4,
        refs_per_core: int = DEFAULT_REFS,
        scale: float = DEFAULT_SCALE,
        seed: int = 42,
        runner=None
        ) -> Dict[str, Dict[str, float]]:
    """Fig. 5: fraction of runtime spent translating, NDP vs CPU."""
    grid = [(workload, system)
            for workload in workloads for system in ("ndp", "cpu")]
    results = _sweep([_config(system, workload, "radix", num_cores,
                              refs_per_core, scale, seed)
                      for workload, system in grid], runner)
    table: Dict[str, Dict[str, float]] = {}
    for (workload, system), result in zip(grid, results):
        table.setdefault(workload, {})[system] = \
            _metric(result, "translation_fraction")
    return table


def core_scaling(workloads: Sequence[str] = ALL_WORKLOADS,
                 core_counts: Sequence[int] = (1, 4, 8),
                 refs_per_core: int = DEFAULT_REFS,
                 scale: float = DEFAULT_SCALE,
                 seed: int = 42,
                 runner=None
                 ) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Fig. 6: mean PTW latency and overhead fraction vs core count."""
    grid = [(system, cores, workload)
            for system in ("ndp", "cpu")
            for cores in core_counts
            for workload in workloads]
    results = _sweep([_config(system, workload, "radix", cores,
                              refs_per_core, scale, seed)
                      for system, cores, workload in grid], runner)
    latencies: Dict[Tuple[str, int], List[float]] = {}
    overheads: Dict[Tuple[str, int], List[float]] = {}
    for (system, cores, _workload), result in zip(grid, results):
        if result is None:       # quarantined: drop from the average
            continue
        latencies.setdefault((system, cores), []).append(
            result.ptw_latency_mean)
        overheads.setdefault((system, cores), []).append(
            result.translation_fraction)
    out: Dict[str, Dict[int, Dict[str, float]]] = {
        "ndp": {}, "cpu": {}}
    for system in ("ndp", "cpu"):
        for cores in core_counts:
            out[system][cores] = {
                "ptw_latency": mean(latencies.get((system, cores), [])),
                "overhead": mean(overheads.get((system, cores), [])),
            }
    return out


# -- Key observations: Figs. 7, 8 and Section IV-A scalars --------------------

@dataclass
class MissRateRow:
    """Fig. 7 bars for one workload (4-core NDP)."""

    data_ideal: float      # normal-data L1 miss, no translation traffic
    data_actual: float     # normal-data L1 miss with radix PTEs cached
    metadata: float        # PTE L1 miss rate
    tlb_miss_rate: float
    metadata_mem_fraction: float
    pollution_evictions: int


def l1_miss_breakdown(workloads: Sequence[str] = ALL_WORKLOADS,
                      num_cores: int = 4,
                      refs_per_core: int = DEFAULT_REFS,
                      scale: float = DEFAULT_SCALE,
                      seed: int = 42,
                      runner=None
                      ) -> Dict[str, MissRateRow]:
    """Fig. 7 plus the Section IV-A scalar claims."""
    grid = [(workload, mechanism)
            for workload in workloads
            for mechanism in ("radix", "ideal")]
    results = _sweep([_config("ndp", workload, mechanism, num_cores,
                              refs_per_core, scale, seed)
                      for workload, mechanism in grid], runner)
    by_cell = {cell: result for cell, result in zip(grid, results)}
    table = {}
    for workload in workloads:
        actual = by_cell[(workload, "radix")]
        ideal = by_cell[(workload, "ideal")]
        if actual is None or ideal is None:
            nan = float("nan")
            table[workload] = MissRateRow(nan, nan, nan, nan, nan, 0)
            continue
        table[workload] = MissRateRow(
            data_ideal=ideal.l1_data_miss_rate,
            data_actual=actual.l1_data_miss_rate,
            metadata=actual.l1_metadata_miss_rate,
            tlb_miss_rate=actual.tlb_miss_rate,
            metadata_mem_fraction=actual.metadata_mem_fraction,
            pollution_evictions=actual.data_evicted_by_metadata,
        )
    return table


def pte_dram_amplification(workload: str = "rnd", num_cores: int = 4,
                           refs_per_core: int = DEFAULT_REFS,
                           scale: float = DEFAULT_SCALE,
                           seed: int = 42,
                           runner=None
                           ) -> float:
    """Section IV-A: NDP-vs-CPU ratio of PTE accesses reaching DRAM."""
    ndp, cpu = _sweep(
        [_config(system, workload, "radix", num_cores, refs_per_core,
                 scale, seed)
         for system in ("ndp", "cpu")], runner)
    if ndp is None or cpu is None:
        return float("nan")
    cpu_pte = max(1, cpu.dram_accesses_by_kind.get("metadata", 0))
    return ndp.dram_accesses_by_kind.get("metadata", 0) / cpu_pte


def occupancy_study(workloads: Sequence[str] = ALL_WORKLOADS,
                    seed: int = 42) -> Dict[str, Dict[str, float]]:
    """Fig. 8: page-table occupancy at the paper's full dataset scale.

    Occupancy is structural, so it is computed analytically from each
    workload's full-scale mapped ranges (see repro.vm.occupancy); tests
    verify the analytic form against live tables at small scale.
    """
    table = {}
    for workload in workloads:
        ranges = make_workload(workload, scale=1.0,
                               seed=seed).page_ranges()
        table[workload] = occupancy_report(ranges)
    return table


def pwc_hit_rates(workloads: Sequence[str] = ALL_WORKLOADS,
                  num_cores: int = 4, mechanism: str = "radix",
                  refs_per_core: int = DEFAULT_REFS,
                  scale: float = DEFAULT_SCALE,
                  seed: int = 42,
                  runner=None
                  ) -> Dict[str, float]:
    """Section V-C: PWC hit rate per level, averaged over workloads."""
    results = _sweep([_config("ndp", workload, mechanism, num_cores,
                              refs_per_core, scale, seed)
                      for workload in workloads], runner)
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for result in results:
        if result is None:       # quarantined: drop from the average
            continue
        for level, rate in result.pwc_hit_rates.items():
            sums[level] = sums.get(level, 0.0) + rate
            counts[level] = counts.get(level, 0) + 1
    return {level: sums[level] / counts[level] for level in sums}


# -- Main results: Figs. 12-14 ------------------------------------------------

def speedup_experiment(num_cores: int,
                       workloads: Sequence[str] = ALL_WORKLOADS,
                       mechanisms: Sequence[str] = PAPER_MECHANISMS,
                       system: str = "ndp",
                       refs_per_core: int = DEFAULT_REFS,
                       scale: float = DEFAULT_SCALE,
                       seed: int = 42,
                       runner=None
                       ) -> Tuple[Dict[str, Dict[str, float]],
                                  Dict[str, float],
                                  Dict[str, Dict[str, RunResult]]]:
    """Figs. 12/13/14: per-workload speedups over Radix.

    Returns (speedup table, across-workload averages, raw results).
    """
    grid = [(workload, mechanism)
            for workload in workloads for mechanism in mechanisms]
    results = _sweep([_config(system, workload, mechanism, num_cores,
                              refs_per_core, scale, seed)
                      for workload, mechanism in grid], runner)
    raw: Dict[str, Dict[str, RunResult]] = {}
    for (workload, mechanism), result in zip(grid, results):
        raw.setdefault(workload, {})[mechanism] = result
    table = speedup_table(raw, baseline="radix")
    return table, average_speedups(table), raw


# -- Beyond the paper: multiprogrammed interference ---------------------------

def tenant_interference(workload: str = "xs",
                        mechanisms: Sequence[str] = (
                            "radix", "ech", "hugepage", "ndpage"),
                        tenant_counts: Sequence[int] = (1, 2, 4),
                        num_cores: int = 1,
                        refs_per_core: int = DEFAULT_REFS,
                        scale: float = DEFAULT_SCALE,
                        seed: int = 42,
                        runner=None
                        ) -> Dict[str, Dict[str, float]]:
    """Each mechanism under 1/2/4 co-runners on a shared frame pool.

    The single-address-space figures hide where page-table designs
    differentiate in deployment: multiprogramming.  Every cell runs
    ``tenant_counts[i]`` copies of ``workload`` (distinct deterministic
    streams, private page tables) through the ASID-tagged TLBs and the
    quantum scheduler, and the table reports cycles-per-reference plus
    its degradation relative to the mechanism's own cell at the lowest
    tenant count in the grid (1 by default, whatever the sequence
    order) — so the interference factor isolates co-runner cost from
    baseline mechanism cost — alongside the shootdown and switch
    counts behind it.
    """
    grid = [(mechanism, tenants)
            for mechanism in mechanisms for tenants in tenant_counts]
    results = _sweep([ndp_config(workload=workload, mechanism=mechanism,
                                 num_cores=num_cores, tenants=tenants,
                                 refs_per_core=refs_per_core,
                                 scale=scale, seed=seed)
                      for mechanism, tenants in grid], runner)
    by_cell = {cell: result for cell, result in zip(grid, results)}
    base_tenants = min(tenant_counts)
    table: Dict[str, Dict[str, float]] = {}
    for mechanism in mechanisms:
        row: Dict[str, float] = {}
        base_cpr = _cpr(by_cell[(mechanism, base_tenants)])
        for tenants in tenant_counts:
            result = by_cell[(mechanism, tenants)]
            cpr = _cpr(result)
            row[f"{tenants}t cpr"] = cpr
            row[f"{tenants}t x"] = cpr / base_cpr if base_cpr else 0.0
            row[f"{tenants}t shoot"] = (
                result.extras.get("shootdowns", 0.0)
                if result is not None else float("nan"))
        table[mechanism] = row
    return table


def numa_placement(workload: str = "rnd",
                   mechanisms: Sequence[str] = (
                       "radix", "ech", "hugepage", "ndpage"),
                   node_counts: Sequence[int] = (1, 2, 4),
                   placements: Sequence[str] = PLACEMENT_POLICIES,
                   num_cores: int = 2,
                   refs_per_core: int = DEFAULT_REFS,
                   scale: float = DEFAULT_SCALE,
                   seed: int = 42,
                   runner=None
                   ) -> Dict[str, Dict[str, float]]:
    """Each mechanism x placement policy under 1/2/4 NUMA nodes.

    Every cell splits physical memory into per-node frame pools with
    distance-dependent DRAM latency and runs the placement policy end
    to end (``local`` / ``interleave`` / ``preferred-node`` /
    ``pte-local``).  Rows are ``mechanism/placement``; per node count
    the table reports cycles-per-reference, its degradation relative
    to the same row at the smallest node count (the flat machine when
    1 is in the grid), and the fraction of DRAM reads that paid
    cross-node distance — the knob that separates translation
    mechanisms once page-table pages can land remotely.  Single-node cells are
    placement-independent, collapse to the default flat config (cache
    keys shared with every other figure) and dedup inside the sweep.
    """
    grid = [(mechanism, placement, nodes)
            for mechanism in mechanisms
            for placement in placements
            for nodes in node_counts]
    results = _sweep(
        [ndp_config(workload=workload, mechanism=mechanism,
                    num_cores=num_cores, refs_per_core=refs_per_core,
                    scale=scale, seed=seed,
                    # Single-node cells normalize to the flat default
                    # inside NumaParams, so they dedup across
                    # placements and with every other figure's cells.
                    numa=NumaParams(nodes=nodes, placement=placement))
         for mechanism, placement, nodes in grid], runner)
    by_cell = {cell: result for cell, result in zip(grid, results)}
    base_nodes = min(node_counts)
    table: Dict[str, Dict[str, float]] = {}
    for mechanism in mechanisms:
        for placement in placements:
            row: Dict[str, float] = {}
            base_cpr = _cpr(by_cell[(mechanism, placement,
                                     base_nodes)])
            for nodes in node_counts:
                result = by_cell[(mechanism, placement, nodes)]
                cpr = _cpr(result)
                row[f"{nodes}n cpr"] = cpr
                row[f"{nodes}n x"] = (cpr / base_cpr if base_cpr
                                      else 0.0)
                row[f"{nodes}n rem"] = (
                    result.extras.get("remote_fraction", 0.0)
                    if result is not None else float("nan"))
            table[f"{mechanism}/{placement}"] = row
    return table


def ablation_experiment(num_cores: int = 4,
                        workloads: Sequence[str] = ("bfs", "xs", "rnd"),
                        refs_per_core: int = DEFAULT_REFS,
                        scale: float = DEFAULT_SCALE,
                        seed: int = 42,
                        runner=None
                        ) -> Dict[str, Dict[str, float]]:
    """Decompose NDPage: bypass-only vs flatten-only vs both vs no-PWC,
    plus the counterfactual upper-level (PL3/PL2) flattening."""
    mechanisms = ("radix", "ndpage-bypass-only", "ndpage-flatten-only",
                  "ndpage-nopwc", "ndpage-flatten-upper", "ndpage")
    table, _, _ = speedup_experiment(
        num_cores, workloads=workloads, mechanisms=mechanisms,
        refs_per_core=refs_per_core, scale=scale, seed=seed,
        runner=runner)
    return table
