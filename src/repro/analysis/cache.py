"""On-disk result cache: resumable sweeps, incremental figures.

Every cell of a figure sweep is a pure function of its
:class:`~repro.sim.config.SystemConfig` (the simulator is fully
deterministic across processes), so finished :class:`RunResult`\\ s can
be memoized on disk and reused across invocations.  The cache key is a
SHA-256 of the config's canonical JSON plus a *code version tag*
(:data:`CODE_VERSION`): bumping the tag invalidates every cached result
at once, which is the required move whenever a change alters simulated
statistics (the golden-stats tests catch such changes; hot-path-only
refactors keep the tag).

Entries are one JSON file per key, written atomically (temp file +
``os.replace``), so an interrupted sweep leaves a valid cache holding
exactly the cells that finished — re-running the sweep simulates only
the missing ones.  JSON round-trips Python floats exactly (repr-based),
so cached results are bit-identical to freshly simulated ones; the
tests assert this field by field.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.sim.config import SystemConfig
from repro.sim.runner import RunResult

#: Code-relevant version of the simulation.  Bump whenever a change
#: perturbs simulated statistics (i.e. whenever the golden values in
#: tests/sim/test_golden_stats.py move); cached results from older
#: tags are then ignored.  Pure speedups keep the tag.
CODE_VERSION = "sim-v2"

#: On-disk format version of the cache entries themselves.
_ENTRY_FORMAT = 1


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Plain-data form of a RunResult (config nested as a dict)."""
    data = dataclasses.asdict(result)
    data["config"] = result.config.to_dict()
    return data


def result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Inverse of :func:`result_to_dict`, exact to the bit."""
    fields = dict(data)
    fields["config"] = SystemConfig.from_dict(fields["config"])
    return RunResult(**fields)


def config_key(config: SystemConfig,
               code_version: str = CODE_VERSION) -> str:
    """Stable hex digest identifying (config, simulation code)."""
    payload = config.canonical_json() + "\n" + code_version
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


@dataclasses.dataclass
class CacheStats:
    """Counters for one cache's lifetime in this process."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Directory of memoized RunResults keyed by config hash.

    >>> cache = ResultCache(".sweep-cache")
    >>> cached = cache.load(config)          # None on miss
    >>> cache.store(config, run_once(config))
    """

    def __init__(self, root, code_version: str = CODE_VERSION):
        self.root = Path(root)
        self.code_version = code_version
        self.stats = CacheStats()

    def key(self, config: SystemConfig) -> str:
        return config_key(config, self.code_version)

    def path(self, config: SystemConfig) -> Path:
        return self.root / f"{self.key(config)}.json"

    def load(self, config: SystemConfig,
             key: Optional[str] = None) -> Optional[RunResult]:
        """Return the cached result for ``config`` or None.

        Any unreadable entry — truncated JSON, or a payload whose
        fields no longer match the current RunResult/SystemConfig
        shape (written before a field was added/renamed) — degrades to
        a miss: the cell is re-simulated and the entry overwritten.

        ``key`` skips re-hashing when the caller (the sweep runner)
        already computed this config's key.
        """
        path = self.root / f"{key}.json" if key else self.path(config)
        try:
            entry = json.loads(path.read_text())
            if (entry.get("format") != _ENTRY_FORMAT
                    or entry.get("code_version") != self.code_version):
                raise KeyError("stale entry")
            result = result_from_dict(entry["result"])
        except (FileNotFoundError, json.JSONDecodeError, KeyError,
                TypeError, ValueError, AttributeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def store(self, config: SystemConfig, result: RunResult,
              key: Optional[str] = None) -> Path:
        """Atomically persist ``result`` under ``config``'s key.

        The entry holds only what :meth:`load` reads; the config
        itself travels inside the result (``result.config``).
        """
        path = self.root / f"{key}.json" if key else self.path(config)
        entry = {
            "format": _ENTRY_FORMAT,
            "code_version": self.code_version,
            "result": result_to_dict(result),
        }
        # Created on first write, not in __init__, so a cache that is
        # only ever consulted leaves no empty directory behind.
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry) + "\n")
        os.replace(tmp, path)
        self.stats.stores += 1
        return path

    def __contains__(self, config: SystemConfig) -> bool:
        return self.path(config).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        Also sweeps up ``*.tmp.*`` orphans a mid-write kill may have
        left behind (they are not counted — they were never entries).
        """
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        for path in self.root.glob("*.tmp.*"):
            path.unlink()
        return removed
