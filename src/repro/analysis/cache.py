"""On-disk result cache: resumable sweeps, incremental figures.

Every cell of a figure sweep is a pure function of its
:class:`~repro.sim.config.SystemConfig` (the simulator is fully
deterministic across processes), so finished :class:`RunResult`\\ s can
be memoized on disk and reused across invocations.  The cache key is a
SHA-256 of the config's canonical JSON plus a *code version tag*
(:data:`CODE_VERSION`): bumping the tag invalidates every cached result
at once, which is the required move whenever a change alters simulated
statistics (the golden-stats tests catch such changes; hot-path-only
refactors keep the tag).

Entries are one JSON file per key, written atomically (temp file +
``os.replace``), so an interrupted sweep leaves a valid cache holding
exactly the cells that finished — re-running the sweep simulates only
the missing ones.  JSON round-trips Python floats exactly (repr-based),
so cached results are bit-identical to freshly simulated ones; the
tests assert this field by field.

Integrity (entry-format v2): each entry embeds a SHA-256 checksum of
its result payload, verified on every load, so a bit-flipped but
still-parseable entry cannot be served silently.  Undecodable or
checksum-failing entries are moved to a ``quarantine/`` subdirectory —
they degrade to a one-time miss and are re-simulated, instead of being
retried (and failing) every run.  v1 entries (pre-checksum) remain
readable and are migrated to v2 in place on first load.
:meth:`ResultCache.verify` audits the whole directory eagerly;
:meth:`ResultCache.gc` removes what only wastes space (orphaned tmp
files, stale code versions, quarantined entries).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.obs.events import emit
from repro.sim.config import SystemConfig
from repro.sim.faults import cell_label, guarded_io, maybe_corrupt_entry
from repro.sim.runner import RunResult

#: Code-relevant version of the simulation.  Bump whenever a change
#: perturbs simulated statistics (i.e. whenever the golden values in
#: tests/sim/test_golden_stats.py move); cached results from older
#: tags are then ignored.  Pure speedups keep the tag.
CODE_VERSION = "sim-v2"

#: On-disk format version of the cache entries themselves.  v2 added
#: the per-entry payload checksum; v1 entries (no ``sha256`` field)
#: are still readable and upgraded in place on first load.
_ENTRY_FORMAT = 2

#: Subdirectory corrupt entries are moved to (never re-read).
QUARANTINE_DIR = "quarantine"


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Plain-data form of a RunResult (config nested as a dict)."""
    data = dataclasses.asdict(result)
    data["config"] = result.config.to_dict()
    return data


def result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Inverse of :func:`result_to_dict`, exact to the bit."""
    fields = dict(data)
    fields["config"] = SystemConfig.from_dict(fields["config"])
    return RunResult(**fields)


def config_key(config: SystemConfig,
               code_version: str = CODE_VERSION) -> str:
    """Stable hex digest identifying (config, simulation code)."""
    payload = config.canonical_json() + "\n" + code_version
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


def payload_checksum(result_data: Dict[str, Any]) -> str:
    """SHA-256 over the canonical serialization of a result payload.

    ``sort_keys`` makes the digest independent of dict insertion
    order; JSON float round-tripping is exact, so store-time and
    load-time serializations agree byte for byte.
    """
    text = json.dumps(result_data, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Counters for one cache's lifetime in this process."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0   # entries quarantined on load (subset of misses)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclasses.dataclass
class CacheReport:
    """What one :meth:`ResultCache.verify` pass found."""

    checked: int = 0
    ok: int = 0
    corrupt: int = 0            # quarantined by this pass
    stale: int = 0              # other code version (left for gc)
    tmp_orphans: int = 0        # *.tmp.* from a mid-write kill
    quarantined_total: int = 0  # files in quarantine/ after the pass

    def summary(self) -> str:
        return (f"{self.checked} entries: {self.ok} ok, "
                f"{self.corrupt} corrupt (quarantined), "
                f"{self.stale} stale, {self.tmp_orphans} tmp orphans, "
                f"{self.quarantined_total} in quarantine")


class ResultCache:
    """Directory of memoized RunResults keyed by config hash.

    >>> cache = ResultCache(".sweep-cache")
    >>> cached = cache.load(config)          # None on miss
    >>> cache.store(config, run_once(config))
    """

    def __init__(self, root, code_version: str = CODE_VERSION,
                 fault_plan=None):
        self.root = Path(root)
        self.code_version = code_version
        self.stats = CacheStats()
        #: Optional FaultPlan for deterministic corruption injection
        #: (tests / CI chaos job); None falls back to the
        #: ``REPRO_FAULT_PLAN`` environment variable.
        self.fault_plan = fault_plan

    def key(self, config: SystemConfig) -> str:
        return config_key(config, self.code_version)

    def path(self, config: SystemConfig) -> Path:
        return self.root / f"{self.key(config)}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR

    # -- decode / verify ---------------------------------------------

    def _decode(self, text: str
                ) -> Tuple[str, Optional[Dict[str, Any]]]:
        """Classify one entry body: ('ok', payload) | ('v1', payload)
        | ('stale', None) | ('corrupt', None).

        'stale' (another code version) is not corruption: the bytes
        are fine, they just belong to different simulation code.
        """
        try:
            entry = json.loads(text)
            fmt = entry.get("format")
            if fmt not in (1, _ENTRY_FORMAT):
                return "corrupt", None
            if entry.get("code_version") != self.code_version:
                return "stale", None
            payload = entry["result"]
            if fmt == _ENTRY_FORMAT:
                if entry.get("sha256") != payload_checksum(payload):
                    return "corrupt", None
            return ("ok" if fmt == _ENTRY_FORMAT else "v1"), payload
        except (json.JSONDecodeError, KeyError, TypeError,
                ValueError, AttributeError):
            return "corrupt", None

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is never retried again."""
        qdir = self.quarantine_dir
        qdir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, qdir / path.name)
        except FileNotFoundError:
            pass  # another process got there first

    def load(self, config: SystemConfig,
             key: Optional[str] = None) -> Optional[RunResult]:
        """Return the cached result for ``config`` or None.

        An unreadable entry — truncated JSON, a failing payload
        checksum (bit flip), or a payload whose fields no longer match
        the current RunResult/SystemConfig shape — degrades to a miss
        *and* is moved to ``quarantine/`` so it isn't re-parsed (and
        re-failed) on every future run; the cell is re-simulated and a
        fresh entry overwrites its slot.  v1 entries verify without a
        checksum and are migrated to v2 in place.

        ``key`` skips re-hashing when the caller (the sweep runner)
        already computed this config's key.
        """
        path = self.root / f"{key}.json" if key else self.path(config)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        status, payload = self._decode(text)
        if status in ("ok", "v1"):
            try:
                result = result_from_dict(payload)
            except (KeyError, TypeError, ValueError, AttributeError):
                # Parseable and checksum-clean, but the shape predates
                # a RunResult/SystemConfig field change.
                status = "corrupt"
            else:
                self.stats.hits += 1
                emit("cache.hit", key=path.stem)
                if status == "v1":
                    # v1 -> v2 migration: rewrite with a checksum so
                    # integrity covers this entry from now on.
                    self.store(config, result, key=key)
                return result
        self.stats.misses += 1
        if status == "corrupt":
            self.stats.corrupt += 1
            emit("cache.corrupt", key=path.stem)
            self._quarantine(path)
        return None

    def store(self, config: SystemConfig, result: RunResult,
              key: Optional[str] = None) -> Path:
        """Atomically persist ``result`` under ``config``'s key.

        The entry holds only what :meth:`load` reads; the config
        itself travels inside the result (``result.config``).
        """
        path = self.root / f"{key}.json" if key else self.path(config)
        payload = result_to_dict(result)
        entry = {
            "format": _ENTRY_FORMAT,
            "code_version": self.code_version,
            "sha256": payload_checksum(payload),
            "result": payload,
        }
        # Created on first write, not in __init__, so a cache that is
        # only ever consulted leaves no empty directory behind.
        start = time.perf_counter()
        self.root.mkdir(parents=True, exist_ok=True)
        text = json.dumps(entry) + "\n"
        label = cell_label(config)

        def write() -> None:
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            try:
                tmp.write_text(text)
                os.replace(tmp, path)
            except BaseException:
                # Never leave a half-written tmp file behind for
                # verify/gc to sweep — and never amplify ENOSPC by
                # stranding orphans on an already-full disk.
                tmp.unlink(missing_ok=True)
                raise

        # Transient I/O faults (and any injected ioerr/enospc/stall
        # clause matching ``cache/<label>``) retry with bounded
        # backoff; a persistent failure propagates and the sweep
        # supervisor degrades it to a cache hole + manifest entry.
        guarded_io(write, "cache", label, self.fault_plan)
        self.stats.stores += 1
        emit("cache.store", key=path.stem,
             wall=round(time.perf_counter() - start, 6))
        # Fault-injection seam (no-op unless a corrupt clause is
        # active): perturbs the entry just written, as a torn write or
        # bad disk would.
        maybe_corrupt_entry(path, cell_label(config),
                            plan=self.fault_plan)
        return path

    # -- whole-cache maintenance -------------------------------------

    def _classify(self, path: Path) -> str:
        """'ok' | 'stale' | 'corrupt' for one entry file."""
        try:
            text = path.read_text()
        except OSError:
            return "corrupt"
        status, payload = self._decode(text)
        if status in ("ok", "v1"):
            try:
                result_from_dict(payload)
            except (KeyError, TypeError, ValueError, AttributeError):
                return "corrupt"
            return "ok"
        return status

    def verify(self) -> CacheReport:
        """Audit every entry eagerly: parse, format, checksum, shape.

        Corrupt entries are moved to ``quarantine/`` — exactly what
        :meth:`load` would do lazily, but across the whole directory
        at once.  Stale-code-version entries and orphaned tmp files
        are counted but left in place; :meth:`gc` removes them.
        """
        report = CacheReport()
        for path in sorted(self.root.glob("*.json")):
            report.checked += 1
            status = self._classify(path)
            if status == "ok":
                report.ok += 1
            elif status == "stale":
                report.stale += 1
            else:
                self.stats.corrupt += 1
                self._quarantine(path)
                report.corrupt += 1
        report.tmp_orphans = sum(
            1 for _ in self.root.glob("*.tmp.*"))
        report.quarantined_total = sum(
            1 for _ in self.quarantine_dir.glob("*"))
        return report

    def gc(self) -> Dict[str, int]:
        """Sweep out everything that only wastes space.

        Removes orphaned ``*.tmp.*`` files (mid-write kills), entries
        written under another code version (their keys can never be
        looked up by this cache), corrupt entries (quarantining them
        first is unnecessary — gc is the terminal step), and
        previously quarantined files.  Returns counts per category.
        """
        removed = {"tmp_orphans": 0, "stale": 0, "corrupt": 0,
                   "quarantined": 0}
        for path in self.root.glob("*.tmp.*"):
            if self._unlink(path):
                removed["tmp_orphans"] += 1
        for path in self.root.glob("*.json"):
            status = self._classify(path)
            if status in ("stale", "corrupt") and self._unlink(path):
                removed[status] += 1
        for path in self.quarantine_dir.glob("*"):
            if self._unlink(path):
                removed["quarantined"] += 1
        return removed

    def __contains__(self, config: SystemConfig) -> bool:
        return self.path(config).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    @staticmethod
    def _unlink(path: Path) -> bool:
        """Delete tolerating a concurrent deletion; True if we won."""
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        Also sweeps up ``*.tmp.*`` orphans a mid-write kill may have
        left behind and the ``quarantine/`` contents (neither is
        counted — they were not live entries).  Concurrent clears are
        safe: losing a deletion race skips the file instead of
        raising ``FileNotFoundError``.
        """
        removed = 0
        for path in self.root.glob("*.json"):
            if self._unlink(path):
                removed += 1
        for path in self.root.glob("*.tmp.*"):
            self._unlink(path)
        for path in self.quarantine_dir.glob("*"):
            self._unlink(path)
        return removed
