"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's figures
plot; this module is the tiny formatter those harnesses share.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_mapping_table(table: Mapping[str, Mapping[str, float]],
                         columns: Sequence[str], row_label: str,
                         title: Optional[str] = None) -> str:
    """Render workload -> column -> value nested mappings."""
    headers = [row_label] + list(columns)
    rows = [
        [name] + [row.get(col, float("nan")) for col in columns]
        for name, row in table.items()
    ]
    return format_table(headers, rows, title=title)
