"""GenomicsBench k-mer counting (GEN in Table II, 33 GB).

k-mer counting streams the input sequence and, for every k-mer, updates
a count in a giant hash table: one sequential input read, one or two
uniformly random bucket touches, one write back.  The hash table is the
largest footprint in the suite, which is why GEN shows the worst
translation behaviour in the paper's motivation figures.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.base import Region, Workload, layout_regions
from repro.workloads.synthetic import (
    interleave,
    sequential_window,
    windowed_uniform,
)

GIB = 1024 ** 3

BUCKET_BYTES = 16          # key + count
CHAIN_PROBABILITY = 0.3    # fraction of updates visiting a chained slot


class GenomicsWorkload(Workload):
    """Hash-table-bound k-mer counting."""

    name = "gen"
    suite = "GenomicsBench"
    dataset_bytes = 33 * GIB
    gap_cycles = 2

    #: Hash table dominates; the remainder is the streamed input.
    TABLE_FRACTION = 0.85

    def __init__(self, scale: float = 1.0, seed: int = 42):
        super().__init__(scale=scale, seed=seed)
        total = int(self.dataset_bytes * scale)
        table_bytes = max(BUCKET_BYTES * 8192,
                          int(total * self.TABLE_FRACTION))
        input_bytes = max(4096, total - table_bytes)
        self.num_buckets = table_bytes // BUCKET_BYTES
        self.input_words = input_bytes // 8
        self._regions = layout_regions([
            ("hash_table", self.num_buckets * BUCKET_BYTES),
            ("input_seq", self.input_words * 8),
        ])
        self._table, self._input = self._regions

    def regions(self) -> List[Region]:
        return list(self._regions)

    def _chunk(self, rng: np.random.Generator, num_refs: int,
               state: dict) -> Tuple[np.ndarray, np.ndarray]:
        # Per k-mer: input read, bucket read, chain read, bucket write.
        per_kmer = 4
        kmers = -(-num_refs // per_kmer)

        cursor = state.get("input_cursor", 0)
        input_idx = sequential_window(cursor, kmers) % self.input_words
        state["input_cursor"] = int((cursor + kmers) % self.input_words)

        # Nearby input positions share k-mer content, so bucket traffic
        # clusters in a drifting hot band of the table.
        buckets = windowed_uniform(rng, self.num_buckets, kmers,
                                   state, "band", cluster_items=2048)
        bucket_addr = self._table.base + buckets * BUCKET_BYTES
        # A fraction of updates follow a chain pointer to a second,
        # also-random bucket; the rest re-touch the same bucket.
        chains = windowed_uniform(rng, self.num_buckets, kmers,
                                  state, "band", cluster_items=2048)
        chain_mask = rng.random(kmers) < CHAIN_PROBABILITY
        chain_addr = np.where(
            chain_mask, self._table.base + chains * BUCKET_BYTES,
            bucket_addr)

        addresses, writes = interleave([
            (self._input.base + input_idx * 8, False),
            (bucket_addr, False),
            (chain_addr, False),
            (bucket_addr, True),
        ])
        return addresses[:num_refs], writes[:num_refs]
