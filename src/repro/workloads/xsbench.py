"""XSBench particle-transport lookups (XS in Table II, 9 GB).

XSBench's hot loop performs macroscopic cross-section lookups: a binary
search over the unionized energy grid followed by reads of per-nuclide
cross-section rows.  The binary search is the translation killer —
~log2(n) touches with geometrically shrinking stride visit a different
page almost every probe.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.base import Region, Workload, layout_regions
from repro.workloads.synthetic import binary_search_probes

GIB = 1024 ** 3

GRID_ENTRY_BYTES = 8          # unionized energy grid points
XS_ROW_BYTES = 16 * 8         # cross-section data read per lookup
XS_READS_PER_ROW = 16         # sequential 8 B reads inside the row


class XSBenchWorkload(Workload):
    """Monte Carlo cross-section lookup kernel."""

    name = "xs"
    suite = "XSBench"
    dataset_bytes = 9 * GIB
    gap_cycles = 3  # FLOP-heavy interpolation between lookups

    #: Fraction of the dataset taken by the unionized energy grid; the
    #: remainder holds per-nuclide cross-section rows.
    GRID_FRACTION = 0.25

    def __init__(self, scale: float = 1.0, seed: int = 42):
        super().__init__(scale=scale, seed=seed)
        total = int(self.dataset_bytes * scale)
        grid_bytes = max(GRID_ENTRY_BYTES * 1024,
                         int(total * self.GRID_FRACTION))
        xs_bytes = max(XS_ROW_BYTES * 64, total - grid_bytes)
        # Non-round sizes: real unionized grids have arbitrary lengths.
        # A round (power-of-two-ish) size would align every binary-search
        # midpoint to the same page offset — a synthetic-only pathology.
        self.grid_points = grid_bytes // GRID_ENTRY_BYTES - 104_729
        self.xs_rows = xs_bytes // XS_ROW_BYTES - 10_007
        if self.grid_points < 1024 or self.xs_rows < 64:
            self.grid_points = max(1024, grid_bytes // GRID_ENTRY_BYTES)
            self.xs_rows = max(64, xs_bytes // XS_ROW_BYTES)
        self._regions = layout_regions([
            ("egrid", self.grid_points * GRID_ENTRY_BYTES),
            ("xs_data", self.xs_rows * XS_ROW_BYTES),
        ])
        self._egrid, self._xs = self._regions

    def regions(self) -> List[Region]:
        return list(self._regions)

    def _lookup_refs(self, rng: np.random.Generator,
                     state: dict) -> Tuple[List[int], List[bool]]:
        """Addresses of one cross-section lookup.

        Particle energies cluster: successive lookups probe a drifting
        band of the grid, and the cross-section rows they read follow.
        """
        band = max(1024, self.grid_points // 100)
        cursor = state.get("energy_band", 0)
        target = (cursor + int(rng.integers(0, band))) % self.grid_points
        state["energy_band"] = (cursor + max(1, band // 64)) \
            % self.grid_points
        addresses = [
            self._egrid.base + probe * GRID_ENTRY_BYTES
            for probe in binary_search_probes(target, self.grid_points)
        ]
        row_band = max(64, self.xs_rows // 100)
        row_cursor = state.get("row_band", 0)
        row = (row_cursor + int(rng.integers(0, row_band))) % self.xs_rows
        state["row_band"] = (row_cursor + max(1, row_band // 64)) \
            % self.xs_rows
        row_base = self._xs.base + row * XS_ROW_BYTES
        addresses.extend(
            row_base + i * 8 for i in range(XS_READS_PER_ROW))
        return addresses, [False] * len(addresses)

    def _chunk(self, rng: np.random.Generator, num_refs: int,
               state: dict) -> Tuple[np.ndarray, np.ndarray]:
        addresses: List[int] = state.pop("leftover_addrs", [])
        writes: List[bool] = state.pop("leftover_writes", [])
        while len(addresses) < num_refs:
            lookup_addrs, lookup_writes = self._lookup_refs(rng, state)
            addresses.extend(lookup_addrs)
            writes.extend(lookup_writes)
        state["leftover_addrs"] = addresses[num_refs:]
        state["leftover_writes"] = writes[num_refs:]
        return (np.array(addresses[:num_refs], dtype=np.int64),
                np.array(writes[:num_refs], dtype=bool))
