"""Table II workload registry.

Maps the paper's workload keys to generator classes and carries the
Table II metadata (suite, dataset size).  ``make_workload`` is the one
constructor the simulator and benchmarks use.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import Workload
from repro.workloads.dlrm import DlrmWorkload
from repro.workloads.genomics import GenomicsWorkload
from repro.workloads.graphbig import GraphBigWorkload, KERNELS
from repro.workloads.gups import GupsWorkload
from repro.workloads.xsbench import XSBenchWorkload

#: The 11 workload keys in the paper's plotting order.
ALL_WORKLOADS = ("bc", "bfs", "cc", "gc", "pr", "tc", "sp",
                 "xs", "rnd", "dlrm", "gen")

#: A fast, diverse subset for smoke tests and examples.
QUICK_WORKLOADS = ("bfs", "xs", "rnd")


def make_workload(name: str, scale: float = 1.0,
                  seed: int = 42) -> Workload:
    """Instantiate a Table II workload by key."""
    key = name.lower()
    if key in KERNELS:
        return GraphBigWorkload(key, scale=scale, seed=seed)
    simple = {
        "xs": XSBenchWorkload,
        "rnd": GupsWorkload,
        "dlrm": DlrmWorkload,
        "gen": GenomicsWorkload,
    }
    if key in simple:
        return simple[key](scale=scale, seed=seed)
    raise ValueError(
        f"unknown workload {name!r}; choose from {ALL_WORKLOADS}")


def workload_table(scale: float = 1.0) -> List[Dict]:
    """Table II as data: one row per workload."""
    return [make_workload(name, scale=scale).describe()
            for name in ALL_WORKLOADS]
