"""Workload abstraction: synthetic memory-reference generators.

The paper evaluates 11 data-intensive applications (Table II) under a
cycle-level simulator.  Here each application is a *reference-stream
generator* reproducing its documented access pattern — the structure
that matters to address translation: footprint, locality, read/write
mix and pointer-chasing irregularity.  DESIGN.md's "Workload
substitution" table maps each generator to its paper counterpart.

A workload exposes:

* ``regions()`` — its virtual-address layout at the configured scale
  (datasets are laid out densely in one arena, the way the real apps'
  init phases populate their heaps; this is what fills PL1/PL2);
* ``stream(core_id, num_refs)`` — a deterministic per-core iterator of
  ``(vaddr, is_write)`` pairs;
* ``gap_cycles`` — non-memory instructions between references.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.vm.address import (
    HUGE_PAGE_SIZE,
    LINE_SHIFT,
    PAGE_SHIFT,
    VA_MASK,
    align_up,
    vpn,
)

#: Where workload arenas start in the virtual address space.
ARENA_BASE = 0x10_0000_0000  # 64 GiB mark: exercises PL4 index != 0

#: Where per-core private arenas start (thread stacks, queues, buffers).
PRIVATE_ARENA_BASE = 0x30_0000_0000

#: Default chunk of references generated per numpy batch.
CHUNK_REFS = 8192

#: Fraction of references directed at the core's private region.
PRIVATE_REF_FRACTION = 0.10


def chunk_probe_keys(addrs: np.ndarray) -> Tuple[List[int], List[int]]:
    """Per-reference probe-key arrays for one chunk of addresses.

    Returns ``(vpns, vlines)`` as plain lists: the 4 KB VPN
    (``(addr & VA_MASK) >> PAGE_SHIFT``) and the virtual line address
    (``addr >> LINE_SHIFT``) of every reference — the two keys the
    inlined TLB/L1 hit probe in :meth:`repro.sim.core_model
    .Core.step_until` consumes.  The single definition of the chunk
    layout contract: both :meth:`Workload.stream_chunks` and
    ``Core._refill`` (legacy two-field chunks) derive through it.
    """
    return (((addrs & VA_MASK) >> PAGE_SHIFT).tolist(),
            (addrs >> LINE_SHIFT).tolist())


class Region(NamedTuple):
    """One named virtual-memory region of a workload."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size


def layout_regions(sizes: List[Tuple[str, int]],
                   base: int = ARENA_BASE) -> List[Region]:
    """Pack named regions back to back, 2 MB-aligned, from ``base``.

    Dense packing mirrors how the paper's applications allocate their
    datasets in one growing heap — the layout behind the near-full PL1
    and PL2 levels of Fig. 8.
    """
    regions = []
    cursor = align_up(base, HUGE_PAGE_SIZE)
    for name, size in sizes:
        if size <= 0:
            raise ValueError(f"region {name!r} has non-positive size")
        regions.append(Region(name, cursor, size))
        cursor = align_up(cursor + size, HUGE_PAGE_SIZE)
    return regions


class Workload(ABC):
    """Base class for the Table II workload generators."""

    #: Short key used by the registry ('bfs', 'xs', ...).
    name: str = ""
    #: Benchmark suite (Table II left column).
    suite: str = ""
    #: Full-scale dataset size in bytes (Table II right column).
    dataset_bytes: int = 0
    #: Non-memory instructions between references (1 IPC each).
    gap_cycles: int = 2
    #: Per-core private footprint as a fraction of the shared dataset.
    #: Threads of the real applications keep frontier queues, partial
    #: sums, stacks and I/O buffers; these are touched sparsely, which
    #: is what makes transparent huge pages bloat physical usage as
    #: cores scale (Section VII-B).
    private_fraction: float = 0.12

    def __init__(self, scale: float = 1.0, seed: int = 42):
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        self.scale = scale
        self.seed = seed

    # -- layout ---------------------------------------------------------------

    @abstractmethod
    def regions(self) -> List[Region]:
        """Virtual-address layout at the configured scale."""

    def footprint_bytes(self) -> int:
        """Total dataset bytes at the configured scale."""
        return sum(region.size for region in self.regions())

    def private_bytes(self) -> int:
        """Size of one core's private region at the configured scale."""
        raw = int(self.dataset_bytes * self.scale * self.private_fraction)
        return max(HUGE_PAGE_SIZE, align_up(raw, HUGE_PAGE_SIZE))

    def private_region(self, core_id: int) -> Region:
        """Per-core private arena (stacks, queues, thread buffers).

        Regions of different cores are disjoint and 2 MB-aligned; the
        stream touches them *sparsely* (random pages), so a THP kernel
        backs far more physical memory here than a 4 KB kernel does.
        """
        if core_id < 0:
            raise ValueError("core_id must be non-negative")
        size = self.private_bytes()
        base = PRIVATE_ARENA_BASE + core_id * align_up(
            size, HUGE_PAGE_SIZE)
        return Region(f"private{core_id}", base, size)

    def page_ranges(self) -> List[Tuple[int, int]]:
        """Inclusive VPN ranges of the dataset (for occupancy analysis)."""
        return [
            (vpn(region.base), vpn(region.end - 1))
            for region in self.regions()
        ]

    def full_scale_page_ranges(self) -> List[Tuple[int, int]]:
        """Page ranges at the paper's dataset size (Fig. 8 input)."""
        return type(self)(scale=1.0, seed=self.seed).page_ranges()

    # -- reference stream -----------------------------------------------------

    @abstractmethod
    def _chunk(self, rng: np.random.Generator, num_refs: int,
               state: dict) -> Tuple[np.ndarray, np.ndarray]:
        """Generate ``num_refs`` references as (addresses, is_write).

        ``state`` is a per-stream dict that persists across chunks —
        sweep cursors, scan positions and similar live there so one
        core's stream is a coherent traversal, not a bag of samples.
        """

    def stream_chunks(self, core_id: int, num_refs: int,
                      chunk_refs: Optional[int] = None,
                      probe_keys: bool = True
                      ) -> Iterator[tuple]:
        """Deterministic reference stream, handed over in whole chunks.

        Yields ``(addresses, writes, vpns, vlines)`` tuples of
        equal-length plain Python lists (one per numpy batch), so the
        simulator's chunked fast path consumes references without
        per-item generator resumptions or tuple allocations.  The VPN
        (``(addr & VA_MASK) >> PAGE_SHIFT``) and virtual line address
        (``addr >> LINE_SHIFT``) arrays are computed here with numpy —
        one vectorized pass per chunk — so the inlined TLB/L1 hit probe
        in :meth:`repro.sim.core_model.Core.step_until` does no
        per-reference shifting.  Cores sharing a workload instance
        traverse the same dataset with different seeds (the paper's
        multithreaded execution model).

        ``chunk_refs`` overrides the default batch size: the scheduler
        feeds cores quantum-sized chunks so a time slice is a whole
        number of generation batches.  Batch size shapes the RNG draw
        sequence, so a re-chunked stream is a *different* (equally
        deterministic) reference sequence — single-process runs always
        use the default and are unaffected.

        ``probe_keys=False`` yields plain ``(addresses, writes)``
        pairs instead — same addresses, no VPN/line materialization —
        for consumers that only read addresses (the prefault warmup,
        :meth:`stream`); ``Core._refill`` derives the arrays on demand
        if such a stream is ever fed to a core.
        """
        rng = np.random.default_rng(
            (self.seed * 1_000_003 + core_id) & 0xFFFFFFFF)
        state: dict = {"core_id": core_id}
        private = self.private_region(core_id)
        private_pages = private.size // 4096
        chunk = CHUNK_REFS if chunk_refs is None else max(1, chunk_refs)
        remaining = num_refs
        while remaining > 0:
            batch = min(chunk, remaining)
            addrs, writes = self._chunk(rng, batch, state)
            if len(addrs) != batch or len(writes) != batch:
                raise AssertionError(
                    f"{self.name}: chunk returned {len(addrs)} refs, "
                    f"expected {batch}")
            # Redirect a fixed fraction of references to the core's
            # private region: random pages, half of them writes.
            mask = rng.random(batch) < PRIVATE_REF_FRACTION
            count = int(mask.sum())
            if count:
                pages = rng.integers(0, private_pages, size=count)
                offsets = rng.integers(0, 4096 // 8, size=count) * 8
                addrs = addrs.copy()
                writes = writes.copy()
                addrs[mask] = private.base + pages * 4096 + offsets
                writes[mask] = rng.random(count) < 0.5
            if probe_keys:
                vpns, vlines = chunk_probe_keys(addrs)
                yield (addrs.tolist(),
                       np.asarray(writes, dtype=bool).tolist(),
                       vpns, vlines)
            else:
                yield (addrs.tolist(),
                       np.asarray(writes, dtype=bool).tolist())
            remaining -= batch

    def stream(self, core_id: int,
               num_refs: int) -> Iterator[Tuple[int, bool]]:
        """Per-item view of :meth:`stream_chunks` (compatibility API)."""
        for addrs, writes in self.stream_chunks(core_id, num_refs,
                                                probe_keys=False):
            yield from zip(addrs, writes)

    # -- introspection --------------------------------------------------------

    def describe(self) -> dict:
        """Summary used by the Table II benchmark and examples."""
        return {
            "name": self.name,
            "suite": self.suite,
            "dataset_gb": self.dataset_bytes / 1024 ** 3,
            "scaled_mb": self.footprint_bytes() / 1024 ** 2,
            "regions": [r.name for r in self.regions()],
            "gap_cycles": self.gap_cycles,
        }
