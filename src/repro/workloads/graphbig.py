"""GraphBIG kernels (Table II): BC, BFS, CC, GC, PR, TC, SP.

The generators reproduce the address behaviour of CSR graph analytics
on a power-law graph:

* a sequential/irregular read of the **offset array** per vertex visit;
* a burst of sequential reads in the **edge array** at that vertex's
  adjacency list;
* irregular, Zipf-skewed reads of **property arrays** at the neighbour
  ids (hub vertices are hot) — the pointer-chasing that defeats TLBs;
* kernel-specific writes (rank/label/color updates, frontier pushes).

Kernels differ in how vertices are selected (full sweeps for the
iterative kernels vs frontier-driven random order), how many neighbours
each visit samples, and what they write — enough to spread TLB miss
rates and translation overheads across the range Fig. 5 shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.workloads.base import Region, Workload, layout_regions
from repro.workloads.synthetic import (
    interleave,
    windowed_mixed,
    windowed_uniform,
)

GIB = 1024 ** 3

#: CSR layout constants (bytes).
OFFSET_BYTES = 8
EDGE_BYTES = 8
#: GraphBIG vertex properties are multi-field structs (rank + delta +
#: flags, parent + depth + state, ...), not bare scalars.
PROP_BYTES = 48
AVG_DEGREE = 16
BYTES_PER_VERTEX = (OFFSET_BYTES + AVG_DEGREE * EDGE_BYTES
                    + 3 * PROP_BYTES)  # offsets + edges + 3 properties


@dataclass(frozen=True)
class KernelProfile:
    """How one GraphBIG kernel traverses the CSR structure."""

    sweep: bool            # sequential vertex sweep vs frontier-random
    edge_samples: int      # adjacency reads per visit
    neighbor_reads: int    # property reads at neighbour ids per visit
    writes_per_visit: int  # property/frontier writes per visit
    aux_reads: int         # frontier/stack reads per visit
    gap_cycles: int        # non-memory work between references


KERNELS = {
    "bc": KernelProfile(sweep=False, edge_samples=4, neighbor_reads=4,
                        writes_per_visit=2, aux_reads=1, gap_cycles=2),
    "bfs": KernelProfile(sweep=False, edge_samples=4, neighbor_reads=4,
                         writes_per_visit=1, aux_reads=1, gap_cycles=1),
    "cc": KernelProfile(sweep=True, edge_samples=4, neighbor_reads=4,
                        writes_per_visit=1, aux_reads=0, gap_cycles=1),
    "gc": KernelProfile(sweep=True, edge_samples=3, neighbor_reads=3,
                        writes_per_visit=1, aux_reads=0, gap_cycles=2),
    "pr": KernelProfile(sweep=True, edge_samples=4, neighbor_reads=4,
                        writes_per_visit=1, aux_reads=0, gap_cycles=2),
    "tc": KernelProfile(sweep=False, edge_samples=8, neighbor_reads=6,
                        writes_per_visit=0, aux_reads=0, gap_cycles=3),
    "sp": KernelProfile(sweep=False, edge_samples=4, neighbor_reads=4,
                        writes_per_visit=2, aux_reads=1, gap_cycles=2),
}

_KERNEL_LABELS = {
    "bc": "Betweenness Centrality",
    "bfs": "Breadth-first search",
    "cc": "Connected components",
    "gc": "Coloring",
    "pr": "PageRank",
    "tc": "Triangle counting",
    "sp": "Shortest-path",
}


class GraphBigWorkload(Workload):
    """One GraphBIG kernel over a synthetic power-law CSR graph."""

    suite = "GraphBIG"
    dataset_bytes = 8 * GIB

    def __init__(self, kernel: str, scale: float = 1.0, seed: int = 42):
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown GraphBIG kernel {kernel!r}; "
                f"choose from {sorted(KERNELS)}")
        super().__init__(scale=scale, seed=seed)
        self.name = kernel
        self.label = _KERNEL_LABELS[kernel]
        self.profile = KERNELS[kernel]
        self.gap_cycles = self.profile.gap_cycles
        self.num_vertices = max(
            4096, int(self.dataset_bytes * scale) // BYTES_PER_VERTEX)
        self._regions = layout_regions([
            ("offsets", self.num_vertices * OFFSET_BYTES),
            ("edges", self.num_vertices * AVG_DEGREE * EDGE_BYTES),
            ("prop_src", self.num_vertices * PROP_BYTES),
            ("prop_dst", self.num_vertices * PROP_BYTES),
            ("aux", self.num_vertices * PROP_BYTES),
        ])
        by_name = {r.name: r for r in self._regions}
        self._offsets = by_name["offsets"]
        self._edges = by_name["edges"]
        self._prop_src = by_name["prop_src"]
        self._prop_dst = by_name["prop_dst"]
        self._aux = by_name["aux"]

    def regions(self) -> List[Region]:
        return list(self._regions)

    # -- stream generation ---------------------------------------------------

    def _refs_per_visit(self) -> int:
        p = self.profile
        return (1 + p.edge_samples + p.neighbor_reads
                + p.writes_per_visit + p.aux_reads)

    def _select_vertices(self, rng: np.random.Generator, count: int,
                         state: dict) -> np.ndarray:
        if not self.profile.sweep:
            # Frontier-driven kernels visit a drifting neighbourhood of
            # the graph, not uniformly random vertices.
            return windowed_uniform(rng, self.num_vertices, count,
                                    state, "frontier",
                                    cluster_items=680)
        cursor = state.get("sweep_cursor", 0)
        vertices = (cursor + np.arange(count, dtype=np.int64)) \
            % self.num_vertices
        state["sweep_cursor"] = int((cursor + count) % self.num_vertices)
        return vertices

    def _chunk(self, rng: np.random.Generator, num_refs: int,
               state: dict) -> Tuple[np.ndarray, np.ndarray]:
        p = self.profile
        per_visit = self._refs_per_visit()
        visits = -(-num_refs // per_visit)
        v = self._select_vertices(rng, visits, state)

        parts: List[Tuple[np.ndarray, bool]] = []
        parts.append((self._offsets.base + v * OFFSET_BYTES, False))
        edge_base = self._edges.base + v * (AVG_DEGREE * EDGE_BYTES)
        for j in range(p.edge_samples):
            parts.append((edge_base + j * EDGE_BYTES, False))
        for j in range(p.neighbor_reads):
            neighbors = windowed_mixed(
                rng, self.num_vertices, visits, state, "neighbors",
                hot_fraction=0.2, cluster_items=680)
            parts.append(
                (self._prop_src.base + neighbors * PROP_BYTES, False))
        for j in range(p.aux_reads):
            frontier = windowed_uniform(rng, self.num_vertices, visits,
                                        state, "frontier",
                                        cluster_items=680)
            parts.append((self._aux.base + frontier * PROP_BYTES, False))
        for w in range(p.writes_per_visit):
            target = self._prop_dst if w == 0 else self._aux
            parts.append((target.base + v * PROP_BYTES, True))

        addresses, writes = interleave(parts)
        return addresses[:num_refs], writes[:num_refs]
