"""Synthetic Table II workload generators."""

from repro.workloads.base import Region, Workload, layout_regions
from repro.workloads.dlrm import DlrmWorkload
from repro.workloads.genomics import GenomicsWorkload
from repro.workloads.graphbig import KERNELS, GraphBigWorkload
from repro.workloads.gups import GupsWorkload
from repro.workloads.registry import (
    ALL_WORKLOADS,
    QUICK_WORKLOADS,
    make_workload,
    workload_table,
)
from repro.workloads.xsbench import XSBenchWorkload

__all__ = [
    "ALL_WORKLOADS",
    "DlrmWorkload",
    "GenomicsWorkload",
    "GraphBigWorkload",
    "GupsWorkload",
    "KERNELS",
    "QUICK_WORKLOADS",
    "Region",
    "Workload",
    "XSBenchWorkload",
    "layout_regions",
    "make_workload",
    "workload_table",
]
