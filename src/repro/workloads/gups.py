"""GUPS / HPCC RandomAccess (RND in Table II, 10 GB).

The canonical translation-hostile workload: read-modify-write of 8-byte
words at uniformly random locations in one huge table.  Virtually every
reference touches a new page, so the TLB miss rate approaches 100 % and
the walk path *is* the workload.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.base import Region, Workload, layout_regions
from repro.workloads.synthetic import interleave, windowed_uniform

GIB = 1024 ** 3
WORD_BYTES = 8


class GupsWorkload(Workload):
    """Uniform random 8 B read-modify-writes over one table."""

    name = "rnd"
    suite = "GUPS"
    dataset_bytes = 10 * GIB
    gap_cycles = 1  # a couple of XORs between updates

    def __init__(self, scale: float = 1.0, seed: int = 42):
        super().__init__(scale=scale, seed=seed)
        table_bytes = max(WORD_BYTES * 4096,
                          int(self.dataset_bytes * scale))
        self.table_words = table_bytes // WORD_BYTES
        self._regions = layout_regions([
            ("table", self.table_words * WORD_BYTES),
        ])
        self._table = self._regions[0]

    def regions(self) -> List[Region]:
        return list(self._regions)

    def _chunk(self, rng: np.random.Generator, num_refs: int,
               state: dict) -> Tuple[np.ndarray, np.ndarray]:
        # Each update is a read then a write of the same word.  GUPS
        # batches updates: the generator produces a window of random
        # indices, applies them, then moves on — a drifting hot region.
        updates = -(-num_refs // 2)
        # Clusters of 4096 words = 32 KB = 8 pages = one PTE line.
        words = windowed_uniform(rng, self.table_words, updates,
                                 state, "window", cluster_items=4096)
        addresses = self._table.base + words * WORD_BYTES
        combined, writes = interleave([(addresses, False),
                                       (addresses, True)])
        return combined[:num_refs], writes[:num_refs]
