"""Reusable access-pattern building blocks (numpy, chunk-vectorized).

These primitives compose into the Table II workload generators: uniform
and Zipf-skewed index selection, sequential windows, binary-search probe
sequences, and interleaving of several sub-streams with fixed per-item
structure.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def uniform_indices(rng: np.random.Generator, population: int,
                    size: int) -> np.ndarray:
    """``size`` uniform indices in [0, population)."""
    if population <= 0:
        raise ValueError("population must be positive")
    return rng.integers(0, population, size=size, dtype=np.int64)


def zipf_indices(rng: np.random.Generator, population: int, size: int,
                 exponent: float = 1.3) -> np.ndarray:
    """Zipf-skewed indices in [0, population), hot head at low ids.

    Graph neighbour references and DLRM embedding rows follow heavy
    head-plus-long-tail popularity; numpy's Zipf sampler provides the
    tail, modulo folds it into range.
    """
    if population <= 0:
        raise ValueError("population must be positive")
    raw = rng.zipf(exponent, size=size).astype(np.int64)
    return (raw - 1) % population


def scattered_zipf_indices(rng: np.random.Generator, population: int,
                           size: int, exponent: float = 1.3) -> np.ndarray:
    """Zipf popularity with hot items scattered across the index space.

    Multiplying by a large odd constant before the fold decorrelates
    popularity from position, so hot entries do not all share pages —
    the realistic case for hash-organized data.
    """
    skewed = zipf_indices(rng, population, size, exponent)
    return (skewed * 0x9E3779B1) % population


def mixed_indices(rng: np.random.Generator, population: int, size: int,
                  hot_fraction: float = 0.25,
                  exponent: float = 1.3) -> np.ndarray:
    """Hot Zipf head over a dominant uniform tail.

    Power-law graph traversals and embedding gathers reference a few
    hub items often, but the *bulk* of references spread uniformly over
    the huge structure — which is what defeats 2 MB-granularity TLB
    reach as well as 4 KB reach.  ``hot_fraction`` of the indices come
    from the Zipf head, the rest are uniform.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    uniform = uniform_indices(rng, population, size)
    if hot_fraction == 0.0:
        return uniform
    hot = scattered_zipf_indices(rng, population, size, exponent)
    choose_hot = rng.random(size) < hot_fraction
    return np.where(choose_hot, hot, uniform)


#: Large prime used as a multiplicative permutation over index spaces.
_SCATTER_PRIME = 2_654_435_761  # Knuth's golden-ratio prime


def windowed_uniform(rng: np.random.Generator, population: int,
                     size: int, state: dict, key: str,
                     window_items: int = 2500,
                     drift_fraction: float = 0.02,
                     window_fraction: float = None,
                     cluster_items: int = 1) -> np.ndarray:
    """Uniform selection inside a sliding, scattered, clustered window.

    Data-intensive applications touch their structures in *phases* — a
    BFS frontier's neighbourhood, a band of particles, a batch of
    embedding rows — so a bounded working set is hot at any time and
    drifts.  Three properties matter for the paper:

    * the working set's *page-table* footprint has temporal reuse and
      is sized to fit a server L2/L3 but dwarf an NDP L1 — the
      capacity relationship behind Figs. 4-7 (CPU walks hit caches,
      NDP walks go to DRAM);
    * the *data* itself sees almost no reuse (each touch picks a fresh
      word inside a hot cluster), so data accesses miss caches on both
      platforms, as in the paper's workloads;
    * working-set members are *scattered* across the structure (a
      frontier is not one contiguous VA range).

    ``window_items`` counts hot clusters; ``cluster_items`` sizes one
    cluster (pick it so a cluster spans ~8 pages = one PTE cache
    line).  Scattering uses a multiplicative permutation of a
    contiguous cursor window, so drifting replaces members gradually.
    ``window_fraction`` (relative sizing) overrides ``window_items``.
    """
    if population <= 0:
        raise ValueError("population must be positive")
    if window_fraction is not None:
        window_items = int(population * window_fraction)
    cluster = max(1, cluster_items)
    cluster_count = max(1, population // cluster)
    window = max(1, min(cluster_count, window_items))
    cursor = state.get(key, 0)
    offsets = rng.integers(0, window, size=size, dtype=np.int64)
    linear = (cursor + offsets) % cluster_count
    state[key] = int((cursor + max(1, int(window * drift_fraction)))
                     % cluster_count)
    scattered = (linear * _SCATTER_PRIME) % cluster_count
    within = rng.integers(0, cluster, size=size, dtype=np.int64)
    if cluster > 1:
        # A quarter of the touches land on the cluster's head word
        # (the node/bucket header every visit reads).  These lines
        # *would* cache - unless page-table traffic evicts them, which
        # is the pollution mechanism of the paper's Fig. 7.
        within = np.where(rng.random(size) < 0.25, 0, within)
    return np.minimum(scattered * cluster + within, population - 1)


def windowed_mixed(rng: np.random.Generator, population: int, size: int,
                   state: dict, key: str, hot_fraction: float = 0.2,
                   exponent: float = 1.3,
                   window_items: int = 2500,
                   cluster_items: int = 1) -> np.ndarray:
    """Hot Zipf head over a *windowed* uniform tail.

    Combines the popularity skew of :func:`mixed_indices` with the
    phase behaviour of :func:`windowed_uniform`: hub items stay hot
    globally while the bulk of references sweep a drifting scattered
    working set.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    tail = windowed_uniform(rng, population, size, state, key,
                            window_items=window_items,
                            cluster_items=cluster_items)
    if hot_fraction == 0.0:
        return tail
    hot = scattered_zipf_indices(rng, population, size, exponent)
    choose_hot = rng.random(size) < hot_fraction
    return np.where(choose_hot, hot, tail)


def sequential_window(start: int, size: int, stride: int = 1) -> np.ndarray:
    """Indices start, start+stride, ... (a streaming scan window)."""
    return start + stride * np.arange(size, dtype=np.int64)


def binary_search_probes(target: int, population: int) -> List[int]:
    """Index sequence a binary search for ``target`` touches.

    This is the XSBench energy-grid lookup pattern: ~log2(n) reads with
    geometrically shrinking stride — highly TLB-unfriendly.
    """
    if not 0 <= target < population:
        raise ValueError("target outside population")
    probes = []
    lo, hi = 0, population - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        probes.append(mid)
        if mid == target:
            break
        if mid < target:
            lo = mid + 1
        else:
            hi = mid - 1
    return probes


def interleave(parts: List[Tuple[np.ndarray, bool]]
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Interleave equally long sub-streams item by item.

    ``parts`` is a list of (addresses, is_write) arrays of equal length
    n; the result has length n * len(parts) and cycles through the parts
    in order — e.g. offset read, edge read, property read, property
    write for a graph kernel.
    """
    if not parts:
        raise ValueError("nothing to interleave")
    length = len(parts[0][0])
    for addrs, _ in parts:
        if len(addrs) != length:
            raise ValueError("sub-streams must have equal length")
    addresses = np.empty(length * len(parts), dtype=np.int64)
    writes = np.empty(length * len(parts), dtype=bool)
    for i, (addrs, is_write) in enumerate(parts):
        addresses[i::len(parts)] = addrs
        writes[i::len(parts)] = is_write
    return addresses, writes


def concat(parts: List[Tuple[np.ndarray, np.ndarray]]
           ) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate (addresses, writes) chunks."""
    addresses = np.concatenate([p[0] for p in parts])
    writes = np.concatenate([p[1] for p in parts])
    return addresses, writes


def take(addresses: np.ndarray, writes: np.ndarray,
         count: int) -> Tuple[np.ndarray, np.ndarray]:
    """First ``count`` items of a chunk (trim to the requested size)."""
    return addresses[:count], writes[:count]
