"""DLRM sparse-length-sum (DLRM in Table II, 10 GB).

Recommendation inference is dominated by embedding-table gathers: for
each sample, a handful of rows are fetched from multi-GB embedding
tables at Zipf-skewed indices (popular items are hot), each row read as
a short sequential burst, followed by dense-MLP activity in a small hot
region.  The gathers are the irregular, translation-bound part.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.base import Region, Workload, layout_regions
from repro.workloads.synthetic import (
    interleave,
    sequential_window,
    windowed_mixed,
)

GIB = 1024 ** 3
MIB = 1024 ** 2

ROW_BYTES = 128           # embedding dimension 32 x fp32
LINES_PER_ROW = 2         # a row spans two cache lines
LOOKUPS_PER_SAMPLE = 8    # pooled sparse features per sample
DENSE_BYTES = 2 * MIB     # MLP weights: hot, cache-resident


class DlrmWorkload(Workload):
    """Embedding-gather dominated recommendation inference."""

    name = "dlrm"
    suite = "DLRM"
    dataset_bytes = 10 * GIB
    gap_cycles = 2

    def __init__(self, scale: float = 1.0, seed: int = 42):
        super().__init__(scale=scale, seed=seed)
        emb_bytes = max(ROW_BYTES * 8192,
                        int(self.dataset_bytes * scale) - DENSE_BYTES)
        self.num_rows = emb_bytes // ROW_BYTES
        self._regions = layout_regions([
            ("embeddings", self.num_rows * ROW_BYTES),
            ("dense", DENSE_BYTES),
            ("output", 4 * MIB),
        ])
        self._emb, self._dense, self._out = self._regions

    def regions(self) -> List[Region]:
        return list(self._regions)

    def _chunk(self, rng: np.random.Generator, num_refs: int,
               state: dict) -> Tuple[np.ndarray, np.ndarray]:
        # Per sample: LOOKUPS_PER_SAMPLE rows x LINES_PER_ROW reads,
        # 2 dense reads, 1 output write.
        per_sample = LOOKUPS_PER_SAMPLE * LINES_PER_ROW + 3
        samples = -(-num_refs // per_sample)

        parts: List[Tuple[np.ndarray, bool]] = []
        for j in range(LOOKUPS_PER_SAMPLE):
            rows = windowed_mixed(rng, self.num_rows, samples,
                                  state, "rows", hot_fraction=0.3,
                                  exponent=1.2, cluster_items=256)
            row_base = self._emb.base + rows * ROW_BYTES
            for line in range(LINES_PER_ROW):
                parts.append((row_base + line * 64, False))

        cursor = state.get("dense_cursor", 0)
        dense_words = DENSE_BYTES // 8
        dense_idx = sequential_window(cursor, samples) % dense_words
        state["dense_cursor"] = int((cursor + samples) % dense_words)
        parts.append((self._dense.base + dense_idx * 8, False))
        parts.append((self._dense.base + ((dense_idx * 17) % dense_words)
                      * 8, False))

        out_idx = sequential_window(state.get("out_cursor", 0), samples) \
            % (self._out.size // 8)
        state["out_cursor"] = int((state.get("out_cursor", 0) + samples)
                                  % (self._out.size // 8))
        parts.append((self._out.base + out_idx * 8, True))

        addresses, writes = interleave(parts)
        return addresses[:num_refs], writes[:num_refs]
