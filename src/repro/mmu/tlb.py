"""Translation lookaside buffers (Table I MMU row).

A :class:`Tlb` is one set-associative structure; :class:`TlbHierarchy`
wires together the paper's configuration: a 64-entry 4-way L1 D-TLB for
4 KB pages, a small L1 TLB for 2 MB pages, and a 1536-entry 12-cycle
shared L2 TLB.

Microarchitectural choice (documented in EXPERIMENTS.md): the L2 TLB
holds 4 KB translations only — 2 MB pages are cached solely in the
dedicated L1 2 MB TLB, as on several real cores.  The paper's Table I
does not specify; this choice is what gives the Huge Page baseline a
finite TLB reach at dataset scale.

Multi-process support: entries are tagged by packing the ASID into the
integer key above the VPN bits (:data:`repro.vm.address.ASID_SHIFT`),
so translations of co-scheduled address spaces coexist and a context
switch needs no flush while hardware ASIDs last.  Set indexing uses
``key % num_sets`` with power-of-two set counts, so the tag never moves
an entry's set — two tenants' copies of one VPN conflict in the same
set, exactly as on hardware that indexes by VPN and compares the ASID
in the tag.  ASID 0 tags to 0: single-address-space keys (and the
inlined fast-path probes built on them) are untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.vm.address import HUGE_PAGE_SHIFT, PAGE_SHIFT
from repro.vm.base import Translation
from repro.sim.stats import HitMissStats


class Tlb:
    """One set-associative TLB with LRU replacement."""

    __slots__ = ("name", "entries", "associativity", "latency",
                 "page_shift", "num_sets", "stats", "flushes", "_sets")

    def __init__(self, name: str, entries: int, associativity: int,
                 latency: int, page_shift: int = PAGE_SHIFT):
        if entries % associativity != 0:
            raise ValueError(
                f"{name}: {entries} entries not divisible by "
                f"associativity {associativity}")
        self.name = name
        self.entries = entries
        self.associativity = associativity
        self.latency = latency
        self.page_shift = page_shift
        self.num_sets = entries // associativity
        self.stats = HitMissStats()
        self.flushes = 0
        self._sets: List[Dict[int, Translation]] = [
            {} for _ in range(self.num_sets)
        ]

    def lookup(self, key: int) -> Optional[Translation]:
        """Probe for ``key`` (a VPN at this TLB's page granularity)."""
        tlb_set = self._sets[key % self.num_sets]
        translation = tlb_set.get(key)
        if translation is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        tlb_set[key] = tlb_set.pop(key)  # refresh LRU position
        return translation

    def insert(self, key: int, translation: Translation) -> None:
        tlb_set = self._sets[key % self.num_sets]
        if key in tlb_set:
            # Reinsert behaves like a touch: refresh LRU recency (the
            # same movement ``lookup`` performs), don't just overwrite.
            del tlb_set[key]
            tlb_set[key] = translation
            return
        if len(tlb_set) >= self.associativity:
            oldest = next(iter(tlb_set))
            del tlb_set[oldest]
        tlb_set[key] = translation

    def invalidate(self, key: int) -> bool:
        tlb_set = self._sets[key % self.num_sets]
        if key in tlb_set:
            del tlb_set[key]
            return True
        return False

    def flush(self) -> None:
        self.flushes += 1
        for tlb_set in self._sets:
            tlb_set.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class TlbHierarchy:
    """L1 (4 KB + 2 MB) and L2 TLBs for one core."""

    __slots__ = ("l1_small", "l1_huge", "l2", "lookups", "full_misses")

    def __init__(self, l1_small: Tlb, l1_huge: Tlb, l2: Tlb):
        if l1_small.page_shift != PAGE_SHIFT:
            raise ValueError("l1_small must be a 4 KB TLB")
        if l1_huge.page_shift != HUGE_PAGE_SHIFT:
            raise ValueError("l1_huge must be a 2 MB TLB")
        self.l1_small = l1_small
        self.l1_huge = l1_huge
        self.l2 = l2
        self.lookups = 0
        self.full_misses = 0

    @staticmethod
    def _huge_key(page: int) -> int:
        return page >> (HUGE_PAGE_SHIFT - PAGE_SHIFT)

    def lookup(self, page: int):
        """Translate 4 KB-granularity VPN ``page``.

        Returns ``(translation_or_None, latency_cycles)``.  Both L1
        structures are probed in parallel (one L1 latency); the L2 is
        probed only on an L1 miss, adding its latency, and refills the
        L1 on a hit.

        The L1-small probe is inlined (one dict round-trip) because it
        is the overwhelmingly common outcome on the simulated hot path;
        the remaining levels live in :meth:`lookup_after_l1_small_miss`
        so fast-path callers that probe the L1 themselves can continue
        from the miss without double counting.
        """
        self.lookups += 1
        l1 = self.l1_small
        tlb_set = l1._sets[page % l1.num_sets]
        translation = tlb_set.get(page)
        if translation is not None:
            l1.stats.hits += 1
            tlb_set[page] = tlb_set.pop(page)  # refresh LRU position
            return translation, l1.latency
        l1.stats.misses += 1
        return self.lookup_after_l1_small_miss(page)

    def lookup_after_l1_small_miss(self, page: int):
        """Continue a lookup whose L1-small probe already missed.

        The caller must have recorded the L1-small miss (and the
        ``lookups`` increment); this probes the 2 MB L1 and the L2,
        refilling the L1 on an L2 hit, exactly like :meth:`lookup`.
        Probes are inlined (one dict round-trip each) — this runs on
        every L1-DTLB miss.
        """
        latency = self.l1_small.latency
        huge = self.l1_huge
        huge_key = page >> (HUGE_PAGE_SHIFT - PAGE_SHIFT)
        huge_set = huge._sets[huge_key % huge.num_sets]
        translation = huge_set.get(huge_key)
        if translation is not None:
            huge.stats.hits += 1
            huge_set[huge_key] = huge_set.pop(huge_key)
            return translation, latency
        huge.stats.misses += 1

        l2 = self.l2
        latency += l2.latency
        l2_set = l2._sets[page % l2.num_sets]
        translation = l2_set.get(page)
        if translation is not None:
            l2.stats.hits += 1
            l2_set[page] = l2_set.pop(page)
            self.l1_small.insert(page, translation)
            return translation, latency
        l2.stats.misses += 1
        self.full_misses += 1
        return None, latency

    def insert(self, page: int, translation: Translation) -> None:
        """Install a walk result at the right granularity.

        The two 4 KB inserts are inlined (this runs once per page walk;
        semantics match :meth:`Tlb.insert`, including the LRU refresh
        on reinsert of a resident key).
        """
        if translation.page_shift == PAGE_SHIFT:
            tlb = self.l1_small
            tlb_set = tlb._sets[page % tlb.num_sets]
            if page in tlb_set:
                del tlb_set[page]
            elif len(tlb_set) >= tlb.associativity:
                del tlb_set[next(iter(tlb_set))]
            tlb_set[page] = translation
            tlb = self.l2
            tlb_set = tlb._sets[page % tlb.num_sets]
            if page in tlb_set:
                del tlb_set[page]
            elif len(tlb_set) >= tlb.associativity:
                del tlb_set[next(iter(tlb_set))]
            tlb_set[page] = translation
        else:
            self.l1_huge.insert(self._huge_key(page), translation)

    @property
    def miss_rate(self) -> float:
        """Fraction of translations that needed a page walk."""
        if self.lookups == 0:
            return 0.0
        return self.full_misses / self.lookups

    def flush(self) -> None:
        self.l1_small.flush()
        self.l1_huge.flush()
        self.l2.flush()

    def invalidate_page(self, key: int, huge: bool = False) -> bool:
        """TLB-shootdown invalidation of one mapping.

        ``key`` is the (possibly ASID-tagged) 4 KB-granularity key the
        mapping was inserted under — for a 2 MB mapping, the tagged key
        of its base page.  Returns True when any level held the entry
        (real shootdown IPIs are sent regardless; the caller charges
        their cost either way).
        """
        if huge:
            return self.l1_huge.invalidate(
                key >> (HUGE_PAGE_SHIFT - PAGE_SHIFT))
        small = self.l1_small.invalidate(key)
        l2 = self.l2.invalidate(key)
        return small or l2


def build_table1_tlbs(core_id: int = 0) -> TlbHierarchy:
    """The paper's MMU TLB configuration (Table I) for one core."""
    return TlbHierarchy(
        l1_small=Tlb(f"L1-DTLB{core_id}", entries=64, associativity=4,
                     latency=1, page_shift=PAGE_SHIFT),
        l1_huge=Tlb(f"L1-2M-TLB{core_id}", entries=32, associativity=4,
                    latency=1, page_shift=HUGE_PAGE_SHIFT),
        l2=Tlb(f"L2-TLB{core_id}", entries=1536, associativity=12,
               latency=12, page_shift=PAGE_SHIFT),
    )
