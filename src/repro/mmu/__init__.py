"""MMU substrate: TLBs, page-walk caches, walker, MMU composition."""

from repro.mmu.mmu import Mmu, MmuStats, TranslationOutcome
from repro.mmu.pwc import PageWalkCache, PwcSet
from repro.mmu.tlb import Tlb, TlbHierarchy, build_table1_tlbs
from repro.mmu.walker import PageTableWalker, WalkOutcome, WalkerStats

__all__ = [
    "Mmu",
    "MmuStats",
    "PageTableWalker",
    "PageWalkCache",
    "PwcSet",
    "Tlb",
    "TlbHierarchy",
    "TranslationOutcome",
    "WalkOutcome",
    "WalkerStats",
    "build_table1_tlbs",
]
