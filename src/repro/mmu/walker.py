"""Hardware page-table walker.

Turns the structural walk (:meth:`PageTable.walk_stages`) into timed
memory traffic:

* sequential stages pay their latencies back to back (a radix walk is a
  pointer chase);
* parallel accesses within a stage overlap (elastic-cuckoo ways), the
  stage costing the slowest probe;
* before touching memory the walker probes the per-level PWCs and skips
  every stage at or above the deepest hit;
* each PTE request is tagged METADATA and, under NDPage's policy,
  flagged to bypass the L1 cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.bypass import BypassPolicy, NoBypass
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.request import MemoryRequest, RequestKind
from repro.mmu.pwc import PwcSet
from repro.sim.stats import LatencyStats
from repro.vm.base import PageTable, WalkStage


@dataclass
class WalkOutcome:
    """Timing summary of one page walk."""

    latency: float
    memory_accesses: int
    pwc_hit_level: Optional[str]


@dataclass
class WalkerStats:
    walks: int = 0
    memory_accesses: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)

    def reset(self) -> None:
        self.walks = 0
        self.memory_accesses = 0
        self.latency.reset()


class PageTableWalker:
    """One core's PTW engine."""

    def __init__(self, table: PageTable, hierarchy: MemoryHierarchy,
                 core_id: int, pwcs: Optional[PwcSet] = None,
                 bypass: Optional[BypassPolicy] = None):
        self.table = table
        self.hierarchy = hierarchy
        self.core_id = core_id
        self.pwcs = pwcs
        self.bypass = bypass if bypass is not None else NoBypass()
        self.stats = WalkerStats()

    def _probe_pwcs(self, stages: List[List[WalkStage]]) -> int:
        """Probe every level's PWC; return index of first stage to walk.

        Hardware probes all level caches in parallel and resumes the
        walk below the deepest hit.  Probing records hit/miss at every
        level so per-level hit rates (Section V-C) are measurable.
        """
        if self.pwcs is None:
            return 0
        start = 0
        for i, stage in enumerate(stages):
            if len(stage) != 1 or stage[0].pwc_key is None:
                continue
            cache = self.pwcs.cache_for(stage[0].level)
            if cache is None:
                continue
            if cache.lookup(stage[0].pwc_key):
                start = i + 1
        return start

    def _fill_pwcs(self, stages: List[List[WalkStage]]) -> None:
        if self.pwcs is None:
            return
        for stage in stages:
            if len(stage) != 1 or stage[0].pwc_key is None:
                continue
            cache = self.pwcs.cache_for(stage[0].level)
            if cache is not None:
                cache.insert(stage[0].pwc_key)

    def walk(self, now: float, page: int) -> WalkOutcome:
        """Walk the table for 4 KB-granularity VPN ``page`` at ``now``."""
        stages = self.table.walk_stages(page)
        self.stats.walks += 1
        if not stages:  # ideal table: nothing to fetch
            self.stats.latency.record(0.0)
            return WalkOutcome(0.0, 0, None)

        start_index = self._probe_pwcs(stages)
        pwc_hit_level = (
            stages[start_index - 1][0].level if start_index > 0 else None
        )
        latency = float(self.pwcs.latency) if self.pwcs is not None else 0.0
        accesses = 0
        clock = now + latency
        for stage in stages[start_index:]:
            stage_latency = 0.0
            for step in stage:
                request = MemoryRequest(
                    paddr=step.pte_paddr,
                    kind=RequestKind.METADATA,
                    core_id=self.core_id,
                    bypass_l1=self.bypass.should_bypass(step.level),
                )
                access_latency = self.hierarchy.access(clock, request)
                if access_latency > stage_latency:
                    stage_latency = access_latency
                accesses += 1
            clock += stage_latency
        self._fill_pwcs(stages)

        latency = clock - now
        self.stats.memory_accesses += accesses
        self.stats.latency.record(latency)
        return WalkOutcome(latency, accesses, pwc_hit_level)
