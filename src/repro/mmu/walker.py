"""Hardware page-table walker.

Turns the structural walk (:meth:`PageTable.walk_stages`) into timed
memory traffic:

* sequential stages pay their latencies back to back (a radix walk is a
  pointer chase);
* parallel accesses within a stage overlap (elastic-cuckoo ways), the
  stage costing the slowest probe;
* before touching memory the walker probes the per-level PWCs and skips
  every stage at or above the deepest hit;
* each PTE request is tagged METADATA and, under NDPage's policy,
  flagged to bypass the L1 cache.

Hot-path design: the table's :meth:`~repro.vm.base.PageTable.walk_info`
resolves a page's *walk plan* (PTE addresses + PWC prefixes) and its
translation in one descent; the walker memoizes that result per page
until the table's :attr:`~repro.vm.base.PageTable.structure_version`
moves (plans are a pure function of the table structure), and executes
walks directly off the raw plan with per-level bypass/PWC lookups
memoized, the PWC probe/fill fused into one pass, and the L1 metadata
hit inlined — falling back to the hierarchy's positional fast path on
cache misses.  No ``MemoryRequest``, ``WalkStage`` traversal or
tuple-key hashing happens per walk.

The PWC fill is fused into the probe: both touch the same per-level
sets, the caches are private to this walker, and nothing else runs
between the probe and the end of the walk — so inserting a missing key
at probe time leaves every cache in exactly the state the separate
probe-then-fill sequence would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.bypass import BypassPolicy, NoBypass
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.request import KIND_METADATA
from repro.mmu.pwc import PwcSet
from repro.sim.stats import LatencyStats
from repro.vm.address import asid_tag
from repro.vm.base import MappingError, PageTable

#: Plan-memo bound; the memo is cleared wholesale when it fills.  High
#: enough that steady-state walks of a hot page set always hit, low
#: enough that a page-churning run cannot grow without bound.
_PLAN_CACHE_LIMIT = 1 << 16


@dataclass
class WalkOutcome:
    """Timing summary of one page walk."""

    latency: float
    memory_accesses: int
    pwc_hit_level: Optional[str]


@dataclass(slots=True)
class WalkerStats:
    walks: int = 0
    memory_accesses: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)

    def reset(self) -> None:
        self.walks = 0
        self.memory_accesses = 0
        self.latency.reset()


class PageTableWalker:
    """One core's PTW engine."""

    __slots__ = ("table", "hierarchy", "core_id", "pwcs", "bypass",
                 "asid_tag", "stats", "_level_info", "_plan_cache",
                 "_plan_cache_version", "_l1", "last_accesses",
                 "last_pwc_hit_level")

    def __init__(self, table: PageTable, hierarchy: MemoryHierarchy,
                 core_id: int, pwcs: Optional[PwcSet] = None,
                 bypass: Optional[BypassPolicy] = None, asid: int = 0):
        self.table = table
        self.hierarchy = hierarchy
        self.core_id = core_id
        self.pwcs = pwcs
        self.bypass = bypass if bypass is not None else NoBypass()
        # Non-zero when this walker serves one tenant of a multi-process
        # run: PWC keys in memoized plans get the tag ORed in, so
        # co-runners sharing the per-core PWCs never alias prefixes.
        self.asid_tag = asid_tag(asid)
        self.stats = WalkerStats()
        # level -> (bypass_flag, pwc_cache_or_None): bypass policies are
        # pure per level name and the PWC set is fixed, so both halves
        # of a stage's treatment are memoized.
        self._level_info: Dict[str, tuple] = {}
        # page -> (raw_plan, translation); see plan_info.
        self._plan_cache: Dict[int, tuple] = {}
        self._plan_cache_version = -1
        # This core's L1, for the inlined metadata-hit fast path.
        self._l1 = hierarchy.l1ds[core_id]
        # Details of the most recent walk_fast, for the WalkOutcome shim.
        self.last_accesses = 0
        self.last_pwc_hit_level: Optional[str] = None

    def _level_info_for(self, level: str) -> tuple:
        caches = self.pwcs._caches if self.pwcs is not None else {}
        pwc = caches.get(level)
        if pwc is not None:
            # Pre-resolve everything a probe touches: (sets, num_sets,
            # associativity, stats).  All four bindings are stable for
            # the cache's lifetime (flush mutates the sets in place).
            probe = (pwc._sets, pwc.num_sets, pwc.associativity,
                     pwc.stats)
        else:
            probe = None
        info = (1 if self.bypass.should_bypass(level) else 0, probe)
        self._level_info[level] = info
        return info

    def plan_info(self, page: int) -> Optional[tuple]:
        """Memoized ``(flat, staged, translation)`` for ``page`` (see
        :meth:`PageTable.walk_info_decorated` for the plan shapes).

        Pure in the table structure (invalidated when
        ``table.structure_version`` moves).  Returns None when the page
        is unmapped — unmapped results are not cached, as the caller
        typically faults the page in and retries.  Carrying the
        translation here spares the MMU a second table descent per
        walk.
        """
        version = self.table.structure_version
        cache = self._plan_cache
        if version != self._plan_cache_version:
            cache.clear()
            self._plan_cache_version = version
        plan = cache.get(page)
        if plan is None:
            plan = self.table.walk_info_decorated(
                page, self._level_info, self._level_info_for)
            if plan is None:
                return None
            if self.asid_tag:
                plan = self._tag_plan(plan)
            if len(cache) >= _PLAN_CACHE_LIMIT:
                cache.clear()
            cache[page] = plan
        return plan

    def _tag_plan(self, plan: tuple) -> tuple:
        """OR this walker's ASID tag into every PWC key of a plan.

        Runs once per memoized plan (never per walk) and only for
        tenants with a non-zero ASID; the tag sits above the prefix
        bits, so set indexing (``key % num_sets``) is unchanged and
        co-runners' identical prefixes stay distinct in the tag match.
        """
        tag = self.asid_tag
        flat, staged, translation = plan

        def tag_step(step: tuple) -> tuple:
            key = step[3]
            if key is None:
                return step
            return (step[0], step[1], step[2], key | tag, step[4])

        if flat is not None:
            return (tuple(tag_step(s) for s in flat), None, translation)
        return (None,
                tuple(tuple(tag_step(s) for s in stage)
                      for stage in staged),
                translation)

    def walk_fast(self, now: float, page: int) -> float:
        """Walk the table for VPN ``page`` at ``now``; return the latency.

        Allocation-free fast path; the memory-access count and PWC hit
        level of the walk are left in :attr:`last_accesses` /
        :attr:`last_pwc_hit_level` for the :meth:`walk` shim.
        """
        plan = self.plan_info(page)
        if plan is None:
            raise MappingError(f"walk of unmapped page {page:#x}")
        return self.walk_from_plan(now, plan[0], plan[1])

    def walk_from_plan(self, now: float, flat: Optional[tuple],
                       staged: Optional[tuple]) -> float:
        """Execute a resolved walk plan at cycle ``now``.

        Exactly one of ``flat``/``staged`` is a tuple (see
        :meth:`PageTable.walk_info_decorated`); an ideal table's empty
        plan arrives as an empty ``flat``.
        """
        stats = self.stats
        stats.walks += 1
        if flat is None:
            return self._walk_staged(now, staged)
        if not flat:  # ideal table: nothing to fetch
            self.last_accesses = 0
            self.last_pwc_hit_level = None
            stats.latency.record(0.0)
            return 0.0

        # Probe every level's PWC (hardware probes them in parallel)
        # and resume the walk below the deepest hit; every level records
        # its hit/miss so Section V-C rates stay measurable.  The refill
        # of missing levels is fused into the same pass (see module
        # docstring for why that is equivalent).
        start = 0
        hit_level = None
        pwcs = self.pwcs
        if pwcs is not None:
            index = 0
            for step in flat:
                pwc = step[2]  # (sets, num_sets, assoc, stats)
                if pwc is not None:
                    key = step[3]
                    if key is not None:
                        pwc_set = pwc[0][key % pwc[1]]
                        if key in pwc_set:
                            pwc[3].hits += 1
                            pwc_set[key] = pwc_set.pop(key)
                            start = index + 1
                            hit_level = step[4]
                        else:
                            pwc[3].misses += 1
                            if len(pwc_set) >= pwc[2]:
                                del pwc_set[next(iter(pwc_set))]
                            pwc_set[key] = None
                index += 1
            latency = float(pwcs.latency)
        else:
            latency = 0.0
        self.last_pwc_hit_level = hit_level

        accesses = 0
        clock = now + latency
        hierarchy = self.hierarchy
        hier_stats = hierarchy.stats
        core_id = self.core_id
        l1 = self._l1
        l1_fast = l1._is_lru
        l1_sets = l1._sets
        l1_num_sets = l1.num_sets
        l1_shift = l1._line_shift
        l1_latency = l1.hit_latency
        l1_meta_stats = l1._kind_stats[KIND_METADATA]
        for i in range(start, len(flat)):
            step = flat[i]
            pte_paddr = step[0]
            bypass_l1 = step[1]
            if not bypass_l1:
                # Inlined L1 hit for cacheable PTE reads (LRU caches);
                # misses and bypassed reads take the shared fast path,
                # which re-probes the set.
                line = pte_paddr >> l1_shift
                cache_set = l1_sets[line % l1_num_sets]
                if cache_set.get(line) is not None and l1_fast:
                    hier_stats.accesses += 1
                    l1_meta_stats.hits += 1
                    cache_set[line] = cache_set.pop(line)
                    clock += l1_latency
                    accesses += 1
                    continue
            clock += hierarchy.access_fast(
                clock, pte_paddr, KIND_METADATA, 0, core_id, bypass_l1)
            accesses += 1

        latency = clock - now
        self.last_accesses = accesses
        stats.memory_accesses += accesses
        latency_stats = stats.latency
        latency_stats.total += latency
        latency_stats.count += 1
        if latency > latency_stats.maximum:
            latency_stats.maximum = latency
        return latency

    def _probe_single_step(self, step: tuple) -> bool:
        """Fused PWC probe+fill for one decorated step; True on a hit.

        Reference implementation of the probe the flat path in
        :meth:`walk_from_plan` keeps inlined for speed — change both
        together.
        """
        pwc = step[2]  # (sets, num_sets, assoc, stats)
        if pwc is None:
            return False
        key = step[3]
        if key is None:
            return False
        pwc_set = pwc[0][key % pwc[1]]
        if key in pwc_set:
            pwc[3].hits += 1
            pwc_set[key] = pwc_set.pop(key)  # LRU refresh
            return True
        pwc[3].misses += 1
        if len(pwc_set) >= pwc[2]:
            del pwc_set[next(iter(pwc_set))]
        pwc_set[key] = None
        return False

    def _walk_staged(self, now: float, staged: tuple) -> float:
        """Staged-plan walk (parallel probes, e.g. elastic-cuckoo ways).

        Same semantics as the flat path; ``stats.walks`` was already
        counted by the caller.
        """
        stats = self.stats
        if not staged:
            self.last_accesses = 0
            self.last_pwc_hit_level = None
            stats.latency.record(0.0)
            return 0.0

        start = 0
        hit_level = None
        pwcs = self.pwcs
        if pwcs is not None:
            index = 0
            for stage in staged:
                if len(stage) == 1 and self._probe_single_step(stage[0]):
                    start = index + 1
                    hit_level = stage[0][4]
                index += 1
            latency = float(pwcs.latency)
        else:
            latency = 0.0
        self.last_pwc_hit_level = hit_level

        accesses = 0
        clock = now + latency
        hierarchy = self.hierarchy
        core_id = self.core_id
        for i in range(start, len(staged)):
            stage = staged[i]
            stage_latency = 0.0
            for step in stage:
                access_latency = hierarchy.access_fast(
                    clock, step[0], KIND_METADATA, 0, core_id, step[1])
                if access_latency > stage_latency:
                    stage_latency = access_latency
                accesses += 1
            clock += stage_latency

        latency = clock - now
        self.last_accesses = accesses
        stats.memory_accesses += accesses
        latency_stats = stats.latency
        latency_stats.total += latency
        latency_stats.count += 1
        if latency > latency_stats.maximum:
            latency_stats.maximum = latency
        return latency

    def walk(self, now: float, page: int) -> WalkOutcome:
        """Object-API shim over :meth:`walk_fast`."""
        latency = self.walk_fast(now, page)
        return WalkOutcome(latency, self.last_accesses,
                           self.last_pwc_hit_level)
