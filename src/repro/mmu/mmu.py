"""Memory-management unit: TLB hierarchy + walker + OS fault path.

``translate`` implements the Fig. 3 / Fig. 11 flow for one reference:

1. probe the TLBs (L1 4 KB and 2 MB in parallel, then L2);
2. on a full miss, let the OS resolve any page fault (demand paging),
   then run the page-table walker;
3. install the resulting translation back into the TLBs.

Translation cycles (TLB + walk) and OS fault cycles are accounted
separately: the paper's "address translation overhead" (Fig. 5) is the
former, while end-to-end speedups include both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mmu.tlb import TlbHierarchy
from repro.mmu.walker import PageTableWalker
from repro.sim.stats import LatencyStats
from repro.vm.address import vpn
from repro.vm.os_model import OSMemoryManager


@dataclass
class TranslationOutcome:
    """What one address translation cost and produced."""

    paddr: int
    latency: float        # TLB + walk cycles (the translation overhead)
    fault_cycles: float   # OS demand-paging cycles, charged separately
    tlb_hit: bool
    walked: bool


@dataclass
class MmuStats:
    translations: int = 0
    tlb_hits: int = 0
    walks: int = 0
    translation_cycles: float = 0.0
    fault_cycles: float = 0.0
    walk_latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def tlb_miss_rate(self) -> float:
        if self.translations == 0:
            return 0.0
        return 1.0 - self.tlb_hits / self.translations

    def reset(self) -> None:
        self.translations = 0
        self.tlb_hits = 0
        self.walks = 0
        self.translation_cycles = 0.0
        self.fault_cycles = 0.0
        self.walk_latency.reset()


class Mmu:
    """Per-core MMU sharing a page table and OS with its siblings.

    Args:
        core_id: owning core.
        tlbs: private TLB hierarchy.
        walker: private page-table walker (shared table behind it).
        os_model: shared OS memory manager (fault handling).
        ideal: when True, every translation hits a zero-latency TLB —
            the paper's *Ideal* mechanism.  Demand-paging still occurs
            (frames must exist), and its cost is still charged, so the
            comparison against real mechanisms stays apples-to-apples.
    """

    def __init__(self, core_id: int, tlbs: TlbHierarchy,
                 walker: PageTableWalker, os_model: OSMemoryManager,
                 ideal: bool = False):
        self.core_id = core_id
        self.tlbs = tlbs
        self.walker = walker
        self.os = os_model
        self.ideal = ideal
        self.stats = MmuStats()

    def translate(self, now: float, vaddr: int) -> TranslationOutcome:
        """Translate ``vaddr`` for an access issued at cycle ``now``."""
        self.stats.translations += 1
        page = vpn(vaddr)

        if self.ideal:
            fault_cycles = self.os.ensure_mapped(vaddr, site=self.core_id)
            translation = self.os.page_table.lookup(page)
            self.stats.tlb_hits += 1
            self.stats.fault_cycles += fault_cycles
            return TranslationOutcome(
                paddr=translation.paddr(vaddr), latency=0.0,
                fault_cycles=fault_cycles, tlb_hit=True, walked=False)

        translation, latency = self.tlbs.lookup(page)
        if translation is not None:
            self.stats.tlb_hits += 1
            self.stats.translation_cycles += latency
            return TranslationOutcome(
                paddr=translation.paddr(vaddr), latency=latency,
                fault_cycles=0.0, tlb_hit=True, walked=False)

        # Full TLB miss: resolve any fault, then walk.
        fault_cycles = self.os.ensure_mapped(vaddr, site=self.core_id)
        outcome = self.walker.walk(now + latency + fault_cycles, page)
        latency += outcome.latency
        translation = self.os.page_table.lookup(page)
        self.tlbs.insert(page, translation)

        self.stats.walks += 1
        self.stats.translation_cycles += latency
        self.stats.fault_cycles += fault_cycles
        self.stats.walk_latency.record(outcome.latency)
        return TranslationOutcome(
            paddr=translation.paddr(vaddr), latency=latency,
            fault_cycles=fault_cycles, tlb_hit=False, walked=True)
