"""Memory-management unit: TLB hierarchy + walker + OS fault path.

``translate`` implements the Fig. 3 / Fig. 11 flow for one reference:

1. probe the TLBs (L1 4 KB and 2 MB in parallel, then L2);
2. on a full miss, let the OS resolve any page fault (demand paging),
   then run the page-table walker;
3. install the resulting translation back into the TLBs.

Translation cycles (TLB + walk) and OS fault cycles are accounted
separately: the paper's "address translation overhead" (Fig. 5) is the
former, while end-to-end speedups include both.

Hot-path design: :meth:`Mmu.translate_parts` is the allocation-free
entry point — it returns a plain tuple and inlines the L1-DTLB hit
(one dict probe), which is the overwhelmingly common outcome.
:meth:`Mmu.translate` wraps it in a :class:`TranslationOutcome` for
external callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mmu.tlb import TlbHierarchy
from repro.mmu.walker import PageTableWalker
from repro.sim.stats import LatencyStats
from repro.vm.address import ASID_KEY_MASK, PAGE_SHIFT, VA_MASK, asid_tag
from repro.vm.os_model import OSMemoryManager


@dataclass(slots=True)
class TranslationOutcome:
    """What one address translation cost and produced."""

    paddr: int
    latency: float        # TLB + walk cycles (the translation overhead)
    fault_cycles: float   # OS demand-paging cycles, charged separately
    tlb_hit: bool
    walked: bool


@dataclass(slots=True)
class MmuStats:
    translations: int = 0
    tlb_hits: int = 0
    walks: int = 0
    translation_cycles: float = 0.0
    fault_cycles: float = 0.0
    walk_latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def tlb_miss_rate(self) -> float:
        if self.translations == 0:
            return 0.0
        return 1.0 - self.tlb_hits / self.translations

    def reset(self) -> None:
        self.translations = 0
        self.tlb_hits = 0
        self.walks = 0
        self.translation_cycles = 0.0
        self.fault_cycles = 0.0
        self.walk_latency.reset()


class Mmu:
    """Per-core MMU sharing a page table and OS with its siblings.

    Args:
        core_id: owning core.
        tlbs: private TLB hierarchy.
        walker: private page-table walker (shared table behind it).
        os_model: shared OS memory manager (fault handling).
        ideal: when True, every translation hits a zero-latency TLB —
            the paper's *Ideal* mechanism.  Demand-paging still occurs
            (frames must exist), and its cost is still charged, so the
            comparison against real mechanisms stays apples-to-apples.
        asid: address-space id of the process this MMU context serves.
            Packed above the VPN bits of every TLB key (ASID 0 tags to
            0, leaving single-process keys untouched), so contexts of
            co-scheduled tenants share one TLB hierarchy without
            aliasing each other's translations.
    """

    __slots__ = ("core_id", "tlbs", "walker", "os", "ideal", "asid",
                 "asid_tag", "stats")

    def __init__(self, core_id: int, tlbs: TlbHierarchy,
                 walker: PageTableWalker, os_model: OSMemoryManager,
                 ideal: bool = False, asid: int = 0):
        self.core_id = core_id
        self.tlbs = tlbs
        self.walker = walker
        self.os = os_model
        self.ideal = ideal
        self.asid = asid
        self.asid_tag = asid_tag(asid)
        self.stats = MmuStats()

    def translate_parts(self, now: float, vaddr: int):
        """Translate ``vaddr`` for an access issued at cycle ``now``.

        Allocation-free fast path.  Returns the plain tuple
        ``(paddr, latency, fault_cycles, tlb_hit, walked)``.
        """
        stats = self.stats
        stats.translations += 1
        # ASID-tagged TLB key; the tag is 0 (a no-op OR) for the
        # single-address-space configurations.
        page = ((vaddr & VA_MASK) >> PAGE_SHIFT) | self.asid_tag

        if self.ideal:
            translation, fault_cycles = self.os.ensure_translated(
                vaddr, site=self.core_id)
            stats.tlb_hits += 1
            stats.fault_cycles += fault_cycles
            shift = translation.page_shift
            return ((translation.pfn << shift)
                    | (vaddr & ((1 << shift) - 1)),
                    0.0, fault_cycles, True, False)

        # Inlined L1-DTLB probe (the common case: one dict round-trip).
        tlbs = self.tlbs
        tlbs.lookups += 1
        l1 = tlbs.l1_small
        tlb_set = l1._sets[page % l1.num_sets]
        translation = tlb_set.get(page)
        if translation is not None:
            l1.stats.hits += 1
            tlb_set[page] = tlb_set.pop(page)  # refresh LRU position
            latency = l1.latency
            stats.tlb_hits += 1
            stats.translation_cycles += latency
            shift = translation[1]  # Translation fields by index (hot)
            return ((translation[0] << shift)
                    | (vaddr & ((1 << shift) - 1)),
                    latency, 0.0, True, False)
        l1.stats.misses += 1
        return self._translate_slow(now, vaddr, page)

    def _translate_slow(self, now: float, vaddr: int, page: int):
        """L1-DTLB miss: 2 MB L1 / L2 TLBs, then fault + walk.

        ``page`` is the ASID-tagged key (tag 0 single-process); the
        page table and walker plan memo work on the untagged VPN —
        each tenant has its own table, so tags would only split the
        memo for nothing.
        """
        stats = self.stats
        translation, latency = \
            self.tlbs.lookup_after_l1_small_miss(page)
        if translation is not None:
            stats.tlb_hits += 1
            stats.translation_cycles += latency
            shift = translation[1]
            return ((translation[0] << shift)
                    | (vaddr & ((1 << shift) - 1)),
                    latency, 0.0, True, False)

        # Full TLB miss: resolve any fault, then walk.  The walker's
        # plan memo resolves the PTE access plan and the translation in
        # one table descent; only an actual fault (plan_info None)
        # takes the OS path, after which the page is mapped and the
        # plan resolves.
        walker = self.walker
        vpn = page & ASID_KEY_MASK
        plan = walker.plan_info(vpn)
        if plan is not None:
            fault_cycles = 0.0
        else:
            _, fault_cycles = self.os.ensure_translated(
                vaddr, site=self.core_id)
            plan = walker.plan_info(vpn)
        flat, staged, translation = plan
        walk_latency = walker.walk_from_plan(
            now + latency + fault_cycles, flat, staged)
        latency += walk_latency
        self.tlbs.insert(page, translation)

        stats.walks += 1
        stats.translation_cycles += latency
        stats.fault_cycles += fault_cycles
        walk_stats = stats.walk_latency
        walk_stats.total += walk_latency
        walk_stats.count += 1
        if walk_latency > walk_stats.maximum:
            walk_stats.maximum = walk_latency
        shift = translation[1]
        return ((translation[0] << shift)
                | (vaddr & ((1 << shift) - 1)),
                latency, fault_cycles, False, True)

    def translate(self, now: float, vaddr: int) -> TranslationOutcome:
        """Object-API shim over :meth:`translate_parts`."""
        paddr, latency, fault_cycles, tlb_hit, walked = \
            self.translate_parts(now, vaddr)
        return TranslationOutcome(
            paddr=paddr, latency=latency, fault_cycles=fault_cycles,
            tlb_hit=tlb_hit, walked=walked)
