"""Page-walk caches (Section V-C, Fig. 10).

Each page-table level has a small dedicated cache of recently used
entries, tagged by the translation prefix that level consumes (the
MMU-cache design of Barr et al.).  A hit at level L lets the walker skip
the memory accesses for L and everything above it and resume below.

NDPage keeps the near-perfect L4/L3 PWCs and concentrates the poorly
caching bottom of the tree into a single flattened level, so a typical
walk costs one memory access.

Under multiprogramming the walker tags every key with the owning
address space's ASID (packed above the prefix bits, see
:data:`repro.vm.address.ASID_SHIFT`), so co-runners' entries coexist;
when the scheduler must recycle ASIDs it calls :meth:`PwcSet.flush`,
which clears every level in place (the walker's memoized set bindings
stay valid) and counts the flush for the scheduler's accounting.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.sim.stats import HitMissStats


class PageWalkCache:
    """Small set-associative cache of one level's page-table entries."""

    __slots__ = ("level", "entries", "associativity", "latency",
                 "num_sets", "stats", "_sets")

    def __init__(self, level: str, entries: int = 32,
                 associativity: int = 4, latency: int = 1):
        if entries % associativity != 0:
            raise ValueError("entries must divide by associativity")
        self.level = level
        self.entries = entries
        self.associativity = associativity
        self.latency = latency
        self.num_sets = entries // associativity
        self.stats = HitMissStats()
        self._sets: List[Dict[Hashable, None]] = [
            {} for _ in range(self.num_sets)
        ]

    def _set_for(self, key: Hashable) -> Dict[Hashable, None]:
        # Walker keys are ('LEVEL', prefix) tuples; indexing by the
        # integer prefix matches how a real MMU cache selects its set
        # (low prefix bits) and — unlike hash() of a tuple containing a
        # str — is stable across processes, which keeps whole-run
        # statistics reproducible (str hashing is randomized per
        # process).  Non-tuple keys fall back to hash() for API
        # compatibility.
        if type(key) is tuple and type(key[-1]) is int:
            return self._sets[key[-1] % self.num_sets]
        return self._sets[hash(key) % self.num_sets]

    def lookup(self, key: Hashable) -> bool:
        pwc_set = self._set_for(key)
        if key in pwc_set:
            self.stats.hits += 1
            pwc_set[key] = pwc_set.pop(key)  # LRU refresh
            return True
        self.stats.misses += 1
        return False

    def insert(self, key: Hashable) -> None:
        pwc_set = self._set_for(key)
        if key in pwc_set:
            return
        if len(pwc_set) >= self.associativity:
            del pwc_set[next(iter(pwc_set))]
        pwc_set[key] = None

    def flush(self) -> None:
        for pwc_set in self._sets:
            pwc_set.clear()


class PwcSet:
    """The per-core collection of level PWCs used by a walker."""

    def __init__(self, levels, entries: int = 32, associativity: int = 4,
                 latency: int = 1):
        self.latency = latency
        self.flushes = 0
        self._caches: Dict[str, PageWalkCache] = {
            level: PageWalkCache(level, entries, associativity, latency)
            for level in levels
        }

    def __contains__(self, level: str) -> bool:
        return level in self._caches

    def cache_for(self, level: str) -> Optional[PageWalkCache]:
        return self._caches.get(level)

    def caches(self) -> Dict[str, PageWalkCache]:
        """All level caches, keyed by level name."""
        return dict(self._caches)

    def hit_rates(self) -> Dict[str, float]:
        return {
            level: cache.stats.hit_rate
            for level, cache in self._caches.items()
        }

    def merged_hit_rate(self, levels) -> float:
        hits = misses = 0
        for level in levels:
            cache = self._caches.get(level)
            if cache is not None:
                hits += cache.stats.hits
                misses += cache.stats.misses
        total = hits + misses
        return hits / total if total else 0.0

    def flush(self) -> None:
        """Clear every level in place (ASID recycle / full shootdown)."""
        self.flushes += 1
        for cache in self._caches.values():
            cache.flush()
