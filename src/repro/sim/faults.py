"""Deterministic fault injection for sweep fault-tolerance testing.

The supervision machinery in :mod:`repro.sim.sweep` (per-cell outcome
capture, timeouts, worker respawn, quarantine) and the integrity layer
in :mod:`repro.analysis.cache` (checksums, corrupt-entry quarantine)
only earn trust if every recovery path can be exercised on demand.  A
:class:`FaultPlan` is a declarative list of faults to inject — raise
inside a cell, sleep past the supervisor's timeout, SIGKILL the worker
mid-cell, corrupt a cache entry right after it is written — matched
against cells by a substring of their human-readable label
(:func:`cell_label`) and, optionally, by attempt number.  Tests and the
CI chaos job use it to script scenarios like "cell X fails on attempt 1
and recovers on attempt 2" with full determinism.

Plans travel as text — the ``REPRO_FAULT_PLAN`` environment variable or
the ``fault_plan=`` argument to ``SweepRunner`` — with one
``;``-separated clause per fault::

    fail:bfs/ndpage/:*         raise InjectedFault on every attempt
    fail:bfs/ndpage/:1,2       ... on attempts 1 and 2 only
    hang:xs/radix/:1:30        sleep 30 s on attempt 1
    kill:rnd/radix/:1          SIGKILL the worker on attempt 1
    corrupt:bfs/radix/         corrupt the cache entry once, at store
    ioerr:cache/:1             EIO on the first matching cache write
    enospc:queue/:*            ENOSPC on every matching queue write
    stall:events/:1:0.2        delay the first matching sink write

``fail``/``hang``/``kill`` fire in the process about to simulate the
cell (:func:`apply_cell_faults`, called by the sweep worker entry
point and the serial path); ``corrupt`` fires in whichever process
stores the entry (:func:`maybe_corrupt_entry`, called by
``ResultCache.store``) and at most once per (clause, cell) per process
so a repaired entry stays repaired.

The I/O actions (``ioerr``/``enospc``/``stall``) fire at *write
sites* instead of cells: every hardened writer calls
:func:`maybe_io_fault` (usually via :func:`guarded_io`, which adds
the bounded-backoff retry contract) with a ``site/detail`` target
such as ``cache/<cell label>``, ``queue/<item name>``, or
``events/<event type>``.  The clause's attempt list selects the
n-th matching write at that target (per process), so
``enospc:cache/:1`` is a transient fault a retry absorbs while
``enospc:cache/:*`` is a persistent one the caller must degrade on.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Set, Tuple, Union

#: Environment variable holding the active plan text ('' / unset: none).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Recognised fault actions.
ACTIONS = ("fail", "hang", "kill", "corrupt", "ioerr", "enospc",
           "stall")

#: The subset injected at filesystem-write sites (see
#: :func:`maybe_io_fault`).
IO_ACTIONS = ("ioerr", "enospc", "stall")


class InjectedFault(RuntimeError):
    """Raised by a ``fail`` clause; recognisable in failure manifests."""


def cell_label(config) -> str:
    """Human-readable identity of a sweep cell, the match target.

    ``workload/mechanism/system/<cores>c/s<seed>`` — stable across
    processes, unique enough for fault matching (substring semantics:
    a clause matching ``bfs/ndpage/`` hits exactly the bfs+ndpage
    cells of a grid, whatever their position).
    """
    return (f"{config.workload}/{config.mechanism}/{config.system}/"
            f"{config.num_cores}c/s{config.seed}")


@dataclass(frozen=True)
class FaultSpec:
    """One fault clause: what to do, where, and when."""

    action: str
    match: str                                  # substring of the label
    attempts: Optional[Tuple[int, ...]] = None  # None: every attempt
    seconds: float = 60.0                       # hang duration

    def applies(self, label: str,
                attempt: Optional[int] = None) -> bool:
        if self.match not in label:
            return False
        if self.attempts is None or attempt is None:
            return True
        return attempt in self.attempts

    def to_clause(self) -> str:
        parts = [self.action, self.match,
                 "*" if self.attempts is None
                 else ",".join(str(a) for a in self.attempts)]
        if self.action in ("hang", "stall"):
            parts.append(str(self.seconds))
        return ":".join(parts)


class FaultPlan:
    """An ordered set of :class:`FaultSpec` clauses.

    Falsy when empty, round-trips through :meth:`to_text` /
    :meth:`parse` (how the supervisor ships it to worker processes).
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs = []
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            if len(parts) < 2 or parts[0] not in ACTIONS:
                raise ValueError(
                    f"bad fault clause {clause!r}: expected "
                    f"action:match[:attempts[:seconds]] with action "
                    f"one of {ACTIONS}")
            attempts = None
            if len(parts) > 2 and parts[2] not in ("", "*"):
                attempts = tuple(int(p) for p in parts[2].split(","))
            # A `hang` must outlast a cell timeout; a `stall` only
            # needs to be observable, so its default stays small.
            default_seconds = 0.05 if parts[0] == "stall" else 60.0
            seconds = (float(parts[3]) if len(parts) > 3
                       else default_seconds)
            specs.append(FaultSpec(parts[0], parts[1], attempts,
                                   seconds))
        return cls(specs)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        text = (environ if environ is not None
                else os.environ).get(FAULT_PLAN_ENV, "").strip()
        return cls.parse(text) if text else None

    def to_text(self) -> str:
        return ";".join(spec.to_clause() for spec in self.specs)

    def find(self, actions: Union[str, Sequence[str]], label: str,
             attempt: Optional[int] = None) -> Optional[FaultSpec]:
        """First clause in ``actions`` applying to (label, attempt)."""
        if isinstance(actions, str):
            actions = (actions,)
        for spec in self.specs:
            if spec.action in actions and spec.applies(label, attempt):
                return spec
        return None

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({self.to_text()!r})"


def apply_cell_faults(plan: FaultPlan, label: str,
                      attempt: int) -> None:
    """Fire any ``fail``/``hang``/``kill`` clause for this attempt.

    Called by the worker entry point (and the serial path) just before
    simulating a cell — the seam every recovery path is driven
    through.  ``fail`` raises :class:`InjectedFault`, ``hang`` sleeps
    (long enough to trip the supervisor's cell timeout), ``kill``
    SIGKILLs the calling process, exactly like the OOM killer would.
    """
    spec = plan.find(("fail", "hang", "kill"), label, attempt)
    if spec is None:
        return
    if spec.action == "fail":
        raise InjectedFault(
            f"injected failure for {label} (attempt {attempt})")
    if spec.action == "hang":
        time.sleep(spec.seconds)
        return
    os.kill(os.getpid(), signal.SIGKILL)


def corrupt_entry(path) -> None:
    """Perturb a cache entry's payload without touching its checksum.

    Prefers the adversarial case: a *well-formed* JSON entry whose
    result payload changed under it (bit flip, partial overwrite) —
    exactly what a parse-only loader would serve silently.  Falls back
    to truncation when the entry isn't parseable JSON.
    """
    path = Path(path)
    text = path.read_text()
    try:
        entry = json.loads(text)
        result = entry.get("result")
        if (isinstance(result, dict)
                and isinstance(result.get("cycles"), (int, float))):
            result["cycles"] = result["cycles"] + 1.0
            path.write_text(json.dumps(entry) + "\n")
            return
    except json.JSONDecodeError:
        pass
    path.write_text(text[:max(1, len(text) // 2)])


#: (action, match, label) triples whose corrupt clause already fired in
#: this process — corruption is one-shot so a repaired entry survives.
_FIRED: Set[Tuple[str, str, str]] = set()


def maybe_corrupt_entry(path, label: str,
                        plan: Optional[FaultPlan] = None) -> bool:
    """Corrupt ``path`` if an active ``corrupt`` clause matches.

    ``plan`` defaults to the environment plan; returns whether the
    entry was corrupted.  Hooked into ``ResultCache.store``.
    """
    if plan is None:
        plan = FaultPlan.from_env()
    if not plan:
        return False
    spec = plan.find("corrupt", label)
    if spec is None:
        return False
    token = (spec.action, spec.match, label)
    if token in _FIRED:
        return False
    _FIRED.add(token)
    corrupt_entry(path)
    return True


# -- I/O fault injection ------------------------------------------------------

#: Per-(clause, target) count of write opportunities seen in this
#: process; an I/O clause's attempt list indexes into this sequence.
_IO_COUNTS: Dict[Tuple[str, str, str], int] = {}


def maybe_io_fault(site: str, detail: str = "",
                   plan: Optional[FaultPlan] = None) -> None:
    """Fire any ``ioerr``/``enospc``/``stall`` clause for this write.

    ``site`` names the writer class (``"cache"``, ``"queue"``,
    ``"events"``, ``"journal"``); ``detail`` its per-write identity
    (cell label, item name, event type).  Clauses match the combined
    ``site/detail`` target by substring, and their attempt list picks
    the n-th matching write at that target — so transient
    (``:1``-style) and persistent (``:*``) faults are both
    expressible.  ``plan`` defaults to the environment plan.
    """
    if plan is None:
        plan = FaultPlan.from_env()
    if not plan:
        return
    target = f"{site}/{detail}"
    spec = plan.find(IO_ACTIONS, target)
    if spec is None:
        return
    token = (spec.action, spec.match, target)
    count = _IO_COUNTS.get(token, 0) + 1
    _IO_COUNTS[token] = count
    if not spec.applies(target, count):
        return
    if spec.action == "stall":
        time.sleep(spec.seconds)
        return
    code = errno.ENOSPC if spec.action == "enospc" else errno.EIO
    raise OSError(code, f"injected {spec.action} at {target} "
                        f"(write {count})")


def guarded_io(fn: Callable[[], object], site: str, detail: str = "",
               plan: Optional[FaultPlan] = None, retries: int = 2,
               backoff: float = 0.02,
               sleep: Callable[[float], None] = time.sleep):
    """Run the I/O action ``fn`` under injection and bounded retry.

    Before each try, any matching I/O clause fires
    (:func:`maybe_io_fault`); an ``OSError`` — injected or real — is
    retried up to ``retries`` times with exponential backoff, and the
    final failure propagates for the caller to degrade on.  This is
    the shared hardening contract of the cache, queue, and journal
    writers: transient faults are absorbed here, persistent ones
    become a hole instead of a crash at the call site.
    """
    for attempt in range(retries + 1):
        try:
            maybe_io_fault(site, detail, plan)
            return fn()
        except OSError:
            if attempt >= retries:
                raise
            sleep(backoff * (2 ** attempt))


def reset_fired() -> None:
    """Forget which one-shot clauses fired and the per-site write
    counts (test isolation)."""
    _FIRED.clear()
    _IO_COUNTS.clear()
