"""Multi-process scheduling: time-slicing tenants onto cores.

Single-address-space runs give every core one reference stream and one
MMU context.  Under multiprogramming (``SystemConfig.tenants > 1``) each
physical core *slot* instead carries one execution context per tenant —
a :class:`~repro.sim.core_model.Core` bound to that tenant's MMU view —
and this module's :class:`ScheduledEngine` round-robins the contexts on
each slot with a configurable quantum, the way an OS scheduler
time-slices runnable processes.

What a context switch costs and preserves
-----------------------------------------
Every switch charges ``context_switch_cycles`` to the slot's timeline
(register save/restore, kernel scheduling work).  What happens to the
translation state depends on the hardware ASID space
(:class:`~repro.sim.config.SchedulerParams`):

* while co-runners fit in ``max_asids``, TLB and PWC entries are
  ASID-tagged and survive the switch — the incoming tenant re-enters a
  warm TLB exactly as PCID-equipped hardware allows;
* once processes outnumber ASIDs (or ``flush_on_switch`` forces it),
  the OS must recycle ids and every switch flushes the slot's TLBs and
  page-walk caches — the pre-PCID world, and the worst case the paper's
  mechanisms differentiate under.

Shootdowns and cross-tenant pressure
------------------------------------
All tenants allocate from one shared :class:`~repro.vm.frames
.FrameAllocator`, so one tenant's footprint is another's memory
pressure.  The :class:`TenantCoordinator` wires the per-tenant
:class:`~repro.vm.os_model.OSMemoryManager` instances together: when
reclaim unmaps a page it broadcasts a TLB shootdown (invalidating the
ASID-tagged entry on every slot and charging ``shootdown_cycles`` to
the core whose fault forced the eviction), and when a tenant has
nothing left to evict it reclaims from the most resident co-tenant
instead of dying on OOM.

Determinism: scheduling is driven entirely by reference counts and
simulated time — no host state — so multi-tenant runs are bit-identical
across processes and sweep worker counts, like everything else in the
simulator.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass
from typing import List, Optional

from math import inf

from repro.mmu.pwc import PwcSet
from repro.mmu.tlb import TlbHierarchy
from repro.sim.config import SchedulerParams
from repro.sim.core_model import Core
from repro.sim.engine import (
    LINEAR_SCAN_MAX,
    SimulationEngine,
    drive_heap,
    drive_linear,
    reference_engine_enabled,
)
from repro.vm.address import asid_tag
from repro.vm.frames import OutOfMemoryError
from repro.vm.os_model import OSMemoryManager


@dataclass(slots=True)
class SchedulerStats:
    """What the scheduler did over one run."""

    context_switches: int = 0
    preserved_switches: int = 0   # ASID kept the TLB/PWC contents warm
    flush_switches: int = 0       # ASID recycle forced a full flush
    switch_cycles: float = 0.0
    shootdowns: int = 0           # pages invalidated by reclaim unmaps
    shootdown_ipis: int = 0       # IPIs charged (== shootdowns unbatched)
    shootdown_cycles: float = 0.0
    cross_tenant_reclaims: int = 0

    def reset(self) -> None:
        """Zero every counter (field-generic, so counters added later
        cannot leak warmup accounting into the timed region)."""
        for stats_field in dataclasses.fields(self):
            setattr(self, stats_field.name, stats_field.default)


class TenantCoordinator:
    """Cross-tenant OS glue: TLB shootdowns and pressure reclaim.

    One per multi-tenant system.  Tenants and slots register during
    assembly; the factory methods hand each
    :class:`~repro.vm.os_model.OSMemoryManager` its hooks.
    """

    def __init__(self, params: SchedulerParams):
        self.params = params
        self.stats = SchedulerStats()
        self._slots: List[TlbHierarchy] = []
        self._tenants: List[tuple] = []   # (asid, os_model)
        self._pending_cycles = 0.0
        self._reclaiming = False
        # Shootdown batching (Linux's arch_tlbbatch model): unmapped
        # pages are invalidated immediately for correctness, but the
        # IPI bill accrues once per ``shootdown_batch`` pages — the
        # pending set accumulates across reclaim passes and the core
        # that fills a batch pays its IPI.  A final partial batch never
        # bills (bounded undercharge of one IPI per run).
        self._shootdown_cost = float(params.shootdown_cycles)
        self._batch_fill = 0

    def register_slot(self, tlbs: TlbHierarchy) -> None:
        self._slots.append(tlbs)

    def register_tenant(self, asid: int, os_model: OSMemoryManager
                        ) -> None:
        self._tenants.append((asid, os_model))

    # -- OSMemoryManager hooks ---------------------------------------

    def unmap_hook(self, asid: int):
        """``on_unmap`` hook for tenant ``asid``: broadcast a shootdown.

        The IPI goes to every slot (the tenant may have run anywhere);
        its cost accrues to :meth:`drain_cycles`, which the faulting
        tenant's OS folds into the fault it is handling — the initiator
        pays, as with Linux's direct-reclaim shootdowns.  With
        ``shootdown_batch > 1`` the invalidations still land
        immediately (TLB correctness) but one IPI covers each batch of
        unmaps, the flush coalescing Linux applies to reclaim.
        """
        tag = asid_tag(asid)
        stats = self.stats
        cost = self._shootdown_cost
        batch = self.params.shootdown_batch

        def on_unmap(page: int, huge: bool) -> None:
            stats.shootdowns += 1
            key = page | tag
            for tlbs in self._slots:
                tlbs.invalidate_page(key, huge)
            if batch <= 1:
                stats.shootdown_ipis += 1
                stats.shootdown_cycles += cost
                self._pending_cycles += cost
                return
            self._batch_fill += 1
            if self._batch_fill >= batch:
                self._batch_fill = 0
                stats.shootdown_ipis += 1
                stats.shootdown_cycles += cost
                self._pending_cycles += cost

        return on_unmap

    def drain_cycles(self) -> float:
        """``extra_fault_cycles`` hook: uncharged shootdown cycles.

        A partially filled shootdown batch stays pending across
        faults (deferred flush batching); only full batches have
        billed by the time this drains.
        """
        pending = self._pending_cycles
        self._pending_cycles = 0.0
        return pending

    def peer_reclaim_hook(self, asid: int):
        """``peer_reclaim`` hook: evict from the most resident peer.

        Victims are tried most-resident-first (reclaim-list length,
        asid as the deterministic tiebreak).  Returns True once any
        peer freed memory; False when every peer is exhausted too (the
        caller then raises the machine-wide OOM).  Re-entry is guarded:
        a victim's own reclaim never cascades into further peers.
        """

        def peer_reclaim() -> bool:
            if self._reclaiming:
                return False
            self._reclaiming = True
            try:
                victims = sorted(
                    ((os_model.resident_records, peer, os_model)
                     for peer, os_model in self._tenants
                     if peer != asid),
                    key=lambda item: (-item[0], item[1]))
                for _, _, victim in victims:
                    try:
                        victim.reclaim_one()
                    except OutOfMemoryError:
                        continue
                    self.stats.cross_tenant_reclaims += 1
                    return True
                return False
            finally:
                self._reclaiming = False

        return peer_reclaim

    def reset(self) -> None:
        """Forget warmup-phase accounting before the timed region."""
        self.stats.reset()
        self._pending_cycles = 0.0
        self._batch_fill = 0


class SlotSchedule:
    """One physical core slot and the tenant contexts sharing it."""

    __slots__ = ("slot_id", "cores", "tlbs", "pwcs", "alive", "active",
                 "quantum_refs")

    def __init__(self, slot_id: int, cores: List[Core],
                 tlbs: TlbHierarchy, pwcs: Optional[PwcSet]):
        self.slot_id = slot_id
        self.cores = list(cores)        # one per tenant, asid order
        self.tlbs = tlbs
        self.pwcs = pwcs
        self.alive = list(self.cores)   # round-robin run queue
        self.active = 0                 # index into ``alive``
        self.quantum_refs = 0           # refs consumed in this slice


class ScheduledEngine(SimulationEngine):
    """Quantum-based round-robin of tenant contexts over core slots.

    Single-slot runs drive the chunked fast path — one
    ``step_until(now, inf, quantum)`` call is one time slice.
    Multi-slot runs interleave slots in global time (shared-DRAM
    ordering) through the same run-ahead scheme as the plain engine: a
    linear-scan array of next-ready slots up to ``LINEAR_SCAN_MAX``, a
    heap above it, and the per-reference heap loop retained as the
    debug reference engine behind ``REPRO_REFERENCE_ENGINE=1``.  The
    run-ahead deadline composes with the quantum: the active context
    runs to the next other-slot event or the end of its slice,
    whichever comes first.  All paths charge switches and model ASID
    behaviour identically, reference for reference.
    """

    def __init__(self, slots: List[SlotSchedule],
                 params: SchedulerParams,
                 coordinator: TenantCoordinator):
        super().__init__([core for slot in slots for core in slot.cores])
        self.slots = slots
        self.params = params
        self.coordinator = coordinator
        self.stats = coordinator.stats
        tenant_count = max(len(slot.cores) for slot in slots)
        self._flush_on_switch = (params.flush_on_switch
                                 or tenant_count > params.max_asids)
        # Per-context quantum (weighted quanta): each core context's
        # slice length scales with its tenant's weight.  Without
        # weights the quantum is one constant, kept separately so the
        # heap engine's per-reference check stays a plain int compare
        # (no dict lookup) on the common unweighted path.
        self._quanta = {
            id(core): tenant_quantum(params, core.mmu.asid)
            for slot in slots for core in slot.cores
        }
        self._uniform_quantum = (params.quantum_refs
                                 if not params.tenant_weights else None)
        # Per-context coroutine senders, built at run time (see _run).
        self._senders = {}

    # -- switching ---------------------------------------------------

    def _switch(self, slot: SlotSchedule, now: float) -> float:
        """Charge one context switch on ``slot``; return the new time."""
        stats = self.stats
        stats.context_switches += 1
        cost = float(self.params.context_switch_cycles)
        stats.switch_cycles += cost
        if self._flush_on_switch:
            stats.flush_switches += 1
            slot.tlbs.flush()
            if slot.pwcs is not None:
                slot.pwcs.flush()
        else:
            stats.preserved_switches += 1
        return now + cost

    def _retire(self, slot: SlotSchedule, now: float) -> Optional[float]:
        """Drop the active (finished) context; switch to the next.

        Returns the time the next context resumes, or None when the
        slot's run queue is empty.
        """
        slot.alive.pop(slot.active)
        if not slot.alive:
            return None
        if slot.active >= len(slot.alive):
            slot.active = 0
        slot.quantum_refs = 0
        return self._switch(slot, now)

    # -- execution ---------------------------------------------------

    def _run(self) -> None:
        if reference_engine_enabled():
            # Debug: reference-granular heap scheduling — also for a
            # single slot (bit-identical to the chunked slicing, so
            # the env var always bypasses the fast path).
            self._run_heap_sched()
        elif len(self.slots) == 1:
            self._run_single_slot(self.slots[0])
        else:
            # Direct coroutine senders, one per context: a run-ahead
            # batch costs one C-level generator resume.
            self._senders = {
                id(core): core.runner_send()
                for slot in self.slots for core in slot.cores
            }
            if len(self.slots) <= LINEAR_SCAN_MAX:
                self._run_linear_sched()
            else:
                self._run_heap_sched_runahead()

    def _run_single_slot(self, slot: SlotSchedule) -> None:
        """Quantum-granular slicing on the heap-free fast path."""
        quanta = self._quanta
        now = 0.0
        while slot.alive:
            core = slot.alive[slot.active]
            if len(slot.alive) == 1:
                # Last context standing: no more switches, run it out.
                next_ready = core.step_until(now, inf)
            else:
                next_ready = core.step_until(now, inf,
                                             quanta[id(core)])
            if next_ready is None:
                now = max(now, core.stats.cycles)
                resumed = self._retire(slot, now)
                if resumed is None:
                    return
                now = resumed
            else:
                slot.active = (slot.active + 1) % len(slot.alive)
                now = self._switch(slot, next_ready)

    def _advance_slot(self, slot: SlotSchedule, now: float,
                      bound: float) -> Optional[float]:
        """Run ``slot``'s active context ahead to ``bound`` or the end
        of its quantum; return the slot's next event key (None when
        the slot's run queue emptied).

        Exactly replicates the reference engine's per-reference
        accounting: partial slices accumulate ``quantum_refs`` across
        activations, a filled quantum switches immediately (the switch
        only touches slot-local state, so its placement relative to
        other slots' references is immaterial), and a context's end of
        stream retires it at its drained ready time.
        """
        core = slot.alive[slot.active]
        if len(slot.alive) > 1:
            uniform = self._uniform_quantum
            quantum = uniform if uniform is not None \
                else self._quanta[id(core)]
            limit = quantum - slot.quantum_refs
            start_refs = core.stats.references
            next_ready = self._senders[id(core)]((now, bound, limit))
        else:
            limit = None
            next_ready = self._senders[id(core)]((now, bound, None))
        if next_ready is None:
            return self._retire(slot, max(now, core.stats.cycles))
        if limit is not None:
            consumed = core.stats.references - start_refs
            slot.quantum_refs += consumed
            if consumed >= limit:
                slot.quantum_refs = 0
                slot.active = (slot.active + 1) % len(slot.alive)
                next_ready = self._switch(slot, next_ready)
        return next_ready

    def _run_linear_sched(self) -> None:
        """Run-ahead over a linear-scan array of next-ready slots."""
        slots = sorted(self.slots, key=lambda slot: slot.slot_id)
        advance_slot = self._advance_slot

        def advance(i, now, bound):
            return advance_slot(slots[i], now, bound)

        drive_linear(len(slots), advance)

    def _run_heap_sched_runahead(self) -> None:
        """Run-ahead under a heap (slot counts past the scan window)."""
        by_id = {slot.slot_id: slot for slot in self.slots}
        advance_slot = self._advance_slot

        def advance(slot_id, now, bound):
            return advance_slot(by_id[slot_id], now, bound)

        drive_heap(sorted(by_id), advance)

    def _run_heap_sched(self) -> None:
        """Debug reference engine: one heap pop per reference
        (``REPRO_REFERENCE_ENGINE=1``); the run-ahead loops must match
        it bit for bit."""
        quanta = self._quanta
        uniform = self._uniform_quantum  # int, or None when weighted
        heap = [(0.0, slot.slot_id) for slot in self.slots]
        heapq.heapify(heap)
        by_id = {slot.slot_id: slot for slot in self.slots}
        while heap:
            now, slot_id = heapq.heappop(heap)
            slot = by_id[slot_id]
            core = slot.alive[slot.active]
            next_ready = core.step(now)
            if next_ready is None:
                resumed = self._retire(slot, max(now, core.stats.cycles))
                if resumed is not None:
                    heapq.heappush(heap, (resumed, slot_id))
                continue
            slot.quantum_refs += 1
            if (slot.quantum_refs >= (uniform or quanta[id(core)])
                    and len(slot.alive) > 1):
                slot.quantum_refs = 0
                slot.active = (slot.active + 1) % len(slot.alive)
                next_ready = self._switch(slot, next_ready)
            heapq.heappush(heap, (next_ready, slot_id))


def tenant_quantum(params: SchedulerParams, asid: int) -> int:
    """Effective time slice for tenant ``asid`` in references.

    ``tenant_weights`` scales the base quantum per tenant (priority
    scheduling: weight 2.0 runs twice as long per slice); absent
    weights every tenant gets ``quantum_refs`` — the original equal
    round-robin, bit for bit.
    """
    weights = params.tenant_weights
    if not weights:
        return params.quantum_refs
    return max(1, int(round(params.quantum_refs * weights[asid])))


def quantum_chunks(chunks, quantum: int):
    """Split a chunk stream so no chunk crosses a quantum boundary.

    Keeps chunk handover aligned to time slices — including when the
    quantum exceeds the workload's generation batch (cumulative
    boundaries like 8192+1808 for a 10000-ref quantum).  Works on any
    chunk arity (``(addrs, writes)`` or the preprocessed
    ``(addrs, writes, vpns, vlines)`` tuples); pure list slicing on
    already-generated chunks, so the underlying RNG draw sequence is
    untouched.
    """
    used = 0
    for chunk in chunks:
        pos = 0
        end = len(chunk[0])
        while pos < end:
            take = min(quantum - used, end - pos)
            if pos == 0 and take == end:
                yield chunk
            else:
                stop = pos + take
                yield tuple(field[pos:stop] for field in chunk)
            used = (used + take) % quantum
            pos += take


def tenant_seed(base_seed: int, asid: int) -> int:
    """Deterministic per-tenant workload seed.

    Distinct co-runners of the same workload key get distinct streams
    (independent processes, not lockstep clones); tenant 0 keeps the
    base seed so a 1-tenant schedule touches the same addresses as the
    plain single-process configuration.
    """
    return (base_seed + 1_009 * asid) & 0xFFFFFFFF
