"""Experiment runner: build, run, and summarize one simulation.

:func:`run_once` produces a :class:`RunResult` holding every metric the
paper's figures use — cycles and speedups, PTW latency (Figs. 4/6),
translation-overhead fraction (Figs. 5/6), per-kind L1 miss rates
(Fig. 7), PWC hit rates (Section V-C), page-table occupancy (Fig. 8),
DRAM traffic attribution (Section IV-A's 65.8 % / 200.4x claims) and OS
fault behaviour (the Huge Page story in Section VII-B).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.mem.request import RequestKind
from repro.sim.config import SystemConfig
from repro.sim.stats import LatencyStats, ratio
from repro.sim.system import System


@dataclass
class RunResult:
    """Flat summary of one simulation run."""

    config: SystemConfig
    cycles: float
    instructions: int
    references: int
    translation_cycles: float
    fault_cycles: float
    ptw_latency_mean: float
    ptw_latency_max: float
    walks: int
    tlb_miss_rate: float
    l1_data_miss_rate: float
    l1_metadata_miss_rate: float
    metadata_mem_fraction: float
    pte_memory_accesses: int
    pwc_hit_rates: Dict[str, float]
    occupancy: Dict[str, float]
    dram_accesses_by_kind: Dict[str, int]
    dram_row_hit_rate: float
    dram_queue_delay_mean: float
    os_stats: Dict[str, float]
    data_evicted_by_metadata: int
    table_bytes: int
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def translation_fraction(self) -> float:
        """Share of core cycles spent in address translation (Fig. 5)."""
        total = self.cycles * self.config.num_cores
        return ratio(self.translation_cycles, total)

    @property
    def ipc(self) -> float:
        return ratio(self.instructions,
                     self.cycles * self.config.num_cores)

    def speedup_over(self, baseline: "RunResult") -> float:
        """End-to-end speedup of this run relative to ``baseline``."""
        if self.cycles == 0:
            return 0.0
        return baseline.cycles / self.cycles

    def summary(self) -> Dict[str, float]:
        """Compact dict for table printing."""
        return {
            "cycles": self.cycles,
            "ipc": self.ipc,
            "ptw_mean": self.ptw_latency_mean,
            "tlb_miss": self.tlb_miss_rate,
            "trans_frac": self.translation_fraction,
            "l1_data_miss": self.l1_data_miss_rate,
            "l1_meta_miss": self.l1_metadata_miss_rate,
        }


def collect(system: System, cycles: float) -> RunResult:
    """Aggregate statistics from a finished :class:`System`."""
    cores = system.cores
    mmus = system.mmus
    hierarchy = system.hierarchy

    walk_latency = LatencyStats()
    for mmu in mmus:
        walk_latency.merge(mmu.stats.walk_latency)

    translations = sum(m.stats.translations for m in mmus)
    tlb_hits = sum(m.stats.tlb_hits for m in mmus)
    pte_accesses = sum(m.walker.stats.memory_accesses for m in mmus)
    references = sum(c.stats.references for c in cores)

    pwc_hit_rates: Dict[str, float] = {}
    pwc_hits: Dict[str, int] = {}
    pwc_misses: Dict[str, int] = {}
    for pwcs in system.pwc_sets:
        if pwcs is None:
            continue
        for level, cache in pwcs.caches().items():
            pwc_hits[level] = pwc_hits.get(level, 0) + cache.stats.hits
            pwc_misses[level] = (pwc_misses.get(level, 0)
                                 + cache.stats.misses)
    for level in pwc_hits:
        pwc_hit_rates[level] = ratio(
            pwc_hits[level], pwc_hits[level] + pwc_misses[level])

    # Machine-wide DRAM view: the flat machine's single device, or the
    # merged per-node devices of a NUMA machine.
    dram = hierarchy.dram_stats()
    if system.tenants:
        # Multiprogrammed run: OS behaviour is the sum over tenant
        # address spaces; occupancy is reported for tenant 0's table
        # (co-runners of one workload are statistically alike), while
        # table_bytes counts every tenant's structures — the real
        # metadata footprint in the shared frame pool.
        os_stats = _merged_os_stats(system.tenants)
        table_bytes = sum(t.page_table.table_bytes()
                          for t in system.tenants)
        occupancy = system.tenants[0].page_table.occupancy()
    else:
        os_stats = system.os.stats
        table_bytes = system.page_table.table_bytes()
        occupancy = system.page_table.occupancy()

    extras: Dict[str, float] = {}
    sched = system.scheduler_stats
    if sched is not None:
        extras = {
            "tenants": float(system.config.tenants),
            "context_switches": float(sched.context_switches),
            "preserved_switches": float(sched.preserved_switches),
            "flush_switches": float(sched.flush_switches),
            "switch_cycles": sched.switch_cycles,
            "shootdowns": float(sched.shootdowns),
            "shootdown_cycles": sched.shootdown_cycles,
            "cross_tenant_reclaims": float(sched.cross_tenant_reclaims),
            "frame_pressure": system.allocator.pressure,
        }
        if system.config.scheduler.shootdown_batch > 1:
            # Reported only when batching is on, so unbatched runs —
            # including every pre-batching golden — keep their exact
            # extras shape.
            extras["shootdown_ipis"] = float(sched.shootdown_ipis)
    topology = getattr(system, "topology", None)
    if topology is not None:
        hs = hierarchy.stats
        extras["numa_nodes"] = float(topology.nodes)
        extras["remote_dram_reads"] = float(hs.remote_reads)
        extras["remote_fraction"] = ratio(hs.remote_reads,
                                          hs.dram_reads)
        extras["remote_penalty_cycles"] = hs.remote_penalty_cycles
        extras["numa_spills"] = float(system.allocator.total_spills)

    return RunResult(
        config=system.config,
        cycles=cycles,
        instructions=sum(c.stats.instructions for c in cores),
        references=references,
        translation_cycles=sum(
            c.stats.translation_cycles for c in cores),
        fault_cycles=sum(c.stats.fault_cycles for c in cores),
        ptw_latency_mean=walk_latency.mean,
        ptw_latency_max=walk_latency.maximum,
        walks=walk_latency.count,
        tlb_miss_rate=ratio(translations - tlb_hits, translations),
        l1_data_miss_rate=hierarchy.l1_miss_rate(RequestKind.DATA),
        l1_metadata_miss_rate=hierarchy.l1_miss_rate(
            RequestKind.METADATA),
        metadata_mem_fraction=ratio(
            pte_accesses, pte_accesses + references),
        pte_memory_accesses=pte_accesses,
        pwc_hit_rates=pwc_hit_rates,
        occupancy=occupancy,
        dram_accesses_by_kind={
            kind.value: count
            for kind, count in dram.accesses_by_kind.items()
        },
        dram_row_hit_rate=dram.row_hit_rate,
        dram_queue_delay_mean=dram.queue_delay.mean,
        os_stats={
            "minor_faults": os_stats.minor_faults,
            "huge_faults": os_stats.huge_faults,
            "huge_fallbacks": os_stats.huge_fallbacks,
            "compactions": os_stats.compactions,
            "reclaims": os_stats.reclaims,
            "fault_cycles": os_stats.fault_cycles,
        },
        data_evicted_by_metadata=sum(
            c.stats.data_evicted_by_metadata for c in hierarchy.l1ds),
        table_bytes=table_bytes,
        extras=extras,
    )


def _merged_os_stats(tenants):
    """Field-wise sum of every tenant's :class:`OsStats`.

    Iterates the dataclass fields so counters added to OsStats later
    are aggregated automatically instead of silently dropped.
    """
    merged = type(tenants[0].os.stats)()
    names = [f.name for f in dataclasses.fields(merged)]
    for tenant in tenants:
        stats = tenant.os.stats
        for name in names:
            setattr(merged, name,
                    getattr(merged, name) + getattr(stats, name))
    return merged


def run_once(config: SystemConfig) -> RunResult:
    """Build a system from ``config``, run it, and collect metrics."""
    system = System(config)
    cycles = system.run()
    return collect(system, cycles)


def run_mechanisms(config: SystemConfig,
                   mechanisms: Iterable[str],
                   baseline: Optional[str] = "radix"
                   ) -> Dict[str, RunResult]:
    """Run ``config`` once per mechanism (same workload/cores/seed).

    Returns results keyed by mechanism; callers derive speedups with
    :meth:`RunResult.speedup_over` against ``results[baseline]``.
    """
    results = {}
    for mechanism in mechanisms:
        results[mechanism] = run_once(config.with_mechanism(mechanism))
    if baseline is not None and baseline not in results:
        results[baseline] = run_once(config.with_mechanism(baseline))
    return results
