"""Simulation configuration mirroring the paper's Table I.

:class:`SystemConfig` is the single object the experiment runner needs:
it names the platform (CPU vs NDP), core count, translation mechanism,
workload and scale, and carries the Table I hardware parameters with
the paper's values as defaults.

``scale`` shrinks *workload footprints* (and physical memory with them)
so runs complete in seconds; hardware structure sizes stay at Table I
values, keeping every capacity ratio that matters — footprint versus
TLB reach, PTE working set versus L1 — in the paper's regime (see
DESIGN.md, "Timing model substitution").
"""

from __future__ import annotations

import dataclasses
import json
import typing
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.core.mechanisms import get_mechanism
from repro.vm.os_model import FaultCosts

GIB = 1024 ** 3

#: Paper platform identifiers.
SYSTEM_CPU = "cpu"
SYSTEM_NDP = "ndp"

#: Default footprint scaling: full paper-scale datasets.  Demand paging
#: makes simulation cost proportional to executed references, not to
#: dataset size, so running the real 8-33 GB footprints (over a real
#: 16 GB physical memory) is affordable and keeps every capacity ratio
#: — TLB reach, PTE working set vs L1, huge-page contiguity demand —
#: exactly at the paper's operating point.  Smaller values exist for
#: fast unit tests and for deliberately provoking memory pressure.
DEFAULT_SCALE = 1.0


@dataclass(frozen=True)
class CacheParams:
    """One cache level (sizes in bytes, latency in cycles)."""

    size: int
    associativity: int
    latency: int


@dataclass(frozen=True)
class TlbParams:
    """Table I MMU row."""

    l1_small_entries: int = 64
    l1_small_assoc: int = 4
    l1_small_latency: int = 1
    l1_huge_entries: int = 32
    l1_huge_assoc: int = 4
    l2_entries: int = 1536
    l2_assoc: int = 12
    l2_latency: int = 12


@dataclass(frozen=True)
class PwcParams:
    """Per-level page-walk cache geometry."""

    entries: int = 32
    associativity: int = 4
    latency: int = 1


@dataclass(frozen=True)
class SchedulerParams:
    """Multi-process scheduling knobs (the ``tenants`` axis).

    ``quantum_refs`` is the time slice in memory references (the unit
    the simulator advances in); ``context_switch_cycles`` is charged to
    the slot's timeline at every switch.  ``max_asids`` models the
    hardware ASID/PCID space: while co-runners fit, a switch preserves
    TLB and PWC contents (entries are ASID-tagged); once processes
    outnumber ASIDs the OS must recycle them and every switch costs a
    full flush — ``flush_on_switch`` forces that behaviour regardless.
    ``shootdown_cycles`` is the IPI + invalidation cost charged when
    reclaim unmaps a page that remote TLBs may still cache;
    ``shootdown_batch`` coalesces that cost Linux-style — one IPI per
    ``shootdown_batch`` unmapped pages in a reclaim pass instead of one
    per page (1, the default, is the unbatched PR 3 behaviour).
    ``tenant_weights`` scales each tenant's quantum (weight 2.0 runs
    twice as long per slice); None means equal weights.
    """

    quantum_refs: int = 2048
    context_switch_cycles: int = 6_000
    max_asids: int = 16
    shootdown_cycles: int = 4_000
    flush_on_switch: bool = False
    shootdown_batch: int = 1
    tenant_weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self):
        if self.quantum_refs < 1:
            raise ValueError("quantum_refs must be >= 1")
        if self.max_asids < 1:
            raise ValueError("max_asids must be >= 1")
        if self.shootdown_batch < 1:
            raise ValueError("shootdown_batch must be >= 1")
        if self.tenant_weights is not None:
            # JSON round-trips tuples as lists; normalize for stable
            # equality/hashing across from_dict.
            if not isinstance(self.tenant_weights, tuple):
                object.__setattr__(self, "tenant_weights",
                                   tuple(self.tenant_weights))
            if any(w <= 0 for w in self.tenant_weights):
                raise ValueError("tenant_weights must be positive")


#: Placement policies for the NUMA frame pools (``NumaParams``).
#: ``local`` backs both data and page-table pages on the faulting
#: core's node (first-touch); ``interleave`` round-robins every
#: allocation across nodes; ``preferred-node`` pins everything to one
#: node (memory-side pooling); ``pte-local`` interleaves data but pins
#: page-table pages to the faulting core's node, isolating walker
#: locality from data locality.
PLACEMENT_POLICIES = ("local", "interleave", "preferred-node",
                      "pte-local")


@dataclass(frozen=True)
class NumaParams:
    """NUMA topology knobs (the placement-policy axis).

    ``nodes`` splits physical memory into that many per-node frame
    pools; ``remote_cycles`` is the uniform extra DRAM latency for an
    access that crosses nodes (~58 ns of socket interconnect at the
    2.6 GHz clock); ``placement`` picks the allocation policy (see
    :data:`PLACEMENT_POLICIES`) and ``preferred_node`` parameterizes
    the ``preferred-node`` policy.  ``distance_matrix`` replaces the
    uniform off-diagonal distance with an explicit ``nodes`` x
    ``nodes`` matrix of extra cycles (asymmetric interconnects:
    mesh hops, sub-NUMA clusters, CXL-attached far memory); the
    diagonal must be zero and None (the default) keeps the uniform
    ``remote_cycles`` derivation.  The default single-node topology is
    exactly the flat machine of earlier releases, bit for bit.
    """

    nodes: int = 1
    placement: str = "local"
    remote_cycles: int = 150
    preferred_node: int = 0
    distance_matrix: Optional[Tuple[Tuple[float, ...], ...]] = None

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"placement must be one of {PLACEMENT_POLICIES}, "
                f"got {self.placement!r}")
        if self.remote_cycles < 0:
            raise ValueError("remote_cycles must be >= 0")
        if not 0 <= self.preferred_node < self.nodes:
            raise ValueError("preferred_node must name a node")
        if self.distance_matrix is not None:
            # JSON round-trips tuples as lists and ints for whole
            # floats; normalize to nested float tuples so equality and
            # hashing are stable across from_dict.
            matrix = tuple(tuple(float(cycles) for cycles in row)
                           for row in self.distance_matrix)
            object.__setattr__(self, "distance_matrix", matrix)
            if len(matrix) != self.nodes or any(
                    len(row) != self.nodes for row in matrix):
                raise ValueError(
                    f"distance_matrix must be {self.nodes}x"
                    f"{self.nodes}")
            for i, row in enumerate(matrix):
                if row[i] != 0:
                    raise ValueError(
                        "distance_matrix diagonal must be zero")
                if any(cycles < 0 for cycles in row):
                    raise ValueError("distances must be non-negative")
        if self.nodes == 1:
            # A flat machine has no placement decisions or distances:
            # normalize the moot knobs to their defaults so every
            # single-node NumaParams equals NumaParams() — otherwise
            # two bit-identical runs would get distinct canonical_json
            # (and duplicate cache cells).
            cls = type(self)
            object.__setattr__(self, "placement", cls.placement)
            object.__setattr__(self, "remote_cycles",
                               cls.remote_cycles)
            object.__setattr__(self, "distance_matrix", None)


@dataclass(frozen=True)
class CoreParams:
    """Core timing model knobs.

    ``mlp`` bounds outstanding data misses (memory-level parallelism);
    translation is serialized, as walks sit on the critical path.
    ``gap_cycles`` models the non-memory instructions between two memory
    references (each retiring at 1 IPC).
    """

    frequency_ghz: float = 2.6
    mlp: int = 2
    issue_cycles: int = 1


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build and run one simulation."""

    system: str = SYSTEM_NDP           # 'ndp' or 'cpu'
    num_cores: int = 1
    mechanism: str = "radix"
    workload: str = "rnd"
    scale: float = DEFAULT_SCALE
    refs_per_core: int = 50_000
    #: Untimed demand-paging warmup: each core's first ``warmup_refs``
    #: references are pre-faulted before timing starts, mirroring the
    #: paper's methodology of measuring a region of interest after the
    #: applications have initialized their datasets.  None means "same
    #: as refs_per_core" (the ROI replays a fully warmed footprint);
    #: 0 disables prefaulting (cold start).
    warmup_refs: Optional[int] = None
    seed: int = 42
    phys_bytes: Optional[int] = None   # default: 16 GiB * scale
    #: Fraction of 2 MB blocks already fragmented at boot by unmovable
    #: kernel allocations (see FrameAllocator; the THP pathology of the
    #: paper's reference [23]).  Affects only 2 MB allocation success.
    boot_fragmentation: float = 0.55
    #: Fraction of huge-eligible regions THP actually promotes to 2 MB
    #: (khugepaged lag + utilization thresholds; Ingens [23]).  Only the
    #: Huge Page mechanism is affected.
    thp_promotion_fraction: float = 0.2
    l1: CacheParams = CacheParams(32 * 1024, 8, 4)
    l2: CacheParams = CacheParams(512 * 1024, 16, 16)      # CPU only
    l3_per_core: CacheParams = CacheParams(2 * 1024 * 1024, 16, 35)
    tlb: TlbParams = field(default_factory=TlbParams)
    pwc: PwcParams = field(default_factory=PwcParams)
    core: CoreParams = field(default_factory=CoreParams)
    fault_costs: FaultCosts = field(default_factory=FaultCosts)
    #: Number of co-running processes (address spaces).  Each tenant
    #: gets its own page table and OS view over the *shared* physical
    #: frame pool; the scheduler time-slices them onto the cores.
    #: 1 (the default) is exactly the single-address-space simulation.
    tenants: int = 1
    #: Per-tenant workload keys; None means every tenant runs
    #: ``workload``.  Length must equal ``tenants`` when given.
    tenant_workloads: Optional[Tuple[str, ...]] = None
    scheduler: SchedulerParams = field(default_factory=SchedulerParams)
    #: NUMA topology: per-node frame pools with distance-dependent DRAM
    #: latency and a placement policy.  The default single-node
    #: topology is the flat machine of earlier releases.
    numa: NumaParams = field(default_factory=NumaParams)

    def __post_init__(self):
        if self.system not in (SYSTEM_CPU, SYSTEM_NDP):
            raise ValueError(f"system must be 'cpu' or 'ndp', "
                             f"got {self.system!r}")
        if self.num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if not 0 < self.scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        if self.refs_per_core < 1:
            raise ValueError("refs_per_core must be >= 1")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.tenant_workloads is not None:
            # JSON round-trips tuples as lists; normalize so equality
            # and hashing are stable across from_dict.
            if not isinstance(self.tenant_workloads, tuple):
                object.__setattr__(self, "tenant_workloads",
                                   tuple(self.tenant_workloads))
            if len(self.tenant_workloads) != self.tenants:
                raise ValueError(
                    f"tenant_workloads has "
                    f"{len(self.tenant_workloads)} entries for "
                    f"{self.tenants} tenants")
        weights = self.scheduler.tenant_weights
        if weights is not None and len(weights) != self.tenants:
            raise ValueError(
                f"tenant_weights has {len(weights)} entries for "
                f"{self.tenants} tenants")
        get_mechanism(self.mechanism)  # validate early

    @property
    def physical_bytes(self) -> int:
        """Physical memory size (Table I: 16 GB, scaled with workloads)."""
        if self.phys_bytes is not None:
            return self.phys_bytes
        return int(16 * GIB * self.scale)

    def with_mechanism(self, mechanism: str) -> "SystemConfig":
        return replace(self, mechanism=mechanism)

    def with_cores(self, num_cores: int) -> "SystemConfig":
        return replace(self, num_cores=num_cores)

    def with_workload(self, workload: str) -> "SystemConfig":
        return replace(self, workload=workload)

    # -- canonical serialization ------------------------------------
    #
    # The sweep orchestrator needs two properties from configs: a
    # *stable identity* (equal configs must hash equal in every
    # process, on every run — the on-disk result cache keys on it) and
    # a *cheap wire form* (plain dicts cross multiprocessing pickle
    # boundaries without dragging module state along).  Both come from
    # the same canonical dict round-trip.

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form: nested dataclasses become nested dicts.

        The result contains only JSON-representable scalars, so it is
        safe to pickle into worker processes and to hash for cache
        keys.  ``from_dict`` inverts it exactly.

        Fields added after the on-disk cache format shipped (see
        ``_VERSIONED_FIELDS``) are omitted while they hold their
        defaults: a default-valued new axis must not perturb
        ``canonical_json`` — and with it every existing cache key —
        for configs that do not use it.  The same applies one level
        down (``_VERSIONED_SUBFIELDS``): a field added to an existing
        nested dataclass is omitted from *that* dict at its default,
        so e.g. a custom-quantum scheduler config keeps its PR 3 key.
        """
        data = dataclasses.asdict(self)
        for name, default in _VERSIONED_FIELDS.items():
            if getattr(self, name) == default:
                del data[name]
        for name, subdefaults in _VERSIONED_SUBFIELDS.items():
            if name not in data:
                continue
            nested = getattr(self, name)
            for subname, default in subdefaults.items():
                if getattr(nested, subname) == default:
                    del data[name][subname]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SystemConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        fields = dict(data)
        for name, factory in _NESTED_FIELDS.items():
            if name in fields and isinstance(fields[name], dict):
                fields[name] = factory(**fields[name])
        return cls(**fields)

    def canonical_json(self) -> str:
        """Deterministic JSON encoding used for cache keys.

        Keys are sorted and separators fixed, so two equal configs
        produce byte-identical strings in any process (float repr is
        deterministic in Python 3).
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


def _nested_field_types() -> Dict[str, type]:
    """Nested dataclass fields of SystemConfig, derived from its own
    annotations so :meth:`SystemConfig.from_dict` re-hydrates every
    sub-config — including ones added later — without a parallel
    hand-maintained registry."""
    hints = typing.get_type_hints(SystemConfig)
    return {
        f.name: hints[f.name]
        for f in dataclasses.fields(SystemConfig)
        if dataclasses.is_dataclass(hints.get(f.name))
    }


_NESTED_FIELDS = _nested_field_types()

#: Fields added after the on-disk result cache shipped, mapped to the
#: default values under which :meth:`SystemConfig.to_dict` omits them.
#: Omission keeps the canonical JSON — and every cache key derived from
#: it — byte-identical for configs that predate the field.
_VERSIONED_FIELDS: Dict[str, Any] = {
    "tenants": 1,
    "tenant_workloads": None,
    "scheduler": SchedulerParams(),
    "numa": NumaParams(),
}

#: Fields added to an already-shipped *nested* dataclass, mapped to the
#: defaults under which they are omitted from that sub-dict.  Keeps the
#: canonical JSON of configs that customized the nested object before
#: the field existed (e.g. a non-default scheduler quantum from PR 3)
#: byte-identical; ``from_dict`` restores the defaults on the way back.
_VERSIONED_SUBFIELDS: Dict[str, Dict[str, Any]] = {
    "scheduler": {"shootdown_batch": 1, "tenant_weights": None},
    "numa": {"distance_matrix": None},
}


def ndp_config(**overrides) -> SystemConfig:
    """NDP platform defaults (Table I right column)."""
    overrides.setdefault("system", SYSTEM_NDP)
    return SystemConfig(**overrides)


def cpu_config(**overrides) -> SystemConfig:
    """CPU platform defaults (Table I left column)."""
    overrides.setdefault("system", SYSTEM_CPU)
    return SystemConfig(**overrides)
