"""Simulation driver: configs, cores, engine, system, runner."""

from repro.sim.config import (
    DEFAULT_SCALE,
    PLACEMENT_POLICIES,
    SYSTEM_CPU,
    SYSTEM_NDP,
    CacheParams,
    CoreParams,
    NumaParams,
    PwcParams,
    SchedulerParams,
    SystemConfig,
    TlbParams,
    cpu_config,
    ndp_config,
)
from repro.sim.core_model import Core, CoreStats
from repro.sim.engine import SimulationEngine
from repro.sim.runner import RunResult, run_mechanisms, run_once
from repro.sim.scheduler import (
    ScheduledEngine,
    SchedulerStats,
    TenantCoordinator,
)
from repro.sim.sweep import (
    SweepRunner,
    SweepStats,
    expand_grid,
    run_sweep,
)
from repro.sim.system import System
from repro.sim.topology import NumaFrameAllocator, NumaTopology

__all__ = [
    "CacheParams",
    "Core",
    "CoreParams",
    "CoreStats",
    "DEFAULT_SCALE",
    "NumaFrameAllocator",
    "NumaParams",
    "NumaTopology",
    "PLACEMENT_POLICIES",
    "PwcParams",
    "RunResult",
    "SYSTEM_CPU",
    "SYSTEM_NDP",
    "ScheduledEngine",
    "SchedulerParams",
    "SchedulerStats",
    "SimulationEngine",
    "SweepRunner",
    "SweepStats",
    "System",
    "TenantCoordinator",
    "SystemConfig",
    "TlbParams",
    "cpu_config",
    "expand_grid",
    "ndp_config",
    "run_mechanisms",
    "run_once",
    "run_sweep",
]
