"""In-process serial backend: no pool, no pickling, no preemption.

``dispatch`` executes the attempt synchronously and queues its
outcome for the next ``poll``.  ``KeyboardInterrupt`` (not an
``Exception``) propagates out of ``dispatch`` so Ctrl-C aborts
promptly, leaving the cache holding every finished cell.
"""

from __future__ import annotations

import traceback
from typing import List, Optional

from repro.sim.backends.base import Attempt, Outcome, SweepBackend
from repro.sim.config import SystemConfig
from repro.sim.faults import FaultPlan, apply_cell_faults
from repro.sim.runner import run_once


class SerialBackend(SweepBackend):
    """Execute attempts inline, one at a time."""

    name = "serial"
    supports_timeout = False   # cannot preempt an in-process cell

    def __init__(self):
        self._fn = None
        self._plan: Optional[FaultPlan] = None
        self._done: List[Outcome] = []

    def open(self, run_fn, plan_text: Optional[str],
             cells: int) -> None:
        self._fn = run_fn or run_once
        self._plan = FaultPlan.parse(plan_text) if plan_text else None

    def capacity(self) -> Optional[int]:
        return 1

    def dispatch(self, attempt: Attempt) -> bool:
        try:
            config = SystemConfig.from_dict(attempt.data)
            if self._plan is not None:
                apply_cell_faults(self._plan, attempt.label,
                                  attempt.attempt)
            result = self._fn(config)
        except Exception:
            self._done.append(Outcome(
                key=attempt.key, attempt=attempt.attempt,
                status="error", error=traceback.format_exc()))
        else:
            self._done.append(Outcome(
                key=attempt.key, attempt=attempt.attempt,
                status="ok", result=result))
        return True

    def poll(self, timeout: Optional[float]) -> List[Outcome]:
        done, self._done = self._done, []
        return done
