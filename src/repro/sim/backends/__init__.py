"""Pluggable sweep-execution backends.

A :class:`SweepBackend` owns how cell attempts execute; the
backend-agnostic supervisor in :mod:`repro.sim.sweep` owns retry,
backoff, timeout and quarantine semantics.  Three backends ship:

* ``serial`` — in-process, no pool, no pickling.
* ``pool`` — supervised local worker processes (Process + Pipe).
* ``fileq`` — multi-host coordination through a shared directory
  (``repro worker --queue DIR`` runs a standalone worker).
"""

from repro.sim.backends.base import (
    BACKEND_NAMES,
    Attempt,
    BackendSpec,
    Outcome,
    SweepBackend,
)
from repro.sim.backends.fileq import FileQueueBackend, worker_loop
from repro.sim.backends.pool import PoolBackend
from repro.sim.backends.serial import SerialBackend

__all__ = [
    "BACKEND_NAMES",
    "Attempt",
    "BackendSpec",
    "FileQueueBackend",
    "Outcome",
    "PoolBackend",
    "SerialBackend",
    "SweepBackend",
    "worker_loop",
]
