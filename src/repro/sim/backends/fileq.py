"""Multi-host sweep backend coordinating through a shared directory.

The queue directory — typically a sibling of the result cache on
shared storage — is the only coordination channel, so any machine
that can see it can contribute workers (``repro worker --queue DIR``).
Layout::

    QUEUE/
      todo/      <key>.a<N>.json   work items, claimed by atomic rename
      claims/    <worker-id>/      items a worker is executing
      results/   <key>.a<N>.json   outcomes for the supervisor
      workers/   <worker-id>.hb    heartbeat files (touched by a thread)

Protocol:

* **Dispatch.**  The supervisor writes one JSON work item per attempt
  into ``todo/`` (atomic tmp + rename).
* **Claim.**  A worker claims an item by ``os.replace``-ing it into
  its own ``claims/<id>/`` directory — rename is atomic on POSIX, so
  exactly one worker wins.
* **Execute.**  The worker simulates the cell and writes the full
  outcome — including the serialized :class:`RunResult` — into
  ``results/``, then deletes its claim.  Workers never touch the
  result cache; the supervisor owns persistence, so cache semantics
  are identical across backends.
* **Liveness.**  Each worker runs a daemon thread touching its
  heartbeat file; SIGKILL stops the thread with the process.  The
  supervisor treats a claim whose owner's heartbeat is stale (or
  whose local worker process is dead) as a ``"lost"`` attempt — the
  same event as a SIGKILLed pool worker — and the backend-agnostic
  supervisor retries or quarantines it.  Idle workers also steal
  stale claims back into ``todo/`` so skewed grids rebalance even
  between supervisor polls; rename arbitrates the race.
* **Fencing.**  Before publishing, a worker re-validates that it
  still owns its claim file.  A SIGSTOP'd or NFS-stalled worker whose
  claim was stolen (its heartbeat went stale) abandons the finished
  cell instead of racing the claim's new owner — the simulator is
  deterministic, so nothing is lost.
* **Drain.**  On a stop request (SIGTERM/SIGINT to ``repro worker``,
  or the supervisor closing the backend) a worker finishes — or, on a
  second signal, abandons — its in-flight cell, returns unfinished
  claims to ``todo/``, deletes its heartbeat file and claim dir, and
  exits 0, emitting ``worker.drained``.  ``repair_queue`` (CLI:
  ``repro queue repair``) sweeps up what *unclean* deaths leave
  behind: tmp orphans, ghost claim dirs, stale heartbeats, duplicate
  todo items.

The supervisor can spawn local worker processes (``workers=N``),
drive external ``repro worker`` processes (``workers=0``), or mix
both.  Results are bit-identical to the serial backend because the
simulator is deterministic and the cell payload is the portable
``config.to_dict()`` form.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing
import os
import socket
import threading
import time
import traceback
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.events import JsonlSink, emit, session
from repro.sim.backends.base import Attempt, Outcome, SweepBackend
from repro.sim.config import SystemConfig
from repro.sim.faults import FaultPlan, apply_cell_faults, guarded_io
from repro.sim.runner import run_once

HEARTBEAT_INTERVAL = 1.0   # seconds between heartbeat touches
STALE_AFTER = 5.0          # heartbeat age that marks a worker dead
POLL_INTERVAL = 0.05       # idle scan period (workers and supervisor)


# -- queue layout -------------------------------------------------------------

class QueueLayout:
    """Paths inside one queue directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.todo = self.root / "todo"
        self.claims = self.root / "claims"
        self.results = self.root / "results"
        self.workers = self.root / "workers"

    def ensure(self) -> None:
        for path in (self.todo, self.claims, self.results,
                     self.workers):
            path.mkdir(parents=True, exist_ok=True)

    def heartbeat(self, worker_id: str) -> Path:
        return self.workers / f"{worker_id}.hb"


def item_name(key: str, attempt: int) -> str:
    """Filesystem-safe work-item filename.  Keys may be full canonical
    JSON (cache-less sweeps), so the filename carries a digest; the
    real key travels inside the item payload."""
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:40]
    return f"{digest}.a{attempt}.json"


def _atomic_write(path: Path, payload: dict,
                  plan: Optional[FaultPlan] = None) -> None:
    """Write one queue file atomically, hardened for shared storage.

    The tmp file is unlinked when the write or the rename raises, so
    a faulting writer cannot strew ``*.tmp<pid>`` orphans around the
    queue; transient ``OSError``\\ s (and any injected ``ioerr`` /
    ``enospc`` / ``stall`` clause matching ``queue/<name>``) are
    retried with bounded backoff, persistent ones propagate for the
    caller to degrade on.
    """
    text = json.dumps(payload)

    def write() -> None:
        tmp = path.parent / f"{path.name}.tmp{os.getpid()}"
        try:
            tmp.write_text(text)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    guarded_io(write, "queue", path.name, plan)


def _read_json(path: Path) -> Optional[dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


# -- worker side --------------------------------------------------------------

class _Heartbeat(threading.Thread):
    """Touch a heartbeat file until stopped; daemon, so SIGKILL takes
    it down with the worker and staleness detection sees the death."""

    def __init__(self, path: Path, interval: float):
        super().__init__(daemon=True)
        self.path = path
        self.interval = interval
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.path.touch()
            except OSError:
                pass

    def stop(self) -> None:
        self._stop.set()


def _claim_next(layout: QueueLayout, my_claims: Path) -> Optional[Path]:
    """Claim the lexically first todo item by atomic rename."""
    try:
        names = sorted(p.name for p in layout.todo.glob("*.json"))
    except OSError:
        return None
    for name in names:
        target = my_claims / name
        try:
            os.replace(layout.todo / name, target)
        except OSError:
            continue   # lost the race to another worker
        return target
    return None


def _steal_stale_claims(layout: QueueLayout, worker_id: str,
                        stale_after: float) -> int:
    """Return stale claims (dead owners) to ``todo/``; rename
    arbitrates against the supervisor reclaiming the same items."""
    stolen = 0
    now = time.time()
    try:
        owners = [p for p in layout.claims.iterdir() if p.is_dir()]
    except OSError:
        return 0
    for owner in owners:
        if owner.name == worker_id:
            continue
        heartbeat = layout.heartbeat(owner.name)
        try:
            age = now - heartbeat.stat().st_mtime
        except OSError:
            age = None   # no heartbeat file: owner is gone
        if age is not None and age < stale_after:
            continue
        for path in sorted(owner.glob("*.json")):
            try:
                os.replace(path, layout.todo / path.name)
            except OSError:
                continue
            stolen += 1
    return stolen


def worker_loop(queue_dir: Union[str, Path],
                worker_id: Optional[str] = None,
                run_fn=None,
                plan_text: Optional[str] = None,
                poll_interval: float = POLL_INTERVAL,
                heartbeat_interval: float = HEARTBEAT_INTERVAL,
                stale_after: float = STALE_AFTER,
                max_idle: Optional[float] = None,
                stop_event=None,
                events_out: Optional[Union[str, Path]] = None,
                log_stream=None) -> Dict[str, object]:
    """Run one queue worker until stopped or idle for ``max_idle`` s.

    The entry point behind ``repro worker --queue DIR`` and the
    supervisor's local workers.  Fault plans come from ``plan_text``
    or, when unset, the ``REPRO_FAULT_PLAN`` environment variable —
    so external workers honor the same chaos plans as pool workers.

    ``log_stream`` receives structured timestamped progress lines
    (``repro worker`` passes stderr); ``events_out`` additionally
    opens a JSONL event sink of the worker's own, so an external
    worker's claim/executed/heartbeat events can be merged with the
    supervisor's log afterwards.  Local workers forked by the
    supervisor inherit its sink instead and need neither.
    """
    from repro.analysis.cache import result_to_dict

    layout = QueueLayout(queue_dir)
    layout.ensure()
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"

    def log(message: str) -> None:
        emit("worker.log", worker=worker_id, message=message)
        if log_stream is not None:
            stamp = time.strftime("%Y-%m-%dT%H:%M:%S")
            log_stream.write(f"{stamp} [{worker_id}] {message}\n")
            log_stream.flush()

    with contextlib.ExitStack() as stack:
        if events_out:
            stack.enter_context(session(JsonlSink(events_out)))
            emit("worker.spawned", worker=worker_id, backend="fileq")
        my_claims = layout.claims / worker_id
        my_claims.mkdir(parents=True, exist_ok=True)
        heartbeat_path = layout.heartbeat(worker_id)
        heartbeat_path.touch()
        heartbeat = _Heartbeat(heartbeat_path, heartbeat_interval)
        heartbeat.start()
        log(f"online, queue={layout.root}")

        plan = (FaultPlan.parse(plan_text) if plan_text
                else FaultPlan.from_env())
        plan = plan if plan else None
        fn = run_fn or run_once
        executed = 0
        idle_since = time.monotonic()
        last_beat = time.monotonic()
        try:
            while not (stop_event is not None
                       and stop_event.is_set()):
                now = time.monotonic()
                if now - last_beat >= heartbeat_interval:
                    emit("worker.heartbeat", worker=worker_id,
                         executed=executed)
                    last_beat = now
                claim = _claim_next(layout, my_claims)
                if (claim is not None and stop_event is not None
                        and stop_event.is_set()):
                    # Drain request raced the claim: the finally
                    # block returns it to todo/ untouched.
                    break
                if claim is None:
                    stolen = _steal_stale_claims(
                        layout, worker_id, stale_after)
                    if stolen:
                        log(f"stole {stolen} stale claim(s)")
                        continue
                    if (max_idle is not None
                            and time.monotonic() - idle_since
                            > max_idle):
                        log("idle timeout, exiting")
                        break
                    time.sleep(poll_interval)
                    continue
                item = _read_json(claim)
                if item is None:
                    claim.unlink(missing_ok=True)
                    continue
                key, attempt = item["key"], item["attempt"]
                label = item.get("label", "")
                emit("worker.claim", worker=worker_id, key=key,
                     attempt=attempt)
                log(f"claim {label or key[:16]} attempt {attempt}")
                outcome: Dict[str, object] = {
                    "key": key, "attempt": attempt,
                    "worker": worker_id}
                started = time.perf_counter()
                try:
                    config = SystemConfig.from_dict(item["config"])
                    if plan is not None:
                        apply_cell_faults(plan, label, attempt)
                    result = fn(config)
                    outcome["ok"] = True
                    outcome["result"] = result_to_dict(result)
                except Exception:
                    outcome["ok"] = False
                    outcome["error"] = traceback.format_exc()
                wall = round(time.perf_counter() - started, 6)
                if not claim.exists():
                    # Fencing: the claim was stolen (our heartbeat
                    # went stale — SIGSTOP, NFS stall) and another
                    # worker owns this attempt now.  Publishing would
                    # race the new owner, so abandon the result; the
                    # simulator is deterministic, nothing is lost.
                    log(f"claim {label or key[:16]} attempt "
                        f"{attempt} was stolen; abandoning result")
                    idle_since = time.monotonic()
                    continue
                try:
                    _atomic_write(
                        layout.results / item_name(key, attempt),
                        outcome, plan)
                except OSError as exc:
                    # Persistent publish failure: hand the item back
                    # instead of dying with the result in hand.
                    log(f"publish failed for {label or key[:16]} "
                        f"attempt {attempt} ({exc}); returning claim")
                    try:
                        os.replace(claim, layout.todo / claim.name)
                    except OSError:
                        pass   # stale-claim reclaim will recover it
                    idle_since = time.monotonic()
                    continue
                claim.unlink(missing_ok=True)
                executed += 1
                idle_since = time.monotonic()
                emit("worker.executed", worker=worker_id, key=key,
                     attempt=attempt, ok=bool(outcome["ok"]),
                     wall=wall)
                log(f"{'done' if outcome['ok'] else 'error'} "
                    f"{label or key[:16]} attempt {attempt} "
                    f"({wall:.3f}s)")
        finally:
            heartbeat.stop()
            # Orderly exit (drain, idle timeout, even an in-loop
            # crash): any claim still held goes back to todo/ so no
            # other worker has to wait out the staleness window, and
            # the heartbeat + claim dir disappear so the worker
            # leaves no ghost STALE entry in `repro status`.
            returned = 0
            for path in sorted(my_claims.glob("*.json")):
                try:
                    os.replace(path, layout.todo / path.name)
                except OSError:
                    continue
                returned += 1
            heartbeat_path.unlink(missing_ok=True)
            try:
                my_claims.rmdir()   # only if empty: crashes persist
            except OSError:
                pass
            if stop_event is not None and stop_event.is_set():
                emit("worker.drained", worker=worker_id,
                     returned=returned)
                log(f"drained; returned {returned} claim(s)")
            log(f"offline after {executed} cell(s)")
            if events_out:
                emit("worker.died", worker=worker_id,
                     reason="shutdown")
    return {"worker": worker_id, "cells": executed}


# -- supervisor side ----------------------------------------------------------

class FileQueueBackend(SweepBackend):
    """Drive a sweep through a shared queue directory.

    ``workers`` local worker processes are spawned for the sweep
    (``0`` relies entirely on external ``repro worker`` processes).
    Dead local workers are respawned; their claims — and any external
    worker's claims whose heartbeat went stale — surface as ``"lost"``
    outcomes so the supervisor's retry/quarantine accounting treats a
    dead remote worker exactly like a SIGKILLed local one.
    """

    name = "fileq"
    supports_timeout = True

    def __init__(self, queue_dir: Union[str, Path], workers: int = 0,
                 heartbeat_interval: float = HEARTBEAT_INTERVAL,
                 stale_after: float = STALE_AFTER,
                 poll_interval: float = POLL_INTERVAL):
        self.layout = QueueLayout(queue_dir)
        self.workers = max(0, workers)
        self.heartbeat_interval = heartbeat_interval
        self.stale_after = stale_after
        self.poll_interval = poll_interval
        self._run_fn = None
        self._plan_text: Optional[str] = None
        self._plan: Optional[FaultPlan] = None
        self._local: Dict[str, multiprocessing.Process] = {}
        self._stop_local = None
        self._pending: List[Outcome] = []
        self._dead_ids: set = set()
        self._reported_stale: set = set()
        self._spawned = 0

    # -- lifecycle ---------------------------------------------------

    def open(self, run_fn, plan_text: Optional[str],
             cells: int) -> None:
        if run_fn is not None:
            if self.workers == 0:
                raise ValueError(
                    "fileq backend cannot ship run_fn to external "
                    "workers; spawn local workers (jobs > 0) or use "
                    "the serial/pool backend")
            from repro.sim.sweep import _ensure_picklable
            _ensure_picklable(run_fn)
        self._run_fn = run_fn
        self._plan_text = plan_text
        self._plan = (FaultPlan.parse(plan_text) if plan_text
                      else None)
        self._stop_local = multiprocessing.Event()
        self.layout.ensure()
        # Purge strays from a previous (crashed) supervisor: todo
        # items nobody will collect and results nobody expects.  Live
        # claims are left alone — their outcomes are attempt-gated.
        for where in (self.layout.todo, self.layout.results):
            for path in list(where.glob("*.json")):
                path.unlink(missing_ok=True)
            for path in list(where.glob("*.tmp*")):
                path.unlink(missing_ok=True)
        for _ in range(min(self.workers, max(1, cells))):
            self._spawn_local()

    def _spawn_local(self) -> None:
        self._spawned += 1
        worker_id = f"local-{os.getpid()}-{self._spawned}"
        process = multiprocessing.Process(
            target=worker_loop, args=(str(self.layout.root),),
            kwargs=dict(worker_id=worker_id, run_fn=self._run_fn,
                        plan_text=self._plan_text,
                        poll_interval=self.poll_interval,
                        heartbeat_interval=self.heartbeat_interval,
                        stale_after=self.stale_after,
                        stop_event=self._stop_local),
            daemon=True)
        process.start()
        self._local[worker_id] = process
        emit("worker.spawned", worker=worker_id, backend=self.name)

    def close(self) -> None:
        # Graceful first: local workers watch the stop event and exit
        # through their drain path (claims returned, heartbeat and
        # claim dir removed), so a completed sweep leaves a pristine
        # queue.  Escalate to SIGTERM/SIGKILL only for workers stuck
        # mid-cell (hangs, chaos plans).
        if self._stop_local is not None:
            self._stop_local.set()
        deadline = time.monotonic() + 2.0
        for process in self._local.values():
            process.join(
                timeout=max(0.05, deadline - time.monotonic()))
        for process in self._local.values():
            if process.is_alive():
                process.terminate()
        for process in self._local.values():
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        self._local = {}

    # -- execution ---------------------------------------------------

    def capacity(self) -> Optional[int]:
        return None   # queue everything; workers pull

    def dispatch(self, attempt: Attempt) -> bool:
        try:
            _atomic_write(
                self.layout.todo
                / item_name(attempt.key, attempt.attempt),
                {"key": attempt.key, "attempt": attempt.attempt,
                 "label": attempt.label, "config": attempt.data},
                self._plan)
        except OSError as exc:
            # Persistent queue-write failure: surface it as a normal
            # failed attempt so the supervisor's retry/quarantine
            # budget applies (hole + manifest entry, not a crash).
            self._pending.append(Outcome(
                key=attempt.key, attempt=attempt.attempt,
                status="error",
                error=f"queue dispatch failed: {exc}"))
        return True

    def poll(self, timeout: Optional[float]) -> List[Outcome]:
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            outcomes: List[Outcome] = self._pending
            self._pending = []
            self._drain_results(outcomes)
            self._respawn_local()
            self._reclaim_stale(outcomes)
            if outcomes:
                return outcomes
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                return []
            sleep = self.poll_interval
            if deadline is not None:
                sleep = min(sleep, deadline - now)
            time.sleep(max(sleep, 0.001))

    def cancel(self, key: str, attempt: int) -> None:
        # Remove the item if still unclaimed; a worker already running
        # it will write a result the supervisor attempt-gates away.
        path = self.layout.todo / item_name(key, attempt)
        path.unlink(missing_ok=True)

    # -- supervisor scans --------------------------------------------

    def _drain_results(self, outcomes: List[Outcome]) -> None:
        from repro.analysis.cache import result_from_dict
        for path in sorted(self.layout.results.glob("*.json")):
            data = _read_json(path)
            path.unlink(missing_ok=True)
            if data is None:
                continue
            key, attempt = data.get("key"), data.get("attempt", 0)
            if not key:
                continue
            if data.get("ok"):
                try:
                    result = result_from_dict(data["result"])
                except Exception:
                    outcomes.append(Outcome(
                        key=key, attempt=attempt, status="error",
                        error=traceback.format_exc()))
                    continue
                outcomes.append(Outcome(key=key, attempt=attempt,
                                        status="ok", result=result))
            else:
                outcomes.append(Outcome(
                    key=key, attempt=attempt, status="error",
                    error=str(data.get("error", ""))))

    def _reclaim_stale(self, outcomes: List[Outcome]) -> None:
        """Reclaim claims whose owner is dead — a dead local process,
        a stale heartbeat, or no heartbeat at all."""
        now = time.time()
        try:
            owners = [p for p in self.layout.claims.iterdir()
                      if p.is_dir()]
        except OSError:
            return
        for owner in owners:
            worker_id = owner.name
            process = self._local.get(worker_id)
            if process is not None and process.is_alive():
                continue
            if process is None and worker_id not in self._dead_ids:
                try:
                    age = (now - self.layout.heartbeat(worker_id)
                           .stat().st_mtime)
                except OSError:
                    age = None
                if age is not None and age < self.stale_after:
                    continue
                if worker_id not in self._reported_stale:
                    self._reported_stale.add(worker_id)
                    emit("worker.died", worker=worker_id,
                         reason="stale heartbeat")
            for path in sorted(owner.glob("*.json")):
                item = _read_json(path)
                try:
                    path.unlink()
                except OSError:
                    continue   # a worker stole it back first
                if item is None or "key" not in item:
                    continue
                key, attempt = item["key"], item.get("attempt", 0)
                outcomes.append(Outcome(
                    key=key, attempt=attempt, status="lost",
                    error=(f"worker {worker_id} died or went stale "
                           f"while running attempt {attempt}")))

    def _respawn_local(self) -> None:
        for worker_id, process in list(self._local.items()):
            if process.is_alive():
                continue
            process.join(timeout=0.5)
            del self._local[worker_id]
            self._dead_ids.add(worker_id)
            emit("worker.died", worker=worker_id,
                 reason=f"exit code {process.exitcode}")
            self._spawn_local()


# -- offline maintenance ------------------------------------------------------

def repair_queue(queue_dir: Union[str, Path],
                 stale_after: float = STALE_AFTER,
                 apply: bool = True) -> Dict[str, int]:
    """Fsck a queue directory: find (and with ``apply``, fix) the
    debris that crashed workers and killed supervisors leave behind.

    Four categories, returned as a count per key:

    * ``tmp_orphans`` — ``*.tmp<pid>`` files from writers that died
      mid-``_atomic_write`` (removed);
    * ``stale_heartbeats`` — heartbeat files whose worker has been
      silent longer than ``stale_after`` (removed; any claims it
      held are requeued first, and fencing protects against the
      worker turning out to be merely stalled);
    * ``ghost_claim_dirs`` — claim dirs of dead workers (their items
      are returned to ``todo/``, counted as ``requeued_claims``, and
      the empty dir is removed);
    * ``duplicate_items`` — multiple attempts of the same cell in
      ``todo/`` (all but the highest attempt removed).

    Workers with a fresh heartbeat are never touched, so running a
    repair against a live queue is safe — it only races the same
    recovery the sweep's own reclaim logic performs.  A clean drain
    leaves nothing for it to find: every count zero.
    """
    layout = QueueLayout(queue_dir)
    report = {"tmp_orphans": 0, "stale_heartbeats": 0,
              "ghost_claim_dirs": 0, "requeued_claims": 0,
              "duplicate_items": 0}
    if not layout.root.is_dir():
        return report
    now = time.time()

    live = set()
    if layout.workers.is_dir():
        for heartbeat in layout.workers.glob("*.hb"):
            try:
                age = now - heartbeat.stat().st_mtime
            except OSError:
                continue
            if age < stale_after:
                live.add(heartbeat.stem)

    for path in sorted(layout.root.rglob("*.tmp*")):
        report["tmp_orphans"] += 1
        if apply:
            path.unlink(missing_ok=True)

    if layout.claims.is_dir():
        for owner in sorted(p for p in layout.claims.iterdir()
                            if p.is_dir()):
            if owner.name in live:
                continue
            items = sorted(owner.glob("*.json"))
            report["ghost_claim_dirs"] += 1
            report["requeued_claims"] += len(items)
            if not apply:
                continue
            for item in items:
                try:
                    os.replace(item, layout.todo / item.name)
                except OSError:
                    report["requeued_claims"] -= 1
            try:
                owner.rmdir()
            except OSError:
                report["ghost_claim_dirs"] -= 1

    if layout.workers.is_dir():
        for heartbeat in sorted(layout.workers.glob("*.hb")):
            if heartbeat.stem in live:
                continue
            report["stale_heartbeats"] += 1
            if apply:
                heartbeat.unlink(missing_ok=True)

    if layout.todo.is_dir():
        by_cell: Dict[str, List[Path]] = {}
        for item in layout.todo.glob("*.json"):
            digest = item.name.split(".a")[0]
            by_cell.setdefault(digest, []).append(item)
        for paths in by_cell.values():
            if len(paths) < 2:
                continue

            def attempt_of(path: Path) -> int:
                try:
                    return int(path.stem.rsplit(".a", 1)[1])
                except (IndexError, ValueError):
                    return -1

            paths.sort(key=attempt_of)
            for stale in paths[:-1]:
                report["duplicate_items"] += 1
                if apply:
                    stale.unlink(missing_ok=True)
    return report
