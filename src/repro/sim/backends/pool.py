"""Supervised local process pool (the PR 6 fault-tolerant pool,
refactored in place behind the :class:`SweepBackend` protocol).

One pipe per worker; ``poll`` multiplexes result pipes and process
sentinels through ``multiprocessing.connection.wait``, so a worker
death (SIGKILL, segfault, OOM kill) wakes the supervisor immediately
and surfaces as a ``"lost"`` outcome.  ``cancel`` kills the worker
running a timed-out attempt and respawns it.  Retry, backoff and
quarantine policy live upstream in the backend-agnostic supervisor.
"""

from __future__ import annotations

import multiprocessing
import traceback
from multiprocessing import connection
from typing import Callable, List, Optional

from repro.obs.events import emit
from repro.sim.backends.base import Attempt, Outcome, SweepBackend
from repro.sim.config import SystemConfig
from repro.sim.faults import FaultPlan, apply_cell_faults, cell_label
from repro.sim.runner import run_once


def _supervised_worker(conn, run_fn: Optional[Callable],
                       plan_text: Optional[str]) -> None:
    """Worker loop: receive ``(pos, config-dict, attempt)``, simulate,
    send back ``(pos, ok, result-or-traceback)``.

    Every exception is captured and reported per cell, so one bad cell
    cannot poison its worker or any other cell; abrupt process death
    (SIGKILL, segfault, OOM) is the supervisor's job to notice via the
    process sentinel.  Top-level so it pickles under every
    multiprocessing start method.
    """
    plan = FaultPlan.parse(plan_text) if plan_text else None
    fn = run_fn or run_once
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        pos, data, attempt = task
        try:
            config = SystemConfig.from_dict(data)
            if plan is not None:
                apply_cell_faults(plan, cell_label(config), attempt)
            outcome = (pos, True, fn(config))
        except Exception:
            outcome = (pos, False, traceback.format_exc())
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """A supervised worker process and its dispatch pipe."""

    __slots__ = ("conn", "process", "attempt")

    def __init__(self, conn, process):
        self.conn = conn
        self.process = process
        self.attempt: Optional[Attempt] = None


class PoolBackend(SweepBackend):
    """Dispatch attempts to supervised local worker processes."""

    name = "pool"
    supports_timeout = True

    def __init__(self, jobs: int = 2):
        self.jobs = max(1, jobs)
        self._workers: List[_Worker] = []
        self._run_fn = None
        self._plan_text: Optional[str] = None

    # -- lifecycle ---------------------------------------------------

    def open(self, run_fn, plan_text: Optional[str],
             cells: int) -> None:
        if run_fn is not None:
            from repro.sim.sweep import _ensure_picklable
            _ensure_picklable(run_fn)
        self._run_fn = run_fn
        self._plan_text = plan_text
        self._workers = [self._spawn()
                         for _ in range(min(self.jobs, max(1, cells)))]

    def _spawn(self) -> _Worker:
        parent, child = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_supervised_worker,
            args=(child, self._run_fn, self._plan_text), daemon=True)
        process.start()
        child.close()
        emit("worker.spawned", worker=f"pool-{process.pid}",
             backend=self.name)
        return _Worker(parent, process)

    def _respawn(self, worker: _Worker, kill: bool = False) -> _Worker:
        if kill and worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
        worker.process.join(timeout=2.0)
        try:
            worker.conn.close()
        except OSError:
            pass
        emit("worker.died", worker=f"pool-{worker.process.pid}",
             reason=("killed by supervisor (timeout)" if kill
                     else f"exit code {worker.process.exitcode}"))
        replacement = self._spawn()
        self._workers[self._workers.index(worker)] = replacement
        return replacement

    def close(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    # -- execution ---------------------------------------------------

    def capacity(self) -> Optional[int]:
        return len(self._workers)

    def dispatch(self, attempt: Attempt) -> bool:
        for worker in self._workers:
            if worker.attempt is not None:
                continue
            try:
                worker.conn.send(
                    (attempt.pos, attempt.data, attempt.attempt))
            except (BrokenPipeError, OSError):
                # Worker died while idle: the attempt never started,
                # so it must not count against the cell.
                self._respawn(worker)
                return False
            worker.attempt = attempt
            return True
        return False

    def poll(self, timeout: Optional[float]) -> List[Outcome]:
        busy = [w for w in self._workers if w.attempt is not None]
        if not busy:
            return []
        objects = [w.conn for w in busy]
        objects += [w.process.sentinel for w in busy]
        ready = connection.wait(objects, timeout=timeout)
        outcomes: List[Outcome] = []
        for worker in busy:
            if worker.conn in ready:
                outcome = self._collect(worker)
                if outcome is not None:
                    outcomes.append(outcome)
                if worker.attempt is not None:
                    # recv failed: the worker died mid-send.
                    outcomes.append(self._lost(worker))
                    self._respawn(worker)
            elif worker.process.sentinel in ready:
                # Dead worker; drain a result it may have flushed
                # before dying.
                if worker.conn.poll():
                    outcome = self._collect(worker)
                    if outcome is not None:
                        outcomes.append(outcome)
                if worker.attempt is not None:
                    outcomes.append(self._lost(worker))
                self._respawn(worker)
        return outcomes

    def cancel(self, key: str, attempt: int) -> None:
        for worker in self._workers:
            if worker.attempt is not None and worker.attempt.key == key:
                worker.attempt = None
                self._respawn(worker, kill=True)
                return

    # -- outcome plumbing --------------------------------------------

    def _collect(self, worker: _Worker) -> Optional[Outcome]:
        """Receive one outcome; leaves ``worker.attempt`` set when the
        recv itself failed (the caller then treats the worker as dead).
        """
        try:
            _pos, ok, payload = worker.conn.recv()
        except (EOFError, OSError):
            return None
        attempt = worker.attempt
        worker.attempt = None
        if ok:
            return Outcome(key=attempt.key, attempt=attempt.attempt,
                           status="ok", result=payload)
        return Outcome(key=attempt.key, attempt=attempt.attempt,
                       status="error", error=payload)

    def _lost(self, worker: _Worker) -> Outcome:
        attempt = worker.attempt
        worker.attempt = None
        return Outcome(
            key=attempt.key, attempt=attempt.attempt, status="lost",
            error=(f"worker died (exit code "
                   f"{worker.process.exitcode}) while running "
                   f"attempt {attempt.attempt}"))
