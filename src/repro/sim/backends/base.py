"""The sweep-execution backend protocol.

A backend owns *how* one cell attempt executes — in-process, on a
supervised local worker pool, or on external workers coordinating
through a shared directory — while the backend-agnostic supervisor
loop in :mod:`repro.sim.sweep` owns *what happens around* execution:
retry budgets, exponential backoff, per-cell timeouts, and quarantine
into the :class:`~repro.sim.sweep.FailureManifest`.  That split is the
interface contract: a dead remote worker surfaces as the same
``"lost"`` outcome as a SIGKILLed local one, and flows through the
same retry/backoff/quarantine accounting.

The conversation is deliberately small:

* :meth:`SweepBackend.open` — bring up execution resources for a
  sweep of ``cells`` missing cells.
* :meth:`SweepBackend.dispatch` — start one :class:`Attempt`;
  return ``False`` if the backend could not take it right now (the
  supervisor re-queues the cell without consuming the attempt).
* :meth:`SweepBackend.poll` — collect finished :class:`Outcome`\\ s,
  blocking up to ``timeout`` seconds (``None`` blocks until at least
  one outcome arrives).
* :meth:`SweepBackend.cancel` — give up on an in-flight attempt
  (timeout enforcement); best effort.
* :meth:`SweepBackend.close` — tear down resources.

Backends are selected by name through :class:`BackendSpec`, the one
place the ``auto`` rule (serial for ``jobs == 1`` or single-cell
sweeps, pool otherwise) lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Names accepted by ``BackendSpec`` / ``--backend``.
BACKEND_NAMES = ("auto", "serial", "pool", "fileq")


@dataclass(frozen=True)
class Attempt:
    """One dispatch of one unique cell."""

    pos: int        # index into the sweep's missing-cell list
    key: str        # cache key / canonical identity
    data: dict      # config.to_dict() — process/host portable
    label: str      # human-readable cell_label()
    attempt: int    # 1-based attempt counter


@dataclass
class Outcome:
    """What became of one dispatched attempt.

    ``status`` is one of:

    * ``"ok"`` — ``result`` holds the :class:`RunResult`.
    * ``"error"`` — the cell raised; ``error`` holds the traceback.
    * ``"lost"`` — the executor vanished mid-attempt (SIGKILL, OOM,
      stale heartbeat); counted as a worker death by the supervisor.
    """

    key: str
    attempt: int
    status: str
    result: Optional[object] = None
    error: str = ""


class SweepBackend:
    """Protocol base class; see the module docstring for the contract.

    ``supports_timeout`` tells the supervisor whether per-cell
    deadlines can be enforced (the serial backend cannot preempt an
    in-process cell).  ``capacity()`` bounds concurrently in-flight
    attempts; ``None`` means unbounded (the fileq backend queues
    everything and lets workers pull).
    """

    name = "base"
    supports_timeout = False

    def open(self, run_fn, plan_text: Optional[str],
             cells: int) -> None:
        raise NotImplementedError

    def capacity(self) -> Optional[int]:
        return 1

    def dispatch(self, attempt: Attempt) -> bool:
        raise NotImplementedError

    def poll(self, timeout: Optional[float]) -> List[Outcome]:
        raise NotImplementedError

    def cancel(self, key: str, attempt: int) -> None:
        pass

    def close(self) -> None:
        pass


@dataclass
class BackendSpec:
    """Declarative backend selection — *which* backend, with what
    resources — resolved against a concrete sweep at execution time
    (the ``auto`` rule needs the missing-cell count and timeout).

    ``jobs`` is worker processes for ``pool``, *local* worker
    processes for ``fileq`` (``0`` means external ``repro worker``
    processes only), and ignored by ``serial``.
    """

    name: str = "auto"
    jobs: int = 1
    queue_dir: Optional[Union[str, Path]] = None
    heartbeat_interval: float = 1.0
    stale_after: float = 5.0
    poll_interval: float = 0.05
    options: Dict[str, object] = field(default_factory=dict)

    def resolve(self, missing: int,
                cell_timeout: Optional[float]) -> SweepBackend:
        """Instantiate the backend for a sweep with ``missing`` cells."""
        name = self.name
        if name == "auto":
            use_pool = self.jobs > 1 and (
                missing > 1 or cell_timeout is not None)
            name = "pool" if use_pool else "serial"
        if name == "serial":
            from repro.sim.backends.serial import SerialBackend
            return SerialBackend()
        if name == "pool":
            from repro.sim.backends.pool import PoolBackend
            return PoolBackend(jobs=max(1, self.jobs))
        if name == "fileq":
            if self.queue_dir is None:
                raise ValueError(
                    "fileq backend needs a queue_dir (the shared "
                    "directory workers coordinate through)")
            from repro.sim.backends.fileq import FileQueueBackend
            return FileQueueBackend(
                self.queue_dir, workers=max(0, self.jobs),
                heartbeat_interval=self.heartbeat_interval,
                stale_after=self.stale_after,
                poll_interval=self.poll_interval)
        raise ValueError(
            f"unknown sweep backend {name!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)}")
