"""Core timing model.

Each core consumes its workload's reference stream.  Per reference:

1. the MMU translates the virtual address — translation (and any page
   fault) *serializes*, since no data can move before its physical
   address is known;
2. the data access is issued into a bounded window of outstanding
   misses (``mlp``), so independent data accesses overlap — the
   memory-level parallelism that lets data-intensive cores pressure
   DRAM the way the paper's out-of-order cores do;
3. the core advances by its issue cost plus the workload's inter-
   reference compute gap (non-memory instructions at 1 IPC).

The model is deliberately simple — mechanistic, like Sniper's interval
core — because every compared mechanism runs on the *same* core model
and only the translation path differs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, Optional, Tuple

from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.request import AccessType, MemoryRequest, RequestKind
from repro.mmu.mmu import Mmu


@dataclass
class CoreStats:
    """Cycle and instruction accounting for one core."""

    references: int = 0
    instructions: int = 0
    cycles: float = 0.0
    translation_cycles: float = 0.0
    fault_cycles: float = 0.0
    data_stall_cycles: float = 0.0

    @property
    def translation_fraction(self) -> float:
        """Share of runtime spent translating (Fig. 5's blue bars)."""
        if self.cycles == 0:
            return 0.0
        return self.translation_cycles / self.cycles

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class Core:
    """One NDP/CPU core bound to a reference stream and an MMU."""

    def __init__(self, core_id: int, mmu: Mmu, hierarchy: MemoryHierarchy,
                 stream: Iterator[Tuple[int, bool]], gap_cycles: int,
                 mlp: int = 4, issue_cycles: int = 1):
        if mlp < 1:
            raise ValueError("mlp must be >= 1")
        self.core_id = core_id
        self.mmu = mmu
        self.hierarchy = hierarchy
        self.stream = stream
        self.gap_cycles = gap_cycles
        self.mlp = mlp
        self.issue_cycles = issue_cycles
        self.stats = CoreStats()
        self._outstanding: Deque[float] = deque()
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def step(self, now: float) -> Optional[float]:
        """Execute one memory reference starting at cycle ``now``.

        Returns the cycle at which the core is ready for its next
        reference, or None when the stream is exhausted (after draining
        outstanding accesses into the cycle count).
        """
        item = next(self.stream, None)
        if item is None:
            self._drain(now)
            return None
        vaddr, is_write = item

        clock = now
        outcome = self.mmu.translate(clock, vaddr)
        clock += outcome.latency + outcome.fault_cycles
        self.stats.translation_cycles += outcome.latency
        self.stats.fault_cycles += outcome.fault_cycles

        # Data access through the bounded miss window.
        if len(self._outstanding) >= self.mlp:
            oldest = self._outstanding.popleft()
            if oldest > clock:
                self.stats.data_stall_cycles += oldest - clock
                clock = oldest
        request = MemoryRequest(
            paddr=outcome.paddr,
            kind=RequestKind.DATA,
            access=AccessType.WRITE if is_write else AccessType.READ,
            core_id=self.core_id,
        )
        completion = clock + self.hierarchy.access(clock, request)
        self._outstanding.append(completion)

        self.stats.references += 1
        self.stats.instructions += 1 + self.gap_cycles
        next_ready = clock + self.issue_cycles + self.gap_cycles
        self.stats.cycles = next_ready
        return next_ready

    def _drain(self, now: float) -> None:
        """Wait for in-flight accesses once the stream ends."""
        end = now
        while self._outstanding:
            completion = self._outstanding.popleft()
            if completion > end:
                end = completion
        self.stats.cycles = max(self.stats.cycles, end)
        self._finished = True
