"""Core timing model.

Each core consumes its workload's reference stream.  Per reference:

1. the MMU translates the virtual address — translation (and any page
   fault) *serializes*, since no data can move before its physical
   address is known;
2. the data access is issued into a bounded window of outstanding
   misses (``mlp``), so independent data accesses overlap — the
   memory-level parallelism that lets data-intensive cores pressure
   DRAM the way the paper's out-of-order cores do;
3. the core advances by its issue cost plus the workload's inter-
   reference compute gap (non-memory instructions at 1 IPC).

The model is deliberately simple — mechanistic, like Sniper's interval
core — because every compared mechanism runs on the *same* core model
and only the translation path differs.

Hot-path design: a core can be fed either a legacy per-item iterator
(``stream``) or whole reference chunks (``chunks``, handed over by
:meth:`repro.workloads.base.Workload.stream_chunks` as plain lists with
precomputed VPN and line-address arrays).  With chunks,
:meth:`Core.step_until` advances through as many references as its
caller's time bound (and optional reference budget) allows — resuming
mid-chunk via a persistent cursor and refilling across chunk boundaries
— inlining the L1-DTLB-hit + L1-cache-hit fast path and falling back to
the shared slow paths (``Mmu._translate_slow``,
``MemoryHierarchy.access_fast``) only on misses, so the common reference
allocates nothing and crosses no function-call boundary.  Single-core
engines call it once with an infinite bound; the multi-core run-ahead
engines call it with the next other-core event time as the bound (see
:mod:`repro.sim.engine`).  :meth:`Core.step` remains the one-reference
entry point (the debug reference engine) and produces bit-identical
statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional, Tuple

import numpy as np

from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.request import KIND_DATA
from repro.mmu.mmu import Mmu
from repro.vm.address import LINE_SHIFT, PAGE_SHIFT
from repro.workloads.base import chunk_probe_keys


@dataclass(slots=True)
class CoreStats:
    """Cycle and instruction accounting for one core."""

    references: int = 0
    instructions: int = 0
    cycles: float = 0.0
    translation_cycles: float = 0.0
    fault_cycles: float = 0.0
    data_stall_cycles: float = 0.0

    @property
    def translation_fraction(self) -> float:
        """Share of runtime spent translating (Fig. 5's blue bars)."""
        if self.cycles == 0:
            return 0.0
        return self.translation_cycles / self.cycles

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class Core:
    """One NDP/CPU core bound to a reference stream and an MMU.

    Exactly one of ``stream`` (iterator of ``(vaddr, is_write)`` pairs)
    and ``chunks`` should be provided; ``chunks`` enables the chunked
    fast path.  A chunk is ``(addrs, writes, vpns, vlines)`` — equal
    length plain lists, where ``vpns[i] == (addrs[i] & VA_MASK) >>
    PAGE_SHIFT`` and ``vlines[i] == addrs[i] >> LINE_SHIFT`` (the
    numpy-precomputed probe keys of :meth:`repro.workloads.base
    .Workload.stream_chunks`).  Legacy ``(addrs, writes)`` pairs are
    accepted too; the missing arrays are derived at refill time.
    """

    def __init__(self, core_id: int, mmu: Mmu, hierarchy: MemoryHierarchy,
                 stream: Optional[Iterator[Tuple[int, bool]]],
                 gap_cycles: int, mlp: int = 4, issue_cycles: int = 1,
                 chunks: Optional[Iterator[tuple]] = None):
        if mlp < 1:
            raise ValueError("mlp must be >= 1")
        if stream is not None and chunks is not None:
            raise ValueError("provide either stream or chunks, not both")
        self.core_id = core_id
        self.mmu = mmu
        self.hierarchy = hierarchy
        self.stream = stream
        self.gap_cycles = gap_cycles
        self.mlp = mlp
        self.issue_cycles = issue_cycles
        self.stats = CoreStats()
        self._chunks = chunks
        self._buf_addrs: List[int] = []
        self._buf_writes: List[bool] = []
        self._buf_vpns: List[int] = []
        self._buf_vlines: List[int] = []
        self._buf_pos = 0
        self._outstanding: Deque[float] = deque()
        self._finished = False
        # Persistent chunk-loop coroutine (created on first use): keeps
        # the hot loop's ~30 local bindings alive across step_until
        # calls, so a run-ahead batch of one reference costs a
        # generator resume, not a full prologue.
        self._runner = None

    @property
    def finished(self) -> bool:
        return self._finished

    def _refill(self) -> bool:
        """Pull the next non-empty chunk into the buffer; False when
        the chunk stream is exhausted (empty chunks are skipped, not
        treated as end-of-stream).  Legacy two-field chunks get their
        VPN/line arrays derived here, once per chunk."""
        if self._chunks is None:
            return False
        while True:
            nxt = next(self._chunks, None)
            if nxt is None:
                return False
            if len(nxt) >= 4:
                addrs, writes, vpns, vlines = nxt[0], nxt[1], nxt[2], \
                    nxt[3]
            else:
                addrs, writes = nxt
                vpns, vlines = chunk_probe_keys(
                    np.asarray(addrs, dtype=np.int64))
            if len(addrs) > 0:
                self._buf_addrs = addrs
                self._buf_writes = writes
                self._buf_vpns = vpns
                self._buf_vlines = vlines
                self._buf_pos = 0
                return True

    def step(self, now: float) -> Optional[float]:
        """Execute one memory reference starting at cycle ``now``.

        Returns the cycle at which the core is ready for its next
        reference, or None when the stream is exhausted (after draining
        outstanding accesses into the cycle count).
        """
        if self._chunks is not None:
            pos = self._buf_pos
            if pos >= len(self._buf_addrs) and not self._refill():
                self._drain(now)
                return None
            pos = self._buf_pos
            vaddr = self._buf_addrs[pos]
            is_write = self._buf_writes[pos]
            self._buf_pos = pos + 1
        else:
            item = next(self.stream, None)
            if item is None:
                self._drain(now)
                return None
            vaddr, is_write = item

        clock = now
        paddr, t_latency, fault_cycles, _, _ = \
            self.mmu.translate_parts(clock, vaddr)
        clock += t_latency + fault_cycles
        self.stats.translation_cycles += t_latency
        self.stats.fault_cycles += fault_cycles

        # Data access through the bounded miss window.
        if len(self._outstanding) >= self.mlp:
            oldest = self._outstanding.popleft()
            if oldest > clock:
                self.stats.data_stall_cycles += oldest - clock
                clock = oldest
        completion = clock + self.hierarchy.access_fast(
            clock, paddr, KIND_DATA, 1 if is_write else 0,
            self.core_id, 0)
        self._outstanding.append(completion)

        self.stats.references += 1
        self.stats.instructions += 1 + self.gap_cycles
        next_ready = clock + self.issue_cycles + self.gap_cycles
        self.stats.cycles = next_ready
        return next_ready

    def step_until(self, now: float, bound: float,
                   max_refs: Optional[int] = None) -> Optional[float]:
        """Run references back to back while ``now < bound``.

        The run-ahead entry point: executes every reference whose issue
        time falls strictly before ``bound`` (callers fold the event
        order's tie-break into the bound, see :mod:`repro.sim.engine`),
        and at most ``max_refs`` of them, resuming mid-chunk via the
        persistent cursor and refilling across chunk boundaries.

        Returns the cycle at which the core is ready for its next
        reference — its new event key — or None when the stream is
        exhausted (after draining outstanding accesses).  Identical
        simulation to issuing :meth:`step` once per reference: the
        L1-DTLB-hit + L1-cache-hit case is fully inlined, anything
        rarer takes the same shared slow paths, and float cycle
        accounting is applied per reference in the same order so every
        reported value is bit-identical.
        """
        if self._chunks is None:
            # Legacy per-item stream: bounded loop over step().
            remaining = max_refs
            while now < bound:
                if remaining is not None:
                    if remaining <= 0:
                        return now
                    remaining -= 1
                nxt = self.step(now)
                if nxt is None:
                    return None
                now = nxt
            return now
        runner = self._runner
        if runner is None:
            runner = self._runner = self._chunk_runner()
            next(runner)  # run the prologue, park at the first yield
        return runner.send((now, bound, max_refs))

    def runner_send(self):
        """One-call-per-batch entry point for the run-ahead engines.

        Returns a callable taking a single ``(now, bound, max_refs)``
        tuple — the bound ``send`` of the persistent chunk coroutine,
        so a batch costs one C-level generator resume with no Python
        wrapper frame.  Legacy per-item streams get an equivalent shim.
        """
        if self._chunks is None:
            return self._stream_send
        runner = self._runner
        if runner is None:
            runner = self._runner = self._chunk_runner()
            next(runner)
        return runner.send

    def _stream_send(self, args):
        """Tuple-argument shim matching the coroutine send protocol."""
        return self.step_until(args[0], args[1], args[2])

    def _chunk_runner(self):
        """Persistent coroutine behind :meth:`step_until`.

        Generator form of the chunk loop: every binding below survives
        across yields, so resuming costs one ``send`` instead of
        re-deriving ~30 locals per call.  Only the buffer cursor is
        re-read after each yield (``step`` may interleave in tests).
        All bound objects are identity-stable for the core's lifetime —
        TLB/cache flushes clear their set dicts in place — which is
        what makes the long-lived bindings safe.
        """
        # Local bindings for everything the per-reference loop touches.
        stats = self.stats
        mmu = self.mmu
        mmu_stats = mmu.stats
        hierarchy = self.hierarchy
        hier_stats = hierarchy.stats
        outstanding = self._outstanding
        mlp = self.mlp
        core_id = self.core_id
        gap_cycles = self.gap_cycles
        post_cycles = self.issue_cycles + gap_cycles
        per_ref_instr = 1 + gap_cycles

        ideal = mmu.ideal
        asid_key = mmu.asid_tag  # 0 single-process: the OR is a no-op
        if not ideal:
            tlbs = mmu.tlbs
            l1t = tlbs.l1_small
            l1t_sets = l1t._sets
            l1t_num_sets = l1t.num_sets
            l1t_latency = l1t.latency
            l1t_stats = l1t.stats
        l1c = hierarchy.l1ds[core_id]
        l1c_fast = l1c._is_lru
        l1c_sets = l1c._sets
        l1c_num_sets = l1c.num_sets
        l1c_shift = l1c._line_shift
        l1c_latency = l1c.hit_latency
        l1c_data_stats = l1c._kind_stats[KIND_DATA]
        # Precomputed-probe plumbing: chunks arrive with per-reference
        # VPNs and virtual line addresses (``vaddr >> LINE_SHIFT``), so
        # a 4 KB TLB hit forms its L1 line tag with two cheap int ops —
        # the physical address materializes only on an L1 miss.
        line_fast = l1c_shift == LINE_SHIFT
        pfn_line_shift = PAGE_SHIFT - l1c_shift if line_fast else 0
        vline_mask = (1 << pfn_line_shift) - 1
        page_mask = (1 << PAGE_SHIFT) - 1

        # Int counters are batched (exact); float cycle accounting goes
        # straight into the stats fields per reference so the summation
        # order — and with it every reported value — is bit-identical
        # to the one-reference step() path.
        now, bound, max_refs = yield
        references = 0
        instructions = 0

        while True:
            pos = self._buf_pos
            addrs = self._buf_addrs
            if pos >= len(addrs):
                if not self._refill():
                    stats.references += references
                    stats.instructions += instructions
                    self._drain(now)
                    # Stream exhausted: every further call behaves like
                    # step() on a finished core — drain (a no-op) and
                    # report None.
                    while True:
                        now, bound, max_refs = yield None
                        self._drain(now)
                pos = 0
                addrs = self._buf_addrs
            writes = self._buf_writes
            vpns = self._buf_vpns
            vlines = self._buf_vlines
            end = len(addrs)
            if max_refs is not None and end - pos > max_refs:
                end = pos + max_refs
            seg_start = pos

            while pos < end:
                if now >= bound:
                    self._buf_pos = pos
                    stats.references += references
                    stats.instructions += instructions
                    stats.cycles = now
                    now, bound, max_refs = yield now
                    references = 0
                    instructions = 0
                    pos = self._buf_pos
                    addrs = self._buf_addrs
                    writes = self._buf_writes
                    vpns = self._buf_vpns
                    vlines = self._buf_vlines
                    end = len(addrs)
                    if max_refs is not None and end - pos > max_refs:
                        end = pos + max_refs
                    seg_start = pos
                    continue
                vaddr = addrs[pos]
                is_write = writes[pos]
                clock = now

                # -- translation: inlined L1-DTLB hit, slow path ------
                if ideal:
                    paddr, t_latency, fault_cycles, _, _ = \
                        mmu.translate_parts(clock, vaddr)
                    clock += t_latency + fault_cycles
                    stats.translation_cycles += t_latency
                    stats.fault_cycles += fault_cycles
                    line = paddr >> l1c_shift
                else:
                    page = vpns[pos] | asid_key
                    tlb_set = l1t_sets[page % l1t_num_sets]
                    translation = tlb_set.get(page)
                    if translation is not None:
                        # Bookkeeping mirror of translate_parts's hit
                        # arm.
                        mmu_stats.translations += 1
                        tlbs.lookups += 1
                        l1t_stats.hits += 1
                        tlb_set[page] = tlb_set.pop(page)
                        mmu_stats.tlb_hits += 1
                        mmu_stats.translation_cycles += l1t_latency
                        stats.translation_cycles += l1t_latency
                        clock += l1t_latency
                        if line_fast and translation[1] == PAGE_SHIFT:
                            # L1 line tag straight from the precomputed
                            # virtual line address (C-speed on the
                            # hottest line of the simulator).
                            line = ((translation[0] << pfn_line_shift)
                                    | (vlines[pos] & vline_mask))
                            paddr = -1
                        else:
                            shift = translation[1]
                            paddr = ((translation[0] << shift)
                                     | (vaddr & ((1 << shift) - 1)))
                            line = paddr >> l1c_shift
                    else:
                        # Bookkeeping mirror of translate_parts's miss
                        # arm, then straight to the shared slow path
                        # (avoids re-probing the set just probed).
                        mmu_stats.translations += 1
                        tlbs.lookups += 1
                        l1t_stats.misses += 1
                        paddr, t_latency, fault_cycles, _, _ = \
                            mmu._translate_slow(clock, vaddr, page)
                        clock += t_latency + fault_cycles
                        stats.translation_cycles += t_latency
                        stats.fault_cycles += fault_cycles
                        line = paddr >> l1c_shift
                pos += 1

                # -- data access through the bounded miss window ------
                if len(outstanding) >= mlp:
                    oldest = outstanding.popleft()
                    if oldest > clock:
                        stats.data_stall_cycles += oldest - clock
                        clock = oldest

                # Inlined L1 hit (LRU caches only); misses take the
                # shared hierarchy fast path, which re-probes the set.
                cache_set = l1c_sets[line % l1c_num_sets]
                packed = cache_set.get(line)
                if packed is not None and l1c_fast:
                    hier_stats.accesses += 1
                    l1c_data_stats.hits += 1
                    cache_set[line] = cache_set.pop(line) | is_write
                    completion = clock + l1c_latency
                else:
                    if paddr < 0:
                        # Deferred from the fast TLB-hit arm (4 KB
                        # translation, so the shift is PAGE_SHIFT).
                        paddr = ((translation[0] << PAGE_SHIFT)
                                 | (vaddr & page_mask))
                    completion = clock + hierarchy.access_fast(
                        clock, paddr, KIND_DATA, is_write, core_id, 0)
                outstanding.append(completion)

                references += 1
                instructions += per_ref_instr
                now = clock + post_cycles

            self._buf_pos = pos
            if max_refs is not None:
                max_refs -= pos - seg_start
                if max_refs <= 0:
                    stats.references += references
                    stats.instructions += instructions
                    stats.cycles = now
                    now, bound, max_refs = yield now
                    references = 0
                    instructions = 0

    def _drain(self, now: float) -> None:
        """Wait for in-flight accesses once the stream ends."""
        end = now
        while self._outstanding:
            completion = self._outstanding.popleft()
            if completion > end:
                end = completion
        self.stats.cycles = max(self.stats.cycles, end)
        self._finished = True
