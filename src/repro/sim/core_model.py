"""Core timing model.

Each core consumes its workload's reference stream.  Per reference:

1. the MMU translates the virtual address — translation (and any page
   fault) *serializes*, since no data can move before its physical
   address is known;
2. the data access is issued into a bounded window of outstanding
   misses (``mlp``), so independent data accesses overlap — the
   memory-level parallelism that lets data-intensive cores pressure
   DRAM the way the paper's out-of-order cores do;
3. the core advances by its issue cost plus the workload's inter-
   reference compute gap (non-memory instructions at 1 IPC).

The model is deliberately simple — mechanistic, like Sniper's interval
core — because every compared mechanism runs on the *same* core model
and only the translation path differs.

Hot-path design: a core can be fed either a legacy per-item iterator
(``stream``) or whole reference chunks (``chunks``, plain address/write
lists handed over by :meth:`repro.workloads.base.Workload.stream_chunks`).
With chunks, :meth:`Core.step_chunk` advances through an entire chunk in
one Python frame, inlining the L1-DTLB-hit + L1-cache-hit fast path and
falling back to the shared slow paths (``Mmu.translate_parts``,
``MemoryHierarchy.access_fast``) only on misses — so the common
reference allocates nothing and crosses no function-call boundary.
:meth:`Core.step` remains the one-reference entry point used by the
multi-core engine and produces bit-identical statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional, Tuple

from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.request import KIND_DATA
from repro.mmu.mmu import Mmu
from repro.vm.address import PAGE_SHIFT, VA_MASK


@dataclass(slots=True)
class CoreStats:
    """Cycle and instruction accounting for one core."""

    references: int = 0
    instructions: int = 0
    cycles: float = 0.0
    translation_cycles: float = 0.0
    fault_cycles: float = 0.0
    data_stall_cycles: float = 0.0

    @property
    def translation_fraction(self) -> float:
        """Share of runtime spent translating (Fig. 5's blue bars)."""
        if self.cycles == 0:
            return 0.0
        return self.translation_cycles / self.cycles

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class Core:
    """One NDP/CPU core bound to a reference stream and an MMU.

    Exactly one of ``stream`` (iterator of ``(vaddr, is_write)`` pairs)
    and ``chunks`` (iterator of ``(addr_list, write_list)`` chunk pairs)
    should be provided; ``chunks`` enables the chunked fast path.
    """

    def __init__(self, core_id: int, mmu: Mmu, hierarchy: MemoryHierarchy,
                 stream: Optional[Iterator[Tuple[int, bool]]],
                 gap_cycles: int, mlp: int = 4, issue_cycles: int = 1,
                 chunks: Optional[Iterator[Tuple[List[int], List[bool]]]]
                 = None):
        if mlp < 1:
            raise ValueError("mlp must be >= 1")
        if stream is not None and chunks is not None:
            raise ValueError("provide either stream or chunks, not both")
        self.core_id = core_id
        self.mmu = mmu
        self.hierarchy = hierarchy
        self.stream = stream
        self.gap_cycles = gap_cycles
        self.mlp = mlp
        self.issue_cycles = issue_cycles
        self.stats = CoreStats()
        self._chunks = chunks
        self._buf_addrs: List[int] = []
        self._buf_writes: List[bool] = []
        self._buf_pos = 0
        self._outstanding: Deque[float] = deque()
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def _refill(self) -> bool:
        """Pull the next non-empty chunk into the buffer; False when
        the chunk stream is exhausted (empty chunks are skipped, not
        treated as end-of-stream)."""
        if self._chunks is None:
            return False
        while True:
            nxt = next(self._chunks, None)
            if nxt is None:
                return False
            self._buf_addrs, self._buf_writes = nxt
            self._buf_pos = 0
            if len(self._buf_addrs) > 0:
                return True

    def step(self, now: float) -> Optional[float]:
        """Execute one memory reference starting at cycle ``now``.

        Returns the cycle at which the core is ready for its next
        reference, or None when the stream is exhausted (after draining
        outstanding accesses into the cycle count).
        """
        if self._chunks is not None:
            pos = self._buf_pos
            if pos >= len(self._buf_addrs) and not self._refill():
                self._drain(now)
                return None
            pos = self._buf_pos
            vaddr = self._buf_addrs[pos]
            is_write = self._buf_writes[pos]
            self._buf_pos = pos + 1
        else:
            item = next(self.stream, None)
            if item is None:
                self._drain(now)
                return None
            vaddr, is_write = item

        clock = now
        paddr, t_latency, fault_cycles, _, _ = \
            self.mmu.translate_parts(clock, vaddr)
        clock += t_latency + fault_cycles
        self.stats.translation_cycles += t_latency
        self.stats.fault_cycles += fault_cycles

        # Data access through the bounded miss window.
        if len(self._outstanding) >= self.mlp:
            oldest = self._outstanding.popleft()
            if oldest > clock:
                self.stats.data_stall_cycles += oldest - clock
                clock = oldest
        completion = clock + self.hierarchy.access_fast(
            clock, paddr, KIND_DATA, 1 if is_write else 0,
            self.core_id, 0)
        self._outstanding.append(completion)

        self.stats.references += 1
        self.stats.instructions += 1 + self.gap_cycles
        next_ready = clock + self.issue_cycles + self.gap_cycles
        self.stats.cycles = next_ready
        return next_ready

    def step_chunk(self, now: float) -> Optional[float]:
        """Run every reference left in the current chunk in one frame.

        Chunked fast path (single-core engine): identical simulation to
        issuing :meth:`step` per reference, but the TLB-hit + L1-hit
        common case is fully inlined.  Returns the core's next ready
        time after the chunk, or None when the stream is exhausted.
        """
        pos = self._buf_pos
        if pos >= len(self._buf_addrs) and not self._refill():
            self._drain(now)
            return None

        # Local bindings for everything the per-reference loop touches.
        addrs = self._buf_addrs
        writes = self._buf_writes
        pos = self._buf_pos
        end = len(addrs)
        stats = self.stats
        mmu = self.mmu
        mmu_stats = mmu.stats
        hierarchy = self.hierarchy
        hier_stats = hierarchy.stats
        outstanding = self._outstanding
        mlp = self.mlp
        core_id = self.core_id
        gap_cycles = self.gap_cycles
        post_cycles = self.issue_cycles + gap_cycles
        per_ref_instr = 1 + gap_cycles

        ideal = mmu.ideal
        asid_key = mmu.asid_tag  # 0 single-process: the OR is a no-op
        if not ideal:
            tlbs = mmu.tlbs
            l1t = tlbs.l1_small
            l1t_sets = l1t._sets
            l1t_num_sets = l1t.num_sets
            l1t_latency = l1t.latency
            l1t_stats = l1t.stats
        l1c = hierarchy.l1ds[core_id]
        l1c_fast = l1c._is_lru
        l1c_sets = l1c._sets
        l1c_num_sets = l1c.num_sets
        l1c_shift = l1c._line_shift
        l1c_latency = l1c.hit_latency
        l1c_data_stats = l1c._kind_stats[KIND_DATA]

        # Int counters are batched (exact); float cycle accounting goes
        # straight into the stats fields per reference so the summation
        # order — and with it every reported value — is bit-identical
        # to the one-reference step() path.
        references = 0
        instructions = 0

        while pos < end:
            vaddr = addrs[pos]
            is_write = writes[pos]
            pos += 1
            clock = now

            # -- translation: inlined L1-DTLB hit, shared slow path ----
            if ideal:
                paddr, t_latency, fault_cycles, _, _ = \
                    mmu.translate_parts(clock, vaddr)
                clock += t_latency + fault_cycles
                stats.translation_cycles += t_latency
                stats.fault_cycles += fault_cycles
            else:
                page = ((vaddr & VA_MASK) >> PAGE_SHIFT) | asid_key
                tlb_set = l1t_sets[page % l1t_num_sets]
                translation = tlb_set.get(page)
                if translation is not None:
                    # Bookkeeping mirror of Mmu.translate_parts's hit arm.
                    mmu_stats.translations += 1
                    tlbs.lookups += 1
                    l1t_stats.hits += 1
                    tlb_set[page] = tlb_set.pop(page)
                    mmu_stats.tlb_hits += 1
                    mmu_stats.translation_cycles += l1t_latency
                    stats.translation_cycles += l1t_latency
                    clock += l1t_latency
                    # Translation fields by index (C-speed on the
                    # hottest line of the simulator).
                    shift = translation[1]
                    paddr = ((translation[0] << shift)
                             | (vaddr & ((1 << shift) - 1)))
                else:
                    # Bookkeeping mirror of translate_parts's miss arm,
                    # then straight to the shared slow path (avoids
                    # re-probing the set just probed).
                    mmu_stats.translations += 1
                    tlbs.lookups += 1
                    l1t_stats.misses += 1
                    paddr, t_latency, fault_cycles, _, _ = \
                        mmu._translate_slow(clock, vaddr, page)
                    clock += t_latency + fault_cycles
                    stats.translation_cycles += t_latency
                    stats.fault_cycles += fault_cycles

            # -- data access through the bounded miss window -----------
            if len(outstanding) >= mlp:
                oldest = outstanding.popleft()
                if oldest > clock:
                    stats.data_stall_cycles += oldest - clock
                    clock = oldest

            # Inlined L1 hit (LRU caches only); misses take the shared
            # hierarchy fast path, which re-probes the set.
            line = paddr >> l1c_shift
            cache_set = l1c_sets[line % l1c_num_sets]
            packed = cache_set.get(line)
            if packed is not None and l1c_fast:
                hier_stats.accesses += 1
                l1c_data_stats.hits += 1
                cache_set[line] = cache_set.pop(line) | is_write
                completion = clock + l1c_latency
            else:
                completion = clock + hierarchy.access_fast(
                    clock, paddr, KIND_DATA, is_write, core_id, 0)
            outstanding.append(completion)

            references += 1
            instructions += per_ref_instr
            now = clock + post_cycles

        self._buf_pos = pos
        stats.references += references
        stats.instructions += instructions
        stats.cycles = now
        return now

    def _drain(self, now: float) -> None:
        """Wait for in-flight accesses once the stream ends."""
        end = now
        while self._outstanding:
            completion = self._outstanding.popleft()
            if completion > end:
                end = completion
        self.stats.cycles = max(self.stats.cycles, end)
        self._finished = True
